package trajsim

import (
	"trajsim/internal/stream"
)

// Live multi-stream ingestion, re-exported from internal/stream: an
// Engine holds thousands of concurrent per-device encoder sessions — the
// paper's fleet-of-devices deployment moved server-side.
type (
	// Engine is a sharded live-session streaming engine. Ingest batched
	// points per device; each session runs its own O(1)-space OPERB or
	// OPERB-A encoder (plus optional stream cleaner) and idle sessions
	// are evicted on a monotonic clock.
	Engine = stream.Engine
	// EngineConfig parameterizes NewEngine; Zeta (meters) is required.
	EngineConfig = stream.Config
	// EngineStats are the engine-wide counters: live sessions, points
	// ingested, segments emitted, flushes and evictions — plus, when the
	// Sink is a SegmentStore, the storage tier's counters in .Store.
	EngineStats = stream.Stats
	// Eviction is one idle session finalized by Engine.EvictIdle.
	Eviction = stream.Eviction
	// SegmentSink receives every finalized segment batch the engine
	// emits; a *SegmentStore is the canonical implementation. Set it on
	// EngineConfig.Sink for durability. Appends run on the engine's async
	// sink pipeline, outside the ingest critical section, ordered per
	// device; see SinkFullPolicy and the EngineConfig Sink* fields.
	SegmentSink = stream.Sink
	// SinkFullPolicy selects what a full sink queue does with an
	// ingest-path batch: SinkBlock or SinkDrop.
	SinkFullPolicy = stream.SinkFullPolicy
	// OverloadError is an admission-control rejection — a per-device
	// rate limit or sink-queue pressure — carrying RetryAfter, when
	// retrying can plausibly succeed. Matches ErrOverloaded under
	// errors.Is. Configure via EngineConfig.DeviceRate/DeviceBurst/
	// QueueWatermark/ShedSessions.
	OverloadError = stream.OverloadError
)

// Sink-queue backpressure policies and defaults, re-exported.
const (
	// SinkBlock blocks ingest until the sink queue has room: nothing
	// acknowledged is ever lost, and a slow disk surfaces as latency.
	SinkBlock = stream.SinkBlock
	// SinkDrop sheds ingest-path batches when the queue is full: ingest
	// never waits on storage, and EngineStats counts the gap.
	SinkDrop = stream.SinkDrop
	// DefaultSinkWriters is the sink writer-goroutine count when
	// EngineConfig.SinkWriters is zero.
	DefaultSinkWriters = stream.DefaultSinkWriters
	// DefaultSinkQueue is the per-writer sink queue depth when
	// EngineConfig.SinkQueue is zero.
	DefaultSinkQueue = stream.DefaultSinkQueue
)

// MaxDevice is the longest accepted device ID in bytes, shared by the
// engine and the segment store.
const MaxDevice = stream.MaxDevice

// Engine errors, re-exported for errors.Is.
var (
	ErrEngineClosed  = stream.ErrClosed
	ErrNoDevice      = stream.ErrNoDevice
	ErrDeviceTooLong = stream.ErrDeviceTooLong
	ErrSessionLimit  = stream.ErrSessionLimit
	ErrTimeOrder     = stream.ErrTimeOrder
	// ErrOverloaded matches every admission-control rejection; the
	// concrete error is always an *OverloadError with the retry delay.
	ErrOverloaded = stream.ErrOverloaded
)

// NewEngine returns a live-session streaming engine.
//
//	eng, _ := trajsim.NewEngine(trajsim.EngineConfig{Zeta: 40, Aggressive: true})
//	segs, _ := eng.Ingest("vehicle-7", batch) // segments finalized by batch
//	tail, _ := eng.Flush("vehicle-7")         // end of stream
func NewEngine(cfg EngineConfig) (*Engine, error) { return stream.NewEngine(cfg) }
