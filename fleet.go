package trajsim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// ErrFleetSize is returned when results and inputs cannot be matched.
var ErrFleetSize = errors.New("trajsim: fleet compression failed")

// CompressFleet compresses many trajectories concurrently with the named
// algorithm (e.g. "OPERB-A") under error bound zeta. workers ≤ 0 selects
// GOMAXPROCS. Results are returned in input order; the first error (if
// any) aborts the batch.
//
// Each trajectory is compressed independently — encoders hold per-stream
// state — so this parallelizes embarrassingly, which is how a cloud
// ingestion tier would run the paper's algorithms over a vehicle fleet.
func CompressFleet(ts []Trajectory, zeta float64, algorithm string, workers int) ([]Piecewise, error) {
	a, err := AlgorithmByName(algorithm)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ts) {
		workers = len(ts)
	}
	out := make([]Piecewise, len(ts))
	if len(ts) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				pw, err := a.Fn(ts[i], zeta)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%w: trajectory %d: %v", ErrFleetSize, i, err)
					}
					mu.Unlock()
					continue
				}
				out[i] = pw
			}
		}()
	}
	for i := range ts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
