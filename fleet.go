package trajsim

import (
	"errors"
	"fmt"

	"trajsim/internal/stream"
)

// ErrFleetSize is returned when results and inputs cannot be matched —
// i.e. a fleet run produced a result count different from its input
// count. With the current worker pool this cannot happen; the sentinel is
// kept as the documented contract for callers that check it.
var ErrFleetSize = errors.New("trajsim: fleet results and inputs cannot be matched")

// ErrCompress wraps the first per-trajectory compression failure of a
// fleet run.
var ErrCompress = errors.New("trajsim: fleet compression failed")

// CompressFleet compresses many trajectories concurrently with the named
// algorithm (e.g. "OPERB-A") under error bound zeta. workers ≤ 0 selects
// GOMAXPROCS. Results are returned in input order; the first error (if
// any) aborts the batch — remaining trajectories are not compressed — and
// is returned wrapped in ErrCompress.
//
// Each trajectory is compressed independently — encoders hold per-stream
// state — so this parallelizes embarrassingly, which is how a cloud
// ingestion tier would run the paper's algorithms over a vehicle fleet.
// For live, incremental ingestion use Engine instead.
func CompressFleet(ts []Trajectory, zeta float64, algorithm string, workers int) ([]Piecewise, error) {
	a, err := AlgorithmByName(algorithm)
	if err != nil {
		return nil, err
	}
	out := make([]Piecewise, len(ts))
	err = stream.ForEach(len(ts), workers, func(i int) error {
		pw, err := a.Fn(ts[i], zeta)
		if err != nil {
			return fmt.Errorf("trajectory %d: %w", i, err)
		}
		out[i] = pw
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrCompress, err)
	}
	return out, nil
}
