package trajsim

import (
	"errors"
	"testing"
)

func TestFacadeBatchAPIs(t *testing.T) {
	tr := GenerateTrajectory(PresetSerCar, 400, 3)
	zeta := 30.0
	for name, fn := range map[string]func(Trajectory, float64) (Piecewise, error){
		"Simplify":           Simplify,
		"SimplifyAggressive": SimplifyAggressive,
		"DouglasPeucker":     DouglasPeucker,
		"TDTR":               TDTR,
		"OPW":                OPW,
		"OPWTR":              OPWTR,
		"BQS":                BQS,
		"FBQS":               FBQS,
	} {
		pw, err := fn(tr, zeta)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(pw) == 0 {
			t.Fatalf("%s: empty output", name)
		}
		if name == "TDTR" || name == "OPWTR" {
			continue // SED bound, checked in their own packages
		}
		if err := VerifyErrorBound(tr, pw, zeta); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFacadeStreaming(t *testing.T) {
	tr := GenerateTrajectory(PresetTaxi, 300, 9)
	enc, err := NewEncoder(40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var pw Piecewise
	for _, p := range tr {
		pw = append(pw, enc.Push(p)...)
	}
	pw = append(pw, enc.Flush()...)
	batch, err := Simplify(tr, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != len(batch) {
		t.Errorf("streaming %d segments, batch %d", len(pw), len(batch))
	}
	if enc.Stats().PointsIn != len(tr) {
		t.Errorf("stats: %+v", enc.Stats())
	}
}

func TestFacadeMetrics(t *testing.T) {
	tr := GenerateTrajectory(PresetGeoLife, 300, 4)
	pw, err := Simplify(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(tr, pw)
	if s.Points != len(tr) || s.Segments != len(pw) {
		t.Errorf("summary: %+v", s)
	}
	if MaxError(tr, pw) > 25*1.000001 {
		t.Errorf("max error %v", MaxError(tr, pw))
	}
	if AvgError(tr, pw) > MaxError(tr, pw) {
		t.Error("avg > max")
	}
	if r := CompressionRatio(tr, pw); r <= 0 || r >= 1 {
		t.Errorf("ratio %v", r)
	}
}

func TestFacadeRegistry(t *testing.T) {
	if len(Algorithms()) != 11 {
		t.Errorf("%d algorithms", len(Algorithms()))
	}
	a, err := AlgorithmByName("operb")
	if err != nil || a.Name != "OPERB" {
		t.Errorf("AlgorithmByName: %+v %v", a, err)
	}
}

func TestFacadeCleanerAndProjection(t *testing.T) {
	c := NewCleaner(2)
	out := c.Push(At(0, 0, 1000))
	out = append(out, c.Flush()...)
	if len(out) != 1 {
		t.Errorf("cleaner output %d points", len(out))
	}
	pr := NewProjection(116.4, 39.9)
	p := pr.ToPlane(116.41, 39.9)
	if p.X < 800 || p.X > 900 {
		t.Errorf("projection x = %v", p.X)
	}
}

func TestCompressFleet(t *testing.T) {
	fleet := GenerateDataset(PresetSerCar, 12, 300, 7)
	pws, err := CompressFleet(fleet, 30, "OPERB-A", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pws) != len(fleet) {
		t.Fatalf("%d results for %d inputs", len(pws), len(fleet))
	}
	for i := range fleet {
		if len(pws[i]) == 0 {
			t.Errorf("trajectory %d: empty", i)
		}
		if err := VerifyErrorBound(fleet[i], pws[i], 30); err != nil {
			t.Errorf("trajectory %d: %v", i, err)
		}
	}
	// Order is preserved: results match a serial run.
	serial, err := SimplifyAggressive(fleet[5], 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(pws[5]) {
		t.Errorf("parallel result diverges from serial: %d vs %d", len(pws[5]), len(serial))
	}
}

func TestCompressFleetEdgeCases(t *testing.T) {
	if _, err := CompressFleet(nil, 30, "OPERB", 0); err != nil {
		t.Errorf("empty fleet: %v", err)
	}
	if _, err := CompressFleet(nil, 30, "bogus", 0); err == nil {
		t.Error("bogus algorithm should fail")
	}
	// A per-trajectory failure (invalid ζ) comes back wrapped in
	// ErrCompress, not in the input/output-mismatch sentinel.
	fleet := GenerateDataset(PresetTaxi, 3, 50, 1)
	_, err := CompressFleet(fleet, -1, "OPERB", 2)
	if !errors.Is(err, ErrCompress) {
		t.Errorf("invalid ζ: err = %v, want ErrCompress", err)
	}
	if errors.Is(err, ErrFleetSize) {
		t.Error("compression failure misreported as ErrFleetSize")
	}
}

func TestFacadeEngine(t *testing.T) {
	eng, err := NewEngine(EngineConfig{Zeta: 40, Aggressive: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrajectory(PresetTruck, 600, 21)
	var pw Piecewise
	for off := 0; off < len(tr); off += 50 {
		segs, err := eng.Ingest("truck-1", tr[off:off+50])
		if err != nil {
			t.Fatal(err)
		}
		pw = append(pw, segs...)
	}
	tail, ok := eng.Flush("truck-1")
	if !ok {
		t.Fatal("no session to flush")
	}
	pw = append(pw, tail...)
	if err := VerifyErrorBound(tr, pw, 40); err != nil {
		t.Error(err)
	}
	var st EngineStats = eng.Stats()
	if st.Points != int64(len(tr)) || st.Flushed != 1 {
		t.Errorf("stats: %+v", st)
	}
	eng.Close()
	if _, err := eng.Ingest("truck-1", tr[:50]); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("closed engine: err = %v, want ErrEngineClosed", err)
	}
}
