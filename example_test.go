package trajsim_test

import (
	"fmt"

	"trajsim"
)

// A straight run with GPS jitter collapses to one segment.
func ExampleSimplify() {
	track := trajsim.Trajectory{
		trajsim.At(0, 0, 0),
		trajsim.At(100, 0.4, 10_000),
		trajsim.At(200, -0.3, 20_000),
		trajsim.At(300, 0.2, 30_000),
		trajsim.At(400, 0, 40_000),
	}
	pw, err := trajsim.Simplify(track, 5) // ζ = 5 m
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d points -> %d segment, max error %.1f m\n",
		len(track), len(pw), trajsim.MaxError(track, pw))
	// Output: 5 points -> 1 segment, max error 0.4 m
}

// Streaming emits each segment as soon as it is final.
func ExampleNewEncoder() {
	enc, err := trajsim.NewEncoder(10, trajsim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	// An L-shaped drive: east to (450,0), then a hard turn north.
	var emitted int
	for i := 0; i < 20; i++ {
		p := trajsim.At(float64(i)*50, 0, int64(i)*5_000)
		if i >= 10 {
			p = trajsim.At(450, float64(i-9)*50, int64(i)*5_000)
		}
		emitted += len(enc.Push(p))
	}
	emitted += len(enc.Flush())
	fmt.Printf("%d segments for the two legs\n", emitted)
	// Output: 2 segments for the two legs
}

// OPERB-A reports how many anomalous segments it eliminated.
func ExampleSimplifyAggressiveOpts() {
	track := trajsim.GenerateTrajectory(trajsim.PresetTaxi, 2000, 7)
	pw, stats, err := trajsim.SimplifyAggressiveOpts(track, 40, trajsim.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("bounded: %v, patched more than half: %v, compressed: %v\n",
		trajsim.VerifyErrorBound(track, pw, 40) == nil,
		stats.Patched*2 >= stats.Anomalous,
		len(pw) < len(track)/3)
	// Output: bounded: true, patched more than half: true, compressed: true
}

// The registry drives generic tooling.
func ExampleAlgorithmByName() {
	a, err := trajsim.AlgorithmByName("fbqs")
	if err != nil {
		panic(err)
	}
	fmt.Println(a.Name, a.OnePass)
	// Output: FBQS false
}

// The cleaner repairs the raw uplink defects the paper's introduction
// describes.
func ExampleCleaner() {
	c := trajsim.NewCleaner(2)
	raw := []trajsim.Point{
		trajsim.At(0, 0, 0),
		trajsim.At(20, 0, 2000), // out of order: arrives before t=1000
		trajsim.At(10, 0, 1000),
		trajsim.At(10, 0, 1000), // duplicate
		trajsim.At(30, 0, 3000),
	}
	var clean []trajsim.Point
	for _, p := range raw {
		clean = append(clean, c.Push(p)...)
	}
	clean = append(clean, c.Flush()...)
	dupes, reordered, _ := c.Stats()
	fmt.Printf("%d clean points (%d duplicates, %d reordered)\n", len(clean), dupes, reordered)
	// Output: 4 clean points (1 duplicates, 1 reordered)
}
