module trajsim

go 1.22
