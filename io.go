package trajsim

import (
	"io"

	"trajsim/internal/trajio"
)

// File I/O re-exports: CSV (planar meters or lon/lat degrees), the GeoLife
// PLT format, and the compact binary encoding for simplified output.

// CSVFormat selects the CSV column interpretation.
type CSVFormat = trajio.Format

// CSV column layouts.
const (
	// CSVPlanar columns: t_ms,x_m,y_m.
	CSVPlanar = trajio.Planar
	// CSVLonLat columns: t_ms,lon_deg,lat_deg.
	CSVLonLat = trajio.LonLat
)

// CSVOptions configures ReadCSV and WriteCSV.
type CSVOptions = trajio.CSVOptions

// ReadCSV reads a trajectory; lon/lat input is projected onto a planar
// frame (anchored at the first point unless CSVOptions.Projection is set),
// and the projection used is returned.
func ReadCSV(r io.Reader, opts CSVOptions) (Trajectory, *Projection, error) {
	return trajio.ReadCSV(r, opts)
}

// WriteCSV writes a trajectory as CSV.
func WriteCSV(w io.Writer, t Trajectory, opts CSVOptions) error {
	return trajio.WriteCSV(w, t, opts)
}

// StreamCSV parses CSV records and delivers points one at a time, the
// input side of a fully streaming pipeline (feed an Encoder without
// materializing the trajectory). The callback returning an error aborts
// the scan.
func StreamCSV(r io.Reader, opts CSVOptions, fn func(Point) error) (*Projection, error) {
	return trajio.StreamCSV(r, opts, fn)
}

// ReadPLT reads a GeoLife PLT stream; pass nil to anchor a projection at
// the first point.
func ReadPLT(r io.Reader, pr *Projection) (Trajectory, *Projection, error) {
	return trajio.ReadPLT(r, pr)
}

// WritePLT writes a trajectory in GeoLife PLT format.
func WritePLT(w io.Writer, t Trajectory, pr *Projection) error {
	return trajio.WritePLT(w, t, pr)
}

// EncodePiecewise encodes a simplified trajectory into the compact binary
// wire format (quantized, delta-coded), appending to dst.
func EncodePiecewise(dst []byte, pw Piecewise) []byte {
	return trajio.AppendPiecewise(dst, pw)
}

// DecodePiecewise decodes the binary wire format.
func DecodePiecewise(b []byte) (Piecewise, error) {
	return trajio.DecodePiecewise(b)
}

// EncodeSegments encodes a segment batch into the compact binary wire
// format (SGB1), appending to dst. Unlike EncodePiecewise it does not
// require adjacent segments to connect, so it carries range-query and
// live-tail results, which may skip records.
func EncodeSegments(dst []byte, segs []Segment) []byte {
	return trajio.AppendSegments(dst, segs)
}

// DecodeSegments decodes the binary segment-batch wire format.
func DecodeSegments(b []byte) ([]Segment, error) {
	return trajio.DecodeSegments(b)
}

// IngestContentType is the Content-Type identifying the binary ingest
// wire format over HTTP (trajserve's POST /ingest accepts it).
const IngestContentType = trajio.IngestContentType

// AppendIngestHeader starts a binary ingest stream — the compact upload
// format a device transmits instead of CSV/NDJSON. Call once, then
// append batches.
func AppendIngestHeader(dst []byte) []byte { return trajio.AppendIngestHeader(dst) }

// AppendIngestBatch appends one device's point batch to a binary ingest
// stream (coordinates quantized to 1 cm, delta-coded).
func AppendIngestBatch(dst []byte, device string, pts []Point) []byte {
	return trajio.AppendIngestBatch(dst, device, pts)
}

// DecodeIngest decodes a binary ingest stream, invoking fn once per
// device batch in stream order.
func DecodeIngest(b []byte, fn func(device string, pts []Point) error) error {
	return trajio.DecodeIngest(b, fn)
}
