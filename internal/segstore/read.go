package segstore

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// The time-indexed read path. Replay streams a whole log; the queries
// here consult each file's sparse index (index.go) first, so they read
// only the record spans whose time range can match — a range query over
// a multi-gigabyte log touches kilobytes, and position-at-time is a
// binary search plus one span read per file probed.
//
// Reads are concurrent: a query takes the device lock only long enough
// to capture a snapshot — the file list, the newest file's in-memory
// index entries and committed size — then decodes entirely outside the
// lock. That is safe because sealed files are immutable and the newest
// file is append-only: every byte below the snapshot's committed size is
// a finished record that no append will ever change. The two operations
// that DO rewrite bytes — whole-file retention deletes and expired-
// prefix truncation (compact.go) — honor the snapshot's per-file read
// pins and skip a pinned file until its readers are gone, so a file
// being read is never deleted or renamed-over under a reader. Readers
// open their own descriptors, leaving the append-handle LRU untouched.
//
// On top of the snapshot sits the optional granule cache (cache.go):
// with Config.ReadCacheBytes set, each index-entry span decodes once and
// is served from memory after that — a hot SegmentAt or ReplayRange over
// cached granules does no I/O at all.

// ErrNoPosition is returned by SegmentAt when no persisted segment
// covers the requested time.
var ErrNoPosition = errors.New("segstore: no position at that time")

// readSnap is one query's point-in-time view of a device log: the file
// list (each file read-pinned for the snapshot's lifetime), the newest
// file's index entries and committed size as of the snapshot, and a memo
// of sealed-file indexes resolved so far. Snapshots are pooled; a warm
// query allocates nothing here.
type readSnap struct {
	l       *deviceLog
	device  string
	seqs    []int        // pinned files, ascending
	tail    []indexEntry // newest file's entries at snapshot time
	tailLen int64        // newest file's committed bytes at snapshot time
	idxs    []snapIdx    // sealed indexes resolved by this snapshot
	plans   []spanPlan   // reusable range-read planning scratch
}

// snapIdx memoizes one resolved sealed-file index.
type snapIdx struct {
	seq int
	fi  fileIndex
}

// spanPlan is one file's share of a range read: its index and the entry
// range the query must consider.
type spanPlan struct {
	seq    int
	fi     fileIndex
	lo, hi int
}

var snapPool = sync.Pool{New: func() any { return new(readSnap) }}

// snapshot captures a read view of device's log and pins every file in
// it. The device lock is held only for the capture — decoding happens
// after it is released — so concurrent readers, appenders, and the sink
// workers never wait on one another here. Call release when done.
func (s *Store) snapshot(device string) (*readSnap, error) {
	l, err := s.lockLog(device)
	if err != nil {
		return nil, err
	}
	// Re-check under the log lock: Close closes file handles under it, so
	// a read that got its log before Close must not open files (via the
	// recovery scan) behind a closed store.
	if s.closed.Load() {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if err := l.open(s); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	snap := snapPool.Get().(*readSnap)
	snap.l, snap.device = l, device
	snap.seqs = append(snap.seqs[:0], l.seqs...)
	snap.tail = append(snap.tail[:0], l.tail...)
	snap.tailLen = l.size
	snap.idxs = snap.idxs[:0]
	if len(snap.seqs) > 0 {
		if l.readPins == nil {
			l.readPins = make(map[int]int)
		}
		for _, seq := range snap.seqs {
			l.readPins[seq]++
		}
	}
	l.mu.Unlock()
	return snap, nil
}

// release drops the snapshot's read pins and returns it to the pool.
func (snap *readSnap) release() {
	l := snap.l
	if len(snap.seqs) > 0 {
		l.mu.Lock()
		for _, seq := range snap.seqs {
			if n := l.readPins[seq] - 1; n <= 0 {
				delete(l.readPins, seq)
			} else {
				l.readPins[seq] = n
			}
		}
		l.mu.Unlock()
	}
	snap.l = nil
	snapPool.Put(snap)
}

// tailSeq is the file that was newest at snapshot time — the one whose
// index is the snapshot's own tail copy.
func (snap *readSnap) tailSeq() int { return snap.seqs[len(snap.seqs)-1] }

// index resolves file seq's index within this snapshot: the captured
// tail for the newest file, the memo or the store for sealed ones. A
// file sealed *after* the snapshot still reads through the captured tail
// — correct, since rotation freezes exactly the entries and size the
// snapshot copied.
func (snap *readSnap) index(s *Store, seq int) (fileIndex, error) {
	if seq == snap.tailSeq() {
		return fileIndex{entries: snap.tail, dataLen: snap.tailLen}, nil
	}
	for _, si := range snap.idxs {
		if si.seq == seq {
			return si.fi, nil
		}
	}
	fi, err := s.loadSealedIndex(snap.l, seq)
	if err != nil {
		return fileIndex{}, err
	}
	snap.idxs = append(snap.idxs, snapIdx{seq, fi})
	return fi, nil
}

// dropIndex forgets file seq's index in both the snapshot memo and the
// store (unlinking the sidecar) — the retry path when a sealed file's
// advisory sidecar turns out not to match its data.
func (snap *readSnap) dropIndex(s *Store, seq int) {
	for i, si := range snap.idxs {
		if si.seq == seq {
			snap.idxs = append(snap.idxs[:i], snap.idxs[i+1:]...)
			break
		}
	}
	snap.l.mu.Lock()
	snap.l.dropIndex(s, seq)
	snap.l.mu.Unlock()
}

// ReplayRange returns every persisted segment for device whose time
// span intersects [from, to] (unix ms, inclusive), in append order —
// exactly Replay filtered to the range, but answered by seeking to the
// covering records via the time index instead of scanning the log.
// from > to returns nil.
func (s *Store) ReplayRange(device string, from, to int64) ([]traj.Segment, error) {
	if from > to {
		return nil, nil
	}
	snap, err := s.snapshot(device)
	if err != nil {
		return nil, err
	}
	defer snap.release()
	return s.replayRange(snap, from, to)
}

// replayRange is the shared body of ReplayRange and Replay: plan every
// file's entry selection first — so the result is sized once, from the
// selected spans' byte total — then read file by file.
func (s *Store) replayRange(snap *readSnap, from, to int64) ([]traj.Segment, error) {
	plans := snap.plans[:0]
	var innerBytes int64 // spans of entries wholly inside [from, to]: every segment matches
	var boundary int     // entries straddling a range end: unknown, usually small, yield
	for _, seq := range snap.seqs {
		fi, err := snap.index(s, seq)
		if err != nil {
			return nil, err
		}
		lo, hi := selectEntries(fi.entries, from, to)
		if lo >= hi {
			continue
		}
		plans = append(plans, spanPlan{seq: seq, fi: fi, lo: lo, hi: hi})
		for i := lo; i < hi; i++ {
			e := fi.entries[i]
			if e.minT >= from && e.maxT <= to {
				innerBytes += entryEnd(fi, i) - e.off
			} else {
				boundary++
			}
		}
	}
	snap.plans = plans
	if len(plans) == 0 {
		return nil, nil
	}
	out := make([]traj.Segment, 0, estimateSegs(innerBytes, boundary))
	for _, p := range plans {
		var err error
		if out, err = s.fileRange(snap, p, from, to, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Replay returns every persisted segment for device in append order
// (coordinates quantized to 1 cm, as stored). A device with no log
// replays as nil. Damage anywhere but the newest file's tail is
// reported as ErrCorrupt. The log is streamed span by span through
// pooled buffers — replaying a multi-gigabyte log holds one span in
// memory at a time, not whole files.
func (s *Store) Replay(device string) ([]traj.Segment, error) {
	snap, err := s.snapshot(device)
	if err != nil {
		return nil, err
	}
	defer snap.release()
	return s.replayRange(snap, minTime, maxTime)
}

const (
	minTime = math.MinInt64
	maxTime = math.MaxInt64
)

// estimateSegs sizes a range read's result: segments encode to roughly
// 10–30 bytes (two delta-coded points plus index and flag varints), so
// bytes/16 lands within ~2× of the truth for the fully-included spans —
// one allocation up front instead of log(n) regrowths while appending a
// big window. Boundary entries are mostly filtered away, so they
// contribute a token few slots rather than their byte mass (a narrow
// window over fat coalesced spans must not allocate for every segment
// it is about to discard).
func estimateSegs(innerBytes int64, boundary int) int {
	n := innerBytes/16 + int64(boundary)*8
	if n < 16 {
		n = 16
	}
	return int(n)
}

// selectEntries returns the half-open entry range [lo, hi) a query over
// [from, to] must consider: a binary search when the index is
// time-sorted (maxT and minT both non-decreasing — entries before lo end
// too early to reach from, entries from hi on start after to), the whole
// index otherwise.
func selectEntries(entries []indexEntry, from, to int64) (lo, hi int) {
	lo, hi = 0, len(entries)
	if entriesSorted(entries) {
		lo = sort.Search(len(entries), func(i int) bool { return entries[i].maxT >= from })
		hi = sort.Search(len(entries), func(i int) bool { return entries[i].minT > to })
	}
	return lo, hi
}

// entryEnd returns one past the last byte of entry i's span.
func entryEnd(fi fileIndex, i int) int64 {
	if i+1 < len(fi.entries) {
		return fi.entries[i+1].off
	}
	return fi.dataLen
}

// fileRange appends file seq's segments intersecting [from, to] to dst.
// A decode failure under a sealed file's sidecar discards that sidecar
// and retries once against an index rebuilt from the data file —
// sidecars are advisory, and a CRC-collision or foreign file must not
// turn into a spurious ErrCorrupt. The newest file's index was built in
// memory from the data itself, so there a failure is real corruption.
func (s *Store) fileRange(snap *readSnap, p spanPlan, from, to int64, dst []traj.Segment) ([]traj.Segment, error) {
	for attempt := 0; ; attempt++ {
		out, err := s.readSpans(snap, p, from, to, dst)
		if err == nil {
			return out, nil
		}
		if attempt > 0 || p.seq == snap.tailSeq() {
			return dst, fmt.Errorf("%w: indexed read: %v (%s)", ErrCorrupt, err, snap.l.path(p.seq))
		}
		snap.dropIndex(s, p.seq)
		fi, ferr := snap.index(s, p.seq)
		if ferr != nil {
			return dst, ferr
		}
		p.fi = fi
		p.lo, p.hi = selectEntries(fi.entries, from, to)
	}
}

// readSpans is one indexed pass over file seq, appending the in-range
// segments of the selected entries to dst. With the granule cache on,
// each entry span is fetched through it — cached spans cost a filtered
// copy, no I/O. With it off, each contiguous run of selected entries is
// read with one pread through a pooled buffer.
func (s *Store) readSpans(snap *readSnap, p spanPlan, from, to int64, dst []traj.Segment) ([]traj.Segment, error) {
	entries := p.fi.entries
	var f file
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	open := func() error {
		if f != nil {
			return nil
		}
		var err error
		f, err = s.fs.Open(snap.l.path(p.seq))
		return err
	}

	if s.cache != nil {
		for i := p.lo; i < p.hi; i++ {
			if !entries[i].overlaps(from, to) {
				continue
			}
			off, end := entries[i].off, entryEnd(p.fi, i)
			key := granuleKey{snap.device, p.seq, off, end}
			segs, ok := s.cache.get(key)
			if !ok {
				var err error
				segs, err = s.cache.load(key, func() ([]traj.Segment, error) {
					if err := open(); err != nil {
						return nil, err
					}
					return s.fetchGranule(f, off, end)
				})
				if err != nil {
					return dst, err
				}
			}
			// The span covers whole records; keep only the segments in range.
			for _, sg := range segs {
				if sg.End.T >= from && sg.Start.T <= to {
					dst = append(dst, sg)
				}
			}
		}
		return dst, nil
	}

	bufp := getReadBuf()
	defer putReadBuf(bufp)
	scratchp := getSegScratch()
	defer putSegScratch(scratchp)
	for i := p.lo; i < p.hi; {
		if !entries[i].overlaps(from, to) {
			i++
			continue
		}
		j := i + 1
		for j < p.hi && entries[j].overlaps(from, to) {
			j++
		}
		if err := open(); err != nil {
			return dst, err
		}
		buf := growBuf(bufp, int(entryEnd(p.fi, j-1)-entries[i].off))
		if err := s.preadFull(f, buf, entries[i].off); err != nil {
			return dst, err
		}
		// Decode into pooled scratch and append only the matches: dst holds
		// result segments only, never a whole span awaiting its filter.
		scratch, err := decodeRecordRange((*scratchp)[:0], buf)
		if err != nil {
			return dst, err
		}
		*scratchp = scratch[:0]
		for _, sg := range scratch {
			if sg.End.T >= from && sg.Start.T <= to {
				dst = append(dst, sg)
			}
		}
		i = j
	}
	return dst, nil
}

// fetchGranule preads and decodes one entry span — the granule cache's
// miss path. The pread buffer is pooled; the decoded slice is freshly
// allocated, since the cache will retain it.
func (s *Store) fetchGranule(f file, off, end int64) ([]traj.Segment, error) {
	bufp := getReadBuf()
	defer putReadBuf(bufp)
	buf := growBuf(bufp, int(end-off))
	if err := s.preadFull(f, buf, off); err != nil {
		return nil, err
	}
	return decodeRecordRange(nil, buf)
}

// SegmentAt returns the persisted segment covering time t for device —
// the piecewise answer to "where was the device at t" (interpolate with
// Segment.At). When overlapping history covers t more than once (a
// device re-ingesting a time span), the segment appended last wins.
// ErrNoPosition is returned when t falls before, after, or in a gap of
// the device's history — including a device with no log at all.
func (s *Store) SegmentAt(device string, t int64) (traj.Segment, error) {
	snap, err := s.snapshot(device)
	if err != nil {
		return traj.Segment{}, err
	}
	defer snap.release()
	// Newest file first: on overlap the latest append wins, and the common
	// "where is it now" probe touches only the live file.
	for i := len(snap.seqs) - 1; i >= 0; i-- {
		seg, ok, err := s.fileAt(snap, snap.seqs[i], t)
		if err != nil {
			return traj.Segment{}, err
		}
		if ok {
			return seg, nil
		}
	}
	return traj.Segment{}, ErrNoPosition
}

// fileAt finds the last-appended segment of file seq covering time t,
// with the same rebuild-and-retry contract as fileRange.
func (s *Store) fileAt(snap *readSnap, seq int, t int64) (traj.Segment, bool, error) {
	for attempt := 0; ; attempt++ {
		fi, err := snap.index(s, seq)
		if err != nil {
			return traj.Segment{}, false, err
		}
		seg, ok, err := s.segmentAtSpans(snap, seq, fi, t)
		if err == nil {
			return seg, ok, nil
		}
		if attempt > 0 || seq == snap.tailSeq() {
			return traj.Segment{}, false, fmt.Errorf("%w: indexed read: %v (%s)", ErrCorrupt, err, snap.l.path(seq))
		}
		snap.dropIndex(s, seq)
	}
}

// segmentAtSpans probes file seq's entries newest-first for a segment
// covering t, decoding one entry span per probe — normally exactly one,
// and none at all when the span is cached.
func (s *Store) segmentAtSpans(snap *readSnap, seq int, fi fileIndex, t int64) (traj.Segment, bool, error) {
	entries := fi.entries
	lo, hi := selectEntries(entries, t, t)
	var f file
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var bufp *[]byte
	var scratchp *[]traj.Segment
	defer func() {
		if bufp != nil {
			putReadBuf(bufp)
		}
		if scratchp != nil {
			putSegScratch(scratchp)
		}
	}()
	for i := hi - 1; i >= lo; i-- {
		if !entries[i].overlaps(t, t) {
			continue
		}
		off, end := entries[i].off, entryEnd(fi, i)
		var segs []traj.Segment
		var err error
		if s.cache != nil {
			key := granuleKey{snap.device, seq, off, end}
			var ok bool
			if segs, ok = s.cache.get(key); !ok {
				segs, err = s.cache.load(key, func() ([]traj.Segment, error) {
					if f == nil {
						var oerr error
						if f, oerr = s.fs.Open(snap.l.path(seq)); oerr != nil {
							return nil, oerr
						}
					}
					return s.fetchGranule(f, off, end)
				})
				if err != nil {
					return traj.Segment{}, false, err
				}
			}
		} else {
			if f == nil {
				if f, err = s.fs.Open(snap.l.path(seq)); err != nil {
					return traj.Segment{}, false, err
				}
			}
			if bufp == nil {
				bufp = getReadBuf()
			}
			if scratchp == nil {
				scratchp = getSegScratch()
			}
			buf := growBuf(bufp, int(end-off))
			if err := s.preadFull(f, buf, off); err != nil {
				return traj.Segment{}, false, err
			}
			if segs, err = decodeRecordRange((*scratchp)[:0], buf); err != nil {
				return traj.Segment{}, false, err
			}
			*scratchp = segs[:0]
		}
		for k := len(segs) - 1; k >= 0; k-- {
			if segs[k].Start.T <= t && t <= segs[k].End.T {
				return segs[k], true, nil
			}
		}
	}
	return traj.Segment{}, false, nil
}

// decodeRecordRange appends the segments of consecutive whole records in
// b — a byte range starting and ending on record boundaries — to dst.
func decodeRecordRange(dst []traj.Segment, b []byte) ([]traj.Segment, error) {
	for off := 0; off < len(b); {
		payload, n, err := enc.Frame(b[off:], maxRecordPayload)
		if err != nil {
			return dst, err
		}
		if dst, err = decodeRecordPayload(dst, payload); err != nil {
			return dst, err
		}
		off += n
	}
	return dst, nil
}

// preadFull reads exactly len(b) bytes at off, counting them toward the
// ReadBytes stat. A full read is success even if the file ends exactly
// there (ReadAt may pair it with io.EOF).
func (s *Store) preadFull(f file, b []byte, off int64) error {
	n, err := f.ReadAt(b, off)
	s.readBytes.Add(int64(n))
	if n == len(b) {
		return nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return err
}

// Pooled pread scratch: every span read in the package borrows a buffer
// here instead of allocating per query. Buffers that grew past
// maxPooledReadBuf (a cold full-log replay can read big spans) are
// dropped rather than pinned in the pool forever.
const maxPooledReadBuf = 1 << 20

var readBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 64<<10)
	return &b
}}

func getReadBuf() *[]byte { return readBufPool.Get().(*[]byte) }

func putReadBuf(p *[]byte) {
	if cap(*p) <= maxPooledReadBuf {
		readBufPool.Put(p)
	}
}

// Pooled decode scratch for the uncached span readers, same idea at the
// segment level: a span decodes here, only the in-range segments move to
// the caller's result.
const maxPooledSegScratch = 16 << 10 // segments; ~1 MiB

var segScratchPool = sync.Pool{New: func() any {
	s := make([]traj.Segment, 0, 256)
	return &s
}}

func getSegScratch() *[]traj.Segment { return segScratchPool.Get().(*[]traj.Segment) }

func putSegScratch(p *[]traj.Segment) {
	if cap(*p) <= maxPooledSegScratch {
		segScratchPool.Put(p)
	}
}

// growBuf returns a length-n buffer backed by *p, growing (and
// remembering) the backing array as needed.
func growBuf(p *[]byte, n int) []byte {
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return *p
}
