package segstore

import (
	"errors"
	"fmt"
	"os"
	"sort"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// The time-indexed read path. Replay scans a whole log; the queries here
// consult each file's sparse index (index.go) first, so they read only
// the record spans whose time range can match — a range query over a
// multi-gigabyte log touches kilobytes, and position-at-time is a
// binary search plus one span read per file probed.

// ErrNoPosition is returned by SegmentAt when no persisted segment
// covers the requested time.
var ErrNoPosition = errors.New("segstore: no position at that time")

// ReplayRange returns every persisted segment for device whose time
// span intersects [from, to] (unix ms, inclusive), in append order —
// exactly Replay filtered to the range, but answered by seeking to the
// covering records via the time index instead of scanning the log.
// from > to returns nil.
func (s *Store) ReplayRange(device string, from, to int64) ([]traj.Segment, error) {
	if from > to {
		return nil, nil
	}
	l, err := s.lockLog(device)
	if err != nil {
		return nil, err
	}
	defer l.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if err := l.open(s); err != nil {
		return nil, err
	}
	var out []traj.Segment
	for _, seq := range l.seqs {
		if out, err = s.readFileRange(l, seq, from, to, out); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// SegmentAt returns the persisted segment covering time t for device —
// the piecewise answer to "where was the device at t" (interpolate with
// Segment.At). When overlapping history covers t more than once (a
// device re-ingesting a time span), the segment appended last wins.
// ErrNoPosition is returned when t falls before, after, or in a gap of
// the device's history — including a device with no log at all.
func (s *Store) SegmentAt(device string, t int64) (traj.Segment, error) {
	l, err := s.lockLog(device)
	if err != nil {
		return traj.Segment{}, err
	}
	defer l.mu.Unlock()
	if s.closed.Load() {
		return traj.Segment{}, ErrClosed
	}
	if err := l.open(s); err != nil {
		return traj.Segment{}, err
	}
	// Newest file first: on overlap the latest append wins, and the common
	// "where is it now" probe touches only the live file.
	for i := len(l.seqs) - 1; i >= 0; i-- {
		seg, ok, err := s.segmentAtFile(l, l.seqs[i], t)
		if err != nil {
			return traj.Segment{}, err
		}
		if ok {
			return seg, nil
		}
	}
	return traj.Segment{}, ErrNoPosition
}

// readFileRange appends file seq's segments intersecting [from, to] to
// dst. A decode failure under a sealed file's sidecar discards that
// sidecar and retries once against an index rebuilt from the data file —
// sidecars are advisory, and a CRC-collision or foreign file must not
// turn into a spurious ErrCorrupt. The newest file's index is built in
// memory from the data itself, so there a failure is real corruption.
func (s *Store) readFileRange(l *deviceLog, seq int, from, to int64, dst []traj.Segment) ([]traj.Segment, error) {
	for attempt := 0; ; attempt++ {
		fi, err := s.loadIndex(l, seq)
		if err != nil {
			return dst, err
		}
		out, err := s.readSpans(l, seq, fi, from, to, dst)
		if err == nil {
			return out, nil
		}
		if attempt > 0 || l.isNewest(seq) {
			return dst, fmt.Errorf("%w: indexed read: %v (%s)", ErrCorrupt, err, l.path(seq))
		}
		l.dropIndex(seq)
	}
}

// readSpans is one indexed pass over file seq: select the entries whose
// time range intersects [from, to] (binary search when the index is
// time-sorted, linear filter otherwise), read each contiguous run of
// selected entries with one pread, decode, and keep the segments
// actually in range.
func (s *Store) readSpans(l *deviceLog, seq int, fi fileIndex, from, to int64, dst []traj.Segment) ([]traj.Segment, error) {
	entries := fi.entries
	lo, hi := 0, len(entries)
	if entriesSorted(entries) {
		// maxT and minT are both non-decreasing: entries before lo end too
		// early to reach from, entries from hi on start after to.
		lo = sort.Search(len(entries), func(i int) bool { return entries[i].maxT >= from })
		hi = sort.Search(len(entries), func(i int) bool { return entries[i].minT > to })
	}
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var buf []byte
	for i := lo; i < hi; {
		if !entries[i].overlaps(from, to) {
			i++
			continue
		}
		j := i + 1
		for j < hi && entries[j].overlaps(from, to) {
			j++
		}
		end := fi.dataLen
		if j < len(entries) {
			end = entries[j].off
		}
		if f == nil {
			var err error
			if f, err = os.Open(l.path(seq)); err != nil {
				return dst, err
			}
		}
		buf = grow(buf, int(end-entries[i].off))
		if _, err := f.ReadAt(buf, entries[i].off); err != nil {
			return dst, err
		}
		before := len(dst)
		var err error
		if dst, err = decodeRecordRange(dst, buf); err != nil {
			return dst[:before], err
		}
		// The span covers whole records; keep only the segments in range.
		keep := dst[:before]
		for _, sg := range dst[before:] {
			if sg.End.T >= from && sg.Start.T <= to {
				keep = append(keep, sg)
			}
		}
		dst = keep
		i = j
	}
	return dst, nil
}

// segmentAtFile finds the last-appended segment of file seq covering
// time t, with the same rebuild-and-retry contract as readFileRange.
func (s *Store) segmentAtFile(l *deviceLog, seq int, t int64) (traj.Segment, bool, error) {
	for attempt := 0; ; attempt++ {
		fi, err := s.loadIndex(l, seq)
		if err != nil {
			return traj.Segment{}, false, err
		}
		seg, ok, err := s.segmentAtSpans(l, seq, fi, t)
		if err == nil {
			return seg, ok, nil
		}
		if attempt > 0 || l.isNewest(seq) {
			return traj.Segment{}, false, fmt.Errorf("%w: indexed read: %v (%s)", ErrCorrupt, err, l.path(seq))
		}
		l.dropIndex(seq)
	}
}

// segmentAtSpans probes file seq's entries newest-first for a segment
// covering t, decoding one entry span per probe — normally exactly one.
func (s *Store) segmentAtSpans(l *deviceLog, seq int, fi fileIndex, t int64) (traj.Segment, bool, error) {
	entries := fi.entries
	lo, hi := 0, len(entries)
	if entriesSorted(entries) {
		lo = sort.Search(len(entries), func(i int) bool { return entries[i].maxT >= t })
		hi = sort.Search(len(entries), func(i int) bool { return entries[i].minT > t })
	}
	var f *os.File
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	var segs []traj.Segment
	var buf []byte
	for i := hi - 1; i >= lo; i-- {
		if !entries[i].overlaps(t, t) {
			continue
		}
		end := fi.dataLen
		if i+1 < len(entries) {
			end = entries[i+1].off
		}
		if f == nil {
			var err error
			if f, err = os.Open(l.path(seq)); err != nil {
				return traj.Segment{}, false, err
			}
		}
		buf = grow(buf, int(end-entries[i].off))
		if _, err := f.ReadAt(buf, entries[i].off); err != nil {
			return traj.Segment{}, false, err
		}
		var err error
		if segs, err = decodeRecordRange(segs[:0], buf); err != nil {
			return traj.Segment{}, false, err
		}
		for k := len(segs) - 1; k >= 0; k-- {
			if segs[k].Start.T <= t && t <= segs[k].End.T {
				return segs[k], true, nil
			}
		}
	}
	return traj.Segment{}, false, nil
}

// decodeRecordRange appends the segments of consecutive whole records in
// b — a byte range starting and ending on record boundaries — to dst.
func decodeRecordRange(dst []traj.Segment, b []byte) ([]traj.Segment, error) {
	for off := 0; off < len(b); {
		payload, n, err := enc.Frame(b[off:], maxRecordPayload)
		if err != nil {
			return dst, err
		}
		if dst, err = decodeRecordPayload(dst, payload); err != nil {
			return dst, err
		}
		off += n
	}
	return dst, nil
}

// isNewest reports whether seq is the live append file — the one whose
// index lives in memory. Caller holds l.mu.
func (l *deviceLog) isNewest(seq int) bool {
	n := len(l.seqs)
	return n > 0 && seq == l.seqs[n-1]
}

// grow returns a length-n buffer, reusing b's backing array when it fits.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}
