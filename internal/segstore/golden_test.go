package segstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"trajsim/internal/traj"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSegments exercises every encoded field: negative coordinates,
// virtual endpoints, non-contiguous index ranges.
func goldenSegments() []traj.Segment {
	return []traj.Segment{
		{Start: traj.At(0, 0, 0), End: traj.At(250.07, -14.5, 30_000),
			StartIdx: 0, EndIdx: 11},
		{Start: traj.At(250.07, -14.5, 30_000), End: traj.At(198.2, 77.77, 95_000),
			StartIdx: 11, EndIdx: 40, VirtualStart: true, VirtualEnd: true},
		{Start: traj.At(198.2, 77.77, 95_000), End: traj.At(-3.25, 60, 160_500),
			StartIdx: 40, EndIdx: 41},
	}
}

// TestGoldenLogFile pins the complete on-disk format — file magic, CRC
// framing, record payload encoding — as produced by a real Append. Any
// byte-level change breaks old logs and must be a deliberate,
// version-bumped decision, not a silent diff.
func TestGoldenLogFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("golden", goldenSegments()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "golden", fileName(1)))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "record_v1.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("log file format changed:\n got %x\nwant %x\nre-bless with -update only for a deliberate format break", got, want)
	}

	// The checked-in fixture must keep replaying on current code: copy it
	// into a fresh store layout and read it back.
	dir2 := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir2, "golden"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "golden", fileName(1)), want, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{Dir: dir2, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	segs, err := s2.Replay("golden")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segs, quantizeAll(goldenSegments())) {
		t.Fatalf("fixture replayed wrong: %v", segs)
	}
}
