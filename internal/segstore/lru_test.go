package segstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// appendInChunks feeds segs to dev in fixed-size appends — the same
// record sequence regardless of which store (or goroutine) runs it.
func appendInChunks(t testing.TB, s *Store, dev string, segs []traj.Segment, chunk int) {
	for off := 0; off < len(segs); off += chunk {
		if err := s.Append(dev, segs[off:min(off+chunk, len(segs))]); err != nil {
			t.Errorf("%s: %v", dev, err)
			return
		}
	}
}

// TestHandleLRUChurn is the acceptance test for the file-handle LRU: a
// store capped at MaxOpenFiles=4 serving 64 devices — with concurrent
// appends and replays forcing constant evict/reopen churn — must end up
// byte-identical on disk to an effectively unbounded store fed the same
// appends, and replay identically.
func TestHandleLRUChurn(t *testing.T) {
	const (
		devices = 64
		cap     = 4
		chunk   = 7
	)
	segs := simplified(t, gen.Taxi, 1200, 31)
	cfg := Config{MaxFileSize: 2048, Sync: SyncNever}

	dirBounded, dirUnbounded := t.TempDir(), t.TempDir()
	cfg.Dir, cfg.MaxOpenFiles = dirUnbounded, 1<<20
	unbounded := openStore(t, cfg)
	cfg.Dir, cfg.MaxOpenFiles = dirBounded, cap
	bounded := openStore(t, cfg)

	dev := func(d int) string { return fmt.Sprintf("dev-%02d", d) }
	for d := 0; d < devices; d++ {
		appendInChunks(t, unbounded, dev(d), segs, chunk)
	}

	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			appendInChunks(t, bounded, dev(d), segs, chunk)
		}(d)
		if d%2 == 0 {
			// Interleave replays so eviction races cold reads, not just writes.
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if _, err := bounded.Replay(dev(d)); err != nil {
						t.Errorf("concurrent replay %s: %v", dev(d), err)
						return
					}
				}
			}(d)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// One serial append converges any transient over-cap state (victims
	// that were busy when an eviction pass ran), after which the cap holds.
	if err := bounded.Append(dev(0), segs[:1]); err != nil {
		t.Fatal(err)
	}
	if err := unbounded.Append(dev(0), segs[:1]); err != nil {
		t.Fatal(err)
	}
	st := bounded.Stats()
	if st.OpenHandles > cap {
		t.Errorf("%d open handles at rest, cap %d", st.OpenHandles, cap)
	}
	if st.HandleEvictions == 0 || st.HandleMisses < devices {
		t.Errorf("no churn observed: %+v", st)
	}
	if ust := unbounded.Stats(); ust.HandleEvictions != 0 {
		t.Errorf("unbounded store evicted %d handles", ust.HandleEvictions)
	}

	// Replay equality for every device…
	want, err := unbounded.Replay(dev(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty replay — test proves nothing")
	}
	for d := 0; d < devices; d++ {
		got, err := bounded.Replay(dev(d))
		if err != nil {
			t.Fatal(err)
		}
		w := want
		if d == 0 {
			if w, err = unbounded.Replay(dev(0)); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(got, w) {
			t.Fatalf("%s: bounded replay differs from unbounded", dev(d))
		}
	}

	// …and byte identity of the logs themselves: same records, same
	// rotation points, eviction/reopen left no seams.
	for d := 0; d < devices; d++ {
		pattern := filepath.Join(dirBounded, escapeDevice(dev(d)), "*"+fileSuffix)
		files, err := filepath.Glob(pattern)
		if err != nil || len(files) == 0 {
			t.Fatalf("glob %s: %v, %v", pattern, files, err)
		}
		for _, f := range files {
			got, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			ref := filepath.Join(dirUnbounded, escapeDevice(dev(d)), filepath.Base(f))
			wantB, err := os.ReadFile(ref)
			if err != nil {
				t.Fatalf("bounded store has %s with no unbounded counterpart: %v", f, err)
			}
			if string(got) != string(wantB) {
				t.Fatalf("%s differs between bounded and unbounded stores", f)
			}
		}
	}
}

// syntheticSegs manufactures n contiguous segments with exactly
// representable (integer) coordinates — for tests that need a precise
// count rather than realistic encoder output.
func syntheticSegs(n int) []traj.Segment {
	out := make([]traj.Segment, n)
	for i := range out {
		t0 := int64(i) * 2000
		out[i] = traj.Segment{
			Start:    traj.At(float64(i), float64(i%7), t0),
			End:      traj.At(float64(i+1), float64((i+1)%7), t0+2000),
			StartIdx: i * 3, EndIdx: i*3 + 3,
		}
	}
	return out
}

// TestColdReopenAfterStoreRestart: an evicted-then-reopened handle and a
// process restart compose — the log keeps appending where it left off.
func TestColdReopenAfterStoreRestart(t *testing.T) {
	dir := t.TempDir()
	segs := syntheticSegs(60)
	s := openStore(t, Config{Dir: dir, MaxOpenFiles: 1, Sync: SyncNever})
	// Two devices under cap 1: every alternating append reopens cold.
	for i := 0; i < 6; i++ {
		if err := s.Append(fmt.Sprintf("d%d", i%2), segs[i*10:(i+1)*10]); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.HandleEvictions < 4 {
		t.Fatalf("alternating appends under cap 1 evicted only %d times: %+v", st.HandleEvictions, st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir, MaxOpenFiles: 1, Sync: SyncNever})
	for _, dev := range []string{"d0", "d1"} {
		got, err := s2.Replay(dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 30 {
			t.Fatalf("%s: %d segments after restart, want 30", dev, len(got))
		}
	}
}
