package segstore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"trajsim/internal/enc"
)

// The sparse time index is the read-path counterpart of the append-only
// log: entries map record-frame byte offsets to the time range of the
// segments inside (and the wall-clock moment they were appended, for
// record-range retention). With it, "segments of device X between T1
// and T2" and "where was X at time T" seek straight to the covering
// records instead of scanning the whole log. The index is sparse in
// bytes, not records: adjacent records coalesce into one entry until it
// spans indexGranularity bytes, so a device drip-feeding tiny batches
// costs ~1k entries per 64 MiB file, not one per batch. Every entry
// offset is still a record boundary, so a reader can start decoding
// there.
//
// Lifecycle: the newest file's index lives in memory (l.tail), built
// from the same recovery scan that validates the file at open and
// extended on every append. At rotation the sealed file's index is
// persisted as a sidecar — <seq>.idx next to <seq>.seg — so later range
// reads never rescan sealed data. Sidecars are advisory, never trusted:
// a missing, torn, corrupt, or stale one (its recorded data-file size
// disagreeing with the file on disk, e.g. after a pre-index store or a
// crash mid-rewrite) is silently rebuilt from the data file, which
// remains the single source of truth.
//
// Sidecar format (golden-pinned in index_golden_test.go):
//
//	"TSI1" | enc.AppendFrame(payload)
//	payload = uvarint(dataLen) | uvarint(count) |
//	          count × ( uvarint(Δoff) | varint(Δmin_t) |
//	                    varint(Δmax_t) | varint(Δwall_ms) )
//
// Offsets are strictly increasing; all four fields are delta-coded
// against the previous entry. dataLen is the valid byte length of the
// .seg file the index describes — the staleness check.

// indexEntry describes one record frame of a log file.
type indexEntry struct {
	off  int64 // byte offset of the frame in the file
	minT int64 // earliest segment start in the record (ms)
	maxT int64 // latest segment end in the record (ms)
	wall int64 // unix ms when the record was appended (file mtime when rebuilt)
}

// overlaps reports whether the entry's time range intersects [from, to].
func (e indexEntry) overlaps(from, to int64) bool {
	return e.maxT >= from && e.minT <= to
}

const (
	idxMagic  = "TSI1"
	idxSuffix = ".idx"
	// maxIndexPayload bounds one decoded sidecar payload, mirroring
	// maxRecordPayload: larger declared sizes are treated as corruption.
	maxIndexPayload = 4 << 20
	// defaultIndexGranularity is the byte span adjacent records coalesce
	// into per index entry: the unit a range read over-reads and record-
	// range retention truncates by. Tests shrink Store.idxGran to force
	// per-record entries.
	defaultIndexGranularity = 64 << 10
)

// errBadIndex marks an unusable sidecar. Never escapes the package: the
// caller's response is always a rebuild from the data file.
var errBadIndex = errors.New("segstore: bad index sidecar")

func idxName(seq int) string { return fmt.Sprintf("%08d%s", seq, idxSuffix) }

func (l *deviceLog) idxPath(seq int) string { return filepath.Join(l.dir, idxName(seq)) }

// appendIndexFile encodes a complete sidecar (magic + CRC-framed
// payload) for a data file of dataLen valid bytes, appending to dst.
func appendIndexFile(dst []byte, dataLen int64, entries []indexEntry) []byte {
	payload := enc.AppendUvarint(nil, uint64(dataLen))
	payload = enc.AppendUvarint(payload, uint64(len(entries)))
	var prev indexEntry
	for _, e := range entries {
		payload = enc.AppendUvarint(payload, uint64(e.off-prev.off))
		payload = enc.AppendVarint(payload, e.minT-prev.minT)
		payload = enc.AppendVarint(payload, e.maxT-prev.maxT)
		payload = enc.AppendVarint(payload, e.wall-prev.wall)
		prev = e
	}
	dst = append(dst, idxMagic...)
	return enc.AppendFrame(dst, payload)
}

// decodeIndexFile decodes a sidecar produced by appendIndexFile. Any
// defect — bad magic, torn frame, checksum mismatch, non-increasing
// offsets, inverted time ranges, trailing bytes — returns errBadIndex:
// the sidecar is advisory, so every failure means "rebuild", never
// "corrupt store".
func decodeIndexFile(b []byte) (dataLen int64, entries []indexEntry, err error) {
	if len(b) < len(idxMagic) || string(b[:len(idxMagic)]) != idxMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", errBadIndex)
	}
	payload, n, err := enc.Frame(b[len(idxMagic):], maxIndexPayload)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", errBadIndex, err)
	}
	if len(idxMagic)+n != len(b) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", errBadIndex, len(b)-len(idxMagic)-n)
	}
	size, n, err := enc.Uvarint(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: data length: %v", errBadIndex, err)
	}
	payload = payload[n:]
	count, n, err := enc.Uvarint(payload)
	if err != nil {
		return 0, nil, fmt.Errorf("%w: entry count: %v", errBadIndex, err)
	}
	payload = payload[n:]
	// Four varints per entry, one byte each at minimum — a larger count is
	// malformed, and checking first bounds the allocation below.
	if count > uint64(len(payload))/4+1 {
		return 0, nil, fmt.Errorf("%w: %d entries in %d bytes", errBadIndex, count, len(payload))
	}
	entries = make([]indexEntry, 0, count)
	var prev indexEntry
	for i := uint64(0); i < count; i++ {
		var vals [4]int64
		for j := range vals {
			var v int64
			var vn int
			if j == 0 {
				u, un, uerr := enc.Uvarint(payload)
				v, vn, err = int64(u), un, uerr
			} else {
				v, vn, err = enc.Varint(payload)
			}
			if err != nil {
				return 0, nil, fmt.Errorf("%w: entry %d: %v", errBadIndex, i, err)
			}
			vals[j] = v
			payload = payload[vn:]
		}
		e := indexEntry{
			off:  prev.off + vals[0],
			minT: prev.minT + vals[1],
			maxT: prev.maxT + vals[2],
			wall: prev.wall + vals[3],
		}
		if e.off <= prev.off && i > 0 || e.off < int64(len(fileMagic)) ||
			e.off >= int64(size) || e.minT > e.maxT {
			return 0, nil, fmt.Errorf("%w: entry %d out of order", errBadIndex, i)
		}
		entries = append(entries, e)
		prev = e
	}
	if len(payload) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing payload bytes", errBadIndex, len(payload))
	}
	return int64(size), entries, nil
}

// addTail extends the newest file's in-memory index with the record
// just appended at off, coalescing into the previous entry while it
// spans under gran bytes. Caller holds l.mu.
//
//trajlint:holds l.mu
func (l *deviceLog) addTail(off, minT, maxT, wall, gran int64) {
	if n := len(l.tail); n > 0 && off-l.tail[n-1].off < gran {
		e := &l.tail[n-1]
		e.minT = min(e.minT, minT)
		e.maxT = max(e.maxT, maxT)
		e.wall = max(e.wall, wall)
		return
	}
	l.tail = append(l.tail, indexEntry{off: off, minT: minT, maxT: maxT, wall: wall})
}

// coalesceEntries merges the per-record entries of a rebuild scan into
// gran-byte spans, in place — the same grouping addTail applies on the
// append path. Entry wall stamps take the newest of the merged records,
// so retention never drops a span before its youngest record expires.
func coalesceEntries(entries []indexEntry, gran int64) []indexEntry {
	out := entries[:0]
	for _, e := range entries {
		if n := len(out); n > 0 && e.off-out[n-1].off < gran {
			p := &out[n-1]
			p.minT = min(p.minT, e.minT)
			p.maxT = max(p.maxT, e.maxT)
			p.wall = max(p.wall, e.wall)
			continue
		}
		out = append(out, e)
	}
	return out
}

// entriesSorted reports whether entries are non-decreasing in both time
// bounds — the normal shape, since encoders emit strictly increasing
// timestamps. Readers binary-search sorted indexes and fall back to a
// linear filter otherwise (possible when a device re-ingests older
// timestamps across encoder sessions).
func entriesSorted(entries []indexEntry) bool {
	for i := 1; i < len(entries); i++ {
		if entries[i].minT < entries[i-1].minT || entries[i].maxT < entries[i-1].maxT {
			return false
		}
	}
	return true
}

// writeIndex persists the sidecar for file seq. Best-effort by contract:
// the caller ignores failures (a missing sidecar is rebuilt on the next
// read), so this must never fail an append. Needs no lock: concurrent
// rebuilds of the same sealed file encode identical bytes, and a sidecar
// torn by an interleaved rewrite fails its CRC on the next read and is
// rebuilt — advisory either way.
func (l *deviceLog) writeIndex(s *Store, seq int, dataLen int64, entries []indexEntry) error {
	b := appendIndexFile(nil, dataLen, entries)
	if err := s.fs.WriteFile(l.idxPath(seq), b, 0o644); err != nil {
		return err
	}
	s.indexWrites.Add(1)
	return nil
}

// fileIndex is one file's loaded index plus the data length it covers.
type fileIndex struct {
	entries []indexEntry
	dataLen int64
}

// loadIndex returns file seq's index: the in-memory tail for the newest
// file, the per-log cache or the sidecar for sealed ones, rebuilding
// from the data file when the sidecar is missing, unreadable, or stale.
// A rebuild that finds invalid bytes inside a sealed file reports
// ErrCorrupt, exactly like Replay would. Caller holds l.mu with
// l.opened.
//
//trajlint:holds l.mu
func (s *Store) loadIndex(l *deviceLog, seq int) (fileIndex, error) {
	if n := len(l.seqs); n > 0 && seq == l.seqs[n-1] {
		return fileIndex{entries: l.tail, dataLen: l.size}, nil
	}
	if fi, ok := l.idxCache[seq]; ok {
		return fi, nil
	}
	fi, err := s.readSealedIndex(l, seq)
	if err != nil {
		return fileIndex{}, err
	}
	l.cacheIndex(seq, fi)
	return fi, nil
}

// loadSealedIndex is loadIndex for snapshot readers, which hold no log
// lock: the per-log cache is consulted and repopulated under brief
// locks, and the disk work in between runs lock-free — safe because a
// sealed file (read-pinned by the caller's snapshot) is immutable.
func (s *Store) loadSealedIndex(l *deviceLog, seq int) (fileIndex, error) {
	l.mu.Lock()
	fi, ok := l.idxCache[seq]
	l.mu.Unlock()
	if ok {
		return fi, nil
	}
	fi, err := s.readSealedIndex(l, seq)
	if err != nil {
		return fileIndex{}, err
	}
	l.mu.Lock()
	if !l.evicted {
		l.cacheIndex(seq, fi)
	}
	l.mu.Unlock()
	return fi, nil
}

// readSealedIndex resolves sealed file seq's index from disk: the
// sidecar when present and fresh, else a rebuild from the data file
// (repairing the sidecar on the way out). Touches only immutable files,
// so it needs no lock; two racing readers do redundant, identical work.
func (s *Store) readSealedIndex(l *deviceLog, seq int) (fileIndex, error) {
	st, err := s.fs.Stat(l.path(seq))
	if err != nil {
		return fileIndex{}, fmt.Errorf("segstore: %w", err)
	}
	if b, err := s.fs.ReadFile(l.idxPath(seq)); err == nil {
		if dataLen, entries, derr := decodeIndexFile(b); derr == nil && dataLen == st.Size() {
			return fileIndex{entries: entries, dataLen: dataLen}, nil
		}
	}
	// Missing, corrupt, or stale sidecar: the data file is the source of
	// truth. Rescan it, repair the sidecar, and carry on.
	b, err := s.fs.ReadFile(l.path(seq))
	if err != nil {
		return fileIndex{}, fmt.Errorf("segstore: %w", err)
	}
	_, entries, validLen, err := scanLog(nil, nil, b, st.ModTime().UnixMilli())
	if err != nil {
		return fileIndex{}, fmt.Errorf("%w (%s)", err, l.path(seq))
	}
	if validLen < int64(len(b)) {
		// Only the newest file may legitimately end torn, and this is not
		// the newest file.
		return fileIndex{}, fmt.Errorf("%w: torn record mid-log (%s)", ErrCorrupt, l.path(seq))
	}
	entries = coalesceEntries(entries, s.idxGran)
	s.indexRebuilds.Add(1)
	_ = l.writeIndex(s, seq, validLen, entries) // best effort; rebuilt again next time
	return fileIndex{entries: entries, dataLen: validLen}, nil
}

//
//trajlint:holds l.mu
func (l *deviceLog) cacheIndex(seq int, fi fileIndex) {
	if l.idxCache == nil {
		l.idxCache = make(map[int]fileIndex)
	}
	l.idxCache[seq] = fi
}

// dropIndex forgets (and unlinks the sidecar of) file seq — called when
// retention deletes or rewrites the file. The sidecar is removed before
// the caller touches the data file, so a crash between the two leaves a
// rebuildable data file, never a stale sidecar that outlives its data.
//
//trajlint:holds l.mu
func (l *deviceLog) dropIndex(s *Store, seq int) {
	delete(l.idxCache, seq)
	if err := s.fs.Remove(l.idxPath(seq)); err != nil && !errors.Is(err, os.ErrNotExist) {
		// Best effort: a leftover sidecar is detected as stale on next read.
		_ = err
	}
}

// nowMs is the wall clock stamped onto appended index entries,
// overridable for deterministic tests.
func (s *Store) nowMs() int64 { return s.now().UnixMilli() }

//trajlint:ignore walltime this IS the clock seam: the one default Store.now falls back to when Config.Now is unset
var defaultNow = time.Now
