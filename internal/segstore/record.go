package segstore

import (
	"errors"
	"fmt"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// On-disk record payload: one batch of finalized segments for one
// device, varint delta-coded with the same 1 cm / 1 ms quantization as
// the wire formats in internal/trajio. Each payload is self-contained
// (delta state resets per record), so any prefix of a log replays
// without the records that follow it — the property torn-tail recovery
// relies on. Payloads are wrapped in enc.AppendFrame CRC framing by the
// log writer.

// ErrCorrupt is returned when a log file fails validation somewhere a
// torn tail cannot explain (bad magic, or a broken record that is not
// the last).
var ErrCorrupt = errors.New("segstore: corrupt log")

const (
	// quantXY is the coordinate quantum in meters (1 cm), matching
	// trajio's wire encodings so a replayed segment equals its
	// transmitted form.
	quantXY = 0.01
	// flag bits, identical to the PWB1 piecewise encoding.
	flagVirtStart = 1
	flagVirtEnd   = 2
	// maxRecordPayload bounds one record on disk; appendRecords chunks
	// larger batches. A scan hitting a bigger declared size treats it as
	// a torn length prefix.
	maxRecordPayload = 4 << 20
	// recordChunk is the most segments one record holds (~50 encoded
	// bytes each, far under maxRecordPayload).
	recordChunk = 16384
	// maxTornTail is the most invalid trailing bytes recovery will accept
	// as a torn write: one maximal record frame (payload + length prefix
	// + CRC). A longer invalid region cannot come from a single
	// interrupted append and is reported as corruption instead.
	maxTornTail = maxRecordPayload + 16
)

// appendRecordPayload encodes one batch of segments, appending to dst.
func appendRecordPayload(dst []byte, segs []traj.Segment) []byte {
	dst = enc.AppendUvarint(dst, uint64(len(segs)))
	pd := enc.PointDelta{Quant: quantXY}
	var pidx int64
	for _, s := range segs {
		// Start is usually the previous segment's End (continuous
		// piecewise), making its delta three zero bytes.
		dst = pd.Append(dst, s.Start.X, s.Start.Y, s.Start.T)
		dst = pd.Append(dst, s.End.X, s.End.Y, s.End.T)
		dst = enc.AppendVarint(dst, int64(s.StartIdx)-pidx)
		dst = enc.AppendUvarint(dst, uint64(s.EndIdx-s.StartIdx))
		pidx = int64(s.StartIdx)
		var flags uint64
		if s.VirtualStart {
			flags |= flagVirtStart
		}
		if s.VirtualEnd {
			flags |= flagVirtEnd
		}
		dst = enc.AppendUvarint(dst, flags)
	}
	return dst
}

// decodeRecordPayload decodes one record payload, appending the segments
// to dst.
func decodeRecordPayload(dst []traj.Segment, payload []byte) ([]traj.Segment, error) {
	count, n, err := enc.Uvarint(payload)
	if err != nil {
		return dst, fmt.Errorf("%w: record count: %v", ErrCorrupt, err)
	}
	payload = payload[n:]
	// Nine varints per segment, one byte each at minimum — a count beyond
	// that is malformed, and checking first bounds the allocation below.
	if count > uint64(len(payload))/9+1 {
		return dst, fmt.Errorf("%w: %d segments in %d bytes", ErrCorrupt, count, len(payload))
	}
	if dst == nil {
		dst = make([]traj.Segment, 0, min(count, recordChunk))
	}
	pd := enc.PointDelta{Quant: quantXY}
	var pidx int64
	get := func() (traj.Point, error) {
		x, y, tms, n, err := pd.Next(payload)
		if err != nil {
			return traj.Point{}, err
		}
		payload = payload[n:]
		return traj.Point{X: x, Y: y, T: tms}, nil
	}
	for i := uint64(0); i < count; i++ {
		var s traj.Segment
		var err error
		if s.Start, err = get(); err != nil {
			return dst, fmt.Errorf("%w: segment %d start: %v", ErrCorrupt, i, err)
		}
		if s.End, err = get(); err != nil {
			return dst, fmt.Errorf("%w: segment %d end: %v", ErrCorrupt, i, err)
		}
		dIdx, n, err := enc.Varint(payload)
		if err != nil {
			return dst, fmt.Errorf("%w: segment %d index: %v", ErrCorrupt, i, err)
		}
		payload = payload[n:]
		span, n, err := enc.Uvarint(payload)
		if err != nil {
			return dst, fmt.Errorf("%w: segment %d span: %v", ErrCorrupt, i, err)
		}
		payload = payload[n:]
		s.StartIdx = int(pidx + dIdx)
		s.EndIdx = s.StartIdx + int(span)
		pidx = int64(s.StartIdx)
		flags, n, err := enc.Uvarint(payload)
		if err != nil {
			return dst, fmt.Errorf("%w: segment %d flags: %v", ErrCorrupt, i, err)
		}
		payload = payload[n:]
		s.VirtualStart = flags&flagVirtStart != 0
		s.VirtualEnd = flags&flagVirtEnd != 0
		dst = append(dst, s)
	}
	if len(payload) != 0 {
		return dst, fmt.Errorf("%w: %d trailing bytes in record", ErrCorrupt, len(payload))
	}
	return dst, nil
}
