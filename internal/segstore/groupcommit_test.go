package segstore

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"trajsim/internal/gen"
)

// Tests for the deferred-sync half of the group-commit protocol:
// AppendNoSync writes the same bytes as Append but withholds the
// SyncAlways fsync until CommitDevices settles it — the property the
// stream package's sweep-level group commit is built on.

// TestAppendNoSyncDefersFsync: under SyncAlways a deferred append costs
// no fsync; the commit pays exactly one and a second commit of a clean
// log is a no-op.
func TestAppendNoSyncDefersFsync(t *testing.T) {
	s := openStore(t, Config{Sync: SyncAlways})
	segs := simplified(t, gen.Taxi, 300, 101)
	if err := s.AppendNoSync("dev", segs); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 0 || st.GroupSyncs != 0 {
		t.Fatalf("deferred append synced: %+v", st)
	}
	// The bytes are written (just not durable): replay sees them already.
	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quantizeAll(segs)) {
		t.Fatal("replay of uncommitted deferred append mismatch")
	}
	if err := s.CommitDevices([]string{"dev"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 1 || st.GroupSyncs != 1 {
		t.Fatalf("commit of one dirty log: %+v, want exactly one (group) sync", st)
	}
	// Clean log: committing again syncs nothing.
	if err := s.CommitDevices([]string{"dev"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 1 || st.GroupSyncs != 1 {
		t.Fatalf("commit of a clean log synced again: %+v", st)
	}
}

// TestGroupCommitFoldsSyncs is the cost model: K devices × M deferred
// appends, one CommitDevices over the sweep → exactly K fsyncs, not K×M.
func TestGroupCommitFoldsSyncs(t *testing.T) {
	const devices, appends = 4, 8
	s := openStore(t, Config{Sync: SyncAlways})
	segs := syntheticSegs(devices * appends * 4)
	devs := make([]string, devices)
	for d := range devs {
		devs[d] = fmt.Sprintf("dev-%d", d)
		for i := 0; i < appends; i++ {
			chunk := segs[i*4 : i*4+4]
			if err := s.AppendNoSync(devs[d], chunk); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := s.Stats(); st.Syncs != 0 {
		t.Fatalf("%d syncs before the commit: %+v", st.Syncs, st)
	}
	// One pin per deferred append: release them all in one sweep's worth
	// of commits, the way the sink worker does.
	commit := make([]string, 0, devices*appends)
	for i := 0; i < appends; i++ {
		commit = append(commit, devs...)
	}
	if err := s.CommitDevices(commit); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Syncs != devices || st.GroupSyncs != devices {
		t.Fatalf("committing %d×%d deferred appends cost %d syncs, want %d: %+v",
			devices, appends, st.Syncs, devices, st)
	}
	if st.Appends != devices*appends {
		t.Fatalf("appends: %+v", st)
	}
}

// TestPlainAppendSettlesDeferred: a SyncAlways Append after deferred
// writes covers them — its fsync makes the earlier bytes durable too, so
// the trailing commit finds a clean log.
func TestPlainAppendSettlesDeferred(t *testing.T) {
	s := openStore(t, Config{Sync: SyncAlways})
	segs := syntheticSegs(10)
	if err := s.AppendNoSync("dev", segs[:5]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("dev", segs[5:10]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 1 || st.GroupSyncs != 0 {
		t.Fatalf("after interleaved plain append: %+v", st)
	}
	if err := s.CommitDevices([]string{"dev"}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Syncs != 1 {
		t.Fatalf("commit re-synced a log the plain append settled: %+v", st)
	}
}

// TestGroupCommitPinsHandles: a log with deferred unsynced bytes is
// exempt from the MaxOpenFiles LRU — evicting it would either lose the
// handle the pending fsync needs or force the sync early. Once
// committed, the exemption lapses.
func TestGroupCommitPinsHandles(t *testing.T) {
	s := openStore(t, Config{Sync: SyncAlways, MaxOpenFiles: 1})
	segs := syntheticSegs(12)
	// Two pinned logs under cap 1: the second open wants to evict the
	// first, which must refuse while pinned.
	if err := s.AppendNoSync("a", segs[:4]); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendNoSync("b", segs[4:8]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.HandleEvictions != 0 {
		t.Fatalf("pinned handle evicted: %+v", st)
	}
	if st.OpenHandles != 2 {
		t.Fatalf("%d open handles, want both pinned logs held open over cap: %+v", st.OpenHandles, st)
	}
	if err := s.CommitDevices([]string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	// Unpinned now: the next open brings the LRU back into force.
	if err := s.Append("c", segs[8:12]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.HandleEvictions == 0 {
		t.Fatalf("no eviction after the pins released under cap 1: %+v", st)
	}
}

// TestGroupCommitByteIdentity: per-batch Append and per-batch
// AppendNoSync + trailing CommitDevices must leave byte-identical logs —
// same records, same rotation points — so the sweep path inherits the
// recovery and replay guarantees of the synchronous one.
func TestGroupCommitByteIdentity(t *testing.T) {
	segs := syntheticSegs(600)
	dirSync, dirDefer := t.TempDir(), t.TempDir()
	// A small MaxFileSize forces rotations inside the deferred run too.
	mk := func(dir string) *Store {
		return openStore(t, Config{Dir: dir, Sync: SyncAlways, MaxFileSize: 2048})
	}
	sSync, sDefer := mk(dirSync), mk(dirDefer)
	const chunk = 7
	for off := 0; off < len(segs); off += chunk {
		c := segs[off:min(off+chunk, len(segs))]
		if err := sSync.Append("dev", c); err != nil {
			t.Fatal(err)
		}
		if err := sDefer.AppendNoSync("dev", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sDefer.CommitDevices([]string{"dev"}); err != nil {
		t.Fatal(err)
	}
	want, err := sSync.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	got, err := sDefer.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("deferred-path replay differs from synchronous path")
	}
	files, err := filepath.Glob(filepath.Join(dirDefer, "dev", "*"+fileSuffix))
	if err != nil || len(files) < 2 {
		t.Fatalf("glob: %v files, err %v — want rotation to have produced several", len(files), err)
	}
	for _, f := range files {
		got, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join(dirSync, "dev", filepath.Base(f)))
		if err != nil {
			t.Fatalf("deferred store has %s with no synchronous counterpart: %v", f, err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s differs between deferred and synchronous stores", filepath.Base(f))
		}
	}
	// The fold won: far fewer fsyncs than appends on the deferred side.
	st, dst := sSync.Stats(), sDefer.Stats()
	if dst.Appends != st.Appends {
		t.Fatalf("append counts diverge: %d vs %d", dst.Appends, st.Appends)
	}
	if dst.Syncs >= st.Syncs {
		t.Fatalf("deferred path cost %d syncs, synchronous %d — group commit saved nothing", dst.Syncs, st.Syncs)
	}
}

// TestGroupCommitOtherPolicies: under SyncInterval/SyncNever the pair
// degenerates to Append — no fsync is owed, so the commit only releases
// the pin and GroupSyncs stays zero.
func TestGroupCommitOtherPolicies(t *testing.T) {
	segs := syntheticSegs(6)
	for _, cfg := range []Config{
		{Sync: SyncNever},
		{Sync: SyncInterval, SyncEvery: time.Hour},
	} {
		s := openStore(t, cfg)
		if err := s.AppendNoSync("dev", segs[:6]); err != nil {
			t.Fatal(err)
		}
		if err := s.CommitDevices([]string{"dev"}); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Syncs != 0 || st.GroupSyncs != 0 {
			t.Fatalf("policy %v: commit synced: %+v", cfg.Sync, st)
		}
		got, err := s.Replay("dev")
		if err != nil || len(got) != 6 {
			t.Fatalf("policy %v: replay %d segments, err %v", cfg.Sync, len(got), err)
		}
	}
}

// TestCommitUnknownDeviceNoop: committing a device with no resident log
// must not error and — crucially — must not fabricate log metadata for
// it.
func TestCommitUnknownDeviceNoop(t *testing.T) {
	s := openStore(t, Config{Sync: SyncAlways})
	if err := s.CommitDevices([]string{"ghost", "phantom"}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	_, ok := s.logs["ghost"]
	n := len(s.logs)
	s.mu.Unlock()
	if ok || n != 0 {
		t.Fatalf("commit of unknown devices created metadata (%d resident logs)", n)
	}
	if st := s.Stats(); st.Syncs != 0 || st.GroupSyncs != 0 {
		t.Fatalf("commit of unknown devices synced: %+v", st)
	}
}

// TestDeferredSurvivesReopen: deferred bytes are ordinary log bytes — a
// clean close and reopen replays them even if no commit ever ran (Close
// owns the final fsync, as it does for SyncNever writes).
func TestDeferredSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	segs := simplified(t, gen.Truck, 300, 107)
	s := openStore(t, Config{Dir: dir, Sync: SyncAlways})
	if err := s.AppendNoSync("dev", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir, Sync: SyncAlways})
	got, err := s2.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quantizeAll(segs)) {
		t.Fatal("uncommitted deferred append lost across clean close/reopen")
	}
}
