package segstore_test

// External test package: stream imports segstore (to surface sink stats
// through Engine.Stats), so the cross-package checks live out here where
// importing both is not a cycle.

import (
	"errors"
	"strings"
	"testing"

	"trajsim/internal/segstore"
	"trajsim/internal/stream"
	"trajsim/internal/traj"
)

// A Store is the canonical stream.Sink implementation.
var _ stream.Sink = (*segstore.Store)(nil)

// The engine's device-ID cap and the store's must agree, or a device
// could ingest but never persist. The store's cap is unexported, so
// probe it behaviorally: an ID of exactly stream.MaxDevice bytes must
// append, one byte more must be rejected.
func TestDeviceCapMatchesEngine(t *testing.T) {
	s, err := segstore.Open(segstore.Config{Dir: t.TempDir(), Sync: segstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	segs := []traj.Segment{{Start: traj.At(0, 0, 0), End: traj.At(1, 1, 1000), EndIdx: 1}}
	atCap := strings.Repeat("x", stream.MaxDevice)
	if err := s.Append(atCap, segs); err != nil {
		t.Fatalf("append %d-byte id (= stream.MaxDevice): %v", len(atCap), err)
	}
	if err := s.Append(atCap+"x", segs); !errors.Is(err, segstore.ErrDeviceID) {
		t.Fatalf("append %d-byte id: %v, want ErrDeviceID", stream.MaxDevice+1, err)
	}
}
