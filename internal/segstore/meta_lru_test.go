package segstore

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Tests for the metadata LRU (Config.MaxResidentLogs): the logs map must
// stop growing with every device ever seen, eviction must be invisible
// to correctness (re-recovery on next touch), and poisoned logs must
// never be evicted into amnesia.

// TestMetaLRUEviction: far more devices than the cap, serial appends —
// the resident count holds at the cap, evictions are counted, and every
// device still replays in full (indexed and scanned alike).
func TestMetaLRUEviction(t *testing.T) {
	const (
		devices = 32
		cap     = 4
	)
	s := openStore(t, Config{MaxResidentLogs: cap, MaxOpenFiles: 2, Sync: SyncAlways})
	segs := syntheticSegs(40)
	dev := func(d int) string { return fmt.Sprintf("m-%02d", d) }
	for round := 0; round < 4; round++ {
		for d := 0; d < devices; d++ {
			if err := s.Append(dev(d), segs[round*10:(round+1)*10]); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := s.Stats()
	if st.ResidentLogs > cap {
		t.Errorf("%d resident logs at rest, cap %d", st.ResidentLogs, cap)
	}
	if st.MetaEvictions == 0 {
		t.Error("no metadata evictions under a cap 8x smaller than the device count")
	}
	// Every device re-recovers transparently: full replay, and an indexed
	// range read that must rebuild its view of the world from disk.
	for d := 0; d < devices; d++ {
		got, err := s.Replay(dev(d))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 40 {
			t.Fatalf("%s: %d segments after eviction churn, want 40", dev(d), len(got))
		}
		ranged, err := s.ReplayRange(dev(d), math.MinInt64, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ranged) {
			t.Fatalf("%s: indexed read disagrees with replay after eviction", dev(d))
		}
	}
}

// TestMetaLRUAppendAfterEviction: an evicted log's next append lands
// exactly where the old instance left off — recovery, not restart.
func TestMetaLRUAppendAfterEviction(t *testing.T) {
	s := openStore(t, Config{MaxResidentLogs: 2, MaxOpenFiles: 1, Sync: SyncAlways})
	segs := syntheticSegs(30)
	if err := s.Append("victim", segs[:10]); err != nil {
		t.Fatal(err)
	}
	// Push "victim" out of residence.
	for d := 0; d < 8; d++ {
		if err := s.Append(fmt.Sprintf("crowd-%d", d), segs[:1]); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	_, resident := s.logs["victim"]
	s.mu.Unlock()
	if resident {
		t.Fatal("victim still resident — the test exercised nothing")
	}
	if err := s.Append("victim", segs[10:]); err != nil {
		t.Fatal(err)
	}
	got, err := s.Replay("victim")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 30 {
		t.Fatalf("replay after evicted append: %d segments, want 30", len(got))
	}
}

// TestMetaLRUKeepsPoisonedLogs: a log with a sticky write failure must
// stay resident — evicting it would forget the failure and let a fresh
// instance accept appends into a log whose tail never made it to disk.
func TestMetaLRUKeepsPoisonedLogs(t *testing.T) {
	s := openStore(t, Config{MaxResidentLogs: 2, MaxOpenFiles: 1, Sync: SyncAlways})
	segs := syntheticSegs(10)
	if err := s.Append("poisoned", segs[:5]); err != nil {
		t.Fatal(err)
	}
	sticky := errors.New("injected write failure")
	s.mu.Lock()
	l := s.logs["poisoned"]
	s.mu.Unlock()
	l.mu.Lock()
	l.failed = sticky
	l.quarNext = s.now().Add(time.Hour) // still in quarantine backoff
	l.mu.Unlock()

	for d := 0; d < 8; d++ {
		if err := s.Append(fmt.Sprintf("crowd-%d", d), segs[:1]); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	kept := s.logs["poisoned"]
	s.mu.Unlock()
	if kept != l {
		t.Fatal("poisoned log was evicted (or replaced) despite its sticky failure")
	}
	if err := s.Append("poisoned", segs[5:]); !errors.Is(err, sticky) {
		t.Fatalf("append to poisoned log: %v, want the sticky failure", err)
	}
}

// TestMetaLRUConcurrentChurn: the lockLog retry loop under real
// contention — concurrent appenders and readers across many devices with
// a tiny cap; -race and the final replay check catch dual-instance
// writers.
func TestMetaLRUConcurrentChurn(t *testing.T) {
	const (
		devices = 16
		workers = 8
	)
	s := openStore(t, Config{MaxResidentLogs: 3, MaxOpenFiles: 2, Sync: SyncAlways})
	segs := syntheticSegs(workers)
	dev := func(d int) string { return fmt.Sprintf("churn-%02d", d) }
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for d := 0; d < devices; d++ {
				if err := s.Append(dev((d+w)%devices), segs[w:w+1]); err != nil {
					t.Errorf("append: %v", err)
					return
				}
				if _, err := s.SegmentAt(dev(d), segs[0].Start.T); err != nil && !errors.Is(err, ErrNoPosition) {
					t.Errorf("SegmentAt: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	total := 0
	for d := 0; d < devices; d++ {
		got, err := s.Replay(dev(d))
		if err != nil {
			t.Fatal(err)
		}
		total += len(got)
	}
	if total != devices*workers {
		t.Fatalf("replayed %d segments across devices, appended %d", total, devices*workers)
	}
}
