package segstore

import (
	"container/list"
	"fmt"
	"os"
	"sync"
)

// The handle LRU bounds how many device logs hold an open append handle
// at once, so a store over millions of devices costs Config.MaxOpenFiles
// file descriptors, not one per device ever touched. Device-log metadata
// (file list, append offset) stays resident; only the *os.File comes and
// goes. A cold append transparently reopens the newest log file and
// seeks to the tracked offset — no recovery rescan, since the offset was
// validated when the log was first opened.
//
// Locking: the list and every deviceLog.elem are guarded by handleLRU.mu,
// which nests strictly inside any deviceLog.mu (appenders hold their own
// log's mu when they touch the LRU). Eviction runs in the opposite
// direction — it needs the victim's mu to close its file — so it uses
// TryLock: a victim that is mid-operation is by definition warm, and
// skipping it cannot deadlock. The cap is therefore a strong target, not
// an invariant: it can be exceeded transiently while every open log is
// simultaneously busy, and converges back on the next registration.
type handleLRU struct {
	cap int
	mu  sync.Mutex
	ll  list.List //trajlint:guardedby mu -- *deviceLog values, most recently used at the front
}

// open reports the current number of open handles.
func (h *handleLRU) open() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ll.Len()
}

// touchHandle marks l, which already holds an open file, most recently
// used. Caller holds l.mu.
func (s *Store) touchHandle(l *deviceLog) {
	s.handles.mu.Lock()
	if l.elem != nil {
		s.handles.ll.MoveToFront(l.elem)
	}
	s.handles.mu.Unlock()
	s.handleHits.Add(1)
}

// registerHandle records that l now holds an open file, evicting the
// coldest other logs while the cap is exceeded. Caller holds l.mu with
// l.f != nil. Re-registration after rotation (l.elem already set) only
// refreshes recency.
func (s *Store) registerHandle(l *deviceLog) {
	h := &s.handles
	h.mu.Lock()
	if l.elem != nil {
		h.ll.MoveToFront(l.elem)
		h.mu.Unlock()
		return
	}
	s.handleMisses.Add(1)
	l.elem = h.ll.PushFront(l)
	// Detach victims under their (try-)locked mu, but do the closes — real
	// I/O, possibly an fsync — after dropping every lock.
	type cold struct {
		log   *deviceLog
		f     file
		dirty bool
	}
	var evict []cold
	for e := h.ll.Back(); e != nil && h.ll.Len() > h.cap; {
		prev := e.Prev()
		v := e.Value.(*deviceLog)
		if v != l && v.mu.TryLock() {
			// A pinned log is mid-group-commit: the pending CommitDevices
			// fsync must land on this handle, so it is exempt until the
			// sweep's commit releases the pin (always within one sweep).
			if v.pins > 0 {
				v.mu.Unlock()
				e = prev
				continue
			}
			if v.f != nil {
				evict = append(evict, cold{v, v.f, v.dirty})
				v.f, v.dirty = nil, false
			}
			h.ll.Remove(e)
			v.elem = nil
			v.mu.Unlock()
		}
		e = prev
	}
	h.mu.Unlock()
	for _, c := range evict {
		// An evicted dirty log keeps the SyncInterval durability promise by
		// syncing on the way out — the background flusher only sees open
		// handles, so this is its last chance.
		var err error
		if c.dirty && s.cfg.Sync != SyncNever {
			if err = c.f.Sync(); err == nil {
				s.syncs.Add(1)
			}
		}
		if cerr := c.f.Close(); err == nil {
			err = cerr
		}
		s.handleEvictions.Add(1)
		if err != nil {
			// The eviction has no caller to hand this to, and a failed fsync
			// must not be retried as if nothing happened (the kernel may have
			// dropped the dirty pages): quarantine the log so the next Append
			// surfaces the durability loss instead of silently extending an
			// unflushed file. Blocking on c.log.mu here is safe: lock holders
			// only ever block on handleLRU.mu (never held across this call)
			// or on a log they themselves detached, which the holder of
			// c.log.mu cannot have done while we held it at detach time.
			c.log.mu.Lock()
			if c.log.failed == nil {
				_ = s.poisonLocked(c.log, fmt.Errorf("segstore: flush of evicted log: %w", err))
			}
			c.log.mu.Unlock()
		}
	}
}

// dropHandle closes l's open file (without syncing — callers decide) and
// removes it from the LRU. Caller holds l.mu.
//
//trajlint:holds l.mu
func (s *Store) dropHandle(l *deviceLog) error {
	var err error
	if l.f != nil {
		err = l.f.Close()
		l.f = nil
	}
	s.handles.mu.Lock()
	if l.elem != nil {
		s.handles.ll.Remove(l.elem)
		l.elem = nil
	}
	s.handles.mu.Unlock()
	return err
}

// handle ensures l.f is open for appending, reopening the newest file at
// the tracked offset if the LRU evicted it earlier. Caller holds l.mu
// with l.opened; a log with no files yet stays handle-less (the first
// write creates file 1 and registers it).
//
//trajlint:holds l.mu
func (l *deviceLog) handle(s *Store) error {
	if l.f != nil {
		s.touchHandle(l)
		return nil
	}
	if len(l.seqs) == 0 {
		return nil
	}
	f, err := s.fs.OpenFile(l.path(l.seqs[len(l.seqs)-1]), os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("segstore: reopen: %w", err)
	}
	if _, err := f.Seek(l.size, 0); err != nil {
		f.Close()
		return fmt.Errorf("segstore: %w", err)
	}
	l.f = f
	s.registerHandle(l)
	return nil
}
