package segstore

import (
	"fmt"
	"time"
)

// Quarantine: the store's answer to a storage-tier write or fsync
// failure. The failing log is poisoned — appends are rejected with the
// sticky error, and the file handle is discarded, because a failed fsync
// must never be retried on the same descriptor: the kernel may have
// marked the dirty pages clean without writing them, so a retried fsync
// would report success for data that never reached disk (the fsyncgate
// failure mode). Unlike the old forever-sticky poison, a quarantined log
// is given capped exponential-backoff recovery attempts: once the
// backoff deadline passes, the next append discards the in-memory
// metadata and re-runs torn-tail recovery from the bytes actually on
// disk, resuming appends if the storage has healed (ENOSPC cleared, a
// remount finished) and doubling the backoff if it has not.

// poisonLocked quarantines l with err as its sticky failure and returns
// err. The open handle, dirty flag, and LRU membership are dropped —
// whatever the page cache held is no longer trusted; recovery re-reads
// the file. Caller holds l.mu.
//
//trajlint:holds l.mu
func (s *Store) poisonLocked(l *deviceLog, err error) error {
	if l.failed == nil {
		s.poisonedLogs.Add(1)
	}
	l.failed = err
	l.quarTries = 1
	l.quarNext = s.now().Add(s.quarBase)
	l.dirty = false
	_ = s.dropHandle(l)
	return err
}

// quarBackoff is the delay before reopen attempt number tries+1:
// quarBase doubled per failed attempt, capped at quarMax.
func (s *Store) quarBackoff(tries int) time.Duration {
	d := s.quarBase
	for i := 1; i < tries && d < s.quarMax; i++ {
		d *= 2
	}
	return min(d, s.quarMax)
}

// tryUnquarantine gates the append path of a possibly-poisoned log.
// Before the backoff deadline the sticky failure is returned unchanged.
// After it, the log attempts recovery: metadata (file list, append
// offset, tail index) is discarded and open() re-runs torn-tail recovery
// against the directory — the poison already dropped the file handle, so
// recovery sees exactly the bytes the disk accepted, and anything a
// failed write or dropped fsync left unreadable is truncated away like
// any other torn tail. On success the quarantine lifts and the append
// proceeds; on failure the backoff doubles (capped at quarMax).
//
// Recovery is skipped while read snapshots or group-commit pins are live
// on this instance: their pins anchor files and offsets that the reset
// would invalidate. They drain quickly (pins within one sweep, read pins
// for the life of one query), so the append after that retries.
// Caller holds l.mu.
//
//trajlint:holds l.mu
func (s *Store) tryUnquarantine(l *deviceLog) error {
	if l.failed == nil {
		return nil
	}
	if s.now().Before(l.quarNext) || l.pins > 0 || len(l.readPins) > 0 {
		return l.failed
	}
	// The newest file's cached granules may describe bytes recovery is
	// about to truncate, and its offsets may be reused by post-recovery
	// appends; sealed files are immutable and keep their granules.
	if s.cache != nil && len(l.seqs) > 0 {
		s.cache.invalidateFile(l.device, l.seqs[len(l.seqs)-1])
	}
	l.opened = false
	l.seqs = nil
	l.size = 0
	l.tail = nil
	l.idxCache = nil
	if err := l.open(s); err != nil {
		l.quarTries++
		l.quarNext = s.now().Add(s.quarBackoff(l.quarTries))
		l.failed = fmt.Errorf("segstore: quarantined log %s: reopen failed: %w", l.device, err)
		return l.failed
	}
	l.failed = nil
	l.quarTries = 0
	l.quarNext = time.Time{}
	s.poisonedLogs.Add(-1)
	s.quarReopens.Add(1)
	return nil
}
