package segstore

import (
	"fmt"
	"os"
	"time"
)

// Retention bounds each device's log on disk (Config.MaxLogBytes,
// Config.MaxLogAge) by deleting whole rotated files oldest-first —
// records are never split, so whatever survives replays as an intact,
// contiguous suffix of the append history. The newest file is never
// deleted: it is the live append target, so under a pure byte budget a
// log can always answer "where was this device last".
//
// MaxLogAge additionally works at record-range granularity: when the
// oldest surviving file's time index shows an expired prefix worth at
// least truncateFraction of its payload, the file is rewritten without
// that prefix (temp file + rename, crash-safe). A slow device whose
// single file spans months finally ages out instead of waiting for a
// rotation that never comes.
//
// Enforcement points: after every rotation (the moment a log grows past
// a file boundary), at a log's first open in a process, on every
// maintenance tick for logs this process has touched, and on demand for
// every device on disk via CompactNow.

// truncateFraction is the denominator of the prefix-truncation
// threshold: a file is rewritten only when at least 1/truncateFraction
// of its payload bytes have expired, so a long-lived log is rewritten
// O(log) times over its life, not once per maintenance tick.
const truncateFraction = 4

// retentionOn reports whether any retention limit is configured.
func (s *Store) retentionOn() bool {
	return s.cfg.MaxLogBytes > 0 || s.cfg.MaxLogAge > 0
}

// compactLocked enforces retention on one device log. Caller holds l.mu.
// It works on unopened logs too, listing the directory directly, so a
// full sweep does not pay recovery cost for cold devices (record-range
// truncation, which needs the index, only runs once a log is opened).
//
//trajlint:holds l.mu
func (s *Store) compactLocked(l *deviceLog) error {
	if !s.retentionOn() {
		return nil
	}
	seqs := l.seqs
	if !l.opened {
		var err error
		if seqs, _, err = s.listSeqs(l.dir); err != nil {
			return err
		}
	}
	if len(seqs) == 0 {
		return nil
	}
	sizes := make([]int64, len(seqs))
	mtimes := make([]time.Time, len(seqs))
	var total int64
	for i, seq := range seqs {
		fi, err := s.fs.Stat(l.path(seq))
		if err != nil {
			return fmt.Errorf("segstore: retention: %w", err)
		}
		sizes[i], mtimes[i] = fi.Size(), fi.ModTime()
		total += fi.Size()
	}
	var cutoff time.Time
	if s.cfg.MaxLogAge > 0 {
		cutoff = s.now().Add(-s.cfg.MaxLogAge)
	}
	removed := 0
	for removed < len(seqs)-1 {
		// A rotated file's mtime is its last append, so every record inside
		// is at least that old.
		expired := s.cfg.MaxLogAge > 0 && mtimes[removed].Before(cutoff)
		over := s.cfg.MaxLogBytes > 0 && total > s.cfg.MaxLogBytes
		if !expired && !over {
			break
		}
		// A file a live read snapshot has pinned is skipped — and with it
		// everything newer, so the surviving log stays a contiguous suffix.
		// The next retention pass gets it once the reader drains.
		if l.readPins[seqs[removed]] > 0 {
			break
		}
		// Sidecar first: a crash between the two deletes leaves a
		// rebuildable data file, never a stale index outliving its data.
		l.dropIndex(s, seqs[removed])
		if err := s.fs.Remove(l.path(seqs[removed])); err != nil {
			if l.opened {
				l.seqs = append(l.seqs[:0], seqs[removed:]...)
			}
			return fmt.Errorf("segstore: retention: %w", err)
		}
		if s.cache != nil {
			s.cache.invalidateFile(l.device, seqs[removed])
		}
		s.reclaimedBytes.Add(sizes[removed])
		s.deletedFiles.Add(1)
		total -= sizes[removed]
		removed++
	}
	if removed > 0 && l.opened {
		l.seqs = append(l.seqs[:0], seqs[removed:]...)
	}
	if l.opened {
		return s.truncatePrefixLocked(l)
	}
	return nil
}

// truncatePrefixLocked is MaxLogAge at record-range granularity: when
// the oldest file's index shows a fully expired prefix of entries — by
// append wall time, the same clock the whole-file mtime rule uses — and
// that prefix is at least 1/truncateFraction of the file's payload, the
// file is rewritten without it (header + surviving records into a temp
// file, fsynced, renamed over the original). Index offsets shift down
// accordingly; for a sealed file the sidecar is dropped before the
// rename and rewritten after, so a crash at any point leaves either the
// old intact file or the new one, each with a rebuildable (or already
// consistent) index. Caller holds l.mu with l.opened.
//
//trajlint:holds l.mu
func (s *Store) truncatePrefixLocked(l *deviceLog) error {
	if s.cfg.MaxLogAge <= 0 || len(l.seqs) == 0 {
		return nil
	}
	seq := l.seqs[0]
	// A live snapshot is decoding this file lock-free; rewriting it in
	// place would pull bytes out from under the reader. Next pass.
	if l.readPins[seq] > 0 {
		return nil
	}
	active := seq == l.seqs[len(l.seqs)-1]
	fi, err := s.loadIndex(l, seq)
	if err != nil {
		return err
	}
	cutoffMs := s.now().Add(-s.cfg.MaxLogAge).UnixMilli()
	k := 0
	for k < len(fi.entries) && fi.entries[k].wall < cutoffMs {
		k++
	}
	if active {
		// The live file keeps its newest span no matter its age, so a log
		// always answers "where was this device last" — record-range aging
		// trims history, it never erases a device.
		k = min(k, len(fi.entries)-1)
	}
	if k <= 0 {
		return nil
	}
	cut := fi.dataLen
	if k < len(fi.entries) {
		cut = fi.entries[k].off
	}
	drop := cut - int64(len(fileMagic))
	payload := fi.dataLen - int64(len(fileMagic))
	if drop <= 0 || drop*truncateFraction < payload {
		return nil
	}
	data, err := s.fs.ReadFile(l.path(seq))
	if err != nil {
		return fmt.Errorf("segstore: retention: %w", err)
	}
	if int64(len(data)) < fi.dataLen {
		return fmt.Errorf("%w: %s shorter than its index", ErrCorrupt, l.path(seq))
	}
	nb := make([]byte, 0, int64(len(fileMagic))+fi.dataLen-cut)
	nb = append(nb, fileMagic...)
	nb = append(nb, data[cut:fi.dataLen]...)
	tmp := l.path(seq) + tmpSuffix
	if err := s.writeFileSynced(tmp, nb, s.cfg.Sync != SyncNever); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("segstore: retention: %w", err)
	}
	if active && l.f != nil {
		// Close the append handle before the rename: writes through a handle
		// on the replaced inode would be silently lost. The next append
		// reopens at the tracked offset.
		if err := s.dropHandle(l); err != nil {
			s.fs.Remove(tmp)
			return fmt.Errorf("segstore: retention: %w", err)
		}
	}
	if !active {
		l.dropIndex(s, seq)
	}
	if err := s.fs.Rename(tmp, l.path(seq)); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("segstore: retention: %w", err)
	}
	// The rewrite reuses byte offsets for different records: cached
	// granules keyed under the old layout must go. No reader pins the
	// file (checked above, under the same lock hold), so no concurrent
	// load can re-insert stale spans.
	if s.cache != nil {
		s.cache.invalidateFile(l.device, seq)
	}
	if s.cfg.Sync == SyncAlways {
		if err := s.syncDir(l.dir); err != nil {
			return err
		}
	}
	shifted := shiftEntries(fi.entries[k:], cut-int64(len(fileMagic)))
	if active {
		l.size = int64(len(nb))
		l.tail = shifted
		l.dirty = false // the rewrite is (conditionally) synced above
	} else {
		nfi := fileIndex{entries: shifted, dataLen: int64(len(nb))}
		_ = l.writeIndex(s, seq, nfi.dataLen, nfi.entries) // best effort: rebuilt next read
		l.cacheIndex(seq, nfi)
	}
	s.prefixTruncs.Add(1)
	s.reclaimedBytes.Add(drop)
	return nil
}

// shiftEntries returns entries with every offset lowered by delta — the
// index of a file whose first delta prefix bytes were cut.
func shiftEntries(entries []indexEntry, delta int64) []indexEntry {
	out := make([]indexEntry, len(entries))
	for i, e := range entries {
		e.off -= delta
		out[i] = e
	}
	return out
}

// writeFileSynced writes b to path, optionally fsyncing before close —
// rename-over-original callers need the new bytes durable first.
func (s *Store) writeFileSynced(path string, b []byte, sync bool) error {
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// compactKnown runs retention over every log this process has opened —
// the maintenance loop's cheap per-tick pass, metadata-only for any log
// it visits. Cold devices from earlier runs are compacted when first
// opened, or all at once by CompactNow; logs CompactNow registered but
// never opened are skipped here, or every tick would re-list their
// directories forever. Instances the metadata LRU evicted after the
// snapshot are skipped too: their successor owns the files now.
func (s *Store) compactKnown() {
	s.mu.Lock()
	logs := make([]*deviceLog, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	for _, l := range logs {
		l.mu.Lock()
		if l.opened && !l.evicted {
			_ = s.compactLocked(l)
		}
		l.mu.Unlock()
	}
}

// CompactNow synchronously enforces retention for every device with a
// log on disk — including devices this process has never touched, which
// the background pass skips. It is a no-op when no retention limit is
// configured, and returns the first error while still visiting every
// device.
func (s *Store) CompactNow() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if !s.retentionOn() {
		return nil
	}
	// One ReadDir of the root, not Devices(): its per-device emptiness
	// filter would list every directory a second time right before
	// compactLocked lists it for real, and compaction treats empty and
	// foreign-content directories as no-ops anyway.
	entries, err := s.fs.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	var first error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dev, err := unescapeDevice(e.Name())
		if err != nil {
			continue // not ours
		}
		l, err := s.lockLog(dev)
		if err != nil {
			// Close raced in, or a foreign directory escaped to an
			// unusable device ID.
			if first == nil {
				first = err
			}
			continue
		}
		if err := s.compactLocked(l); err != nil && first == nil {
			first = err
		}
		l.mu.Unlock()
	}
	return first
}
