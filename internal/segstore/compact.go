package segstore

import (
	"fmt"
	"os"
	"time"
)

// Retention bounds each device's log on disk (Config.MaxLogBytes,
// Config.MaxLogAge) by deleting whole rotated files oldest-first —
// records are never split, so whatever survives replays as an intact,
// contiguous suffix of the append history. The newest file is never
// deleted: it is the live append target, which also means a log can
// always answer "where was this device last" even under the tightest
// budget.
//
// Enforcement points: after every rotation (the moment a log grows past
// a file boundary), at a log's first open in a process, on every
// maintenance tick for logs this process has touched, and on demand for
// every device on disk via CompactNow.

// retentionOn reports whether any retention limit is configured.
func (s *Store) retentionOn() bool {
	return s.cfg.MaxLogBytes > 0 || s.cfg.MaxLogAge > 0
}

// compactLocked enforces retention on one device log. Caller holds l.mu.
// It works on unopened logs too, listing the directory directly, so a
// full sweep does not pay recovery cost for cold devices.
func (s *Store) compactLocked(l *deviceLog) error {
	if !s.retentionOn() {
		return nil
	}
	seqs := l.seqs
	if !l.opened {
		var err error
		if seqs, err = listSeqs(l.dir); err != nil {
			return err
		}
	}
	if len(seqs) <= 1 {
		return nil
	}
	sizes := make([]int64, len(seqs))
	mtimes := make([]time.Time, len(seqs))
	var total int64
	for i, seq := range seqs {
		fi, err := os.Stat(l.path(seq))
		if err != nil {
			return fmt.Errorf("segstore: retention: %w", err)
		}
		sizes[i], mtimes[i] = fi.Size(), fi.ModTime()
		total += fi.Size()
	}
	var cutoff time.Time
	if s.cfg.MaxLogAge > 0 {
		cutoff = time.Now().Add(-s.cfg.MaxLogAge)
	}
	removed := 0
	for removed < len(seqs)-1 {
		// A rotated file's mtime is its last append, so every record inside
		// is at least that old.
		expired := s.cfg.MaxLogAge > 0 && mtimes[removed].Before(cutoff)
		over := s.cfg.MaxLogBytes > 0 && total > s.cfg.MaxLogBytes
		if !expired && !over {
			break
		}
		if err := os.Remove(l.path(seqs[removed])); err != nil {
			if l.opened {
				l.seqs = append(l.seqs[:0], seqs[removed:]...)
			}
			return fmt.Errorf("segstore: retention: %w", err)
		}
		s.reclaimedBytes.Add(sizes[removed])
		s.deletedFiles.Add(1)
		total -= sizes[removed]
		removed++
	}
	if removed > 0 && l.opened {
		l.seqs = append(l.seqs[:0], seqs[removed:]...)
	}
	return nil
}

// compactKnown runs retention over every log this process has opened —
// the maintenance loop's cheap per-tick pass, metadata-only for any log
// it visits. Cold devices from earlier runs are compacted when first
// opened, or all at once by CompactNow; logs CompactNow registered but
// never opened are skipped here, or every tick would re-list their
// directories forever.
func (s *Store) compactKnown() {
	s.mu.Lock()
	logs := make([]*deviceLog, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	for _, l := range logs {
		l.mu.Lock()
		if l.opened {
			_ = s.compactLocked(l)
		}
		l.mu.Unlock()
	}
}

// CompactNow synchronously enforces retention for every device with a
// log on disk — including devices this process has never touched, which
// the background pass skips. It is a no-op when no retention limit is
// configured, and returns the first error while still visiting every
// device.
func (s *Store) CompactNow() error {
	if s.closed.Load() {
		return ErrClosed
	}
	if !s.retentionOn() {
		return nil
	}
	// One ReadDir of the root, not Devices(): its per-device emptiness
	// filter would list every directory a second time right before
	// compactLocked lists it for real, and compaction treats empty and
	// foreign-content directories as no-ops anyway.
	entries, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	var first error
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dev, err := unescapeDevice(e.Name())
		if err != nil {
			continue // not ours
		}
		l, err := s.log(dev)
		if err != nil {
			// Close raced in, or a foreign directory escaped to an
			// unusable device ID.
			if first == nil {
				first = err
			}
			continue
		}
		l.mu.Lock()
		if err := s.compactLocked(l); err != nil && first == nil {
			first = err
		}
		l.mu.Unlock()
	}
	return first
}
