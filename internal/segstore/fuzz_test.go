package segstore

import (
	"path/filepath"
	"testing"
)

// FuzzEscapeDeviceRoundTrip: directory names are the store's only
// mapping from device IDs to disk, so the escape must be lossless, emit
// only filesystem-safe names, and be canonical — no two directory names
// may unescape to the same device ID, or Devices would report phantom
// duplicates and foreign directories could alias a real device's log.
func FuzzEscapeDeviceRoundTrip(f *testing.F) {
	for _, s := range []string{
		"", "plain-01", "has space", "slash/../../etc", "unicode-héllo",
		"%00", "%2F", "%2f", "%61", ".", "..", "Car-1", "a_b-c9",
		string([]byte{0, 255, '%'}),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeDevice(s)
		if s != "" {
			// Safety: always a single, non-special path element.
			if esc == "" || esc == "." || esc == ".." || filepath.Base(esc) != esc {
				t.Fatalf("%q escapes to unsafe name %q", s, esc)
			}
			for i := 0; i < len(esc); i++ {
				c := esc[i]
				if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' ||
					c == '_' || c == '-' || c == '%' || c >= 'A' && c <= 'F') {
					t.Fatalf("%q escapes to %q containing byte %q", s, esc, c)
				}
			}
		}
		// Lossless: every ID round-trips through its directory name.
		back, err := unescapeDevice(esc)
		if err != nil {
			t.Fatalf("%q -> %q does not unescape: %v", s, esc, err)
		}
		if back != s {
			t.Fatalf("%q -> %q -> %q", s, esc, back)
		}
		// Canonical: any name unescapeDevice accepts must be exactly what
		// escapeDevice would emit for the decoded ID.
		if dev, err := unescapeDevice(s); err == nil {
			if again := escapeDevice(dev); again != s {
				t.Fatalf("non-canonical name %q accepted (device %q canonically escapes to %q)", s, dev, again)
			}
		}
	})
}
