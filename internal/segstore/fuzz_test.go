package segstore

import (
	"errors"
	"path/filepath"
	"testing"
)

// FuzzEscapeDeviceRoundTrip: directory names are the store's only
// mapping from device IDs to disk, so the escape must be lossless, emit
// only filesystem-safe names, and be canonical — no two directory names
// may unescape to the same device ID, or Devices would report phantom
// duplicates and foreign directories could alias a real device's log.
func FuzzEscapeDeviceRoundTrip(f *testing.F) {
	for _, s := range []string{
		"", "plain-01", "has space", "slash/../../etc", "unicode-héllo",
		"%00", "%2F", "%2f", "%61", ".", "..", "Car-1", "a_b-c9",
		string([]byte{0, 255, '%'}),
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		esc := escapeDevice(s)
		if s != "" {
			// Safety: always a single, non-special path element.
			if esc == "" || esc == "." || esc == ".." || filepath.Base(esc) != esc {
				t.Fatalf("%q escapes to unsafe name %q", s, esc)
			}
			for i := 0; i < len(esc); i++ {
				c := esc[i]
				if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' ||
					c == '_' || c == '-' || c == '%' || c >= 'A' && c <= 'F') {
					t.Fatalf("%q escapes to %q containing byte %q", s, esc, c)
				}
			}
		}
		// Lossless: every ID round-trips through its directory name.
		back, err := unescapeDevice(esc)
		if err != nil {
			t.Fatalf("%q -> %q does not unescape: %v", s, esc, err)
		}
		if back != s {
			t.Fatalf("%q -> %q -> %q", s, esc, back)
		}
		// Canonical: any name unescapeDevice accepts must be exactly what
		// escapeDevice would emit for the decoded ID.
		if dev, err := unescapeDevice(s); err == nil {
			if again := escapeDevice(dev); again != s {
				t.Fatalf("non-canonical name %q accepted (device %q canonically escapes to %q)", s, dev, again)
			}
		}
	})
}

// FuzzDecodeIndex: index sidecars live on disk where anything can happen
// to them, and the decoder's contract is total: arbitrary bytes either
// decode or fail with errBadIndex — never panic, never over-allocate,
// never yield entries that violate the invariants readers rely on
// (strictly increasing offsets past the file magic, minT ≤ maxT).
func FuzzDecodeIndex(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(idxMagic))
	valid := appendIndexFile(nil, 4096, []indexEntry{
		{off: int64(len(fileMagic)), minT: 1000, maxT: 2000, wall: 50},
		{off: 700, minT: 1500, maxT: 3000, wall: 60},
		{off: 2100, minT: 3000, maxT: 3001, wall: 60},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)-3])
	f.Add(appendIndexFile(nil, 10, nil))
	f.Fuzz(func(t *testing.T, b []byte) {
		dataLen, entries, err := decodeIndexFile(b)
		if err != nil {
			if !errors.Is(err, errBadIndex) {
				t.Fatalf("non-sentinel error %v", err)
			}
			return
		}
		prevOff := int64(len(fileMagic)) - 1
		for i, e := range entries {
			if e.off <= prevOff || e.off >= dataLen || e.minT > e.maxT {
				t.Fatalf("entry %d violates invariants: %+v (dataLen %d)", i, e, dataLen)
			}
			prevOff = e.off
		}
		// Accepted input must round-trip byte-identically: the encoding is
		// canonical, so a re-encode of the decoded entries is the original.
		again := appendIndexFile(nil, dataLen, entries)
		if string(again) != string(b) {
			t.Fatalf("accepted sidecar is not canonical:\n in %x\nout %x", b, again)
		}
	})
}
