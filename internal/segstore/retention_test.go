package segstore

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"trajsim/internal/traj"
)

// diskUsage sums the log files of dev and returns their count.
func diskUsage(t *testing.T, dir, dev string) (int64, int) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, escapeDevice(dev), "*"+fileSuffix))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	n := 0
	for _, f := range files {
		fi, err := os.Stat(f)
		if os.IsNotExist(err) {
			continue // deleted by a concurrent retention pass
		} else if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		n++
	}
	return total, n
}

// requireSuffix asserts got is a contiguous suffix of want — retention
// may only drop whole records from the old end, never punch holes or
// tear a record.
func requireSuffix(t *testing.T, got, want []traj.Segment) {
	t.Helper()
	if len(got) > len(want) {
		t.Fatalf("replay has %d segments, only %d were appended", len(got), len(want))
	}
	if !reflect.DeepEqual(got, want[len(want)-len(got):]) {
		t.Fatalf("replay (%d segments) is not a contiguous suffix of the %d appended", len(got), len(want))
	}
}

// TestRetentionMaxLogBytes drives one device's log far past MaxLogBytes
// and checks the acceptance property: the log shrinks on disk while
// Replay still returns only intact, contiguous records.
func TestRetentionMaxLogBytes(t *testing.T) {
	const (
		maxFile  = 512
		budget   = 1536
		chunk    = 5
		segments = 600
	)
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, MaxFileSize: maxFile, MaxLogBytes: budget, Sync: SyncNever})
	segs := syntheticSegs(segments)
	appendInChunks(t, s, "dev", segs, chunk)
	if t.Failed() {
		t.FailNow()
	}

	st := s.Stats()
	onDisk, files := diskUsage(t, dir, "dev")
	if onDisk >= st.Bytes {
		t.Fatalf("log did not shrink: %d bytes on disk of %d written", onDisk, st.Bytes)
	}
	// Compaction runs at rotation, so the steady-state bound is the budget
	// plus the file that was filling while the budget was last enforced.
	if limit := int64(budget + maxFile + 512); onDisk > limit {
		t.Fatalf("%d bytes on disk across %d files, want ≤ %d", onDisk, files, limit)
	}
	if st.DeletedFiles == 0 || st.ReclaimedBytes == 0 {
		t.Fatalf("retention counters empty: %+v", st)
	}
	if st.ReclaimedBytes+onDisk != st.Bytes+int64(files+int(st.DeletedFiles))*int64(len(fileMagic)) {
		t.Fatalf("reclaimed %d + on-disk %d inconsistent with %d written (%d files, %d deleted)",
			st.ReclaimedBytes, onDisk, st.Bytes, files, st.DeletedFiles)
	}

	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= segments {
		t.Fatalf("replay returned %d of %d segments, want a proper suffix", len(got), segments)
	}
	requireSuffix(t, got, quantizeAll(segs))
}

// backdate rewinds the mtime of every log file of dev by d.
func backdate(t *testing.T, dir, dev string, d time.Duration) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, escapeDevice(dev), "*"+fileSuffix))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v, %v", files, err)
	}
	old := time.Now().Add(-d)
	for _, f := range files {
		if err := os.Chtimes(f, old, old); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRetentionMaxLogAge: rotated files older than MaxLogAge are deleted
// — by CompactNow for devices the process never touched — while the
// newest file survives no matter its age.
func TestRetentionMaxLogAge(t *testing.T) {
	dir := t.TempDir()
	segs := syntheticSegs(400)
	writer := openStore(t, Config{Dir: dir, MaxFileSize: 512, Sync: SyncNever})
	appendInChunks(t, writer, "dev", segs, 5)
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	if _, files := diskUsage(t, dir, "dev"); files < 3 {
		t.Fatalf("only %d files, need several rotations", files)
	}
	backdate(t, dir, "dev", 2*time.Hour)

	s := openStore(t, Config{Dir: dir, MaxFileSize: 512, MaxLogAge: time.Hour, Sync: SyncNever})
	// CompactNow sweeps cold devices: this store has never touched "dev".
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	if _, files := diskUsage(t, dir, "dev"); files != 1 {
		t.Fatalf("%d files after CompactNow, want only the newest", files)
	}
	if st := s.Stats(); st.DeletedFiles == 0 {
		t.Fatalf("no deletions counted: %+v", st)
	}
	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	requireSuffix(t, got, quantizeAll(segs))
	if len(got) == 0 {
		t.Fatal("newest file must survive: replay is empty")
	}
	// Still listed, still appendable.
	devs, err := s.Devices()
	if err != nil || len(devs) != 1 || devs[0] != "dev" {
		t.Fatalf("devices after retention: %v, %v", devs, err)
	}
	if err := s.Append("dev", segs[:3]); err != nil {
		t.Fatal(err)
	}
}

// TestRetentionAtFirstOpen: a log written without limits is brought
// within budget the first time a retention-configured store touches it —
// no CompactNow needed.
func TestRetentionAtFirstOpen(t *testing.T) {
	dir := t.TempDir()
	segs := syntheticSegs(400)
	writer := openStore(t, Config{Dir: dir, MaxFileSize: 512, Sync: SyncNever})
	appendInChunks(t, writer, "dev", segs, 5)
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	before, filesBefore := diskUsage(t, dir, "dev")

	s := openStore(t, Config{Dir: dir, MaxFileSize: 512, MaxLogBytes: 1024, Sync: SyncNever})
	got, err := s.Replay("dev") // first touch opens, and opening compacts
	if err != nil {
		t.Fatal(err)
	}
	after, filesAfter := diskUsage(t, dir, "dev")
	if after >= before || filesAfter >= filesBefore {
		t.Fatalf("first open did not compact: %d→%d bytes, %d→%d files", before, after, filesBefore, filesAfter)
	}
	requireSuffix(t, got, quantizeAll(segs))
}

// TestBackgroundCompactor: the maintenance goroutine enforces MaxLogAge
// on logs the process has touched, with no append to trigger it.
func TestBackgroundCompactor(t *testing.T) {
	dir := t.TempDir()
	segs := syntheticSegs(400)
	s := openStore(t, Config{
		Dir: dir, MaxFileSize: 512, MaxLogAge: time.Hour,
		Sync: SyncInterval, SyncEvery: 10 * time.Millisecond,
	})
	appendInChunks(t, s, "dev", segs, 5)
	if _, files := diskUsage(t, dir, "dev"); files < 3 {
		t.Fatalf("only %d files, need several rotations", files)
	}
	backdate(t, dir, "dev", 2*time.Hour)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, files := diskUsage(t, dir, "dev"); files == 1 {
			break
		}
		if time.Now().After(deadline) {
			_, files := diskUsage(t, dir, "dev")
			t.Fatalf("background compactor left %d files after 5s", files)
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	requireSuffix(t, got, quantizeAll(segs))
}

// TestCompactNowValidation: closed stores refuse; without retention
// configured it is a documented no-op.
func TestCompactNowValidation(t *testing.T) {
	s := openStore(t, Config{})
	if err := s.CompactNow(); err != nil {
		t.Fatalf("retention-less CompactNow: %v", err)
	}
	s.Close()
	noRet := openStore(t, Config{MaxLogBytes: 1 << 20})
	noRet.Close()
	if err := noRet.CompactNow(); err != ErrClosed {
		t.Fatalf("closed CompactNow: %v, want ErrClosed", err)
	}
}

// TestOpenValidatesBounds: the new knobs reject nonsense.
func TestOpenValidatesBounds(t *testing.T) {
	for _, cfg := range []Config{
		{Dir: t.TempDir(), MaxOpenFiles: -1},
		{Dir: t.TempDir(), MaxLogBytes: -1},
		{Dir: t.TempDir(), MaxLogAge: -time.Second},
	} {
		if _, err := Open(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

// TestDevicesSkipsStrayEntries: loose files, foreign directories and
// file-less device directories in the data dir must not surface as
// devices or errors.
func TestDevicesSkipsStrayEntries(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, Sync: SyncNever})
	if err := s.Append("real", syntheticSegs(2)); err != nil {
		t.Fatal(err)
	}
	// A loose file with a device-like name, a foreign directory, a
	// valid-named directory with no log files, and a directory holding
	// only foreign files.
	if err := os.WriteFile(filepath.Join(dir, "strayfile"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, d := range []string{"Foreign Dir", "emptydev", "junkdev"} {
		if err := os.Mkdir(filepath.Join(dir, d), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "junkdev", "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	devs, err := s.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 1 || devs[0] != "real" {
		t.Fatalf("devices = %v, want [real]", devs)
	}
}

// TestDefaultFileSizeScalesWithBudget: retention's granularity is one
// rotated file, so a configured disk budget shrinks the default rotation
// threshold to a quarter of itself — an explicit MaxFileSize still wins.
func TestDefaultFileSizeScalesWithBudget(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int64
	}{
		{Config{}, DefaultMaxFileSize},
		{Config{MaxLogBytes: 1 << 20}, (1 << 20) / 4},
		{Config{MaxLogBytes: 1024}, 4 << 10}, // floored
		{Config{MaxLogBytes: 1 << 32}, DefaultMaxFileSize},
		{Config{MaxLogBytes: 1 << 20, MaxFileSize: 123456}, 123456},
	}
	for _, c := range cases {
		s := openStore(t, c.cfg)
		if s.cfg.MaxFileSize != c.want {
			t.Errorf("MaxLogBytes=%d MaxFileSize=%d: rotation threshold %d, want %d",
				c.cfg.MaxLogBytes, c.cfg.MaxFileSize, s.cfg.MaxFileSize, c.want)
		}
		s.Close()
	}
}
