package segstore

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// Tests for the time-indexed read path: ReplayRange and SegmentAt
// against a full-scan oracle, and sidecar damage of every kind resolving
// to a rebuild, never a wrong answer.

// rangeOracle filters a full replay to [from, to] by brute force — the
// semantics ReplayRange must reproduce via the index.
func rangeOracle(all []traj.Segment, from, to int64) []traj.Segment {
	var out []traj.Segment
	for _, sg := range all {
		if sg.End.T >= from && sg.Start.T <= to {
			out = append(out, sg)
		}
	}
	return out
}

// dropIdxCaches forgets every in-memory index so the next read goes back
// to the sidecar (or a rebuild).
func dropIdxCaches(s *Store, device string) {
	s.mu.Lock()
	l := s.logs[device]
	s.mu.Unlock()
	if l != nil {
		l.mu.Lock()
		l.idxCache = nil
		l.mu.Unlock()
	}
}

// segEqual compares ignoring nothing — ReplayRange promises exactly the
// replayed representation.
func segsEqual(a, b []traj.Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplayRangeOracle is the boundary sweep: every segment boundary
// (±1ms) as both range ends, indexed result vs full-scan oracle, over a
// log rotated into several files with per-record index entries.
func TestReplayRangeOracle(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 1 << 10})
	s.idxGran = 1 // every record gets its own index entry
	const dev = "sweep"
	segs := simplified(t, gen.Taxi, 600, 11)
	// One-segment appends: one record per segment, so entries and records
	// align 1:1 and the sweep hits every record boundary.
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(segs) {
		t.Fatalf("replay has %d segments, appended %d", len(all), len(segs))
	}
	if s.Stats().IndexWrites == 0 {
		t.Fatal("no sidecars written despite rotation")
	}

	var bounds []int64
	for i := 0; i < len(all); i += 7 { // subsample: the sweep is quadratic
		bounds = append(bounds, all[i].Start.T-1, all[i].Start.T, all[i].End.T, all[i].End.T+1)
	}
	bounds = append(bounds, math.MinInt64, all[0].Start.T-1_000_000, all[len(all)-1].End.T+1_000_000, math.MaxInt64)
	for _, from := range bounds {
		for _, to := range bounds {
			got, err := s.ReplayRange(dev, from, to)
			if err != nil {
				t.Fatalf("ReplayRange(%d, %d): %v", from, to, err)
			}
			want := rangeOracle(all, from, to)
			if from > to {
				want = nil
			}
			if !segsEqual(got, want) {
				t.Fatalf("ReplayRange(%d, %d) = %d segments, oracle says %d", from, to, len(got), len(want))
			}
		}
	}

	// The same sweep answered from sidecars after a reopen.
	dir := s.cfg.Dir
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir, Sync: SyncNever, MaxFileSize: 1 << 10})
	s2.idxGran = 1
	for i := 0; i < len(bounds); i += 3 {
		from, to := bounds[i], bounds[len(bounds)-1-i%len(bounds)]
		got, err := s2.ReplayRange(dev, from, to)
		if err != nil {
			t.Fatal(err)
		}
		want := rangeOracle(all, from, to)
		if from > to {
			want = nil
		}
		if !segsEqual(got, want) {
			t.Fatalf("after reopen: ReplayRange(%d, %d) = %d segments, oracle says %d", from, to, len(got), len(want))
		}
	}
	if s2.Stats().IndexRebuilds != 0 {
		t.Errorf("reopen rebuilt %d indexes; the sidecars were intact", s2.Stats().IndexRebuilds)
	}
}

// TestReplayRangeCoalesced reruns a coarser sweep at the default
// granularity, where one entry covers many records and range reads
// over-read then post-filter.
func TestReplayRangeCoalesced(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 4 << 10})
	const dev = "coarse"
	segs := simplified(t, gen.Truck, 800, 23)
	for i := 0; i < len(segs); i += 5 {
		if err := s.Append(dev, segs[i:min(i+5, len(segs))]); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(all); i += 11 {
		from, to := all[i].Start.T, all[min(i+17, len(all)-1)].End.T
		got, err := s.ReplayRange(dev, from, to)
		if err != nil {
			t.Fatal(err)
		}
		if !segsEqual(got, rangeOracle(all, from, to)) {
			t.Fatalf("coalesced ReplayRange(%d, %d) mismatch", from, to)
		}
	}
}

func TestSegmentAt(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 1 << 10})
	const dev = "probe"
	// Two bursts with a gap between them.
	burstA := []traj.Segment{
		{Start: traj.At(0, 0, 1000), End: traj.At(100, 0, 2000), EndIdx: 1},
		{Start: traj.At(100, 0, 2000), End: traj.At(100, 50, 3000), StartIdx: 1, EndIdx: 2},
	}
	burstB := []traj.Segment{
		{Start: traj.At(500, 500, 10_000), End: traj.At(600, 500, 12_000), StartIdx: 2, EndIdx: 3},
	}
	if err := s.Append(dev, burstA); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(dev, burstB); err != nil {
		t.Fatal(err)
	}

	// Mid-segment, exact endpoints, and the join between segments.
	for _, tc := range []struct {
		t    int64
		want traj.Segment
	}{
		{1000, burstA[0]},
		{1500, burstA[0]},
		{2000, burstA[1]}, // both cover t=2000; the later append wins
		{2999, burstA[1]},
		{11_000, burstB[0]},
	} {
		got, err := s.SegmentAt(dev, tc.t)
		if err != nil {
			t.Fatalf("SegmentAt(%d): %v", tc.t, err)
		}
		if got != tc.want {
			t.Fatalf("SegmentAt(%d) = %+v, want %+v", tc.t, got, tc.want)
		}
	}

	// Before, inside the gap, after, unknown device: ErrNoPosition.
	for _, tms := range []int64{999, 5000, 12_001} {
		if _, err := s.SegmentAt(dev, tms); !errors.Is(err, ErrNoPosition) {
			t.Fatalf("SegmentAt(%d): %v, want ErrNoPosition", tms, err)
		}
	}
	if _, err := s.SegmentAt("ghost", 1500); !errors.Is(err, ErrNoPosition) {
		t.Fatalf("unknown device: %v, want ErrNoPosition", err)
	}

	// Overlapping re-ingest: the segment appended last covers t.
	redo := []traj.Segment{
		{Start: traj.At(-7, -7, 1200), End: traj.At(-8, -8, 1800), EndIdx: 1},
	}
	if err := s.Append(dev, redo); err != nil {
		t.Fatal(err)
	}
	got, err := s.SegmentAt(dev, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if got != redo[0] {
		t.Fatalf("after re-ingest SegmentAt(1500) = %+v, want the newer %+v", got, redo[0])
	}
	// Interpolation sanity along the winning segment.
	p := got.At(1500)
	if p.T != 1500 || p.X > -7 || p.X < -8 {
		t.Fatalf("At(1500) = %+v", p)
	}
}

// TestSegmentAtAcrossFiles forces rotation between bursts so the
// newest-file-first probe has to walk back into sealed files.
func TestSegmentAtAcrossFiles(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512})
	s.idxGran = 1
	const dev = "walker"
	segs := simplified(t, gen.SerCar, 500, 7)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(all); i += 13 {
		sg := all[i]
		mid := (sg.Start.T + sg.End.T) / 2
		got, err := s.SegmentAt(dev, mid)
		if err != nil {
			t.Fatalf("SegmentAt(%d): %v", mid, err)
		}
		if got.Start.T > mid || got.End.T < mid {
			t.Fatalf("SegmentAt(%d) span [%d, %d] does not cover it", mid, got.Start.T, got.End.T)
		}
	}
}

// TestSidecarTruncationEveryOffset torn-truncates a sealed file's
// sidecar at every byte length. Every prefix must either decode-and-fail
// or prove stale — and in all cases the range read silently rebuilds and
// returns the oracle answer.
func TestSidecarTruncationEveryOffset(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512})
	s.idxGran = 1
	const dev = "torn"
	segs := simplified(t, gen.Taxi, 300, 5)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	from, to := all[1].Start.T, all[len(all)-2].End.T
	want := rangeOracle(all, from, to)

	// Pick the first sealed file's sidecar.
	dir := filepath.Join(s.cfg.Dir, dev)
	idx := filepath.Join(dir, idxName(1))
	orig, err := os.ReadFile(idx)
	if err != nil {
		t.Fatalf("no sidecar for sealed file: %v", err)
	}
	for n := 0; n <= len(orig); n++ {
		if err := os.WriteFile(idx, orig[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		dropIdxCaches(s, dev)
		got, err := s.ReplayRange(dev, from, to)
		if err != nil {
			t.Fatalf("truncated sidecar at %d/%d bytes: %v", n, len(orig), err)
		}
		if !segsEqual(got, want) {
			t.Fatalf("truncated sidecar at %d/%d bytes: %d segments, oracle says %d", n, len(orig), len(got), len(want))
		}
		// The full, untouched sidecar must not trigger a rebuild.
		wantRebuilds := int64(1)
		if n == len(orig) {
			wantRebuilds = 0
		}
		if rb := s.indexRebuilds.Swap(0); rb != wantRebuilds {
			t.Fatalf("truncated sidecar at %d/%d bytes: %d rebuilds, want %d", n, len(orig), rb, wantRebuilds)
		}
		// The rebuild repaired the sidecar on disk; restore the truncated
		// form for the next iteration's premise to hold.
	}
}

// TestSidecarGarbageAndStale: flipped bytes and a stale dataLen both
// mean "rebuild", never a wrong or failed read.
func TestSidecarGarbageAndStale(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512})
	const dev = "junk"
	segs := simplified(t, gen.Truck, 300, 9)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	idx := filepath.Join(s.cfg.Dir, dev, idxName(1))
	orig, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}

	check := func(label string) {
		t.Helper()
		dropIdxCaches(s, dev)
		got, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if !segsEqual(got, all) {
			t.Fatalf("%s: %d segments, want %d", label, len(got), len(all))
		}
		if s.indexRebuilds.Load() == 0 {
			t.Fatalf("%s: no rebuild recorded", label)
		}
		s.indexRebuilds.Store(0)
	}

	for _, off := range []int{0, 2, len(orig) / 2, len(orig) - 1} {
		b := append([]byte(nil), orig...)
		b[off] ^= 0x5a
		if err := os.WriteFile(idx, b, 0o644); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("bit flip at %d", off))
	}

	// A CRC-valid sidecar describing a different data length is stale —
	// e.g. written before a crash that truncated the data file.
	stale := appendIndexFile(nil, 7, []indexEntry{{off: int64(len(fileMagic)), minT: 1, maxT: 2, wall: 3}})
	if err := os.WriteFile(idx, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	check("stale dataLen")

	// Sidecar deleted outright.
	if err := os.Remove(idx); err != nil {
		t.Fatal(err)
	}
	check("missing sidecar")
}

// TestRangeReadTornSealedFile: an indexed read that discovers real
// corruption in a sealed file reports ErrCorrupt rather than quietly
// returning less than the log holds.
func TestRangeReadTornSealedFile(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512})
	const dev = "sealedtear"
	segs := simplified(t, gen.Taxi, 300, 13)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate the first sealed data file mid-record and drop its sidecar
	// so the read must rescan the data.
	seg1 := filepath.Join(s.cfg.Dir, dev, fileName(1))
	st, err := os.Stat(seg1)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg1, st.Size()-3); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(s.cfg.Dir, dev, idxName(1)))
	dropIdxCaches(s, dev)
	if _, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn sealed file: %v, want ErrCorrupt", err)
	}
}

// TestIndexCoalescing pins the sparse-in-bytes contract: with the
// default granularity a small file's whole index is one entry, and every
// entry offset is a decodable record boundary.
func TestIndexCoalescing(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever})
	const dev = "sparse"
	segs := simplified(t, gen.SerCar, 400, 3)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	l := s.logs[dev]
	s.mu.Unlock()
	l.mu.Lock()
	tail := append([]indexEntry(nil), l.tail...)
	size := l.size
	l.mu.Unlock()
	if len(tail) != 1 {
		t.Fatalf("%d appends under one granularity unit produced %d entries, want 1", len(segs), len(tail))
	}
	if tail[0].off != int64(len(fileMagic)) {
		t.Fatalf("first entry at %d, want %d", tail[0].off, len(fileMagic))
	}
	if tail[0].minT != segs[0].Start.T || tail[0].maxT != segs[len(segs)-1].End.T {
		t.Fatalf("entry spans [%d, %d], log spans [%d, %d]",
			tail[0].minT, tail[0].maxT, segs[0].Start.T, segs[len(segs)-1].End.T)
	}
	if size <= tail[0].off {
		t.Fatalf("size %d, entry offset %d", size, tail[0].off)
	}
}

// TestReplayRangeAfterRetention: range reads agree with Replay after
// whole-file retention plus prefix truncation have chewed on the log.
func TestReplayRangeAfterRetention(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512, MaxLogBytes: 2 << 10})
	const dev = "aged"
	segs := simplified(t, gen.Taxi, 800, 29)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(all) >= len(segs) {
		t.Fatalf("retention left %d of %d segments", len(all), len(segs))
	}
	got, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEqual(got, all) {
		t.Fatalf("unbounded ReplayRange (%d) != Replay (%d) after retention", len(got), len(all))
	}
	mid := all[len(all)/2]
	got, err = s.ReplayRange(dev, mid.Start.T, mid.End.T)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEqual(got, rangeOracle(all, mid.Start.T, mid.End.T)) {
		t.Fatal("ranged read after retention mismatch")
	}
}

// TestReplayRangeClosed: reads on a closed store fail cleanly.
func TestReplayRangeClosed(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever})
	if err := s.Append("d", simplified(t, gen.Taxi, 50, 1)[:2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReplayRange("d", 0, math.MaxInt64); !errors.Is(err, ErrClosed) {
		t.Fatalf("ReplayRange on closed store: %v", err)
	}
	if _, err := s.SegmentAt("d", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("SegmentAt on closed store: %v", err)
	}
	if _, err := s.ReplayRange("..", 0, 1); !errors.Is(err, ErrClosed) && !errors.Is(err, ErrDeviceID) {
		t.Fatalf("bad device: %v", err)
	}
}

// TestOrphanSidecarsSweptAtOpen: sidecars and temp files without a
// surviving data file (a crash between retention's idx-then-seg deletes,
// or a torn prefix rewrite) are removed by the open sweep, and never
// trusted as data.
func TestOrphanSidecarsSweptAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{Dir: dir, Sync: SyncNever, MaxFileSize: 512})
	const dev = "orphans"
	segs := simplified(t, gen.Taxi, 300, 17)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate crash leftovers: a sidecar whose data file is gone, and a
	// temp file from an interrupted prefix rewrite.
	devDir := filepath.Join(dir, escapeDevice(dev))
	orphan := filepath.Join(devDir, idxName(99))
	if err := os.WriteFile(orphan, appendIndexFile(nil, 100, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(devDir, fileName(1)+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, Config{Dir: dir, Sync: SyncNever, MaxFileSize: 512})
	got, err := s2.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEqual(got, all) {
		t.Fatalf("replay with crash leftovers: %d segments, want %d", len(got), len(all))
	}
	for _, f := range []string{orphan, tmp} {
		if _, err := os.Stat(f); !errors.Is(err, os.ErrNotExist) {
			t.Errorf("%s survived the open sweep (%v)", f, err)
		}
	}
}

// TestRetentionDropsSidecarsWithFiles: whole-file retention removes the
// sidecar alongside (in fact before) its data file — no orphans pile up.
func TestRetentionDropsSidecarsWithFiles(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, MaxFileSize: 512, MaxLogBytes: 1 << 10})
	const dev = "reaped"
	segs := simplified(t, gen.Truck, 600, 21)
	for _, sg := range segs {
		if err := s.Append(dev, []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	devDir := filepath.Join(s.cfg.Dir, escapeDevice(dev))
	entries, err := os.ReadDir(devDir)
	if err != nil {
		t.Fatal(err)
	}
	live := map[string]bool{}
	for _, e := range entries {
		live[e.Name()] = true
	}
	for name := range live {
		if filepath.Ext(name) == idxSuffix {
			data := name[:len(name)-len(idxSuffix)] + fileSuffix
			if !live[data] {
				t.Errorf("orphan sidecar %s survived retention", name)
			}
		}
	}
	if st := s.Stats(); st.DeletedFiles == 0 {
		t.Fatalf("retention deleted nothing: %+v", st)
	}
}
