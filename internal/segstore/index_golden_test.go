package segstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trajsim/internal/traj"
)

// TestGoldenIndexFile pins the sidecar format — magic, CRC framing,
// delta coding, field order — as produced by a real rotation, the same
// way record_v1.golden pins the data file. The store clock is overridden
// so the wall stamps (and therefore the bytes) are deterministic.
func TestGoldenIndexFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Sync: SyncNever, MaxFileSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	clock := int64(1_700_000_000_000)
	s.now = func() time.Time { clock += 1000; return time.UnixMilli(clock) }
	s.idxGran = 1 // one entry per record, exercising the delta chain

	// Two records per file: each segment is ~35 framed bytes, so the
	// third append pushes past 64 bytes and rotates, sealing file 1 with
	// a two-entry sidecar.
	segs := append(goldenSegments(),
		traj.Segment{Start: traj.At(-3.25, 60, 160_500), End: traj.At(40, 40, 200_000),
			StartIdx: 41, EndIdx: 55, VirtualEnd: true},
	)
	for _, sg := range segs {
		if err := s.Append("golden", []traj.Segment{sg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "golden", idxName(1)))
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "index_v1.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("index sidecar format changed:\n got %x\nwant %x\nre-bless with -update only for a deliberate format break", got, want)
	}

	// The checked-in fixture must keep decoding on current code, with the
	// exact entries the appends above produced.
	dataLen, entries, err := decodeIndexFile(want)
	if err != nil {
		t.Fatal(err)
	}
	wantEntries := []indexEntry{
		{off: int64(len(fileMagic)), minT: 0, maxT: 30_000, wall: 1_700_000_001_000},
		{off: 0, minT: 30_000, maxT: 95_000, wall: 1_700_000_002_000},
	}
	wantEntries[1].off = entries[0].off // the second offset is whatever record 1's length makes it
	if len(entries) != 2 {
		t.Fatalf("fixture has %d entries, want 2", len(entries))
	}
	if entries[0] != wantEntries[0] {
		t.Fatalf("entry 0 = %+v, want %+v", entries[0], wantEntries[0])
	}
	if entries[1].minT != 30_000 || entries[1].maxT != 95_000 || entries[1].wall != 1_700_000_002_000 {
		t.Fatalf("entry 1 = %+v", entries[1])
	}
	if entries[1].off <= entries[0].off || dataLen <= entries[1].off {
		t.Fatalf("offsets out of order: %+v, dataLen %d", entries, dataLen)
	}
}
