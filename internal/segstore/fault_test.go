package segstore

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"

	"trajsim/internal/traj"
)

// The injected-fault sweep: the storage-fault counterpart of the
// truncation-at-every-offset crash-recovery test. A scripted workload
// runs once over a tracing faultFS to enumerate every file operation it
// performs; then, for each operation index (and for each failure shape —
// generic I/O error, ENOSPC, short write), the workload re-runs with
// that single operation failing. Whatever the store acknowledged must
// replay, in order, from a clean reopen of the directory; batches whose
// append failed may appear (the fault can strike after the bytes landed)
// but only atomically and only in their original position — the store
// never acknowledges data it lost and never replays garbage.

const (
	faultDev     = "fault-dev"
	nFaultBatch  = 12
	faultFileMax = 96 // bytes; forces several rotations over the workload
)

// runFaultWorkload executes the scripted workload against ffs: 12
// single-segment batches for one device, mixing the plain Append path
// with the deferred AppendNoSync+CommitDevices group-commit path, under
// SyncAlways with a tiny rotation threshold. It reports which batches
// were acknowledged (append and, for deferred ones, commit both
// succeeded). quarBase 0 lets a poisoned log attempt recovery on the
// very next append, so a single injected fault costs at most one batch.
func runFaultWorkload(t *testing.T, dir string, ffs *faultFS) (acked []bool) {
	t.Helper()
	acked = make([]bool, nFaultBatch)
	s, err := openFS(Config{Dir: dir, Sync: SyncAlways, MaxFileSize: faultFileMax}, ffs)
	if err != nil {
		return acked // store never opened: nothing acknowledged
	}
	s.quarBase = 0
	defer s.Close()
	segs := syntheticSegs(nFaultBatch)
	for k := 0; k < nFaultBatch; k++ {
		b := segs[k : k+1]
		if k%3 == 2 {
			// The async sink's group-commit path: ack requires the commit.
			err := s.AppendNoSync(faultDev, b)
			if err == nil {
				err = s.CommitDevices([]string{faultDev})
			}
			acked[k] = err == nil
		} else {
			acked[k] = s.Append(faultDev, b) == nil
		}
	}
	return acked
}

// wantBatches is each workload batch in replayed form: the segment
// pushed through the record codec, so float quantization matches.
func wantBatches(t *testing.T) []traj.Segment {
	t.Helper()
	segs := syntheticSegs(nFaultBatch)
	out := make([]traj.Segment, 0, nFaultBatch)
	for k := range segs {
		rt, err := decodeRecordPayload(nil, appendRecordPayload(nil, segs[k:k+1]))
		if err != nil || len(rt) != 1 {
			t.Fatalf("codec round-trip of batch %d: %v", k, err)
		}
		out = append(out, rt[0])
	}
	return out
}

// verifyAckedPrefix reopens dir with the real filesystem and checks the
// replay against the acknowledgements: every acked batch present, in
// order; unacked batches optional but only in position; nothing else.
func verifyAckedPrefix(t *testing.T, dir, label string, acked []bool) {
	t.Helper()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("%s: clean reopen: %v", label, err)
	}
	defer s.Close()
	got, err := s.Replay(faultDev)
	if err != nil {
		t.Fatalf("%s: replay: %v", label, err)
	}
	want := wantBatches(t)
	k := 0
	for _, sg := range got {
		for k < nFaultBatch && sg != want[k] {
			if acked[k] {
				t.Fatalf("%s: acked batch %d missing from replay", label, k)
			}
			k++
		}
		if k == nFaultBatch {
			t.Fatalf("%s: unexpected segment in replay: %+v", label, sg)
		}
		k++
	}
	for ; k < nFaultBatch; k++ {
		if acked[k] {
			t.Fatalf("%s: acked batch %d missing from replay tail", label, k)
		}
	}
}

// TestFaultMatrix sweeps one injected failure across every file
// operation of the workload, in three shapes, asserting the
// acknowledged-prefix oracle after each.
func TestFaultMatrix(t *testing.T) {
	// Trace pass: no fault, enumerate the op sequence.
	trace := newFaultFS()
	acked := runFaultWorkload(t, t.TempDir(), trace)
	for k, ok := range acked {
		if !ok {
			t.Fatalf("trace pass: batch %d not acknowledged with no fault armed", k)
		}
	}
	total := trace.ops()
	if total < 30 {
		t.Fatalf("trace pass saw only %d file operations — workload not exercising the store", total)
	}

	type shape struct {
		name  string
		err   error
		short bool
	}
	shapes := []shape{
		{name: "ioerr", err: errors.New("injected I/O failure")},
		{name: "enospc", err: syscall.ENOSPC},
		{name: "shortwrite", err: errors.New("injected short write"), short: true},
	}
	for i := 0; i < total; i++ {
		kind := trace.kindAt(i)
		for _, sh := range shapes {
			if sh.short && kind != "write" {
				continue // a short write only means something for Write
			}
			label := fmt.Sprintf("op %d (%s) %s", i, kind, sh.name)
			ffs := newFaultFS()
			ffs.armAt, ffs.err, ffs.short = i, sh.err, sh.short
			dir := t.TempDir()
			acked := runFaultWorkload(t, dir, ffs)
			if !ffs.fired {
				t.Fatalf("%s: armed fault never fired (trace drift?)", label)
			}
			verifyAckedPrefix(t, dir, label, acked)
		}
	}
}

// TestQuarantineRecovery walks the full quarantine lifecycle: a failed
// fsync poisons the log; while quarantined, appends are rejected with
// the sticky failure without touching the filesystem (the fd was
// discarded — a failed fsync is never retried on the same descriptor);
// once the backoff deadline passes and the fault clears, the next append
// re-runs recovery and the log resumes, with the gauge and counter
// moving accordingly.
func TestQuarantineRecovery(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	s, err := openFS(Config{Dir: dir, Sync: SyncAlways}, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.quarBase = time.Hour // quarantine holds until the test lifts it
	segs := syntheticSegs(4)

	if err := s.Append(faultDev, segs[0:1]); err != nil {
		t.Fatal(err)
	}

	// Break every fsync: the next append writes its bytes, fails the
	// sync, and must quarantine rather than acknowledge.
	ffs.err = errors.New("injected fsync failure")
	ffs.setWedge("sync")
	if err := s.Append(faultDev, segs[1:2]); err == nil {
		t.Fatal("append with failing fsync was acknowledged")
	}
	if got := s.Stats().PoisonedLogs; got != 1 {
		t.Fatalf("PoisonedLogs = %d after failed fsync, want 1", got)
	}

	// While quarantined: sticky rejection, and — fsyncgate — not a single
	// further fsync or file open.
	syncs, opens := ffs.opsOfKind("sync"), ffs.opsOfKind("openfile")
	if err := s.Append(faultDev, segs[2:3]); err == nil {
		t.Fatal("append to quarantined log succeeded inside the backoff window")
	}
	if ffs.opsOfKind("sync") != syncs || ffs.opsOfKind("openfile") != opens {
		t.Fatal("quarantined append touched the filesystem (fsync retried or fd reopened)")
	}

	// Fault clears, deadline passes: the next append recovers and lands.
	ffs.setWedge("")
	s.mu.Lock()
	l := s.logs[faultDev]
	s.mu.Unlock()
	l.mu.Lock()
	l.quarNext = time.Now().Add(-time.Second)
	l.mu.Unlock()
	if err := s.Append(faultDev, segs[3:4]); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	st := s.Stats()
	if st.PoisonedLogs != 0 || st.QuarantineReopens != 1 {
		t.Fatalf("after recovery: PoisonedLogs=%d QuarantineReopens=%d, want 0 and 1",
			st.PoisonedLogs, st.QuarantineReopens)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay: batches 0 and 3 were acknowledged and must be present;
	// batch 1's bytes reached the file before its fsync "failed" (only
	// the injected sync failed, the write was real), so it replays too;
	// batch 2 was rejected up front and must not.
	want := wantBatches(t)
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Replay(faultDev)
	if err != nil {
		t.Fatal(err)
	}
	exp := []traj.Segment{want[0], want[1], want[3]}
	if len(got) != len(exp) {
		t.Fatalf("replay after recovery: %d segments, want %d", len(got), len(exp))
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], exp[i])
		}
	}
}

// TestENOSPCRetryable: a write that fails cleanly at a record boundary
// (zero bytes accepted, the ENOSPC shape) fails the append but does NOT
// quarantine — nothing torn, nothing unsynced — and appends resume as
// soon as space clears, with no backoff in the way.
func TestENOSPCRetryable(t *testing.T) {
	dir := t.TempDir()
	ffs := newFaultFS()
	s, err := openFS(Config{Dir: dir, Sync: SyncAlways}, ffs)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	segs := syntheticSegs(3)

	if err := s.Append(faultDev, segs[0:1]); err != nil {
		t.Fatal(err)
	}
	ffs.err = syscall.ENOSPC
	ffs.setWedge("write")
	if err := s.Append(faultDev, segs[1:2]); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("append on full disk: %v, want ENOSPC", err)
	}
	if got := s.Stats().PoisonedLogs; got != 0 {
		t.Fatalf("PoisonedLogs = %d after clean ENOSPC, want 0 (retryable, not quarantined)", got)
	}
	ffs.setWedge("")
	if err := s.Append(faultDev, segs[2:3]); err != nil {
		t.Fatalf("append after space cleared: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	want := wantBatches(t)
	s2, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Replay(faultDev)
	if err != nil {
		t.Fatal(err)
	}
	exp := []traj.Segment{want[0], want[2]}
	if len(got) != len(exp) {
		t.Fatalf("replay: %d segments, want %d", len(got), len(exp))
	}
	for i := range exp {
		if got[i] != exp[i] {
			t.Fatalf("replay[%d] = %+v, want %+v", i, got[i], exp[i])
		}
	}
}
