// Package segstore is the durability tier under the streaming engine: an
// append-only, crash-recoverable log of finalized segments per device.
// The paper's one-pass simplifiers shrink a stream to segment batches;
// this package is where those batches land so a server restart (or an
// outright crash) loses nothing that was acknowledged.
//
// Layout: one directory per device (ID percent-escaped), holding
// size-rotated files 00000001.seg, 00000002.seg, … Each file starts with
// a 4-byte magic and continues with CRC-framed records (enc.AppendFrame)
// whose payloads are varint delta-coded segment batches (record.go).
// Records are self-contained, so recovery is a scan that truncates the
// log at the first incomplete or corrupt frame of the newest file — a
// torn tail from a crash mid-write — while any damage earlier in the log
// is reported as corruption rather than silently skipped.
//
// The store is resource-bounded the same way the paper's encoders are:
// at most Config.MaxOpenFiles device logs hold an open file handle (an
// LRU transparently closes and reopens cold logs), and per-device disk
// usage is bounded by Config.MaxLogBytes / Config.MaxLogAge retention,
// enforced by deleting whole rotated files oldest-first (compact.go) —
// so millions of devices streaming forever cost neither millions of
// descriptors nor unbounded disk.
//
// Store.Append matches the stream.Sink interface, so a Store plugs
// directly into stream.Config.Sink. AppendNoSync and CommitDevices
// additionally implement stream.DeferredSink — the sweep-level group
// commit used by the async sink pipeline: a sweep makes one deferred
// append per device (one write syscall each, fsync withheld), then one
// CommitDevices for the whole sweep, so K devices × M batches cost at
// most K fsyncs under SyncAlways instead of K×M.
package segstore

import (
	"container/list"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Errors reported by the Store, besides ErrCorrupt.
var (
	// ErrClosed is returned by operations after Close.
	ErrClosed = errors.New("segstore: store closed")
	// ErrDeviceID is returned for an empty or over-long device ID.
	ErrDeviceID = errors.New("segstore: bad device ID")
)

const (
	fileMagic  = "TSG1"
	fileSuffix = ".seg"
	tmpSuffix  = ".tmp"
	// maxDeviceID caps device IDs so their escaped form (≤ 3 bytes per
	// rune byte) stays a legal directory name everywhere. It equals
	// stream.MaxDevice (asserted in tests) so everything the engine
	// ingests is persistable.
	maxDeviceID = 80

	// DefaultMaxFileSize is the rotation threshold when Config.MaxFileSize
	// is zero.
	DefaultMaxFileSize = 64 << 20
	// DefaultSyncEvery is the background fsync period for SyncInterval
	// when Config.SyncEvery is zero.
	DefaultSyncEvery = time.Second
	// DefaultMaxOpenFiles is the open-handle cap when Config.MaxOpenFiles
	// is zero: generous enough that modest fleets never evict, far below
	// typical fd rlimits.
	DefaultMaxOpenFiles = 1024
	// DefaultMaxResidentLogs is the in-memory metadata cap when
	// Config.MaxResidentLogs is zero: roomy (metadata is a few hundred
	// bytes per device), but no longer proportional to every device the
	// process has ever seen.
	DefaultMaxResidentLogs = 65536
	// DefaultReadCacheBytes is the granule-cache budget trajserve passes
	// by default. Config.ReadCacheBytes has no implicit default — the
	// zero Config keeps the cache off.
	DefaultReadCacheBytes = 64 << 20

	// defaultQuarantineBase is the first reopen backoff after a log is
	// poisoned; attempts double it up to defaultQuarantineMax. Tests
	// shrink Store.quarBase to exercise the recovery path quickly.
	defaultQuarantineBase = 250 * time.Millisecond
	defaultQuarantineMax  = time.Minute
)

// SyncPolicy selects when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncInterval (the default) fsyncs dirty logs from a background
	// goroutine every Config.SyncEvery — bounded data loss, near-zero
	// per-append cost.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append (and syncs the directory on
	// file creation): maximum durability, one fsync per batch.
	SyncAlways
	// SyncNever leaves flushing to the OS page cache.
	SyncNever
)

// String implements fmt.Stringer (and flag.Value's read side).
func (p SyncPolicy) String() string {
	switch p {
	case SyncInterval:
		return "interval"
	case SyncAlways:
		return "always"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// ParseSyncPolicy parses "interval", "always" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "interval":
		return SyncInterval, nil
	case "always":
		return SyncAlways, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("segstore: unknown sync policy %q (interval, always, never)", s)
}

// Config parameterizes Open. Only Dir is required.
type Config struct {
	// Dir is the root directory; created if missing.
	Dir string
	// MaxFileSize rotates a device's log file once appending would grow
	// it past this many bytes; 0 selects DefaultMaxFileSize — or, when
	// MaxLogBytes is set, a quarter of that budget (floored at 4 KiB),
	// since retention deletes whole rotated files and 64 MiB monoliths
	// would give a small budget no granularity to work with.
	MaxFileSize int64
	// Sync selects the fsync policy.
	Sync SyncPolicy
	// SyncEvery is the period of the background maintenance loop —
	// SyncInterval fsyncs and retention passes alike; 0 selects
	// DefaultSyncEvery.
	SyncEvery time.Duration
	// MaxOpenFiles caps how many device logs hold an open file handle at
	// once; colder logs are transparently closed and reopened on their
	// next append. 0 selects DefaultMaxOpenFiles; negative is an error.
	// The cap may be exceeded transiently while every open log is
	// mid-operation (see handleLRU).
	MaxOpenFiles int
	// MaxResidentLogs caps how many device logs keep metadata (file
	// list, append offset, time index) resident in memory; the coldest
	// are evicted and transparently re-recovered on next touch, so the
	// store's footprint stops growing with every device ever seen. 0
	// selects DefaultMaxResidentLogs; negative is an error. Like
	// MaxOpenFiles, the cap is a strong target: it can be exceeded
	// transiently while every resident log is busy, warm, or poisoned.
	MaxResidentLogs int
	// MaxLogBytes, when positive, bounds each device's log on disk:
	// whole rotated files are deleted oldest-first while the total
	// exceeds it. The active file is never deleted, so the effective
	// bound is MaxLogBytes + one file. 0 keeps everything.
	MaxLogBytes int64
	// MaxLogAge, when positive, ages out records older than this: whole
	// rotated files whose last append is older are deleted, and the
	// expired record prefix of the oldest surviving file is truncated
	// away (at index-entry granularity, once it is worth a rewrite). The
	// active file is never deleted and always keeps its newest records,
	// so a log can still answer where its device last was. 0 keeps
	// everything.
	MaxLogAge time.Duration
	// ReadCacheBytes, when positive, enables the store-wide decoded-read
	// cache (cache.go) with that byte budget: index-entry spans decode
	// once and hot ReplayRange/SegmentAt queries are served from memory
	// with no I/O. 0 disables the cache (every read goes to disk, as
	// before); negative is an error. DefaultReadCacheBytes is a sensible
	// serving-tier budget.
	ReadCacheBytes int64
}

// Stats are store-wide counters, all cumulative except OpenHandles.
type Stats struct {
	Appends    int64 `json:"appends"`     // Append/AppendNoSync calls that wrote records
	Segments   int64 `json:"segments"`    // segments persisted
	Bytes      int64 `json:"bytes"`       // record bytes written (incl. framing)
	Syncs      int64 `json:"syncs"`       // explicit fsync calls
	GroupSyncs int64 `json:"group_syncs"` // fsyncs issued by CommitDevices group commits
	Recovered  int64 `json:"truncations"` // torn tails truncated during recovery

	PoisonedLogs      int64 `json:"poisoned_logs"`      // device logs quarantined by a write/fsync failure right now
	QuarantineReopens int64 `json:"quarantine_reopens"` // quarantined logs successfully re-recovered and resumed

	OpenHandles     int64 `json:"open_handles"`     // device logs holding an open file now
	HandleHits      int64 `json:"handle_hits"`      // appends that found their file open
	HandleMisses    int64 `json:"handle_misses"`    // appends that had to open (or create) a file
	HandleEvictions int64 `json:"handle_evictions"` // cold handles closed by the MaxOpenFiles LRU

	ResidentLogs  int64 `json:"resident_logs"`  // device logs with metadata in memory now
	MetaEvictions int64 `json:"meta_evictions"` // cold metadata dropped by the MaxResidentLogs LRU

	IndexWrites   int64 `json:"index_writes"`   // time-index sidecars persisted
	IndexRebuilds int64 `json:"index_rebuilds"` // sidecars rebuilt from data (missing/corrupt/stale)

	ReclaimedBytes    int64 `json:"reclaimed_bytes"`    // bytes deleted by retention
	DeletedFiles      int64 `json:"deleted_files"`      // files deleted by retention
	PrefixTruncations int64 `json:"prefix_truncations"` // files rewritten to drop an expired record prefix

	ReadBytes      int64 `json:"read_bytes"`        // record bytes preaded by queries and replays
	ReadCacheHits  int64 `json:"read_cache_hits"`   // granule reads served from the cache (no I/O)
	ReadCacheMiss  int64 `json:"read_cache_misses"` // granule reads that fetched from disk
	ReadCacheBytes int64 `json:"read_cache_bytes"`  // decoded bytes resident in the cache now
}

// Store is an append-only segment log over one directory. All methods
// are safe for concurrent use; appends for different devices proceed in
// parallel.
type Store struct {
	cfg      Config
	fs       fileSystem       // osFS in production; a fault injector in tests
	now      func() time.Time // wall clock for index entries and quarantine backoff; fixed in tests
	idxGran  int64            // index coalescing span; shrunk in tests
	quarBase time.Duration    // first quarantine reopen backoff; shrunk in tests
	quarMax  time.Duration    // backoff cap

	mu     sync.Mutex
	logs   map[string]*deviceLog //trajlint:guardedby mu
	metaLL list.List             //trajlint:guardedby mu -- *deviceLog metadata recency, most recent at front

	handles handleLRU
	cache   *granuleCache // nil when Config.ReadCacheBytes is 0

	appends    atomic.Int64
	segments   atomic.Int64
	bytes      atomic.Int64
	syncs      atomic.Int64
	groupSyncs atomic.Int64
	recovered  atomic.Int64

	poisonedLogs atomic.Int64 // gauge: logs quarantined right now
	quarReopens  atomic.Int64

	handleHits      atomic.Int64
	handleMisses    atomic.Int64
	handleEvictions atomic.Int64
	metaEvictions   atomic.Int64
	indexWrites     atomic.Int64
	indexRebuilds   atomic.Int64
	reclaimedBytes  atomic.Int64
	deletedFiles    atomic.Int64
	prefixTruncs    atomic.Int64
	readBytes       atomic.Int64

	closed atomic.Bool
	stop   chan struct{}
	maint  sync.WaitGroup
}

// deviceLog is one device's on-disk state. Opened lazily: recovery work
// happens at the first Append or Replay touching the device, not at
// store Open, so startup cost does not scale with the device population.
// The metadata (file list, append offset) stays resident once opened;
// the file handle itself comes and goes under the MaxOpenFiles LRU.
type deviceLog struct {
	// The per-device log lock is the write path's designed
	// serialization point: appends, rotation, retention and recovery
	// all do their file I/O under it (and only it), which is why it —
	// alone in the repo — carries the lockio exemption.
	//
	//trajlint:serializes-io
	mu      sync.Mutex
	device  string
	dir     string
	opened  bool  //trajlint:guardedby mu
	evicted bool  //trajlint:guardedby mu -- metadata LRU dropped this instance; holders must re-resolve
	seqs    []int //trajlint:guardedby mu -- existing file numbers, ascending
	f       file  //trajlint:guardedby mu -- newest file, open for append; nil until first write or after eviction
	size    int64 //trajlint:guardedby mu -- valid bytes in the newest file
	dirty   bool  //trajlint:guardedby mu -- has unsynced writes

	// Quarantine state. A write or fsync failure poisons the log: failed
	// is set, the file handle is discarded (a failed fsync is never
	// retried on the same descriptor — the kernel may have dropped the
	// dirty pages), and appends are rejected with the sticky failure
	// until quarNext. After that, the next append attempts recovery:
	// metadata is discarded and the log re-runs torn-tail recovery from
	// disk, resuming appends on success or backing off exponentially
	// (capped) on another failure.
	failed    error     //trajlint:guardedby mu -- sticky failure; non-nil while quarantined
	quarNext  time.Time //trajlint:guardedby mu -- earliest next reopen attempt
	quarTries int       //trajlint:guardedby mu -- consecutive failed reopen attempts

	// Sparse time index: tail covers the newest file (built by the open
	// scan, extended per append); idxCache holds sealed files' indexes
	// loaded from sidecars or rebuilt from data.
	tail     []indexEntry      //trajlint:guardedby mu
	idxCache map[int]fileIndex //trajlint:guardedby mu

	// Reusable append scratch (payload encode, CRC framing, the
	// write-combining buffer and its staged index entries), guarded by
	// mu like the rest of the log: steady-state appends allocate
	// nothing.
	payload []byte     //trajlint:guardedby mu
	frame   []byte     //trajlint:guardedby mu
	wbuf    []byte     //trajlint:guardedby mu
	wtail   []tailSpan //trajlint:guardedby mu

	// pins counts deferred appends awaiting CommitDevices. A pinned log's
	// handle is exempt from the MaxOpenFiles LRU (and its metadata from
	// the resident-log LRU), so the fsync the commit owes lands on the
	// same open file the appends wrote to.
	pins int //trajlint:guardedby mu

	// readPins counts live read snapshots per file (by seq). A pinned
	// file is never deleted or prefix-truncated by retention (compact.go)
	// and keeps this instance's metadata resident, so snapshot readers
	// decode stable bytes without holding mu.
	readPins map[int]int //trajlint:guardedby mu

	elem     *list.Element //trajlint:guardedby handleLRU.mu -- LRU position while f is open
	metaElem *list.Element //trajlint:guardedby Store.mu -- metadata recency position
}

// tailSpan is one staged time-index entry for a record sitting in the
// write-combining buffer: recorded at encode time, applied to the tail
// index only after its bytes reach the disk.
type tailSpan struct {
	off        int64
	minT, maxT int64
}

// Open validates cfg, creates the root directory, and returns a running
// Store. Per-device recovery is lazy (see deviceLog).
func Open(cfg Config) (*Store, error) {
	return openFS(cfg, osFS{})
}

// openFS is Open over an injectable filesystem — the seam fault-injection
// tests use to fail any chosen file operation.
func openFS(cfg Config, fsys fileSystem) (*Store, error) {
	if cfg.Dir == "" {
		return nil, errors.New("segstore: Config.Dir is required")
	}
	if cfg.MaxLogBytes < 0 {
		return nil, fmt.Errorf("segstore: negative MaxLogBytes %d", cfg.MaxLogBytes)
	}
	if cfg.MaxFileSize <= 0 {
		cfg.MaxFileSize = DefaultMaxFileSize
		if cfg.MaxLogBytes > 0 {
			if q := cfg.MaxLogBytes / 4; q < cfg.MaxFileSize {
				cfg.MaxFileSize = max(q, 4<<10)
			}
		}
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = DefaultSyncEvery
	}
	if cfg.MaxOpenFiles < 0 {
		return nil, fmt.Errorf("segstore: negative MaxOpenFiles %d", cfg.MaxOpenFiles)
	}
	if cfg.MaxOpenFiles == 0 {
		cfg.MaxOpenFiles = DefaultMaxOpenFiles
	}
	if cfg.MaxResidentLogs < 0 {
		return nil, fmt.Errorf("segstore: negative MaxResidentLogs %d", cfg.MaxResidentLogs)
	}
	if cfg.MaxResidentLogs == 0 {
		cfg.MaxResidentLogs = DefaultMaxResidentLogs
	}
	if cfg.MaxLogAge < 0 {
		return nil, fmt.Errorf("segstore: negative MaxLogAge %v", cfg.MaxLogAge)
	}
	if cfg.ReadCacheBytes < 0 {
		return nil, fmt.Errorf("segstore: negative ReadCacheBytes %d", cfg.ReadCacheBytes)
	}
	if _, err := ParseSyncPolicy(cfg.Sync.String()); err != nil {
		return nil, err
	}
	if err := fsys.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	s := &Store{
		cfg:      cfg,
		fs:       fsys,
		now:      defaultNow,
		idxGran:  defaultIndexGranularity,
		quarBase: defaultQuarantineBase,
		quarMax:  defaultQuarantineMax,
		logs:     make(map[string]*deviceLog),
		stop:     make(chan struct{}),
	}
	s.handles.cap = cfg.MaxOpenFiles
	if cfg.ReadCacheBytes > 0 {
		s.cache = newGranuleCache(cfg.ReadCacheBytes)
	}
	if cfg.Sync == SyncInterval || s.retentionOn() {
		s.maint.Add(1)
		go s.runMaintenance()
	}
	return s, nil
}

// escapeDevice maps a device ID to a filesystem-safe directory name:
// [a-z0-9_-] kept, every other byte %XX. Uppercase letters are escaped
// too — uppercase appears only in the (deterministic) hex digits, so two
// distinct IDs can never produce names differing only in case, which
// would collide on case-insensitive filesystems (APFS, NTFS). "." and
// ".." are unrepresentable outputs.
func escapeDevice(dev string) string {
	const hex = "0123456789ABCDEF"
	var sb strings.Builder
	for i := 0; i < len(dev); i++ {
		c := dev[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-' {
			sb.WriteByte(c)
			continue
		}
		sb.WriteByte('%')
		sb.WriteByte(hex[c>>4])
		sb.WriteByte(hex[c&0xF])
	}
	return sb.String()
}

// unhex decodes one uppercase hex digit — exactly the alphabet
// escapeDevice emits, so lowercase hex is a foreign name, not an alias.
func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// unescapeDevice inverts escapeDevice; it fails on names a Store never
// writes, which is how Devices skips foreign directory entries. Accepted
// names are canonical — escapeDevice(unescapeDevice(name)) == name — so
// two distinct directory names can never alias one device ID (lowercase
// hex and escapes of bytes escapeDevice keeps verbatim are rejected).
func unescapeDevice(name string) (string, error) {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '%':
			if i+2 >= len(name) {
				return "", fmt.Errorf("segstore: truncated escape in %q", name)
			}
			hi, ok1 := unhex(name[i+1])
			lo, ok2 := unhex(name[i+2])
			if !ok1 || !ok2 {
				return "", fmt.Errorf("segstore: bad escape in %q", name)
			}
			v := hi<<4 | lo
			if v >= 'a' && v <= 'z' || v >= '0' && v <= '9' || v == '_' || v == '-' {
				return "", fmt.Errorf("segstore: non-canonical escape %%%c%c in %q", name[i+1], name[i+2], name)
			}
			sb.WriteByte(v)
			i += 2
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '-':
			sb.WriteByte(c)
		default:
			return "", fmt.Errorf("segstore: unexpected byte %q in %q", c, name)
		}
	}
	return sb.String(), nil
}

func (s *Store) log(device string) (*deviceLog, error) {
	if device == "" || len(device) > maxDeviceID {
		return nil, fmt.Errorf("%w: %q", ErrDeviceID, device)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	l := s.logs[device]
	if l == nil {
		l = &deviceLog{device: device, dir: filepath.Join(s.cfg.Dir, escapeDevice(device))}
		s.logs[device] = l
		l.metaElem = s.metaLL.PushFront(l)
		s.evictMetaLocked(l)
	} else {
		s.metaLL.MoveToFront(l.metaElem)
	}
	return l, nil
}

// evictMetaLocked drops the coldest resident device logs while the
// MaxResidentLogs cap is exceeded — the metadata mirror of the handle
// LRU, so the logs map stops growing with every device ever seen.
// Victims must be fully quiescent: no open handle (the handle LRU's
// tighter cap makes cold logs handle-less first), no sticky failure (a
// poisoned log must keep rejecting appends — a fresh instance would
// forget the failed fsync), no live read snapshots (their pins live on
// this instance; a successor would not see them and retention could
// delete a file mid-read), and not mid-operation (TryLock). Evicted
// instances are flagged so a holder that raced past the map lookup
// re-resolves instead of writing alongside a successor (see lockLog).
// Caller holds s.mu.
//
//trajlint:holds s.mu
func (s *Store) evictMetaLocked(keep *deviceLog) {
	for e := s.metaLL.Back(); e != nil && s.metaLL.Len() > s.cfg.MaxResidentLogs; {
		prev := e.Prev()
		v := e.Value.(*deviceLog)
		if v != keep && v.mu.TryLock() {
			if v.f == nil && !v.dirty && v.failed == nil && v.pins == 0 && len(v.readPins) == 0 {
				v.evicted = true
				delete(s.logs, v.device)
				s.metaLL.Remove(e)
				v.metaElem = nil
				s.metaEvictions.Add(1)
			}
			v.mu.Unlock()
		}
		e = prev
	}
}

// lockLog resolves device's resident log and returns it with its mutex
// held, retrying if the metadata LRU evicted the instance between
// lookup and lock — the window where a stale pointer and a fresh
// instance could otherwise both touch the same files.
//
//trajlint:returns-locked mu
func (s *Store) lockLog(device string) (*deviceLog, error) {
	for {
		l, err := s.log(device)
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if !l.evicted {
			return l, nil
		}
		l.mu.Unlock()
	}
}

func fileName(seq int) string { return fmt.Sprintf("%08d%s", seq, fileSuffix) }

func (l *deviceLog) path(seq int) string { return filepath.Join(l.dir, fileName(seq)) }

// scanLog walks one file's bytes, appending decoded segments to dst,
// one time-index entry per record to idx (stamped wall — the file mtime,
// since a scan cannot know each record's true append time), and
// returning the length of the valid prefix. A short or corrupt record
// ends the scan (validLen marks where); only a bad file header is an
// outright error.
func scanLog(dst []traj.Segment, idx []indexEntry, b []byte, wall int64) ([]traj.Segment, []indexEntry, int64, error) {
	if len(b) < len(fileMagic) {
		return dst, idx, 0, nil // torn during creation: nothing recoverable
	}
	if string(b[:len(fileMagic)]) != fileMagic {
		return dst, idx, 0, fmt.Errorf("%w: bad file magic %q", ErrCorrupt, b[:len(fileMagic)])
	}
	off := int64(len(fileMagic))
	for off < int64(len(b)) {
		payload, n, err := enc.Frame(b[off:], maxRecordPayload)
		if err != nil {
			return dst, idx, off, nil
		}
		before := len(dst)
		decoded, err := decodeRecordPayload(dst, payload)
		if err != nil {
			// CRC-valid but undecodable: stop here too, so everything the
			// scan admits is replayable.
			return dst, idx, off, nil
		}
		dst = decoded
		if minT, maxT, ok := segTimeRange(dst[before:]); ok {
			idx = append(idx, indexEntry{off: off, minT: minT, maxT: maxT, wall: wall})
		}
		off += int64(n)
	}
	return dst, idx, off, nil
}

// segTimeRange returns the earliest segment start and latest segment end
// of one record's batch; ok is false for an empty batch (the store never
// writes one, but a scan stays robust to it).
func segTimeRange(segs []traj.Segment) (minT, maxT int64, ok bool) {
	if len(segs) == 0 {
		return 0, 0, false
	}
	minT, maxT = segs[0].Start.T, segs[0].End.T
	for _, s := range segs[1:] {
		minT = min(minT, s.Start.T)
		maxT = max(maxT, s.End.T)
	}
	return minT, maxT, true
}

// listSeqs returns the ascending log-file sequence numbers in dir; a
// missing directory lists as empty. Entries a Store never writes are
// skipped. The second result lists strays the store should sweep:
// index sidecars orphaned by a deleted data file, and temp files left
// by a crash mid-rewrite.
func (s *Store) listSeqs(dir string) ([]int, []string, error) {
	entries, err := s.fs.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil, nil
	} else if err != nil {
		return nil, nil, fmt.Errorf("segstore: %w", err)
	}
	var seqs []int
	var idxSeqs []int
	var strays []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		switch {
		case strings.HasSuffix(name, fileSuffix):
			seq, err := strconv.Atoi(strings.TrimSuffix(name, fileSuffix))
			if err != nil || seq <= 0 || fileName(seq) != name {
				continue
			}
			seqs = append(seqs, seq)
		case strings.HasSuffix(name, idxSuffix):
			seq, err := strconv.Atoi(strings.TrimSuffix(name, idxSuffix))
			if err != nil || seq <= 0 || idxName(seq) != name {
				continue
			}
			idxSeqs = append(idxSeqs, seq)
		case strings.HasSuffix(name, tmpSuffix):
			strays = append(strays, name)
		}
	}
	sort.Ints(seqs)
	live := make(map[int]bool, len(seqs))
	for _, seq := range seqs {
		live[seq] = true
	}
	for _, seq := range idxSeqs {
		if !live[seq] {
			strays = append(strays, idxName(seq))
		}
	}
	return seqs, strays, nil
}

// open lists the device's files and recovers the newest one, truncating
// a torn tail so the append offset lands on a record boundary. It leaves
// no file handle behind — the append path opens one on demand, under the
// MaxOpenFiles LRU, so a replay-only sweep of a million devices costs no
// lingering descriptors. Caller holds l.mu.
//
//trajlint:holds l.mu
func (l *deviceLog) open(s *Store) error {
	if l.opened {
		return nil
	}
	seqs, strays, err := s.listSeqs(l.dir)
	if err != nil {
		return err
	}
	// First contact sweeps strays: sidecars orphaned by a crash between
	// deleting an index and its data file, and temp files from a crash
	// mid-rewrite. Both are advisory debris — removal loses nothing.
	for _, name := range strays {
		_ = s.fs.Remove(filepath.Join(l.dir, name))
	}
	l.seqs = seqs
	if len(l.seqs) == 0 {
		l.opened = true
		return nil
	}
	last := l.seqs[len(l.seqs)-1]
	fi, err := s.fs.Stat(l.path(last))
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	b, err := s.fs.ReadFile(l.path(last))
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	// The recovery scan doubles as the tail-index rebuild: the newest
	// file's index is never persisted (it changes on every append), so
	// it is reconstructed here from the same pass that validates the
	// file. Wall stamps fall back to the file mtime — the last append —
	// which keeps record-range retention no more aggressive than the
	// whole-file mtime rule ever was.
	var entries []indexEntry
	_, entries, validLen, err := scanLog(nil, nil, b, fi.ModTime().UnixMilli())
	if err != nil {
		return fmt.Errorf("%w (%s)", err, l.path(last))
	}
	l.tail = coalesceEntries(entries, s.idxGran)
	// A torn tail is at most the bytes of one interrupted record write.
	// Anything longer means damage inside previously acknowledged data —
	// report it instead of silently truncating acknowledged records away.
	if torn := int64(len(b)) - validLen; torn > maxTornTail {
		return fmt.Errorf("%w: %d invalid bytes at offset %d — more than one torn write (%s)",
			ErrCorrupt, torn, validLen, l.path(last))
	}
	if validLen < int64(len(b)) || validLen < int64(len(fileMagic)) {
		f, err := s.fs.OpenFile(l.path(last), os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("segstore: %w", err)
		}
		if validLen < int64(len(b)) {
			if err := f.Truncate(validLen); err != nil {
				f.Close()
				return fmt.Errorf("segstore: truncate torn tail: %w", err)
			}
			s.recovered.Add(1)
		}
		// A file torn during creation recovers to zero bytes; restore its
		// header now so subsequent appends land in a valid file instead of
		// producing a magic-less log the next open would call corrupt.
		if validLen < int64(len(fileMagic)) {
			if _, err := f.WriteAt([]byte(fileMagic), 0); err != nil {
				f.Close()
				return fmt.Errorf("segstore: rewrite header: %w", err)
			}
			validLen = int64(len(fileMagic))
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("segstore: %w", err)
		}
	}
	l.size = validLen
	l.opened = true
	// First contact in this process: bring a log written under older (or
	// no) retention limits within budget.
	_ = s.compactLocked(l)
	return nil
}

// create starts file number seq, writing the header. Caller holds l.mu
// with l.f == nil (first write or just rotated).
//
//trajlint:holds l.mu
func (l *deviceLog) create(s *Store, seq int) error {
	if err := s.fs.MkdirAll(l.dir, 0o755); err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	f, err := s.fs.OpenFile(l.path(seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	if _, err := f.Write([]byte(fileMagic)); err != nil {
		// Remove the header-less file, or every retry of this seq would
		// hit O_EXCL and wedge the device until restart.
		f.Close()
		s.fs.Remove(l.path(seq))
		return fmt.Errorf("segstore: %w", err)
	}
	l.f, l.size = f, int64(len(fileMagic))
	l.seqs = append(l.seqs, seq)
	s.registerHandle(l)
	if s.cfg.Sync == SyncAlways {
		if err := s.syncDir(l.dir); err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so freshly created file entries survive a
// crash.
func (s *Store) syncDir(dir string) error {
	d, err := s.fs.Open(dir)
	if err != nil {
		return fmt.Errorf("segstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("segstore: sync dir: %w", err)
	}
	return nil
}

// rotate closes the current file (fsyncing it unless SyncNever), seals
// its time index as a sidecar, and starts the next one. Caller holds
// l.mu.
//
//trajlint:holds l.mu
func (l *deviceLog) rotate(s *Store) error {
	if s.cfg.Sync != SyncNever {
		if err := l.f.Sync(); err != nil {
			return s.poisonLocked(l, fmt.Errorf("segstore: rotate %s: sync: %w", l.device, err))
		}
		s.syncs.Add(1)
		l.dirty = false
	}
	if err := l.f.Close(); err != nil {
		// Close can surface deferred write-back errors; treat it like a
		// failed fsync rather than sealing a file of unknown durability.
		return s.poisonLocked(l, fmt.Errorf("segstore: rotate %s: close: %w", l.device, err))
	}
	l.f = nil
	seq := l.seqs[len(l.seqs)-1]
	sealedLen, sealed := l.size, l.tail
	if err := l.create(s, seq+1); err != nil {
		// The file is sealed only once its successor exists. On a failed
		// create (ENOSPC, a vanished directory) the old file stays the
		// append target — handle() reopens it at the tracked offset and
		// its tail index stays live — so the failure costs this append
		// only, and no sidecar gets persisted for a file still growing.
		return err
	}
	// Rotation is the moment a file becomes immutable — the one point
	// where persisting its index is final. Best effort: a failed sidecar
	// write costs a rebuild on the next range read, never the append.
	_ = l.writeIndex(s, seq, sealedLen, sealed)
	l.cacheIndex(seq, fileIndex{entries: sealed, dataLen: sealedLen})
	l.tail = nil // ownership moved to the cache
	return nil
}

// Append persists one batch of finalized segments for device. Batches
// larger than recordChunk split into multiple records. The write is
// crash-consistent: a torn append is truncated away on the next open,
// never replayed as garbage. Append matches stream.Sink.
func (s *Store) Append(device string, segs []traj.Segment) error {
	return s.append(device, segs, false)
}

// AppendNoSync is Append with durability deferred: under SyncAlways the
// per-append fsync is withheld and the log is left dirty and pinned —
// its handle exempt from the LRUs — until a CommitDevices call settles
// it. The bytes written are identical to Append's (same records, same
// torn-tail recovery), so the only thing at risk before the commit is
// the fsync. Under SyncInterval/SyncNever the pair behaves exactly like
// Append: the background flusher or the OS owns durability either way.
// This is the group-commit half of stream.DeferredSink.
func (s *Store) AppendNoSync(device string, segs []traj.Segment) error {
	return s.append(device, segs, true)
}

func (s *Store) append(device string, segs []traj.Segment, deferSync bool) error {
	if len(segs) == 0 {
		return nil
	}
	l, err := s.lockLog(device)
	if err != nil {
		return err
	}
	defer l.mu.Unlock()
	// Re-check under the log lock: Close closes file handles under it, so
	// an append that got its log before Close must not reopen files (or
	// write unsynced data) behind a closed store.
	if s.closed.Load() {
		return ErrClosed
	}
	// A quarantined log rejects appends with its sticky failure until the
	// backoff deadline, then attempts recovery right here.
	if err := s.tryUnquarantine(l); err != nil {
		return err
	}
	if err := l.open(s); err != nil {
		return err
	}
	// Reopen the newest file if the handle LRU evicted it (or mark the
	// handle warm if not); a log with no files yet is created below.
	if err := l.handle(s); err != nil {
		return err
	}
	// Write combining: record frames accumulate in wbuf and reach the file
	// in as few write syscalls as possible — typically one per append, so
	// a sweep-merged multi-batch payload costs one write. Each physical
	// write stays within maxTornTail bytes, keeping the recovery invariant
	// that a crash mid-write tears at most one truncatable tail. Index
	// entries for buffered records are staged in pend and applied only
	// once their bytes are on disk.
	var written int64
	wall := s.nowMs()
	wbuf, pend := l.wbuf[:0], l.wtail[:0]
	defer func() { l.wbuf, l.wtail = wbuf[:0], pend[:0] }()
	flush := func() error {
		if len(wbuf) == 0 {
			return nil
		}
		n, err := l.f.Write(wbuf)
		if err == nil {
			l.size += int64(n)
			written += int64(n)
			// Index the records only now that they are fully on disk: a torn
			// write must not leave entries pointing at truncated bytes.
			for _, p := range pend {
				l.addTail(p.off, p.minT, p.maxT, wall, s.idxGran)
			}
			wbuf, pend = wbuf[:0], pend[:0]
			return nil
		}
		// A partial write is a torn tail; try to cut it off now so the log
		// stays clean for in-process readers. If even that fails, poison
		// the log rather than append after garbage.
		if n > 0 {
			if terr := l.f.Truncate(l.size); terr == nil {
				if _, serr := l.f.Seek(l.size, 0); serr == nil {
					return fmt.Errorf("segstore: append %s: %w", device, err)
				}
			}
			return s.poisonLocked(l, fmt.Errorf("segstore: log %s unwritable after torn append: %w", device, err))
		}
		return fmt.Errorf("segstore: append %s: %w", device, err)
	}
	for off := 0; off < len(segs); off += recordChunk {
		chunk := segs[off:min(off+recordChunk, len(segs))]
		l.payload = appendRecordPayload(l.payload[:0], chunk)
		l.frame = enc.AppendFrame(l.frame[:0], l.payload)
		frame := l.frame
		pending := int64(len(wbuf))
		switch {
		case l.f == nil:
			seq := 1
			if n := len(l.seqs); n > 0 {
				seq = l.seqs[n-1] + 1
			}
			if err := l.create(s, seq); err != nil {
				return err
			}
		case l.size+pending > int64(len(fileMagic)) && l.size+pending+int64(len(frame)) > s.cfg.MaxFileSize:
			if err := flush(); err != nil {
				return err
			}
			if err := l.rotate(s); err != nil {
				return err
			}
			// Rotation is the moment the log grows past a file boundary:
			// enforce retention now, while the budget overshoot is one file.
			// Failure here must not fail the append — the maintenance loop
			// retries on its next tick.
			_ = s.compactLocked(l)
		}
		// Keep each physical write within the torn-tail budget recovery
		// accepts: one interrupted write's worth of invalid bytes.
		if len(wbuf) > 0 && len(wbuf)+len(frame) > maxTornTail {
			if err := flush(); err != nil {
				return err
			}
		}
		if minT, maxT, ok := segTimeRange(chunk); ok {
			pend = append(pend, tailSpan{off: l.size + int64(len(wbuf)), minT: minT, maxT: maxT})
		}
		wbuf = append(wbuf, frame...)
	}
	if err := flush(); err != nil {
		return err
	}
	switch {
	case deferSync:
		l.dirty = true
		l.pins++
	case s.cfg.Sync == SyncAlways:
		if err := l.f.Sync(); err != nil {
			// The bytes are written but not durable, and a failed fsync must
			// never be retried on the same descriptor (the kernel may have
			// dropped the dirty pages): quarantine, do not acknowledge.
			return s.poisonLocked(l, fmt.Errorf("segstore: append %s: sync: %w", device, err))
		}
		s.syncs.Add(1)
		l.dirty = false // earlier deferred writes are now durable too
	default:
		l.dirty = true
	}
	s.appends.Add(1)
	s.segments.Add(int64(len(segs)))
	s.bytes.Add(written)
	return nil
}

// CommitDevices settles a group of deferred AppendNoSync writes: for
// each named device it releases one handle pin and, under SyncAlways,
// fsyncs the log if it still holds unsynced bytes — one fsync per dirty
// file no matter how many deferred appends targeted it, which is the
// whole point: a sweep over K devices costs at most K fsyncs. Devices
// with no resident log or nothing left to sync are no-ops; under
// SyncInterval/SyncNever only the pin is released. The first commit
// failure is returned, but every device is still committed.
func (s *Store) CommitDevices(devices []string) error {
	var first error
	for _, dev := range devices {
		if err := s.commitDevice(dev); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *Store) commitDevice(device string) error {
	s.mu.Lock()
	l := s.logs[device]
	s.mu.Unlock()
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pins > 0 {
		l.pins--
	}
	// Nothing to sync: a poisoned log already surfaced its failure through
	// the append, an evicted instance holds no deferred state (pinned logs
	// are LRU-exempt), and a nil handle means Close or rotation already
	// made the bytes durable.
	if l.failed != nil || l.evicted || s.cfg.Sync != SyncAlways || !l.dirty || l.f == nil {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		// A failed fsync must not be retried as if nothing happened — the
		// kernel may have dropped the dirty pages. Quarantine the log so
		// the next append surfaces the durability loss instead of
		// extending an unflushed file.
		return s.poisonLocked(l, fmt.Errorf("segstore: group commit %s: %w", device, err))
	}
	l.dirty = false
	s.syncs.Add(1)
	s.groupSyncs.Add(1)
	return nil
}

// Devices lists every device with a log on disk, sorted. Stray entries
// in the data dir — loose files, foreign or unreadable directories, and
// directories holding no log files (e.g. a crash between creating a
// device directory and its first file) — are skipped, not reported as
// devices and not errors.
func (s *Store) Devices() ([]string, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	entries, err := s.fs.ReadDir(s.cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("segstore: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dev, err := unescapeDevice(e.Name())
		if err != nil {
			continue // not ours
		}
		seqs, _, err := s.listSeqs(filepath.Join(s.cfg.Dir, e.Name()))
		if err != nil || len(seqs) == 0 {
			continue // unreadable or empty: nothing to replay
		}
		out = append(out, dev)
	}
	sort.Strings(out)
	return out, nil
}

// Sync fsyncs every log with unsynced writes. The background flusher
// calls this on the SyncInterval period.
func (s *Store) Sync() error {
	s.mu.Lock()
	logs := make([]*deviceLog, 0, len(s.logs))
	for _, l := range s.logs {
		logs = append(logs, l)
	}
	s.mu.Unlock()
	var first error
	for _, l := range logs {
		l.mu.Lock()
		if l.dirty && l.f != nil {
			if err := l.f.Sync(); err != nil {
				// Quarantine instead of retrying the failed fsync on the
				// same descriptor next tick — the retry would report
				// success without the dropped pages ever reaching disk.
				perr := s.poisonLocked(l, fmt.Errorf("segstore: background sync %s: %w", l.device, err))
				if first == nil {
					first = perr
				}
			} else {
				l.dirty = false
				s.syncs.Add(1)
			}
		}
		l.mu.Unlock()
	}
	return first
}

// runMaintenance is the store's one background goroutine: every
// SyncEvery it fsyncs dirty logs (SyncInterval policy) and runs the
// retention pass over the logs this process has touched.
func (s *Store) runMaintenance() {
	defer s.maint.Done()
	//trajlint:ignore walltime maintenance cadence is real elapsed time by design; tests drive syncs and retention directly, never through this ticker
	tick := time.NewTicker(s.cfg.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-tick.C:
			if s.cfg.Sync == SyncInterval {
				s.Sync()
			}
			if s.retentionOn() {
				s.compactKnown()
			}
		}
	}
}

// Stats returns a snapshot of the store-wide counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	resident := int64(s.metaLL.Len())
	s.mu.Unlock()
	return Stats{
		Appends:    s.appends.Load(),
		Segments:   s.segments.Load(),
		Bytes:      s.bytes.Load(),
		Syncs:      s.syncs.Load(),
		GroupSyncs: s.groupSyncs.Load(),
		Recovered:  s.recovered.Load(),

		PoisonedLogs:      s.poisonedLogs.Load(),
		QuarantineReopens: s.quarReopens.Load(),

		OpenHandles:     int64(s.handles.open()),
		HandleHits:      s.handleHits.Load(),
		HandleMisses:    s.handleMisses.Load(),
		HandleEvictions: s.handleEvictions.Load(),

		ResidentLogs:  resident,
		MetaEvictions: s.metaEvictions.Load(),

		IndexWrites:   s.indexWrites.Load(),
		IndexRebuilds: s.indexRebuilds.Load(),

		ReclaimedBytes:    s.reclaimedBytes.Load(),
		DeletedFiles:      s.deletedFiles.Load(),
		PrefixTruncations: s.prefixTruncs.Load(),

		ReadBytes:      s.readBytes.Load(),
		ReadCacheHits:  s.cache.hitCount(),
		ReadCacheMiss:  s.cache.missCount(),
		ReadCacheBytes: s.cache.sizeBytes(),
	}
}

// Close stops the flusher, syncs and closes every open log, and rejects
// further use. Close the engine writing into the store first, so its
// final flush lands. Subsequent calls return nil.
func (s *Store) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.maint.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, l := range s.logs {
		l.mu.Lock()
		if l.f != nil {
			if s.cfg.Sync != SyncNever && l.dirty {
				//trajlint:ignore lockio shutdown path: Close holds s.mu precisely to freeze the log table while it flushes every handle once; nothing else can contend
				if err := l.f.Sync(); err != nil && first == nil {
					first = fmt.Errorf("segstore: %w", err)
				}
				s.syncs.Add(1)
			}
			if err := s.dropHandle(l); err != nil && first == nil {
				first = fmt.Errorf("segstore: %w", err)
			}
		}
		l.mu.Unlock()
	}
	return first
}
