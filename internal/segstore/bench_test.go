package segstore

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkAppendColdHandle measures the cost the MaxOpenFiles LRU adds
// to an append that lost its handle: alternating between two devices
// under a cap of one makes every append a miss — close (with eviction),
// reopen, seek — on top of the write itself.
func BenchmarkAppendColdHandle(b *testing.B) {
	b.ReportAllocs()
	s, err := Open(Config{Dir: b.TempDir(), MaxOpenFiles: 1, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	segs := syntheticSegs(8)
	devs := [2]string{"cold-a", "cold-b"}
	for _, d := range devs { // pay first-open recovery outside the loop
		if err := s.Append(d, segs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(devs[i%2], segs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.HandleEvictions < int64(b.N) {
		b.Fatalf("benchmark not exercising eviction: %+v", st)
	}
}

// BenchmarkAppendWarmHandle is the baseline: same append with the
// handle already open, the common case under a generous cap.
func BenchmarkAppendWarmHandle(b *testing.B) {
	b.ReportAllocs()
	s, err := Open(Config{Dir: b.TempDir(), Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	segs := syntheticSegs(8)
	if err := s.Append("warm", segs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append("warm", segs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay measures a cold replay of a multi-file log at several
// sizes — the restart-recovery read path.
func BenchmarkReplay(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("segments=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			dir := b.TempDir()
			s, err := Open(Config{Dir: dir, MaxFileSize: 4096, Sync: SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Append("dev", syntheticSegs(n)); err != nil {
				b.Fatal(err)
			}
			if err := s.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := Open(Config{Dir: dir, Sync: SyncNever})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				segs, err := s.Replay("dev")
				if err != nil || len(segs) != n {
					b.Fatalf("%d segments, %v", len(segs), err)
				}
				b.StopTimer()
				s.Close()
				b.StartTimer()
			}
		})
	}
}

// BenchmarkReplayRange pits the indexed range read against a full scan
// over the same log: a narrow window on a large multi-file log should
// cost a couple of index lookups and one span read per touched file —
// O(log n) in records — where Replay pays for every byte.
func BenchmarkReplayRange(b *testing.B) {
	b.ReportAllocs()
	const n = 16384
	segs := syntheticSegs(n)
	dir := b.TempDir()
	s, err := Open(Config{Dir: dir, MaxFileSize: 64 << 10, Sync: SyncNever})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for off := 0; off < n; off += 64 {
		if err := s.Append("dev", segs[off:off+64]); err != nil {
			b.Fatal(err)
		}
	}
	// A 16-segment window in the middle of the log, nudged 1 ms inward so
	// the boundary-sharing neighbor segments fall outside it.
	from := segs[n/2].Start.T + 1
	to := segs[n/2+15].End.T - 1

	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			got, err := s.ReplayRange("dev", from, to)
			if err != nil || len(got) != 16 {
				b.Fatalf("%d segments, %v", len(got), err)
			}
		}
	})
	b.Run("fullscan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			all, err := s.Replay("dev")
			if err != nil {
				b.Fatal(err)
			}
			got := all[:0]
			for _, sg := range all {
				if sg.End.T >= from && sg.Start.T <= to {
					got = append(got, sg)
				}
			}
			if len(got) != 16 {
				b.Fatalf("%d segments", len(got))
			}
		}
	})
	b.Run("at", func(b *testing.B) {
		b.ReportAllocs()
		t := (from + to) / 2
		for i := 0; i < b.N; i++ {
			if _, err := s.SegmentAt("dev", t); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkReplayRangeHot measures the concurrent cached read path: the
// same 16-segment window (and position probe) as BenchmarkReplayRange,
// cold (ReadCacheBytes=0 — every query preads and decodes its spans)
// versus warm (cached granules — no I/O at all), at 1 and 8 concurrent
// readers hammering ONE device: the workload the per-device lock used
// to serialize end to end.
func BenchmarkReplayRangeHot(b *testing.B) {
	const n = 16384
	segs := syntheticSegs(n)
	build := func(cacheBytes int64) *Store {
		s, err := Open(Config{Dir: b.TempDir(), MaxFileSize: 64 << 10, Sync: SyncNever, ReadCacheBytes: cacheBytes})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		for off := 0; off < n; off += 64 {
			if err := s.Append("dev", segs[off:off+64]); err != nil {
				b.Fatal(err)
			}
		}
		return s
	}
	from := segs[n/2].Start.T + 1
	to := segs[n/2+15].End.T - 1
	window := func(b *testing.B, s *Store, readers int) {
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			cnt := b.N / readers
			if r == 0 {
				cnt += b.N % readers
			}
			wg.Add(1)
			go func(cnt int) {
				defer wg.Done()
				for i := 0; i < cnt; i++ {
					got, err := s.ReplayRange("dev", from, to)
					if err != nil || len(got) != 16 {
						b.Errorf("%d segments, %v", len(got), err)
						return
					}
				}
			}(cnt)
		}
		wg.Wait()
	}
	for _, mode := range []struct {
		name  string
		cache int64
	}{{"cold", 0}, {"warm", 64 << 20}} {
		s := build(mode.cache)
		if mode.cache > 0 { // prime: the steady state being measured is all-hits
			if _, err := s.ReplayRange("dev", from, to); err != nil {
				b.Fatal(err)
			}
		}
		for _, readers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/readers=%d", mode.name, readers), func(b *testing.B) {
				window(b, s, readers)
			})
		}
		if mode.cache > 0 {
			b.Run("warm/at", func(b *testing.B) {
				b.ReportAllocs()
				tm := (from + to) / 2
				for i := 0; i < b.N; i++ {
					if _, err := s.SegmentAt("dev", tm); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
