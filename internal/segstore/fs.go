package segstore

import (
	"io/fs"
	"os"
)

// The filesystem seam: every file operation the store performs goes
// through a fileSystem, so tests (and a CI fault stage) can inject
// ENOSPC, short writes, failed fsyncs, and failed opens at every call
// site and assert the store never acknowledges data it lost. Production
// uses osFS — a zero-size struct whose methods delegate straight to
// package os and return *os.File values, so the interface indirection
// is a devirtualizable call on a concrete type, not an abstraction tax:
// the 0 allocs/op append gates and BenchmarkIngestWithSink hold
// unchanged with the seam in place.

// file is the subset of *os.File the store uses. A fault-injecting
// implementation wraps the real file and fails chosen calls — including
// partial writes, where n < len(b) bytes actually reach the disk, the
// shape torn-tail recovery exists for.
type file interface {
	Write(b []byte) (int, error)
	WriteAt(b []byte, off int64) (int, error)
	ReadAt(b []byte, off int64) (int, error)
	Seek(offset int64, whence int) (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// fileSystem is the store's view of the OS: open/create/read/list/
// remove/rename, each an injection point for storage faults.
type fileSystem interface {
	OpenFile(name string, flag int, perm os.FileMode) (file, error)
	Open(name string) (file, error)
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm os.FileMode) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	Remove(name string) error
	Rename(oldpath, newpath string) error
}

// osFS is the production fileSystem: package os, verbatim.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (file, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (file, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
