package segstore

import (
	"io/fs"
	"os"
	"sync"
)

// faultFS is the test half of the filesystem seam (fs.go): it delegates
// to osFS, counts every operation in order, and injects failures two
// ways — a single-shot fault armed at one operation index (the fault
// matrix sweeps that index across a whole workload), and a "wedge" that
// fails every operation of one kind until cleared (a disk that stays
// broken: full, unplugged, remounting). Short-write mode delivers half
// the bytes before failing, the shape torn-tail recovery exists for.
type faultFS struct {
	mu    sync.Mutex
	n     int      // operations so far
	trace []string // operation kinds, in order
	armAt int      // operation index to fail once; <0 disarmed
	err   error    // injected error for both arm and wedge faults
	short bool     // armed Write faults deliver half the bytes first
	fired bool     // the armed fault went off
	wedge string   // while non-empty, every op of this kind fails
}

func newFaultFS() *faultFS { return &faultFS{armAt: -1} }

// step counts one operation and reports whether to inject its failure.
func (ff *faultFS) step(kind string) bool {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	i := ff.n
	ff.n++
	ff.trace = append(ff.trace, kind)
	if ff.wedge == kind {
		return true
	}
	if i == ff.armAt {
		ff.fired = true
		return true
	}
	return false
}

func (ff *faultFS) ops() int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.n
}

func (ff *faultFS) kindAt(i int) string {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	return ff.trace[i]
}

func (ff *faultFS) setWedge(kind string) {
	ff.mu.Lock()
	ff.wedge = kind
	ff.mu.Unlock()
}

// opsOfKind counts operations of one kind seen so far.
func (ff *faultFS) opsOfKind(kind string) int {
	ff.mu.Lock()
	defer ff.mu.Unlock()
	n := 0
	for _, k := range ff.trace {
		if k == kind {
			n++
		}
	}
	return n
}

func (ff *faultFS) OpenFile(name string, flag int, perm os.FileMode) (file, error) {
	if ff.step("openfile") {
		return nil, ff.err
	}
	f, err := (osFS{}).OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, ff: ff}, nil
}

func (ff *faultFS) Open(name string) (file, error) {
	if ff.step("open") {
		return nil, ff.err
	}
	f, err := (osFS{}).Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, ff: ff}, nil
}

func (ff *faultFS) ReadFile(name string) ([]byte, error) {
	if ff.step("readfile") {
		return nil, ff.err
	}
	return os.ReadFile(name)
}

func (ff *faultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if ff.step("writefile") {
		return ff.err
	}
	return os.WriteFile(name, data, perm)
}

func (ff *faultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if ff.step("readdir") {
		return nil, ff.err
	}
	return os.ReadDir(name)
}

func (ff *faultFS) Stat(name string) (os.FileInfo, error) {
	if ff.step("stat") {
		return nil, ff.err
	}
	return os.Stat(name)
}

func (ff *faultFS) MkdirAll(path string, perm os.FileMode) error {
	if ff.step("mkdirall") {
		return ff.err
	}
	return os.MkdirAll(path, perm)
}

func (ff *faultFS) Remove(name string) error {
	if ff.step("remove") {
		return ff.err
	}
	return os.Remove(name)
}

func (ff *faultFS) Rename(oldpath, newpath string) error {
	if ff.step("rename") {
		return ff.err
	}
	return os.Rename(oldpath, newpath)
}

// faultFile wraps an open file with the same injection points.
type faultFile struct {
	f  file
	ff *faultFS
}

func (w *faultFile) Write(b []byte) (int, error) {
	if w.ff.step("write") {
		if w.ff.short && len(b) > 1 {
			// A torn write: half the bytes reach the disk for real, then
			// the "device" fails.
			n, _ := w.f.Write(b[: len(b)/2 : len(b)/2])
			return n, w.ff.err
		}
		return 0, w.ff.err
	}
	return w.f.Write(b)
}

func (w *faultFile) WriteAt(b []byte, off int64) (int, error) {
	if w.ff.step("writeat") {
		return 0, w.ff.err
	}
	return w.f.WriteAt(b, off)
}

func (w *faultFile) ReadAt(b []byte, off int64) (int, error) {
	if w.ff.step("readat") {
		return 0, w.ff.err
	}
	return w.f.ReadAt(b, off)
}

func (w *faultFile) Seek(offset int64, whence int) (int64, error) {
	if w.ff.step("seek") {
		return 0, w.ff.err
	}
	return w.f.Seek(offset, whence)
}

func (w *faultFile) Truncate(size int64) error {
	if w.ff.step("truncate") {
		return w.ff.err
	}
	return w.f.Truncate(size)
}

func (w *faultFile) Sync() error {
	if w.ff.step("sync") {
		return w.ff.err
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error {
	if w.ff.step("close") {
		return w.ff.err
	}
	return w.f.Close()
}
