package segstore

import (
	"container/list"
	"sync"
	"sync/atomic"
	"unsafe"

	"trajsim/internal/traj"
)

// The granule cache is the read path's answer to the write path's group
// commit: the same decoded segments should not cost a pread and a varint
// decode on every query. A granule is one index-entry span of one log
// file — a byte range starting and ending on record boundaries, the unit
// readSpans/segmentAtSpans fetch — cached store-wide as its decoded
// []traj.Segment under a byte budget (Config.ReadCacheBytes).
//
// Keys carry the span's end offset as well as its start. Spans of sealed
// files are immutable, so their keys are stable; the live file's final
// span grows with every append, which under (device, seq, off, end)
// keying simply becomes a *new* key — the stale predecessor ages out of
// the LRU with no write-path invalidation hook. The same property makes
// rotation and re-ingest overlap no-ops for the cache: rotation freezes
// the tail index with the byte spans it already had, and re-ingest only
// appends new records. The two operations that rewrite existing bytes —
// whole-file retention deletes and expired-prefix truncation — must (and
// do, see compact.go) call invalidateFile before the offsets can be
// reused.
//
// Cached slices are immutable: readers copy segments out (an append of
// struct values, no decode), SegmentAt scans them in place. A granule is
// only inserted after a successful CRC-checked decode of exactly its key
// span, so a cached answer is always the decode of the bytes the key
// names — the coherence oracle test (cache_test.go) checks this against
// a raw rescan after every mutation the store supports.
//
// Concurrent misses on one key are collapsed by a per-key singleflight:
// the first reader does the pread+decode, the rest wait and share the
// result. Hits count reads served without I/O (including singleflight
// waiters); misses count actual pread+decode fetches.

// granuleKey names one immutable decoded byte span of a log file.
type granuleKey struct {
	device   string
	seq      int
	off, end int64
}

// fileKey names a whole log file, the invalidation granularity.
type fileKey struct {
	device string
	seq    int
}

// granule is one cached decoded span.
type granule struct {
	key  granuleKey
	segs []traj.Segment
	cost int64
	elem *list.Element
}

// inflightGranule is a singleflight slot: the leader fills segs/err and
// closes done; waiters block on done and share the result.
type inflightGranule struct {
	done chan struct{}
	segs []traj.Segment
	err  error
}

// granuleCost approximates a granule's resident bytes: the decoded
// segments plus fixed per-entry bookkeeping (map buckets, list element,
// the granule struct itself).
const granuleOverhead = 256

var segmentBytes = int64(unsafe.Sizeof(traj.Segment{}))

func granuleCost(segs []traj.Segment) int64 {
	return granuleOverhead + int64(cap(segs))*segmentBytes
}

// granuleCache is the store-wide decoded-granule LRU. All fields are
// guarded by mu except the counters; it takes no other lock, so it nests
// freely inside deviceLog.mu (invalidateFile runs under it) and is never
// held across I/O (load's fetch runs outside).
type granuleCache struct {
	budget int64

	mu       sync.Mutex
	ll       list.List                           //trajlint:guardedby mu -- *granule, most recently used at the front
	byKey    map[granuleKey]*granule             //trajlint:guardedby mu
	byFile   map[fileKey]map[granuleKey]*granule //trajlint:guardedby mu
	inflight map[granuleKey]*inflightGranule     //trajlint:guardedby mu
	bytes    int64                               //trajlint:guardedby mu

	hits   atomic.Int64
	misses atomic.Int64
}

func newGranuleCache(budget int64) *granuleCache {
	return &granuleCache{
		budget:   budget,
		byKey:    make(map[granuleKey]*granule),
		byFile:   make(map[fileKey]map[granuleKey]*granule),
		inflight: make(map[granuleKey]*inflightGranule),
	}
}

// get returns key's decoded span if resident — the hot path, taken
// before the caller even builds a fetch closure, so a cached query
// allocates nothing here. The returned slice is shared and read-only.
func (c *granuleCache) get(key granuleKey) ([]traj.Segment, bool) {
	c.mu.Lock()
	g, ok := c.byKey[key]
	if ok {
		c.ll.MoveToFront(g.elem)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	c.hits.Add(1)
	return g.segs, true
}

// load returns key's decoded span, fetching (and caching) it on a miss.
// fetch runs with no cache lock held; concurrent loads of the same key
// share one fetch. The returned slice is shared and must be treated as
// read-only.
func (c *granuleCache) load(key granuleKey, fetch func() ([]traj.Segment, error)) ([]traj.Segment, error) {
	c.mu.Lock()
	if g, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(g.elem)
		c.mu.Unlock()
		c.hits.Add(1)
		return g.segs, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		c.hits.Add(1) // shared the leader's fetch: no extra I/O
		return fl.segs, nil
	}
	fl := &inflightGranule{done: make(chan struct{})}
	c.inflight[key] = fl
	c.mu.Unlock()

	c.misses.Add(1)
	segs, err := fetch()
	fl.segs, fl.err = segs, err
	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		c.insertLocked(key, segs)
	}
	c.mu.Unlock()
	close(fl.done)
	return segs, err
}

// insertLocked adds one fetched granule and evicts the coldest entries
// while the budget is exceeded. A span too large to ever fit is not
// cached at all. Caller holds c.mu.
//
//trajlint:holds c.mu
func (c *granuleCache) insertLocked(key granuleKey, segs []traj.Segment) {
	if c.byKey[key] != nil {
		return // a racing invalidate+reload beat us; keep the resident one
	}
	cost := granuleCost(segs)
	if cost > c.budget {
		return
	}
	g := &granule{key: key, segs: segs, cost: cost}
	g.elem = c.ll.PushFront(g)
	c.byKey[key] = g
	fk := fileKey{key.device, key.seq}
	m := c.byFile[fk]
	if m == nil {
		m = make(map[granuleKey]*granule)
		c.byFile[fk] = m
	}
	m[key] = g
	c.bytes += cost
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil || back == g.elem {
			break
		}
		c.removeLocked(back.Value.(*granule))
	}
}

// removeLocked unlinks one granule from every structure. Caller holds
// c.mu.
//
//trajlint:holds c.mu
func (c *granuleCache) removeLocked(g *granule) {
	c.ll.Remove(g.elem)
	delete(c.byKey, g.key)
	fk := fileKey{g.key.device, g.key.seq}
	if m := c.byFile[fk]; m != nil {
		delete(m, g.key)
		if len(m) == 0 {
			delete(c.byFile, fk)
		}
	}
	c.bytes -= g.cost
}

// invalidateFile drops every granule of (device, seq) — required before
// the bytes behind those keys can change or their offsets be reused:
// whole-file retention deletes and expired-prefix truncation. Safe (and
// cheap) to call for files that were never cached.
func (c *granuleCache) invalidateFile(device string, seq int) {
	c.mu.Lock()
	for _, g := range c.byFile[fileKey{device, seq}] {
		c.removeLocked(g)
	}
	c.mu.Unlock()
}

// The stats accessors are nil-safe so Stats() reads zeros from a store
// with the cache off.

func (c *granuleCache) hitCount() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

func (c *granuleCache) missCount() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// sizeBytes reports the resident decoded bytes.
func (c *granuleCache) sizeBytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
