package segstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// logBytes reads the single log file of dev in dir.
func logBytes(t *testing.T, dir, dev string) (string, []byte) {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, escapeDevice(dev), "*"+fileSuffix))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	return files[0], b
}

// buildLog writes two records for "dev" into a fresh store and returns
// the log path, its bytes, and the offset where the second record begins.
func buildLog(t *testing.T, dir string, segsA, segsB []traj.Segment) (string, []byte, int) {
	t.Helper()
	s, err := Open(Config{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append("dev", segsA); err != nil {
		t.Fatal(err)
	}
	_, afterA := logBytes(t, dir, "dev")
	if err := s.Append("dev", segsB); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path, whole := logBytes(t, dir, "dev")
	return path, whole, len(afterA)
}

// TestRecoveryAtEveryTornOffset simulates a crash at every byte of the
// final record's write: the log truncated to each prefix must recover to
// exactly the first record's segments, and then accept new appends.
func TestRecoveryAtEveryTornOffset(t *testing.T) {
	segsA := simplified(t, gen.Taxi, 300, 41)
	segsB := simplified(t, gen.Truck, 300, 42)
	segsC := simplified(t, gen.SerCar, 100, 43)[:2]
	_, whole, recB := buildLog(t, t.TempDir(), segsA, segsB)
	wantA := quantizeAll(segsA)

	for cut := recB; cut < len(whole); cut++ {
		dir := t.TempDir()
		devDir := filepath.Join(dir, "dev")
		if err := os.MkdirAll(devDir, 0o755); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(devDir, fileName(1))
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.Replay("dev")
		if err != nil {
			t.Fatalf("cut %d: replay: %v", cut, err)
		}
		if !reflect.DeepEqual(got, wantA) {
			t.Fatalf("cut %d: recovered %d segments, want the %d of record A", cut, len(got), len(wantA))
		}
		// Recovery physically truncated the torn tail…
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(recB) {
			t.Fatalf("cut %d: file is %d bytes after recovery, want %d", cut, fi.Size(), recB)
		}
		// …so the log keeps growing cleanly from the recovered boundary.
		if err := s.Append("dev", segsC); err != nil {
			t.Fatalf("cut %d: append after recovery: %v", cut, err)
		}
		got, err = s.Replay("dev")
		if err != nil {
			t.Fatalf("cut %d: replay after append: %v", cut, err)
		}
		if want := append(append([]traj.Segment(nil), wantA...), quantizeAll(segsC)...); !reflect.DeepEqual(got, want) {
			t.Fatalf("cut %d: post-recovery log replays wrong", cut)
		}
		// cut == recB is a crash between records: the log ends on a clean
		// boundary and there is nothing to truncate.
		want := int64(1)
		if cut == recB {
			want = 0
		}
		if st := s.Stats(); st.Recovered != want {
			t.Fatalf("cut %d: stats %+v, want %d truncation(s)", cut, st, want)
		}
		s.Close()
	}
}

// TestRecoveryTruncatedHeader: a crash during file creation can leave
// fewer bytes than the magic; recovery restores the header, so appends
// land in a valid file and the NEXT open still replays cleanly (a
// regression here once produced magic-less, permanently corrupt logs).
func TestRecoveryTruncatedHeader(t *testing.T) {
	for cut := 0; cut < len(fileMagic); cut++ {
		dir := t.TempDir()
		devDir := filepath.Join(dir, "dev")
		if err := os.MkdirAll(devDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(devDir, fileName(1)), []byte(fileMagic[:cut]), 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Config{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if got, err := s.Replay("dev"); err != nil || len(got) != 0 {
			t.Fatalf("cut %d: %v, %v", cut, got, err)
		}
		segs := simplified(t, gen.Taxi, 60, 44)[:1]
		if err := s.Append("dev", segs); err != nil {
			t.Fatalf("cut %d: append: %v", cut, err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		// The log written over the repaired header must survive a cold
		// reopen.
		s2, err := Open(Config{Dir: dir, Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		got, err := s2.Replay("dev")
		if err != nil {
			t.Fatalf("cut %d: replay after reopen: %v", cut, err)
		}
		if !reflect.DeepEqual(got, quantizeAll(segs)) {
			t.Fatalf("cut %d: reopened log replays wrong: %v", cut, got)
		}
		s2.Close()
	}
}

// TestOversizedTornTailIsCorruption: an invalid region longer than one
// record write cannot be a torn tail; recovery must refuse to truncate
// it (that would silently destroy acknowledged data) and report
// ErrCorrupt instead.
func TestOversizedTornTailIsCorruption(t *testing.T) {
	dir := t.TempDir()
	segsA := simplified(t, gen.Taxi, 300, 47)
	path, whole, recB := buildLog(t, dir, segsA, simplified(t, gen.Truck, 300, 48))
	// Flip a bit at the start of record B and pad the file so the invalid
	// region exceeds maxTornTail.
	mut := append([]byte(nil), whole[:recB]...)
	mut = append(mut, whole[recB]^0x01)
	mut = append(mut, make([]byte, maxTornTail+16)...)
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(Config{Dir: dir, Sync: SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Replay("dev"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("replay: %v, want ErrCorrupt", err)
	}
	if err := s.Append("dev", segsA[:1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("append: %v, want ErrCorrupt", err)
	}
	// The file was NOT truncated: the data is preserved for inspection.
	if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(mut)) {
		t.Fatalf("file size %d, want untouched %d", fi.Size(), len(mut))
	}
}

// TestCorruptionDetected: damage that is not a torn tail — a flipped bit
// inside an earlier record, or a wrong magic — must surface as
// ErrCorrupt, not silent data loss.
func TestCorruptionDetected(t *testing.T) {
	segsA := simplified(t, gen.Taxi, 300, 45)
	segsB := simplified(t, gen.Truck, 300, 46)

	t.Run("bad magic", func(t *testing.T) {
		dir := t.TempDir()
		path, whole, _ := buildLog(t, dir, segsA, segsB)
		mut := append([]byte(nil), whole...)
		mut[0] ^= 0xFF
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _ := Open(Config{Dir: dir, Sync: SyncNever})
		defer s.Close()
		if _, err := s.Replay("dev"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay: %v, want ErrCorrupt", err)
		}
		if err := s.Append("dev", segsA[:1]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("append: %v, want ErrCorrupt", err)
		}
	})

	t.Run("flipped bit in first record drops the tail", func(t *testing.T) {
		// A bit flip mid-log is indistinguishable from a torn tail at that
		// point: recovery keeps the prefix and truncates the rest. What it
		// must never do is replay damaged segments.
		dir := t.TempDir()
		path, whole, recB := buildLog(t, dir, segsA, segsB)
		mut := append([]byte(nil), whole...)
		mut[len(fileMagic)+3] ^= 0x10 // inside record A's payload
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _ := Open(Config{Dir: dir, Sync: SyncNever})
		defer s.Close()
		got, err := s.Replay("dev")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("replayed %d segments from a log whose first record is damaged", len(got))
		}
		_ = recB
	})

	t.Run("torn tail in a non-last file", func(t *testing.T) {
		// Rotation means only the newest file may legitimately end torn.
		dir := t.TempDir()
		_, whole, recB := buildLog(t, dir, segsA, segsB)
		devDir := filepath.Join(dir, "dev")
		// Rewrite file 1 torn, and add a valid file 2.
		if err := os.WriteFile(filepath.Join(devDir, fileName(1)), whole[:recB+3], 0o644); err != nil {
			t.Fatal(err)
		}
		second, err := Open(Config{Dir: t.TempDir(), Sync: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		second.Append("dev", segsB)
		second.Close()
		_, fileB := logBytes(t, second.cfg.Dir, "dev")
		if err := os.WriteFile(filepath.Join(devDir, fileName(2)), fileB, 0o644); err != nil {
			t.Fatal(err)
		}
		s, _ := Open(Config{Dir: dir, Sync: SyncNever})
		defer s.Close()
		if _, err := s.Replay("dev"); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("replay: %v, want ErrCorrupt", err)
		}
	})
}
