package segstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// Tests for the concurrent cached read path: every cached answer must be
// identical to what the bytes on disk say, across appends, rotation,
// retention deletes, prefix truncation, and re-ingest overlap — and the
// snapshot model must hold up under racing readers and writers.

// rawReplay decodes device's log straight from the files on disk — the
// ground truth, sharing nothing with the read path or cache under test.
func rawReplay(t *testing.T, dir, dev string) []traj.Segment {
	t.Helper()
	ddir := filepath.Join(dir, escapeDevice(dev))
	seqs, _, err := (&Store{fs: osFS{}}).listSeqs(ddir)
	if err != nil {
		t.Fatal(err)
	}
	var out []traj.Segment
	for _, seq := range seqs {
		b, err := os.ReadFile(filepath.Join(ddir, fileName(seq)))
		if err != nil {
			t.Fatal(err)
		}
		if out, _, _, err = scanLog(out, nil, b, 0); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// segmentAtOracle is SegmentAt's contract by brute force: the
// last-appended segment covering t.
func segmentAtOracle(all []traj.Segment, t int64) (traj.Segment, bool) {
	for i := len(all) - 1; i >= 0; i-- {
		if all[i].Start.T <= t && t <= all[i].End.T {
			return all[i], true
		}
	}
	return traj.Segment{}, false
}

// verifyAgainstRaw checks Replay, unbounded and ranged ReplayRange, and
// SegmentAt probes against the raw on-disk decode. Called twice per
// phase, the second pass answers from the cache — so any staleness the
// phase's mutations should have invalidated shows up as a mismatch.
func verifyAgainstRaw(t *testing.T, s *Store, dir, dev string) {
	t.Helper()
	raw := rawReplay(t, dir, dev)
	got, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEqual(got, raw) {
		t.Fatalf("Replay: %d segs, raw scan %d", len(got), len(raw))
	}
	if got, err = s.ReplayRange(dev, math.MinInt64, math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	if !segsEqual(got, raw) {
		t.Fatalf("unbounded ReplayRange: %d segs, raw scan %d", len(got), len(raw))
	}
	if len(raw) == 0 {
		return
	}
	for _, i := range []int{0, len(raw) / 3, len(raw) / 2, len(raw) - 1} {
		sg := raw[i]
		for _, r := range [][2]int64{
			{sg.Start.T, sg.End.T},
			{sg.Start.T - 1, sg.Start.T + 1},
			{sg.End.T, sg.End.T},
		} {
			got, err := s.ReplayRange(dev, r[0], r[1])
			if err != nil {
				t.Fatal(err)
			}
			if !segsEqual(got, rangeOracle(raw, r[0], r[1])) {
				t.Fatalf("ReplayRange[%d, %d] mismatch", r[0], r[1])
			}
		}
		for _, tm := range []int64{sg.Start.T, (sg.Start.T + sg.End.T) / 2, sg.End.T} {
			want, ok := segmentAtOracle(raw, tm)
			gotSeg, err := s.SegmentAt(dev, tm)
			switch {
			case ok && err != nil:
				t.Fatalf("SegmentAt(%d): %v", tm, err)
			case ok && gotSeg != want:
				t.Fatalf("SegmentAt(%d) = %+v, want %+v", tm, gotSeg, want)
			case !ok && !errors.Is(err, ErrNoPosition):
				t.Fatalf("SegmentAt(%d) in a gap: %v", tm, err)
			}
		}
	}
}

// TestReadCacheCoherenceOracle interleaves every mutation the store
// supports — appends, rotation, size-budget deletes, expired-prefix
// truncation, re-ingest of an older time span — with cached queries,
// asserting after each phase (twice: cold-ish, then fully cached) that
// every answer matches a raw decode of the bytes on disk.
func TestReadCacheCoherenceOracle(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{
		Dir:            dir,
		Sync:           SyncNever,
		SyncEvery:      time.Hour, // no background pass racing the oracle
		MaxFileSize:    512,
		MaxLogBytes:    2 << 10,
		MaxLogAge:      time.Hour,
		ReadCacheBytes: 1 << 20,
	})
	s.idxGran = 1 // per-record granules: maximum cache churn
	clock := int64(1_000_000)
	s.now = func() time.Time { return time.UnixMilli(clock) }
	const dev = "oracle"
	segs := simplified(t, gen.Taxi, 900, 29)

	appendPhase := func(from, to int) {
		t.Helper()
		for i := from; i < to; i += 4 {
			clock += 1000
			if err := s.Append(dev, segs[i:min(i+4, to)]); err != nil {
				t.Fatal(err)
			}
		}
	}
	verify := func() {
		t.Helper()
		verifyAgainstRaw(t, s, dir, dev) // populates the cache
		verifyAgainstRaw(t, s, dir, dev) // answered from it
	}

	// Phase 1: plain growth across several rotations.
	appendPhase(0, len(segs)/2)
	verify()

	// Phase 2: more growth — the cached tail granules from phase 1 must
	// not shadow the records appended since (tail spans re-key as they
	// grow), and size-budget deletes fire at rotation.
	appendPhase(len(segs)/2, len(segs))
	verify()

	// Phase 3: re-ingest an old time span — entries go unsorted, and
	// last-appended-wins must hold through the cache.
	if err := s.Append(dev, segs[len(segs)/3:len(segs)/3+30]); err != nil {
		t.Fatal(err)
	}
	verify()

	// Phase 4: expire everything appended so far and compact — the oldest
	// surviving file is rewritten without its expired prefix, reusing byte
	// offsets for different records. Stale granules must go with it.
	clock += (3 * time.Hour).Milliseconds()
	if err := s.CompactNow(); err != nil {
		t.Fatal(err)
	}
	verify()

	// Phase 5: life goes on after truncation.
	if err := s.Append(dev, segs[:8]); err != nil {
		t.Fatal(err)
	}
	verify()

	st := s.Stats()
	if st.ReadCacheHits == 0 || st.ReadCacheMiss == 0 {
		t.Fatalf("cache never exercised: %+v", st)
	}
	if st.DeletedFiles == 0 {
		t.Fatalf("size-budget deletes never fired — shrink MaxLogBytes: %+v", st)
	}
	if st.PrefixTruncations == 0 {
		t.Fatalf("prefix truncation never fired: %+v", st)
	}
}

// TestReadCacheWarmNoIO: once a query has run, repeating it does no disk
// I/O at all — ReadBytes frozen, every granule a hit — and SegmentAt
// rides the same cached granules.
func TestReadCacheWarmNoIO(t *testing.T) {
	s := openStore(t, Config{Sync: SyncNever, SyncEvery: time.Hour, MaxFileSize: 2 << 10, ReadCacheBytes: 1 << 20})
	s.idxGran = 1
	const dev = "warm"
	segs := simplified(t, gen.Taxi, 800, 7)
	appendInChunks(t, s, dev, segs, 4)

	cold, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	st1 := s.Stats()
	if st1.ReadBytes == 0 || st1.ReadCacheMiss == 0 {
		t.Fatalf("cold read did no counted I/O: %+v", st1)
	}
	if st1.ReadCacheBytes == 0 {
		t.Fatalf("nothing resident after cold read: %+v", st1)
	}

	warm, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if !segsEqual(warm, cold) {
		t.Fatal("warm result differs from cold")
	}
	st2 := s.Stats()
	if st2.ReadBytes != st1.ReadBytes {
		t.Fatalf("warm read did I/O: ReadBytes %d -> %d", st1.ReadBytes, st2.ReadBytes)
	}
	if st2.ReadCacheMiss != st1.ReadCacheMiss {
		t.Fatalf("warm read missed: %d -> %d", st1.ReadCacheMiss, st2.ReadCacheMiss)
	}
	if st2.ReadCacheHits <= st1.ReadCacheHits {
		t.Fatalf("warm read did not hit: %d -> %d", st1.ReadCacheHits, st2.ReadCacheHits)
	}

	mid := cold[len(cold)/2]
	want, _ := segmentAtOracle(cold, mid.Start.T)
	got, err := s.SegmentAt(dev, mid.Start.T)
	if err != nil || got != want {
		t.Fatalf("SegmentAt = %+v, %v; want %+v", got, err, want)
	}
	if st3 := s.Stats(); st3.ReadBytes != st2.ReadBytes {
		t.Fatalf("warm SegmentAt did I/O: ReadBytes %d -> %d", st2.ReadBytes, st3.ReadBytes)
	}
}

// TestReadCacheBudgetEviction: a budget smaller than the log keeps
// resident bytes bounded while answers stay correct.
func TestReadCacheBudgetEviction(t *testing.T) {
	const budget = 8 << 10
	s := openStore(t, Config{Sync: SyncNever, SyncEvery: time.Hour, MaxFileSize: 1 << 10, ReadCacheBytes: budget})
	s.idxGran = 1
	const dev = "tight"
	segs := simplified(t, gen.Taxi, 900, 11)
	appendInChunks(t, s, dev, segs, 4)
	var all []traj.Segment
	for pass := 0; pass < 3; pass++ {
		got, err := s.ReplayRange(dev, math.MinInt64, math.MaxInt64)
		if err != nil {
			t.Fatal(err)
		}
		if pass == 0 {
			all = got
		} else if !segsEqual(got, all) {
			t.Fatalf("pass %d differs", pass)
		}
		if st := s.Stats(); st.ReadCacheBytes > budget {
			t.Fatalf("resident %d over budget %d", st.ReadCacheBytes, budget)
		}
	}
}

// TestConcurrentReadersWriters races 8 readers (range, point, and full
// replays) against one writer (plain and deferred-commit appends) on a
// single device with rotation and size-budget retention live — the
// snapshot pins and cache invalidation must keep every read clean, and
// the final replay byte-identical to the raw on-disk decode. Run under
// -race in CI.
func TestConcurrentReadersWriters(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Config{
		Dir:            dir,
		Sync:           SyncNever,
		SyncEvery:      time.Hour,
		MaxFileSize:    1 << 10,
		MaxLogBytes:    64 << 10,
		ReadCacheBytes: 1 << 20,
	})
	s.idxGran = 1
	const dev = "hot"
	segs := syntheticSegs(2000)
	appendInChunks(t, s, dev, segs[:200], 5)

	writerDone := make(chan error, 1)
	go func() {
		for i := 200; i < len(segs); i += 5 {
			chunk := segs[i:min(i+5, len(segs))]
			var err error
			if i%3 == 0 {
				if err = s.AppendNoSync(dev, chunk); err == nil {
					err = s.CommitDevices([]string{dev})
				}
			} else {
				err = s.Append(dev, chunk)
			}
			if err != nil {
				writerDone <- err
				return
			}
		}
		writerDone <- nil
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				select {
				case <-stop:
					return
				default:
				}
				from := int64((i*131+r*977)%2000) * 2000
				switch i % 3 {
				case 0:
					if _, err := s.ReplayRange(dev, from, from+100_000); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, err := s.SegmentAt(dev, from+1000); err != nil && !errors.Is(err, ErrNoPosition) {
						t.Error(err)
						return
					}
				case 2:
					if _, err := s.Replay(dev); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(r)
	}

	if err := <-writerDone; err != nil {
		close(stop)
		wg.Wait()
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}
	got, err := s.Replay(dev)
	if err != nil {
		t.Fatal(err)
	}
	if raw := rawReplay(t, dir, dev); !segsEqual(got, raw) {
		t.Fatalf("final replay %d segs, raw scan %d", len(got), len(raw))
	}
}
