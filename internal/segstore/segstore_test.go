package segstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// The stream.Sink conformance assertion and the device-ID-cap cross
// check live in stream_compat_test.go (package segstore_test): stream
// imports segstore for sink stats, so importing it from an in-package
// test would be an import cycle.

// quantize maps a segment onto its stored form, for equality checks.
func quantize(s traj.Segment) traj.Segment {
	q := func(v float64) float64 { return math.Round(v/quantXY) * quantXY }
	s.Start.X, s.Start.Y = q(s.Start.X), q(s.Start.Y)
	s.End.X, s.End.Y = q(s.End.X), q(s.End.Y)
	return s
}

func quantizeAll(segs []traj.Segment) []traj.Segment {
	out := make([]traj.Segment, len(segs))
	for i, s := range segs {
		out[i] = quantize(s)
	}
	return out
}

// simplified returns realistic segment batches: OPERB-A output for a
// synthetic trajectory.
func simplified(t testing.TB, preset gen.Preset, n int, seed uint64) []traj.Segment {
	t.Helper()
	pw, err := core.SimplifyAggressive(gen.One(preset, n, seed), 30)
	if err != nil {
		t.Fatal(err)
	}
	return []traj.Segment(pw)
}

func openStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestAppendReplay(t *testing.T) {
	s := openStore(t, Config{Sync: SyncAlways})
	segsA := simplified(t, gen.Taxi, 400, 1)
	segsB := simplified(t, gen.Truck, 400, 2)

	// Interleaved appends for two devices stay separate and ordered.
	if err := s.Append("taxi/1", segsA[:3]); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("truck 2", segsB); err != nil {
		t.Fatal(err)
	}
	if err := s.Append("taxi/1", segsA[3:]); err != nil {
		t.Fatal(err)
	}

	got, err := s.Replay("taxi/1")
	if err != nil {
		t.Fatal(err)
	}
	if want := quantizeAll(segsA); !reflect.DeepEqual(got, want) {
		t.Fatalf("taxi/1 replay:\n got %v\nwant %v", got, want)
	}
	got, err = s.Replay("truck 2")
	if err != nil {
		t.Fatal(err)
	}
	if want := quantizeAll(segsB); !reflect.DeepEqual(got, want) {
		t.Fatalf("truck 2 replay mismatch")
	}

	// Unknown device: empty, not an error.
	if got, err := s.Replay("ghost"); err != nil || got != nil {
		t.Fatalf("ghost replay: %v, %v", got, err)
	}

	devs, err := s.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"taxi/1", "truck 2"}; !reflect.DeepEqual(devs, want) {
		t.Fatalf("devices %v, want %v", devs, want)
	}

	st := s.Stats()
	if st.Appends != 3 || st.Segments != int64(len(segsA)+len(segsB)) || st.Bytes == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReplaySurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	segs := simplified(t, gen.SerCar, 500, 3)
	s := openStore(t, Config{Dir: dir, Sync: SyncNever})
	if err := s.Append("dev", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, Config{Dir: dir})
	got, err := s2.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quantizeAll(segs)) {
		t.Fatal("replay after reopen mismatch")
	}
	// And the log keeps accepting appends where it left off.
	if err := s2.Append("dev", segs[:5]); err != nil {
		t.Fatal(err)
	}
	got, err = s2.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs)+5 {
		t.Fatalf("after append: %d segments, want %d", len(got), len(segs)+5)
	}
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	// A tiny rotation threshold forces a new file almost every append.
	s := openStore(t, Config{Dir: dir, MaxFileSize: 256, Sync: SyncNever})
	segs := simplified(t, gen.Taxi, 2000, 4)
	var appended []traj.Segment
	for off := 0; off < len(segs); off += 7 {
		chunk := segs[off:min(off+7, len(segs))]
		if err := s.Append("dev", chunk); err != nil {
			t.Fatal(err)
		}
		appended = append(appended, chunk...)
	}
	files, err := filepath.Glob(filepath.Join(dir, "dev", "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 3 {
		t.Fatalf("%d files, want rotation to produce several", len(files))
	}
	for _, f := range files {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatal(err)
		}
		// One record may overshoot the threshold (a file always accepts at
		// least one), but files must stay in that ballpark.
		if fi.Size() > 256*3 {
			t.Errorf("%s: %d bytes, rotation not bounding file size", f, fi.Size())
		}
	}
	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, quantizeAll(appended)) {
		t.Fatal("replay across rotated files mismatch")
	}
}

func TestLargeBatchChunks(t *testing.T) {
	// A batch beyond recordChunk splits into multiple records and still
	// replays losslessly.
	s := openStore(t, Config{Sync: SyncNever})
	base := simplified(t, gen.Truck, 300, 5)
	segs := make([]traj.Segment, 0, recordChunk+100)
	for len(segs) < recordChunk+100 {
		segs = append(segs, base...)
	}
	segs = segs[:recordChunk+100]
	if err := s.Append("dev", segs); err != nil {
		t.Fatal(err)
	}
	got, err := s.Replay("dev")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(segs) {
		t.Fatalf("%d segments, want %d", len(got), len(segs))
	}
	if st := s.Stats(); st.Appends != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeviceEscaping(t *testing.T) {
	s := openStore(t, Config{})
	ids := []string{"plain-01", "has space", "slash/../../etc", "unicode-héllo", "%00", "."}
	segs := simplified(t, gen.Taxi, 50, 6)[:2]
	for _, id := range ids {
		if err := s.Append(id, segs); err != nil {
			t.Fatalf("%q: %v", id, err)
		}
	}
	devs, err := s.Devices()
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != len(ids) {
		t.Fatalf("devices %v, want %d ids", devs, len(ids))
	}
	for _, id := range ids {
		got, err := s.Replay(id)
		if err != nil || len(got) != 2 {
			t.Errorf("%q: replay %d segments, err %v", id, len(got), err)
		}
	}
	// Everything must have landed inside the root, path traversal included.
	err = filepath.Walk(s.cfg.Dir, func(path string, _ os.FileInfo, err error) error { return err })
	if err != nil {
		t.Fatal(err)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	for _, id := range []string{"a", "A-Z_0", ".", "..", "%", "% %25", "héllo", "a/b\\c", string([]byte{0, 255})} {
		esc := escapeDevice(id)
		if esc == "." || esc == ".." || filepath.Base(esc) != esc {
			t.Errorf("%q escapes to unsafe name %q", id, esc)
		}
		back, err := unescapeDevice(esc)
		if err != nil || back != id {
			t.Errorf("%q -> %q -> %q (%v)", id, esc, back, err)
		}
	}
	if _, err := unescapeDevice("has space"); err == nil {
		t.Error("foreign name unescaped without error")
	}
	// Case-only differences must not survive into the directory name
	// (case-insensitive filesystems would merge the logs), and literal
	// uppercase is a foreign name.
	if a, b := escapeDevice("Car-1"), escapeDevice("car-1"); strings.EqualFold(a, b) {
		t.Errorf("%q and %q collide case-insensitively", a, b)
	}
	if _, err := unescapeDevice("Car-1"); err == nil {
		t.Error("literal uppercase unescaped without error")
	}
}

func TestBadDeviceIDs(t *testing.T) {
	s := openStore(t, Config{})
	long := string(make([]byte, maxDeviceID+1))
	for _, id := range []string{"", long} {
		if err := s.Append(id, simplified(t, gen.Taxi, 50, 7)[:1]); !errors.Is(err, ErrDeviceID) {
			t.Errorf("append %d-byte id: %v", len(id), err)
		}
		if _, err := s.Replay(id); !errors.Is(err, ErrDeviceID) {
			t.Errorf("replay %d-byte id: %v", len(id), err)
		}
	}
}

func TestEmptyAppendIsNoop(t *testing.T) {
	s := openStore(t, Config{})
	if err := s.Append("dev", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.Dir, "dev")); !errors.Is(err, os.ErrNotExist) {
		t.Error("empty append created a log")
	}
}

func TestClosedStore(t *testing.T) {
	s := openStore(t, Config{})
	segs := simplified(t, gen.Taxi, 50, 8)[:1]
	if err := s.Append("dev", segs); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close:", err)
	}
	if err := s.Append("dev", segs); !errors.Is(err, ErrClosed) {
		t.Errorf("append after close: %v", err)
	}
	if _, err := s.Replay("dev"); !errors.Is(err, ErrClosed) {
		t.Errorf("replay after close: %v", err)
	}
	if _, err := s.Devices(); !errors.Is(err, ErrClosed) {
		t.Errorf("devices after close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	s := openStore(t, Config{MaxFileSize: 4096})
	const devices = 16
	segs := simplified(t, gen.GeoLife, 800, 9)
	var wg sync.WaitGroup
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			dev := string(rune('a'+d)) + "-dev"
			for off := 0; off < len(segs); off += 11 {
				if err := s.Append(dev, segs[off:min(off+11, len(segs))]); err != nil {
					t.Error(err)
					return
				}
			}
		}(d)
	}
	wg.Wait()
	want := quantizeAll(segs)
	for d := 0; d < devices; d++ {
		got, err := s.Replay(string(rune('a'+d)) + "-dev")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("device %d replay mismatch", d)
		}
	}
}

func TestSyncPolicies(t *testing.T) {
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Error("bad policy parsed")
	}
	for _, name := range []string{"interval", "always", "never"} {
		p, err := ParseSyncPolicy(name)
		if err != nil || p.String() != name {
			t.Errorf("%s: %v %v", name, p, err)
		}
	}
	// SyncAlways counts a sync per append; SyncNever counts none.
	segs := simplified(t, gen.Taxi, 100, 10)[:3]
	always := openStore(t, Config{Sync: SyncAlways})
	always.Append("d", segs)
	always.Append("d", segs)
	if st := always.Stats(); st.Syncs < 2 {
		t.Errorf("SyncAlways stats: %+v", st)
	}
	never := openStore(t, Config{Sync: SyncNever})
	never.Append("d", segs)
	if st := never.Stats(); st.Syncs != 0 {
		t.Errorf("SyncNever stats: %+v", st)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("missing Dir accepted")
	}
	if _, err := Open(Config{Dir: t.TempDir(), Sync: SyncPolicy(99)}); err == nil {
		t.Error("bogus sync policy accepted")
	}
}
