package traj

import (
	"errors"
	"math"
	"testing"
)

func line(n int, step float64) Trajectory {
	out := make(Trajectory, n)
	for i := range out {
		out[i] = Point{X: float64(i) * step, T: int64(i) * 1000}
	}
	return out
}

func TestValidate(t *testing.T) {
	if err := line(5, 10).Validate(); err != nil {
		t.Errorf("valid trajectory rejected: %v", err)
	}
	if err := (Trajectory{}).Validate(); !errors.Is(err, ErrTooShort) {
		t.Errorf("empty: got %v, want ErrTooShort", err)
	}
	if err := (Trajectory{{T: 1}}).Validate(); !errors.Is(err, ErrTooShort) {
		t.Errorf("single point: got %v, want ErrTooShort", err)
	}
	bad := Trajectory{{T: 10}, {T: 10}}
	if err := bad.Validate(); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("equal times: got %v, want ErrTimeOrder", err)
	}
	bad = Trajectory{{T: 10}, {T: 5}}
	if err := bad.Validate(); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("decreasing times: got %v, want ErrTimeOrder", err)
	}
}

func TestDuration(t *testing.T) {
	if d := line(5, 10).Duration(); d != 4000 {
		t.Errorf("Duration = %d, want 4000", d)
	}
	if d := (Trajectory{}).Duration(); d != 0 {
		t.Errorf("empty Duration = %d", d)
	}
	if d := (Trajectory{{T: 9}}).Duration(); d != 0 {
		t.Errorf("single-point Duration = %d", d)
	}
}

func TestPathLength(t *testing.T) {
	if l := line(5, 10).PathLength(); l != 40 {
		t.Errorf("PathLength = %v, want 40", l)
	}
	zig := Trajectory{{X: 0, Y: 0, T: 0}, {X: 3, Y: 4, T: 1000}, {X: 0, Y: 0, T: 2000}}
	if l := zig.PathLength(); l != 10 {
		t.Errorf("zigzag PathLength = %v, want 10", l)
	}
}

func TestBounds(t *testing.T) {
	tr := Trajectory{{X: 1, Y: 2, T: 0}, {X: -3, Y: 7, T: 1000}}
	b := tr.Bounds()
	if b.MinX != -3 || b.MaxX != 1 || b.MinY != 2 || b.MaxY != 7 {
		t.Errorf("Bounds = %+v", b)
	}
}

func TestClone(t *testing.T) {
	a := line(3, 1)
	b := a.Clone()
	b[0].X = 99
	if a[0].X == 99 {
		t.Error("Clone shares storage")
	}
}

func TestPositionAt(t *testing.T) {
	tr := line(5, 10) // x = 10 m/s
	cases := []struct {
		tm   int64
		want float64
	}{
		{-100, 0},  // clamp before start
		{0, 0},     // exact first
		{500, 5},   // mid-interval
		{1000, 10}, // exact sample
		{3500, 35}, // mid-interval
		{4000, 40}, // exact last
		{9999, 40}, // clamp after end
	}
	for _, c := range cases {
		p := tr.PositionAt(c.tm)
		if math.Abs(p.X-c.want) > 1e-9 || p.Y != 0 {
			t.Errorf("PositionAt(%d) = %v, want x=%v", c.tm, p, c.want)
		}
	}
	if p := (Trajectory{}).PositionAt(5); !p.IsZero() {
		t.Errorf("empty PositionAt = %v", p)
	}
}

func TestPointString(t *testing.T) {
	s := Point{X: 1, Y: 2, T: 3}.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestAt(t *testing.T) {
	p := At(1, 2, 3)
	if p.X != 1 || p.Y != 2 || p.T != 3 {
		t.Errorf("At = %v", p)
	}
	if gp := p.P(); gp.X != 1 || gp.Y != 2 {
		t.Errorf("P() = %v", gp)
	}
	if d := At(0, 0, 0).Dist(At(3, 4, 9)); d != 5 {
		t.Errorf("Dist = %v", d)
	}
}
