package traj

import (
	"errors"
	"fmt"
)

// Fleet pipelines rarely receive neat per-trip trajectories: a device logs
// continuously across ignition cycles and outages. These helpers cut such
// logs into the per-trip trajectories the simplification algorithms (and
// the paper's datasets) assume.

// Errors returned by the splitters.
var (
	ErrBadGap   = errors.New("traj: gap must be ≥ 1 ms")
	ErrBadCount = errors.New("traj: count must be ≥ 2")
	ErrBadRate  = errors.New("traj: interval must be ≥ 1 ms")
)

// SplitByTimeGap cuts t wherever consecutive points are separated by more
// than gap milliseconds (an ignition-off or coverage hole). Pieces with
// fewer than two points are dropped. The returned trajectories share t's
// backing array.
func SplitByTimeGap(t Trajectory, gapMS int64) ([]Trajectory, error) {
	if gapMS < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadGap, gapMS)
	}
	var out []Trajectory
	start := 0
	for i := 1; i < len(t); i++ {
		if t[i].T-t[i-1].T > gapMS {
			if i-start >= 2 {
				out = append(out, t[start:i])
			}
			start = i
		}
	}
	if len(t)-start >= 2 {
		out = append(out, t[start:])
	}
	return out, nil
}

// SplitByCount cuts t into consecutive pieces of at most count points,
// with adjacent pieces sharing their boundary point so the union still
// covers the original path.
func SplitByCount(t Trajectory, count int) ([]Trajectory, error) {
	if count < 2 {
		return nil, fmt.Errorf("%w: got %d", ErrBadCount, count)
	}
	if len(t) < 2 {
		return nil, nil
	}
	var out []Trajectory
	for start := 0; start < len(t)-1; start += count - 1 {
		end := start + count
		if end > len(t) {
			end = len(t)
		}
		out = append(out, t[start:end])
		if end == len(t) {
			break
		}
	}
	return out, nil
}

// Resample returns t re-sampled at a fixed interval (milliseconds) by
// linear interpolation between the original samples — useful for
// normalizing mixed-rate datasets (Truck's 1–60 s devices) before
// rate-sensitive analyses.
func Resample(t Trajectory, intervalMS int64) (Trajectory, error) {
	if intervalMS < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRate, intervalMS)
	}
	if len(t) < 2 {
		return t.Clone(), nil
	}
	out := make(Trajectory, 0, t.Duration()/intervalMS+2)
	for tm := t[0].T; tm <= t[len(t)-1].T; tm += intervalMS {
		p := t.PositionAt(tm)
		out = append(out, Point{X: p.X, Y: p.Y, T: tm})
	}
	if last := t[len(t)-1]; out[len(out)-1].T != last.T {
		out = append(out, last)
	}
	return out, nil
}
