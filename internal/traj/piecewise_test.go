package traj

import (
	"errors"
	"testing"
)

func pw(tr Trajectory, cuts ...int) Piecewise {
	out := make(Piecewise, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		out = append(out, NewSegment(tr, cuts[i-1], cuts[i]))
	}
	return out
}

func TestPiecewiseValidate(t *testing.T) {
	tr := line(10, 5)
	good := pw(tr, 0, 4, 7, 9)
	if err := good.Validate(); err != nil {
		t.Errorf("valid representation rejected: %v", err)
	}
	if err := (Piecewise{}).Validate(); !errors.Is(err, ErrEmptyPiecewise) {
		t.Errorf("empty: %v", err)
	}
	discontinuous := Piecewise{NewSegment(tr, 0, 3), NewSegment(tr, 4, 9)}
	if err := discontinuous.Validate(); !errors.Is(err, ErrDiscontinuous) {
		t.Errorf("discontinuous: %v", err)
	}
}

func TestDecode(t *testing.T) {
	tr := line(10, 5)
	dec := pw(tr, 0, 4, 7, 9).Decode()
	want := Trajectory{tr[0], tr[4], tr[7], tr[9]}
	if len(dec) != len(want) {
		t.Fatalf("Decode len = %d, want %d", len(dec), len(want))
	}
	for i := range want {
		if dec[i] != want[i] {
			t.Errorf("Decode[%d] = %v, want %v", i, dec[i], want[i])
		}
	}
	if (Piecewise{}).Decode() != nil {
		t.Error("empty Decode should be nil")
	}
}

func TestCounts(t *testing.T) {
	tr := line(10, 5)
	p := pw(tr, 0, 4, 7, 9)
	if p.SegmentCount() != 3 {
		t.Errorf("SegmentCount = %d", p.SegmentCount())
	}
	if p.PointBudget() != 4 {
		t.Errorf("PointBudget = %d", p.PointBudget())
	}
	if (Piecewise{}).PointBudget() != 0 {
		t.Error("empty PointBudget should be 0")
	}
}

func TestCoveringSegments(t *testing.T) {
	tr := line(10, 5)
	p := pw(tr, 0, 4, 7, 9) // ranges [0..4] [4..7] [7..9]
	cases := []struct {
		i    int
		want []int
	}{
		{0, []int{0}},
		{3, []int{0}},
		{4, []int{0, 1}}, // boundary covered by both
		{5, []int{1}},
		{7, []int{1, 2}},
		{9, []int{2}},
	}
	for _, c := range cases {
		got := p.CoveringSegments(c.i)
		if len(got) != len(c.want) {
			t.Errorf("CoveringSegments(%d) = %v, want %v", c.i, got, c.want)
			continue
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Errorf("CoveringSegments(%d) = %v, want %v", c.i, got, c.want)
			}
		}
	}
	// Out-of-range indices map to the nearest segment.
	if got := p.CoveringSegments(99); len(got) != 1 || got[0] != 2 {
		t.Errorf("past-end = %v, want [2]", got)
	}
	if got := (Piecewise{}).CoveringSegments(0); got != nil {
		t.Errorf("empty = %v", got)
	}
}

func TestCoveringSegmentsAbsorbedOverlap(t *testing.T) {
	tr := line(10, 5)
	// First segment absorbed two extra points: range [0..6]; next starts
	// at index 4.
	a := NewSegment(tr, 0, 4)
	a.EndIdx = 6
	b := NewSegment(tr, 4, 9)
	p := Piecewise{a, b}
	got := p.CoveringSegments(5)
	if len(got) != 2 {
		t.Fatalf("overlapped CoveringSegments(5) = %v, want both", got)
	}
}

func TestPiecewisePositionAt(t *testing.T) {
	tr := line(11, 10) // 10 m/s, 1 sample/s
	p := pw(tr, 0, 5, 10)
	got := p.PositionAt(2500)
	if got.X != 25 || got.T != 2500 {
		t.Errorf("PositionAt = %v", got)
	}
	if got := (Piecewise{}).PositionAt(0); got != (Point{}) {
		t.Errorf("empty PositionAt = %v", got)
	}
}
