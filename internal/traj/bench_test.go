package traj

import (
	"math/rand"
	"testing"
)

var (
	sinkF float64
	sinkP Point
	sinkN int
)

func BenchmarkPositionAt(b *testing.B) {
	b.ReportAllocs()
	tr := line(10_000, 5)
	for i := 0; i < b.N; i++ {
		p := tr.PositionAt(int64(i%9_000)*1000 + 500)
		sinkF = p.X
	}
}

func BenchmarkSEDistance(b *testing.B) {
	b.ReportAllocs()
	tr := line(100, 10)
	s := NewSegment(tr, 0, 99)
	p := Point{X: 333, Y: 5, T: 33_300}
	for i := 0; i < b.N; i++ {
		sinkF = s.SEDistance(p)
	}
}

func BenchmarkLineDistance(b *testing.B) {
	b.ReportAllocs()
	tr := line(100, 10)
	s := NewSegment(tr, 0, 99)
	p := Point{X: 333, Y: 5, T: 33_300}
	for i := 0; i < b.N; i++ {
		sinkF = s.LineDistance(p)
	}
}

func BenchmarkCoveringSegments(b *testing.B) {
	b.ReportAllocs()
	tr := line(10_000, 5)
	pw := make(Piecewise, 0, 1000)
	for i := 0; i+10 < len(tr); i += 10 {
		pw = append(pw, NewSegment(tr, i, i+10))
	}
	for i := 0; i < b.N; i++ {
		sinkN = len(pw.CoveringSegments(i % 10_000))
	}
}

func BenchmarkCleanerPush(b *testing.B) {
	b.ReportAllocs()
	r := rand.New(rand.NewSource(1))
	c := NewCleaner(4)
	for i := 0; i < b.N; i++ {
		jitter := int64(r.Intn(3)) * 500
		c.Push(Point{X: float64(i), T: int64(i)*1000 + jitter})
	}
}
