package traj

import (
	"math"
	"testing"
)

func TestNewSegment(t *testing.T) {
	tr := line(10, 5)
	s := NewSegment(tr, 2, 7)
	if s.Start != tr[2] || s.End != tr[7] || s.StartIdx != 2 || s.EndIdx != 7 {
		t.Errorf("NewSegment = %+v", s)
	}
	if s.PointCount() != 6 {
		t.Errorf("PointCount = %d, want 6", s.PointCount())
	}
	if s.Anomalous() {
		t.Error("6-point segment should not be anomalous")
	}
}

func TestAnomalous(t *testing.T) {
	tr := line(3, 5)
	if !NewSegment(tr, 0, 1).Anomalous() {
		t.Error("two-point segment should be anomalous")
	}
	s := NewSegment(tr, 0, 1)
	s.EndIdx = 2 // absorbed point
	if s.Anomalous() {
		t.Error("absorbed-extended segment should not be anomalous")
	}
}

func TestSegmentGeometry(t *testing.T) {
	tr := Trajectory{{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 10000}}
	s := NewSegment(tr, 0, 1)
	if l := s.Length(); l != 10 {
		t.Errorf("Length = %v", l)
	}
	if th := s.Theta(); th != 0 {
		t.Errorf("Theta = %v", th)
	}
	if d := s.LineDistance(Point{X: 5, Y: 3}); d != 3 {
		t.Errorf("LineDistance = %v", d)
	}
	if d := s.LineDistance(Point{X: 50, Y: 3}); d != 3 {
		t.Errorf("LineDistance past end = %v (must be to the line)", d)
	}
	if d := s.SegmentDistance(Point{X: 50, Y: 0}); d != 40 {
		t.Errorf("SegmentDistance past end = %v", d)
	}
}

func TestCovers(t *testing.T) {
	s := Segment{StartIdx: 3, EndIdx: 6}
	for i, want := range map[int]bool{2: false, 3: true, 5: true, 6: true, 7: false} {
		if got := s.Covers(i); got != want {
			t.Errorf("Covers(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestSEDistance(t *testing.T) {
	// Object moves 0→10 m over 10 s; sample claims x=2 at t=5 s. The
	// synchronized position at t=5 s is x=5, so SED = 3, while the
	// perpendicular distance to the line is 0.
	tr := Trajectory{{X: 0, Y: 0, T: 0}, {X: 10, Y: 0, T: 10000}}
	s := NewSegment(tr, 0, 1)
	p := Point{X: 2, Y: 0, T: 5000}
	if d := s.SEDistance(p); math.Abs(d-3) > 1e-9 {
		t.Errorf("SEDistance = %v, want 3", d)
	}
	if d := s.LineDistance(p); d != 0 {
		t.Errorf("LineDistance = %v, want 0", d)
	}
	// Clamps outside the time range.
	if d := s.SEDistance(Point{X: 0, Y: 4, T: -5000}); math.Abs(d-4) > 1e-9 {
		t.Errorf("SEDistance before start = %v, want 4", d)
	}
	// Degenerate zero-duration segment.
	deg := Segment{Start: Point{X: 0, Y: 0, T: 100}, End: Point{X: 1, Y: 0, T: 100}}
	if d := deg.SEDistance(Point{X: 3, Y: 4, T: 100}); math.Abs(d-5) > 1e-9 {
		t.Errorf("degenerate SEDistance = %v, want 5", d)
	}
}

func TestSegmentString(t *testing.T) {
	if NewSegment(line(2, 1), 0, 1).String() == "" {
		t.Error("empty String()")
	}
}
