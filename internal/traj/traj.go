// Package traj defines the trajectory data model shared by all
// simplification algorithms: timestamped points, trajectories, directed
// line segments annotated with the range of source points they represent,
// and piecewise line representations (the paper's T[L0..Lm]).
package traj

import (
	"errors"
	"fmt"

	"trajsim/internal/geo"
)

// Point is a trajectory data point P(x, y, t) (§3.1): planar position in
// meters and a timestamp in milliseconds since the Unix epoch. The paper
// treats (x, y) as longitude/latitude projected to a plane; conversion
// happens in trajio.
type Point struct {
	X, Y float64 // meters in the local planar frame
	T    int64   // milliseconds since epoch
}

// P returns the spatial component of the point.
func (p Point) P() geo.Point { return geo.Point{X: p.X, Y: p.Y} }

// Dist returns the Euclidean (spatial) distance to q in meters.
func (p Point) Dist(q Point) float64 { return p.P().Dist(q.P()) }

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.3f, %.3f @%d)", p.X, p.Y, p.T)
}

// At constructs a Point.
func At(x, y float64, t int64) Point { return Point{X: x, Y: y, T: t} }

// Trajectory is a sequence of data points in monotonically increasing time
// order (§3.1).
type Trajectory []Point

// Errors reported by Validate.
var (
	ErrTimeOrder = errors.New("traj: timestamps not strictly increasing")
	ErrTooShort  = errors.New("traj: trajectory needs at least 2 points")
)

// Validate checks the paper's trajectory invariant Pi.t < Pj.t for i < j.
func (t Trajectory) Validate() error {
	if len(t) < 2 {
		return ErrTooShort
	}
	for i := 1; i < len(t); i++ {
		if t[i].T <= t[i-1].T {
			return fmt.Errorf("%w: point %d (t=%d) after point %d (t=%d)",
				ErrTimeOrder, i, t[i].T, i-1, t[i-1].T)
		}
	}
	return nil
}

// Duration returns the time span of the trajectory in milliseconds.
func (t Trajectory) Duration() int64 {
	if len(t) < 2 {
		return 0
	}
	return t[len(t)-1].T - t[0].T
}

// PathLength returns the total length of the polyline through all points,
// in meters.
func (t Trajectory) PathLength() float64 {
	var sum float64
	for i := 1; i < len(t); i++ {
		sum += t[i].Dist(t[i-1])
	}
	return sum
}

// Bounds returns the spatial bounding box of the trajectory.
func (t Trajectory) Bounds() geo.BBox {
	b := geo.EmptyBBox()
	for _, p := range t {
		b.Extend(p.P())
	}
	return b
}

// Clone returns a deep copy of the trajectory.
func (t Trajectory) Clone() Trajectory {
	out := make(Trajectory, len(t))
	copy(out, t)
	return out
}

// Slice returns the sub-trajectory t[lo:hi] sharing backing storage.
func (t Trajectory) Slice(lo, hi int) Trajectory { return t[lo:hi] }

// PositionAt linearly interpolates the position of the moving object at
// time tm (milliseconds). Times outside the trajectory clamp to the
// endpoints. Interpolation is the standard model behind the synchronized
// Euclidean distance used by TD-TR and OPW-TR.
func (t Trajectory) PositionAt(tm int64) geo.Point {
	n := len(t)
	if n == 0 {
		return geo.Point{}
	}
	if tm <= t[0].T {
		return t[0].P()
	}
	if tm >= t[n-1].T {
		return t[n-1].P()
	}
	// Binary search for the covering sample interval.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if t[mid].T <= tm {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := t[lo], t[hi]
	if b.T == a.T {
		return a.P()
	}
	frac := float64(tm-a.T) / float64(b.T-a.T)
	return geo.Lerp(a.P(), b.P(), frac)
}
