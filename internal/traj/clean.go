package traj

import "sort"

// Cleaner repairs the raw-stream defects the paper's introduction reports
// from online vehicle-to-cloud transmission: duplicate and out-of-order
// data points. It is a small streaming reorder buffer: points are held
// until Window newer points (by arrival) have been seen, then released in
// timestamp order with duplicates dropped.
//
// A Cleaner is typically placed in front of a one-pass encoder:
//
//	for p := range device {
//	    for _, q := range cleaner.Push(p) {
//	        segs := enc.Push(q)
//	        ...
//	    }
//	}
type Cleaner struct {
	// Window is the number of points buffered for reordering. Zero means
	// pass-through ordering (only exact-duplicate removal).
	Window int
	// DropEqualTime drops a point whose timestamp equals the previously
	// released one even if its position differs (sensors occasionally emit
	// two fixes with one timestamp; the trajectory invariant needs strict
	// order).
	DropEqualTime bool

	buf      []Point
	lastOut  Point
	hasLast  bool
	dupes    int
	reorders int
	dropped  int
}

// NewCleaner returns a Cleaner with the given reorder window.
func NewCleaner(window int) *Cleaner {
	return &Cleaner{Window: window, DropEqualTime: true}
}

// Stats reports how many duplicates were removed, how many points arrived
// out of order (and were re-sorted), and how many stale points were
// dropped because they were older than an already-released point.
func (c *Cleaner) Stats() (duplicates, reordered, dropped int) {
	return c.dupes, c.reorders, c.dropped
}

// Push offers one raw point and returns zero or more cleaned points in
// strict timestamp order.
func (c *Cleaner) Push(p Point) []Point {
	// Exact duplicate of something in the buffer?
	for _, q := range c.buf {
		if q == p {
			c.dupes++
			return nil
		}
	}
	if c.hasLast {
		if p == c.lastOut {
			c.dupes++
			return nil
		}
		if p.T < c.lastOut.T || (p.T == c.lastOut.T && c.DropEqualTime) {
			// Too old to reorder: it belongs before an already-released
			// point.
			if p.T < c.lastOut.T {
				c.dropped++
			} else {
				c.dupes++
			}
			return nil
		}
	}
	if len(c.buf) > 0 && p.T < c.buf[len(c.buf)-1].T {
		c.reorders++
	}
	c.buf = append(c.buf, p)
	sort.SliceStable(c.buf, func(i, j int) bool { return c.buf[i].T < c.buf[j].T })
	c.dedupeBuffer()
	var out []Point
	for len(c.buf) > c.Window {
		out = append(out, c.release())
	}
	return out
}

// Flush releases all buffered points.
func (c *Cleaner) Flush() []Point {
	var out []Point
	for len(c.buf) > 0 {
		out = append(out, c.release())
	}
	return out
}

// Clean is the batch convenience: it repairs an entire raw point slice.
func Clean(raw []Point, window int) Trajectory {
	c := NewCleaner(window)
	out := make(Trajectory, 0, len(raw))
	for _, p := range raw {
		out = append(out, c.Push(p)...)
	}
	return append(out, c.Flush()...)
}

func (c *Cleaner) release() Point {
	p := c.buf[0]
	c.buf = c.buf[1:]
	c.lastOut = p
	c.hasLast = true
	return p
}

func (c *Cleaner) dedupeBuffer() {
	if len(c.buf) < 2 {
		return
	}
	w := 1
	for i := 1; i < len(c.buf); i++ {
		if c.buf[i].T == c.buf[w-1].T {
			if c.buf[i] == c.buf[w-1] || c.DropEqualTime {
				c.dupes++
				continue
			}
		}
		c.buf[w] = c.buf[i]
		w++
	}
	c.buf = c.buf[:w]
}
