package traj

import (
	"errors"
	"fmt"
	"sort"
)

// Piecewise is a piecewise line representation T[L0..Lm] of a trajectory
// (§3.1): a sequence of continuous directed line segments, each segment's
// start point coinciding with the previous segment's end point.
type Piecewise []Segment

// Errors reported by Piecewise.Validate.
var (
	ErrEmptyPiecewise = errors.New("traj: empty piecewise representation")
	ErrDiscontinuous  = errors.New("traj: segments are not continuous")
	ErrBadRange       = errors.New("traj: segment source ranges are not monotone")
)

// Validate checks the structural invariants of a piecewise representation:
// spatial continuity (Li.Pe == Li+1.Ps) and monotone, overlapping source
// ranges.
func (pw Piecewise) Validate() error {
	if len(pw) == 0 {
		return ErrEmptyPiecewise
	}
	for i := 1; i < len(pw); i++ {
		prev, cur := pw[i-1], pw[i]
		if !prev.End.P().Eq(cur.Start.P()) {
			return fmt.Errorf("%w: segment %d ends at %v, segment %d starts at %v",
				ErrDiscontinuous, i-1, prev.End, i, cur.Start)
		}
		if cur.StartIdx < prev.StartIdx || cur.EndIdx < prev.EndIdx && cur.StartIdx != prev.StartIdx {
			return fmt.Errorf("%w: segment %d range [%d..%d] after [%d..%d]",
				ErrBadRange, i, cur.StartIdx, cur.EndIdx, prev.StartIdx, prev.EndIdx)
		}
	}
	return nil
}

// Decode returns the simplified trajectory: the sequence of segment
// endpoints (each shared endpoint emitted once). This is what a consumer
// stores or transmits instead of the raw points.
func (pw Piecewise) Decode() Trajectory {
	if len(pw) == 0 {
		return nil
	}
	out := make(Trajectory, 0, len(pw)+1)
	out = append(out, pw[0].Start)
	for _, s := range pw {
		out = append(out, s.End)
	}
	return out
}

// SegmentCount returns the number of line segments, the |T| used in the
// paper's compression-ratio definition.
func (pw Piecewise) SegmentCount() int { return len(pw) }

// PointBudget returns the number of points needed to store the
// representation (segment endpoints, shared ones once).
func (pw Piecewise) PointBudget() int {
	if len(pw) == 0 {
		return 0
	}
	return len(pw) + 1
}

// CoveringSegments returns the indices of the segments whose source range
// covers point index i. Boundary points are covered by two segments.
// Points past the last range (possible when trailing inactive points are
// represented by the final segment's line) map to the last segment, and
// points before the first range map to the first.
func (pw Piecewise) CoveringSegments(i int) []int {
	if len(pw) == 0 {
		return nil
	}
	// Binary search the first segment with EndIdx >= i.
	lo := sort.Search(len(pw), func(k int) bool { return pw[k].EndIdx >= i })
	if lo == len(pw) {
		return []int{len(pw) - 1}
	}
	if !pw[lo].Covers(i) {
		return []int{lo}
	}
	out := []int{lo}
	for k := lo + 1; k < len(pw) && pw[k].Covers(i); k++ {
		out = append(out, k)
	}
	return out
}

// PositionAt interpolates the simplified trajectory at time tm using the
// segment endpoint timestamps.
func (pw Piecewise) PositionAt(tm int64) Point {
	dec := pw.Decode()
	if len(dec) == 0 {
		return Point{}
	}
	p := dec.PositionAt(tm)
	return Point{X: p.X, Y: p.Y, T: tm}
}
