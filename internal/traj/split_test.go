package traj

import (
	"errors"
	"testing"
)

func TestSplitByTimeGap(t *testing.T) {
	tr := Trajectory{
		{T: 0}, {T: 1000}, {T: 2000},
		{T: 100_000}, {T: 101_000}, // gap of 98 s
		{T: 500_000}, // gap, then a lone point (dropped)
	}
	parts, err := SplitByTimeGap(tr, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("%d parts, want 2: %v", len(parts), parts)
	}
	if len(parts[0]) != 3 || len(parts[1]) != 2 {
		t.Errorf("part sizes %d, %d", len(parts[0]), len(parts[1]))
	}
}

func TestSplitByTimeGapNoGap(t *testing.T) {
	tr := line(10, 5)
	parts, err := SplitByTimeGap(tr, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || len(parts[0]) != 10 {
		t.Errorf("parts: %v", parts)
	}
}

func TestSplitByTimeGapErrors(t *testing.T) {
	if _, err := SplitByTimeGap(line(5, 1), 0); !errors.Is(err, ErrBadGap) {
		t.Errorf("gap 0: %v", err)
	}
	parts, err := SplitByTimeGap(Trajectory{{T: 1}}, 100)
	if err != nil || parts != nil {
		t.Errorf("single point: %v %v", parts, err)
	}
}

func TestSplitByCount(t *testing.T) {
	tr := line(10, 5)
	parts, err := SplitByCount(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Pieces share boundaries: [0..3] [3..6] [6..9].
	if len(parts) != 3 {
		t.Fatalf("%d parts: %v", len(parts), parts)
	}
	if parts[0][3] != parts[1][0] {
		t.Error("pieces do not share the boundary point")
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 10+2 { // 10 points + 2 shared boundaries counted twice
		t.Errorf("total %d", total)
	}
}

func TestSplitByCountExact(t *testing.T) {
	tr := line(7, 5)
	parts, err := SplitByCount(tr, 7)
	if err != nil || len(parts) != 1 {
		t.Errorf("parts %v err %v", parts, err)
	}
	parts, err = SplitByCount(tr, 4)
	if err != nil || len(parts) != 2 {
		t.Fatalf("parts %v err %v", parts, err)
	}
	if parts[1][len(parts[1])-1] != tr[6] {
		t.Error("last piece does not end at the last point")
	}
}

func TestSplitByCountErrors(t *testing.T) {
	if _, err := SplitByCount(line(5, 1), 1); !errors.Is(err, ErrBadCount) {
		t.Errorf("count 1: %v", err)
	}
	parts, err := SplitByCount(Trajectory{{T: 1}}, 5)
	if err != nil || parts != nil {
		t.Errorf("single point: %v %v", parts, err)
	}
}

func TestResample(t *testing.T) {
	tr := line(5, 10) // samples at 0,1,2,3,4 s; 10 m/s
	out, err := Resample(tr, 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if out[0] != tr[0] || out[len(out)-1] != tr[4] {
		t.Error("endpoints not preserved")
	}
	if len(out) != 9 {
		t.Errorf("%d points, want 9", len(out))
	}
	// Interpolated midpoints.
	if out[1].X != 5 || out[1].T != 500 {
		t.Errorf("out[1] = %v", out[1])
	}
}

func TestResampleIrregularEnd(t *testing.T) {
	tr := Trajectory{{X: 0, T: 0}, {X: 10, T: 1000}, {X: 13, T: 1300}}
	out, err := Resample(tr, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out[len(out)-1] != tr[2] {
		t.Errorf("last = %v, want original end", out[len(out)-1])
	}
}

func TestResampleErrors(t *testing.T) {
	if _, err := Resample(line(5, 1), 0); !errors.Is(err, ErrBadRate) {
		t.Errorf("interval 0: %v", err)
	}
	out, err := Resample(Trajectory{{X: 1, T: 5}}, 100)
	if err != nil || len(out) != 1 {
		t.Errorf("single point: %v %v", out, err)
	}
}
