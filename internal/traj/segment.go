package traj

import (
	"fmt"

	"trajsim/internal/geo"
)

// Segment is a directed line segment of a piecewise line representation.
// Start and End are the segment endpoints; StartIdx and EndIdx are the
// inclusive indices of the original data points the segment represents.
//
// Endpoints are normally data points of the source trajectory
// (Start == t[StartIdx]), but OPERB-A may replace them with interpolated
// patch points, flagged by VirtualStart/VirtualEnd. Absorbed points
// (optimization 5 in §4.4) extend EndIdx past the index of End.
type Segment struct {
	Start, End   Point
	StartIdx     int
	EndIdx       int
	VirtualStart bool
	VirtualEnd   bool
}

// NewSegment builds a segment between two source points of t.
func NewSegment(t Trajectory, startIdx, endIdx int) Segment {
	return Segment{Start: t[startIdx], End: t[endIdx], StartIdx: startIdx, EndIdx: endIdx}
}

// PointCount returns the number of data points the segment represents,
// counting both endpoints (the paper's Ci in Exp-2.3; shared endpoints are
// double-counted across adjacent segments).
func (s Segment) PointCount() int { return s.EndIdx - s.StartIdx + 1 }

// Anomalous reports whether the segment represents only two data points —
// its own start and end (§5.1). Segments extended by absorbed points are
// not anomalous.
func (s Segment) Anomalous() bool { return s.PointCount() == 2 }

// Length returns the spatial length of the segment in meters.
func (s Segment) Length() float64 { return s.Start.Dist(s.End) }

// Theta returns the angle of the directed segment in [0, 2π).
func (s Segment) Theta() float64 { return geo.SegmentAngle(s.Start.P(), s.End.P()) }

// LineDistance returns the distance from p to the infinite line through the
// segment, the error measure used by the paper.
func (s Segment) LineDistance(p Point) float64 {
	return geo.PointLineDistance(p.P(), s.Start.P(), s.End.P())
}

// SegmentDistance returns the distance from p to the closed segment.
func (s Segment) SegmentDistance(p Point) float64 {
	return geo.PointSegmentDistance(p.P(), s.Start.P(), s.End.P())
}

// Covers reports whether the segment represents the source point index i.
func (s Segment) Covers(i int) bool { return i >= s.StartIdx && i <= s.EndIdx }

// String implements fmt.Stringer.
func (s Segment) String() string {
	return fmt.Sprintf("[%d..%d] %v -> %v", s.StartIdx, s.EndIdx, s.Start, s.End)
}

// At returns the position on the segment at time t (ms): the point
// reached by moving along the segment at constant speed between the
// endpoint timestamps — the where-was-it-at-t query the piecewise
// representation exists to answer. Times outside [Start.T, End.T] clamp
// to the nearer endpoint.
func (s Segment) At(t int64) Point {
	dt := s.End.T - s.Start.T
	if dt <= 0 || t <= s.Start.T {
		return Point{X: s.Start.X, Y: s.Start.Y, T: t}
	}
	if t >= s.End.T {
		return Point{X: s.End.X, Y: s.End.Y, T: t}
	}
	p := geo.Lerp(s.Start.P(), s.End.P(), float64(t-s.Start.T)/float64(dt))
	return Point{X: p.X, Y: p.Y, T: t}
}

// SEDistance returns the synchronized Euclidean distance from p to the
// segment: the distance between p and the position obtained by moving
// along the segment at constant speed between the endpoint timestamps.
// Used by the TD-TR and OPW-TR variants ([15] in the paper).
func (s Segment) SEDistance(p Point) float64 {
	dt := s.End.T - s.Start.T
	if dt <= 0 {
		return p.Dist(s.Start)
	}
	frac := float64(p.T-s.Start.T) / float64(dt)
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	expected := geo.Lerp(s.Start.P(), s.End.P(), frac)
	return p.P().Dist(expected)
}
