package traj

import (
	"math/rand"
	"testing"
)

func TestCleanerInOrderPassThrough(t *testing.T) {
	c := NewCleaner(2)
	var out []Point
	src := line(10, 5)
	for _, p := range src {
		out = append(out, c.Push(p)...)
	}
	out = append(out, c.Flush()...)
	if len(out) != len(src) {
		t.Fatalf("got %d points, want %d", len(out), len(src))
	}
	for i := range src {
		if out[i] != src[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], src[i])
		}
	}
}

func TestCleanerReordersWithinWindow(t *testing.T) {
	c := NewCleaner(3)
	pts := []Point{
		{T: 0}, {T: 2000}, {T: 1000}, {T: 3000}, {T: 5000}, {T: 4000},
	}
	var out []Point
	for _, p := range pts {
		out = append(out, c.Push(p)...)
	}
	out = append(out, c.Flush()...)
	if len(out) != 6 {
		t.Fatalf("got %d points, want 6", len(out))
	}
	if err := Trajectory(out).Validate(); err != nil {
		t.Fatalf("reordered output invalid: %v", err)
	}
	_, reordered, _ := c.Stats()
	if reordered != 2 {
		t.Errorf("reordered = %d, want 2", reordered)
	}
}

func TestCleanerDropsDuplicates(t *testing.T) {
	c := NewCleaner(2)
	p := Point{X: 1, Y: 2, T: 1000}
	var out []Point
	for _, q := range []Point{{T: 0}, p, p, p, {T: 2000}} {
		out = append(out, c.Push(q)...)
	}
	out = append(out, c.Flush()...)
	if len(out) != 3 {
		t.Fatalf("got %d points, want 3 (duplicates dropped)", len(out))
	}
	dupes, _, _ := c.Stats()
	if dupes != 2 {
		t.Errorf("duplicates = %d, want 2", dupes)
	}
}

func TestCleanerDropsEqualTimeFixes(t *testing.T) {
	c := NewCleaner(1)
	var out []Point
	for _, q := range []Point{{T: 0}, {X: 5, T: 1000}, {X: 9, T: 1000}, {T: 2000}} {
		out = append(out, c.Push(q)...)
	}
	out = append(out, c.Flush()...)
	if err := Trajectory(out).Validate(); err != nil {
		t.Fatalf("output invalid: %v", err)
	}
	if len(out) != 3 {
		t.Errorf("got %d points, want 3", len(out))
	}
}

func TestCleanerDropsStalePoints(t *testing.T) {
	c := NewCleaner(0) // no reorder buffer: anything older is stale
	var out []Point
	for _, q := range []Point{{T: 1000}, {T: 2000}, {T: 500}, {T: 3000}} {
		out = append(out, c.Push(q)...)
	}
	out = append(out, c.Flush()...)
	if len(out) != 3 {
		t.Fatalf("got %d points, want 3", len(out))
	}
	_, _, dropped := c.Stats()
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}

func TestCleanBatch(t *testing.T) {
	raw := []Point{{T: 0}, {T: 2000}, {T: 2000}, {T: 1000}, {T: 3000}}
	out := Clean(raw, 4)
	if err := out.Validate(); err != nil {
		t.Fatalf("Clean output invalid: %v", err)
	}
	if len(out) != 4 {
		t.Errorf("got %d points, want 4", len(out))
	}
}

// Shuffled streams within the window size always come out sorted and
// complete.
func TestCleanerShuffledProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 20 + r.Intn(30)
		src := make([]Point, n)
		for i := range src {
			src[i] = Point{X: float64(i), T: int64(i) * 1000}
		}
		// Local shuffle: swap adjacent pairs within distance 3.
		for i := 0; i+3 < n; i += 3 {
			j := i + r.Intn(3)
			src[i], src[j] = src[j], src[i]
		}
		out := Clean(src, 5)
		if len(out) != n {
			t.Fatalf("trial %d: got %d points, want %d", trial, len(out), n)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
