package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FsyncReuse mechanizes the fsyncgate rule from PR 9's quarantine
// design: once a code path has observed a Sync() error on a file, the
// kernel may already have dropped the dirty pages — the error was
// reported once and will not be reported again. Writing or syncing
// the same file value afterwards can succeed while the data is gone.
// The only legal moves after a failed fsync are Close and reopening
// via recovery (which is what poisonLocked/tryUnquarantine do).
var FsyncReuse = &Analyzer{
	Name: "fsyncreuse",
	Doc: "after observing a Sync() error, the same file value must " +
		"not be written or synced again; close it and re-open through " +
		"recovery",
	Run: runFsyncReuse,
}

// fsyncForbidden are the operations that would reuse a file value
// whose sync already failed. Close (and Name/Fd-style reads) stay
// legal: shedding the fd is the recovery path.
var fsyncForbidden = map[string]bool{
	"Write": true, "WriteAt": true, "WriteString": true,
	"ReadFrom": true, "Sync": true, "Truncate": true,
}

func runFsyncReuse(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if b, ok := n.(*ast.BlockStmt); ok {
				checkFsyncBlock(pass, b.List)
			}
			return true
		})
	}
}

func checkFsyncBlock(pass *Pass, list []ast.Stmt) {
	for i, s := range list {
		switch s := s.(type) {
		case *ast.IfStmt:
			recv, inverted := syncErrIf(pass, s)
			if recv == "" {
				continue
			}
			if !inverted {
				// if err := x.Sync(); err != nil { error path }
				reportFsyncMisuse(pass, s.Body.List, recv)
				if !blockTerminates(pass, s.Body.List) {
					reportFsyncRest(pass, list[i+1:], recv)
				}
			} else {
				// if err := x.Sync(); err == nil { success } — the
				// error path is the else branch and the fallthrough.
				if s.Else != nil {
					if eb, ok := s.Else.(*ast.BlockStmt); ok {
						reportFsyncMisuse(pass, eb.List, recv)
					}
				}
				reportFsyncRest(pass, list[i+1:], recv)
			}
		case *ast.AssignStmt:
			// err = x.Sync() followed by a later if err != nil.
			recv, errName := syncErrAssign(pass, s)
			if recv == "" {
				continue
			}
			for _, later := range list[i+1:] {
				if reassigns(later, errName) || reassigns(later, recv) {
					break
				}
				ifs, ok := later.(*ast.IfStmt)
				if !ok || ifs.Init != nil {
					continue
				}
				op, name := errNilCond(ifs.Cond)
				if name != errName {
					continue
				}
				if op == token.NEQ {
					reportFsyncMisuse(pass, ifs.Body.List, recv)
				}
				break
			}
		}
	}
}

// syncErrIf matches `if err := x.Sync(); err <op> nil` and returns
// the printed receiver x, with inverted=true for the == polarity.
func syncErrIf(pass *Pass, s *ast.IfStmt) (recv string, inverted bool) {
	as, ok := s.Init.(*ast.AssignStmt)
	if !ok {
		return "", false
	}
	r, errName := syncErrAssign(pass, as)
	if r == "" {
		return "", false
	}
	op, name := errNilCond(s.Cond)
	if name != errName {
		return "", false
	}
	switch op {
	case token.NEQ:
		return r, false
	case token.EQL:
		return r, true
	}
	return "", false
}

// syncErrAssign matches `err := x.Sync()` / `err = x.Sync()`.
func syncErrAssign(pass *Pass, as *ast.AssignStmt) (recv, errName string) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", ""
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return "", ""
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sync" || len(call.Args) != 0 {
		return "", ""
	}
	return types.ExprString(sel.X), id.Name
}

// errNilCond matches `name != nil` / `name == nil`.
func errNilCond(cond ast.Expr) (token.Token, string) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return token.ILLEGAL, ""
	}
	id, ok := ast.Unparen(be.X).(*ast.Ident)
	if !ok {
		return token.ILLEGAL, ""
	}
	if nilID, ok := ast.Unparen(be.Y).(*ast.Ident); !ok || nilID.Name != "nil" {
		return token.ILLEGAL, ""
	}
	return be.Op, id.Name
}

// reportFsyncMisuse flags forbidden same-receiver operations in stmts.
func reportFsyncMisuse(pass *Pass, stmts []ast.Stmt, recv string) {
	for _, s := range stmts {
		if reassigns(s, recv) {
			return
		}
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !fsyncForbidden[sel.Sel.Name] {
				return true
			}
			if types.ExprString(sel.X) != recv {
				return true
			}
			pass.Reportf(call.Pos(), "%s.%s after observing a Sync error on %s: a failed fsync must not be retried on the same file; close and re-open through recovery",
				recv, sel.Sel.Name, recv)
			return true
		})
	}
}

// reportFsyncRest scans the statements after a non-terminating error
// branch, stopping once the receiver is reassigned.
func reportFsyncRest(pass *Pass, stmts []ast.Stmt, recv string) {
	for _, s := range stmts {
		if reassigns(s, recv) {
			return
		}
		reportFsyncMisuse(pass, []ast.Stmt{s}, recv)
	}
}

// reassigns reports whether stmt assigns to the printed expression
// name (the receiver being tracked, or the captured error variable).
func reassigns(stmt ast.Stmt, name string) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if types.ExprString(ast.Unparen(lhs)) == name {
			return true
		}
	}
	return false
}

// blockTerminates reports whether the list unconditionally exits the
// enclosing function or loop (good enough for straight-line error
// branches: return, branch, or panic as a top-level statement).
func blockTerminates(pass *Pass, list []ast.Stmt) bool {
	for _, s := range list {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok != token.FALLTHROUGH {
				return true
			}
		case *ast.ExprStmt:
			if isPanicCall(pass, s.X) {
				return true
			}
		}
	}
	return false
}
