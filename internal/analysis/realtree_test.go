package analysis

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot walks up from the working directory to the module root so
// the real-tree tests run from any package directory.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the working directory")
		}
		dir = parent
	}
}

// TestRepoCleanUnderTrajlint is the acceptance gate CI enforces: the
// whole tree, under every analyzer, with zero unsuppressed findings.
// A new finding means either a real invariant violation (fix it) or a
// deliberate design decision (suppress it with a written reason).
func TestRepoCleanUnderTrajlint(t *testing.T) {
	pkgs, err := Load(LoadConfig{Dir: repoRoot(t)}, "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range Unsuppressed(Run(pkgs, All())) {
		t.Errorf("unsuppressed finding: %s", f)
	}
}

// mutableDirective matches the directive kinds whose deletion must
// make an analyzer fire: caller contracts (holds, returns-locked),
// design exemptions (serializes-io) and suppressions (ignore). These
// always occupy a whole comment line. guardedby directives are not
// mutation-tested — deleting one only widens what the checker accepts,
// so "fewer findings" is the failure mode, not "new findings"; their
// coverage comes from the holds mutations, which only fire because the
// fields the annotated functions touch carry guardedby.
var mutableDirectives = []string{
	"//trajlint:holds",
	"//trajlint:returns-locked",
	"//trajlint:serializes-io",
	"//trajlint:ignore",
}

type directiveSite struct {
	file string // absolute path
	pkg  string // package pattern relative to the repo root
	line int    // 1-based
	text string // the directive line, trimmed
}

func collectDirectiveSites(t *testing.T, root string) []directiveSite {
	t.Helper()
	var sites []directiveSite
	for _, pkg := range []string{"./internal/segstore", "./internal/stream"} {
		dir := filepath.Join(root, pkg)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(dir, name)
			f, err := os.Open(full)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for n := 1; sc.Scan(); n++ {
				trimmed := strings.TrimSpace(sc.Text())
				for _, d := range mutableDirectives {
					if strings.HasPrefix(trimmed, d) {
						sites = append(sites, directiveSite{full, pkg, n, trimmed})
					}
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return sites
}

// TestDirectivesAreLoadBearing deletes each holds / returns-locked /
// serializes-io / ignore directive from the real sources, one at a
// time, and asserts trajlint fails. This is what keeps the annotations
// honest: an annotation whose deletion changes nothing is documentation
// cosplaying as a checked invariant, and would rot exactly like the
// prose comments it replaced.
func TestDirectivesAreLoadBearing(t *testing.T) {
	if testing.Short() {
		t.Skip("mutation sweep re-typechecks per directive")
	}
	root := repoRoot(t)
	sites := collectDirectiveSites(t, root)
	if len(sites) < 20 {
		t.Fatalf("only %d mutable directives found; the annotation sweep has regressed", len(sites))
	}
	for _, site := range sites {
		src, err := os.ReadFile(site.file)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(string(src), "\n")
		// Blank the directive but keep the line, so positions in any
		// resulting findings still line up with the real file.
		lines[site.line-1] = "//"
		overlay := map[string][]byte{site.file: []byte(strings.Join(lines, "\n"))}

		pkgs, err := Load(LoadConfig{Dir: root, Overlay: overlay}, site.pkg)
		if err != nil {
			t.Fatalf("%s:%d: load with %q deleted: %v", site.file, site.line, site.text, err)
		}
		if got := Unsuppressed(Run(pkgs, All())); len(got) == 0 {
			t.Errorf("%s:%d: deleting %q produces no finding; the directive is not load-bearing",
				site.file, site.line, site.text)
		}
	}
}
