package analysis

import (
	"go/ast"
	"path/filepath"
)

// FSDirect keeps every file operation in internal/segstore behind the
// fs.go injection seam. A direct os.* call compiles and passes every
// un-injected test, but silently escapes the PR 9 fault matrix: the
// injected filesystem never sees the operation, so fault coverage
// shrinks without any test failing. That is exactly how the PR 9
// rotation bug survived until the matrix grew a new probe.
var FSDirect = &Analyzer{
	Name: "fsdirect",
	Doc: "inside package segstore, direct os file operations are " +
		"forbidden outside fs.go: all file I/O goes through the " +
		"fileSystem seam so fault injection sees it",
	Run: runFSDirect,
}

// osFileOps is the set of os package functions that touch the
// filesystem. References count as much as calls: passing os.Remove as
// a value escapes the seam just as thoroughly.
var osFileOps = map[string]bool{
	"Create": true, "CreateTemp": true, "NewFile": true, "Open": true,
	"OpenFile": true, "OpenRoot": true, "ReadFile": true, "WriteFile": true,
	"ReadDir": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Remove": true, "RemoveAll": true, "Rename": true, "Truncate": true,
	"Chtimes": true, "Chmod": true, "Chown": true, "Lchown": true,
	"Link": true, "Symlink": true, "Readlink": true,
	"Stat": true, "Lstat": true, "Pipe": true,
}

func runFSDirect(pass *Pass) {
	if pass.Pkg.Name() != "segstore" {
		return
	}
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Package).Filename)
		if name == "fs.go" {
			continue // the seam itself is where os lives
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "os" {
				return true
			}
			if !osFileOps[obj.Name()] || !isPackageFunc(obj) {
				// os.File methods (Truncate, Stat, ...) share names
				// with package functions; the seam rule is about the
				// package-level entry points.
				return true
			}
			pass.Reportf(id.Pos(), "direct os.%s bypasses the fileSystem seam (fs.go); use the injected filesystem so fault injection covers this call", obj.Name())
			return true
		})
	}
}
