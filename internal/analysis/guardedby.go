package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedBy enforces //trajlint:guardedby field annotations: an
// annotated field may only be read or written while its guard mutex
// is held on the local path. It also owns the annotation grammar
// (malformed //trajlint: annotations are reported here) and checks
// //trajlint:holds contracts at every call site.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //trajlint:guardedby must be accessed " +
		"with their guard held; //trajlint:holds call sites must hold " +
		"the locks they promise",
	Run: runGuardedBy,
}

func runGuardedBy(pass *Pass) {
	fx := collectFacts(pass)
	for _, d := range fx.problems {
		pass.Reportf(d.Pos, "%s", d.Message)
	}
	w := &walker{pass: pass, fx: fx}
	w.onAccess = func(sel *ast.SelectorExpr, field *types.Var, held *lockSet) {
		checkGuardedAccess(pass, w, sel, field, held)
	}
	w.onCall = func(call *ast.CallExpr, held *lockSet) {
		checkHoldsCallSite(pass, w, call, held)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				w.walkFunc(fd)
			}
		}
	}
}

func checkGuardedAccess(pass *Pass, w *walker, sel *ast.SelectorExpr, field *types.Var, held *lockSet) {
	spec := w.fx.guarded[field]
	// Constructor exemption: a freshly allocated value is not yet
	// shared, so its fields need no lock.
	if r := rootObj(pass.TypesInfo, sel.X); r != nil && w.localAlloc[r] {
		return
	}
	if spec.sibling != "" {
		// Same-struct guard: the lock must be held through the same
		// base expression ("l.f" needs "l.mu"), which keeps distinct
		// instances distinct.
		guard := types.ExprString(sel.X) + "." + spec.sibling
		if held.hasExpr(guard) {
			return
		}
		pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s, which is not held here",
			types.ExprString(sel.X), field.Name(), guard)
		return
	}
	// Type-qualified guard: one global lock instance guards the field
	// wherever it lives, so object identity is the right match.
	if held.hasObj(spec.guardObj) {
		return
	}
	pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s.%s, which is not held here",
		types.ExprString(sel.X), field.Name(), spec.typeName, spec.guardObj.Name())
}

// checkHoldsCallSite verifies that a call to a //trajlint:holds
// function actually holds the promised locks, mapped through the call
// arguments (receiver or positional parameter).
func checkHoldsCallSite(pass *Pass, w *walker, call *ast.CallExpr, held *lockSet) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	specs := w.fx.holds[fn]
	if len(specs) == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	for _, spec := range specs {
		arg := holdsArgExpr(pass, fn, sig, call, spec)
		if arg == nil {
			continue // method value / mismatched call shape: give up quietly
		}
		guard := types.ExprString(arg) + "." + spec.field
		if held.hasExpr(guard) {
			continue
		}
		// A freshly allocated argument is unshared; its lock contract
		// is vacuous (constructors building a log before publishing).
		if r := rootObj(pass.TypesInfo, arg); r != nil && w.localAlloc[r] {
			continue
		}
		pass.Reportf(call.Pos(), "call to %s requires holding %s (declared //trajlint:holds %s.%s)",
			fn.Name(), guard, spec.base, spec.field)
	}
}

// holdsArgExpr maps a holdSpec base name to the concrete argument
// expression at this call site.
func holdsArgExpr(pass *Pass, fn *types.Func, sig *types.Signature, call *ast.CallExpr, spec holdSpec) ast.Expr {
	if sig.Recv() != nil && sig.Recv().Name() == spec.base {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i).Name() == spec.base {
			if i < len(call.Args) {
				return call.Args[i]
			}
			return nil
		}
	}
	return nil
}
