package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch. Grammar:
//
//	//trajlint:ignore <analyzer>[,<analyzer>...] <reason...>
//
// placed on the flagged line or the line directly above it. The
// reason is mandatory: an unexplained suppression is a finding in its
// own right, and an ignore that suppresses nothing (while every
// analyzer it names was run) is reported as unused so stale escapes
// cannot accumulate.

type ignoreDirective struct {
	analyzers []string
	reason    string
	file      string
	line      int
	pos       token.Pos
	bad       string // non-empty: malformed, with explanation
	used      bool
}

type ignoreSet struct {
	// byFile maps filename -> line -> directives ending on that line.
	byFile map[string]map[int][]*ignoreDirective
	all    []*ignoreDirective
}

const ignorePrefix = "//trajlint:ignore"

func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	s := &ignoreSet{byFile: map[string]map[int][]*ignoreDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				d := &ignoreDirective{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					// e.g. //trajlint:ignorexyz — not ours.
					continue
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.bad = "missing analyzer list and reason"
				case len(fields) == 1:
					d.bad = "missing reason: every suppression must say why"
				default:
					d.analyzers = strings.Split(fields[0], ",")
					d.reason = strings.Join(fields[1:], " ")
					for _, name := range d.analyzers {
						if !knownAnalyzer(name) {
							d.bad = "unknown analyzer " + name
						}
					}
				}
				m := s.byFile[pos.Filename]
				if m == nil {
					m = map[int][]*ignoreDirective{}
					s.byFile[pos.Filename] = m
				}
				m[pos.Line] = append(m[pos.Line], d)
				s.all = append(s.all, d)
			}
		}
	}
	return s
}

func knownAnalyzer(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// match finds a well-formed directive covering analyzer at pos: same
// file, same line or the line directly above.
func (s *ignoreSet) match(analyzer string, pos token.Position) *ignoreDirective {
	m := s.byFile[pos.Filename]
	if m == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range m[line] {
			if d.bad != "" {
				continue
			}
			for _, a := range d.analyzers {
				if a == analyzer {
					return d
				}
			}
		}
	}
	return nil
}

// problems returns driver findings: malformed directives always, and
// unused directives whenever every analyzer they name was in the run
// (so a single-analyzer test pass cannot false-positive on an ignore
// aimed at a different analyzer).
func (s *ignoreSet) problems(fset *token.FileSet, ran map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.all {
		switch {
		case d.bad != "":
			out = append(out, Finding{
				Analyzer: driverName,
				Position: fset.Position(d.pos),
				Message:  "malformed trajlint:ignore: " + d.bad,
			})
		case !d.used:
			allRan := true
			for _, a := range d.analyzers {
				if !ran[a] {
					allRan = false
					break
				}
			}
			if allRan {
				out = append(out, Finding{
					Analyzer: driverName,
					Position: fset.Position(d.pos),
					Message:  "unused trajlint:ignore: no " + strings.Join(d.analyzers, ",") + " finding here to suppress",
				})
			}
		}
	}
	return out
}
