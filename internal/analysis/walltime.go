package analysis

import (
	"go/ast"
)

// WallTime keeps the clock-injected packages deterministic: inside
// internal/segstore and internal/stream, the wall clock may only be
// read through the injected clock seam (segstore's defaultNow
// variable, stream's Engine.now field). A stray time.Now compiles
// fine and works in production, but quietly makes retention,
// quarantine backoff, idle eviction and rate-limit tests
// time-dependent again — the exact flakiness PR 6 and PR 9 paid to
// remove. The two seam assignments themselves carry the
// //trajlint:ignore that marks them as the single allowed use.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "time.Now/Since/argless timers are forbidden in the " +
		"clock-injected packages (segstore, stream) outside the " +
		"annotated clock seam",
	Run: runWallTime,
}

// bannedTimeFuncs reads ambient wall-clock state or schedules on it.
// time.NewTicker is included: production loops take their period from
// config and their cadence belongs behind the seam too, so the two
// maintenance tickers are explicit, justified suppressions.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
}

func runWallTime(pass *Pass) {
	switch pass.Pkg.Name() {
	case "segstore", "stream":
	default:
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if !bannedTimeFuncs[obj.Name()] || !isPackageFunc(obj) {
				// Methods like Time.After share names with the banned
				// package functions; only the package-level functions
				// read ambient state.
				return true
			}
			pass.Reportf(id.Pos(), "time.%s reads the wall clock in a clock-injected package; use the injected clock seam so tests stay deterministic", obj.Name())
			return true
		})
	}
}
