package analysis_test

import (
	"testing"

	"trajsim/internal/analysis"
	"trajsim/internal/analysis/analysistest"
)

// Each analyzer has a fixture package with positive (// want) and
// negative (comment-free) cases, run through the real loader and
// driver so ignore handling is exercised too.

func TestFSDirect(t *testing.T) {
	analysistest.Run(t, analysis.FSDirect, "./testdata/src/fsdirect")
}

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, analysis.GuardedBy, "./testdata/src/guardedby")
}

func TestLockIO(t *testing.T) {
	analysistest.Run(t, analysis.LockIO, "./testdata/src/lockio")
}

func TestWallTime(t *testing.T) {
	analysistest.Run(t, analysis.WallTime, "./testdata/src/walltime")
}

func TestFsyncReuse(t *testing.T) {
	analysistest.Run(t, analysis.FsyncReuse, "./testdata/src/fsyncreuse")
}

// TestRotateBugShape pins the PR 9 regression: the rotation that
// bypassed the fs seam and did successor I/O under the store-wide
// lock must be caught by fsdirect and lockio together.
func TestRotateBugShape(t *testing.T) {
	analysistest.RunAll(t,
		[]*analysis.Analyzer{analysis.FSDirect, analysis.LockIO},
		"./testdata/src/rotatebug")
}
