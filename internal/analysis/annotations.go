package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Machine-readable concurrency annotations. These formalize the prose
// "guarded by mu" comments the storage and stream tiers accumulated
// across PRs 4-9:
//
//	//trajlint:guardedby <guard>     on a struct field. guard is a
//	    sibling field name ("mu"), or "Type.field" for a lock that
//	    lives on another struct (e.g. the handle-LRU list lock).
//	//trajlint:serializes-io         on a mutex field. Declares that
//	    file I/O under this lock is the design (the per-device log
//	    lock IS the write-path serialization point), exempting it
//	    from the lockio analyzer. Store-wide locks never get this.
//	//trajlint:holds <x>.<mu>[, ...] on a function. The caller
//	    contract "caller holds x.mu" made checkable: the lock is
//	    assumed held inside the body, and every call site is checked
//	    to actually hold it.
//	//trajlint:returns-locked <mu>   on a function whose first result
//	    is returned with its <mu> field held (segstore's lockLog).
//	    Assignments from such calls add the lock to the local set.
//
// guardedby and lockio both consume these facts; guardedby owns the
// grammar and is the analyzer that reports malformed annotations.

type guardSpec struct {
	// Exactly one of sibling / guardObj-with-typeName is set.
	sibling  string     // guard is a sibling field with this name
	typeName string     // "Type.field" form: the owning type's name
	guardObj *types.Var // resolved external guard field
	field    *types.Var // the annotated field itself
	pos      token.Pos
}

type holdSpec struct {
	base  string     // receiver or parameter name
	field string     // mutex field name on base's type
	obj   *types.Var // resolved mutex field
}

type retLockSpec struct {
	field string     // mutex field name on the first result's pointee
	obj   *types.Var // resolved mutex field
}

type facts struct {
	guarded       map[*types.Var]*guardSpec
	serializesIO  map[*types.Var]bool
	holds         map[*types.Func][]holdSpec
	returnsLocked map[*types.Func]retLockSpec
	problems      []Diagnostic // malformed annotations
}

const (
	guardedByPrefix     = "//trajlint:guardedby"
	serializesIOPrefix  = "//trajlint:serializes-io"
	holdsPrefix         = "//trajlint:holds"
	returnsLockedPrefix = "//trajlint:returns-locked"
)

// directiveArg returns (argument, true) when text is the directive
// dir, possibly followed by whitespace-separated arguments. Anything
// after a " -- " separator is free-form commentary, not argument.
func directiveArg(text, dir string) (string, bool) {
	if !strings.HasPrefix(text, dir) {
		return "", false
	}
	rest := strings.TrimPrefix(text, dir)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	if arg, _, found := strings.Cut(rest, " -- "); found {
		rest = arg
	}
	return strings.TrimSpace(rest), true
}

func collectFacts(pass *Pass) *facts {
	fx := &facts{
		guarded:       map[*types.Var]*guardSpec{},
		serializesIO:  map[*types.Var]bool{},
		holds:         map[*types.Func][]holdSpec{},
		returnsLocked: map[*types.Func]retLockSpec{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					fx.collectStruct(pass, st)
				}
			case *ast.FuncDecl:
				fx.collectFunc(pass, d)
			}
		}
	}
	return fx
}

func fieldComments(f *ast.Field) []*ast.Comment {
	var out []*ast.Comment
	if f.Doc != nil {
		out = append(out, f.Doc.List...)
	}
	if f.Comment != nil {
		out = append(out, f.Comment.List...)
	}
	return out
}

func (fx *facts) collectStruct(pass *Pass, st *ast.StructType) {
	for _, f := range st.Fields.List {
		for _, c := range fieldComments(f) {
			if arg, ok := directiveArg(c.Text, guardedByPrefix); ok {
				fx.addGuarded(pass, st, f, c.Pos(), arg)
			}
			if arg, ok := directiveArg(c.Text, serializesIOPrefix); ok {
				if arg != "" {
					fx.problems = append(fx.problems, Diagnostic{c.Pos(), "trajlint:serializes-io takes no argument"})
					continue
				}
				fx.addSerializesIO(pass, f, c.Pos())
			}
		}
	}
}

func (fx *facts) addGuarded(pass *Pass, st *ast.StructType, f *ast.Field, pos token.Pos, arg string) {
	if arg == "" {
		fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:guardedby needs a guard: a sibling field name or Type.field"})
		return
	}
	spec := &guardSpec{pos: pos}
	if typeName, field, ok := strings.Cut(arg, "."); ok {
		spec.typeName = typeName
		obj := pass.Pkg.Scope().Lookup(typeName)
		tn, _ := obj.(*types.TypeName)
		if tn == nil {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:guardedby: no type " + typeName + " in this package"})
			return
		}
		spec.guardObj = structField(tn.Type(), field)
		if spec.guardObj == nil || !isMutexType(spec.guardObj.Type()) {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:guardedby: " + arg + " is not a mutex field"})
			return
		}
	} else {
		spec.sibling = arg
		g := findSibling(pass, st, arg)
		if g == nil || !isMutexType(g.Type()) {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:guardedby: no sibling mutex field " + arg})
			return
		}
		spec.guardObj = g
	}
	for _, name := range f.Names {
		v, _ := pass.TypesInfo.Defs[name].(*types.Var)
		if v == nil {
			continue
		}
		s := *spec
		s.field = v
		fx.guarded[v] = &s
	}
}

func (fx *facts) addSerializesIO(pass *Pass, f *ast.Field, pos token.Pos) {
	for _, name := range f.Names {
		v, _ := pass.TypesInfo.Defs[name].(*types.Var)
		if v == nil {
			continue
		}
		if !isMutexType(v.Type()) {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:serializes-io must annotate a mutex field"})
			continue
		}
		fx.serializesIO[v] = true
	}
}

func findSibling(pass *Pass, st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				v, _ := pass.TypesInfo.Defs[n].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// structField finds a direct field by name on t (behind pointers).
func structField(t types.Type, name string) *types.Var {
	s, ok := t.Underlying().(*types.Struct)
	if !ok {
		if p, ok2 := t.Underlying().(*types.Pointer); ok2 {
			s, ok = p.Elem().Underlying().(*types.Struct)
		}
		if !ok {
			return nil
		}
	}
	for i := 0; i < s.NumFields(); i++ {
		if s.Field(i).Name() == name {
			return s.Field(i)
		}
	}
	return nil
}

func (fx *facts) collectFunc(pass *Pass, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	for _, c := range fd.Doc.List {
		if arg, ok := directiveArg(c.Text, holdsPrefix); ok {
			fx.addHolds(pass, fd, fn, c.Pos(), arg)
		}
		if arg, ok := directiveArg(c.Text, returnsLockedPrefix); ok {
			fx.addReturnsLocked(pass, fd, fn, c.Pos(), arg)
		}
	}
}

// paramType resolves name to the type of fd's receiver or a
// parameter with that name.
func paramType(pass *Pass, fd *ast.FuncDecl, name string) types.Type {
	check := func(fl *ast.FieldList) types.Type {
		if fl == nil {
			return nil
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if n.Name == name {
					if v, ok := pass.TypesInfo.Defs[n].(*types.Var); ok {
						return v.Type()
					}
				}
			}
		}
		return nil
	}
	if t := check(fd.Recv); t != nil {
		return t
	}
	return check(fd.Type.Params)
}

func (fx *facts) addHolds(pass *Pass, fd *ast.FuncDecl, fn *types.Func, pos token.Pos, arg string) {
	if arg == "" {
		fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:holds needs one or more <receiver-or-param>.<mutex> arguments"})
		return
	}
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		base, field, ok := strings.Cut(part, ".")
		if !ok {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:holds: " + part + " is not of the form x.mu"})
			continue
		}
		bt := paramType(pass, fd, base)
		if bt == nil {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:holds: " + base + " is not a receiver or parameter of this function"})
			continue
		}
		mv := structField(bt, field)
		if mv == nil || !isMutexType(mv.Type()) {
			fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:holds: " + part + " is not a mutex field"})
			continue
		}
		fx.holds[fn] = append(fx.holds[fn], holdSpec{base: base, field: field, obj: mv})
	}
}

func (fx *facts) addReturnsLocked(pass *Pass, fd *ast.FuncDecl, fn *types.Func, pos token.Pos, arg string) {
	if arg == "" || strings.ContainsAny(arg, ". ") {
		fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:returns-locked needs a single mutex field name on the first result's type"})
		return
	}
	res := fd.Type.Results
	if res == nil || len(res.List) == 0 {
		fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:returns-locked on a function with no results"})
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Results().Len() == 0 {
		return
	}
	mv := structField(sig.Results().At(0).Type(), arg)
	if mv == nil || !isMutexType(mv.Type()) {
		fx.problems = append(fx.problems, Diagnostic{pos, "trajlint:returns-locked: first result has no mutex field " + arg})
		return
	}
	fx.returnsLocked[fn] = retLockSpec{field: arg, obj: mv}
}
