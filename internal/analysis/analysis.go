package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker. Run reports through the
// Pass; the driver handles //trajlint:ignore suppression afterwards,
// so analyzers never need to know about escapes.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is the per-(analyzer, package) unit of work.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is a raw report from an analyzer, pre-suppression.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a driver-level result: a diagnostic resolved to a file
// position, with suppression state attached.
type Finding struct {
	Analyzer   string
	Position   token.Position
	Message    string
	Suppressed bool
	// Reason is the justification from the matching //trajlint:ignore
	// when Suppressed.
	Reason string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: %s [%s]", f.Position, f.Message, f.Analyzer)
	if f.Suppressed {
		s += " (suppressed: " + f.Reason + ")"
	}
	return s
}

// All returns the full trajlint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{FSDirect, GuardedBy, LockIO, WallTime, FsyncReuse}
}

// driverName attributes findings produced by the driver itself
// (malformed or unused ignore directives) rather than an analyzer.
const driverName = "trajlint"

// Run executes the analyzers over the packages and resolves ignore
// directives. Every diagnostic appears in the result; suppressed ones
// are marked rather than dropped so tests can assert on both sets.
// Driver findings (malformed //trajlint:ignore, ignores that
// suppressed nothing although every analyzer they name was run) are
// appended unsuppressed: an escape that cannot be parsed, or that no
// longer masks anything, is itself rot.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			a.Run(pass)
			for _, d := range pass.diags {
				pos := pkg.Fset.Position(d.Pos)
				f := Finding{Analyzer: a.Name, Position: pos, Message: d.Message}
				if ig := ignores.match(a.Name, pos); ig != nil {
					ig.used = true
					f.Suppressed = true
					f.Reason = ig.reason
				}
				findings = append(findings, f)
			}
		}
		findings = append(findings, ignores.problems(pkg.Fset, ran)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Position, findings[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// Unsuppressed filters findings to the ones that should fail a build.
func Unsuppressed(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// ---- shared type helpers used by several analyzers ----

// namedOf unwraps pointers and returns the named type of t, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// isPackageFunc reports whether obj is a package-level function (not
// a method).
func isPackageFunc(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// pkgFunc resolves the called function object of call, if any.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
