// Package analysis is trajlint's engine: a small, dependency-free
// reimplementation of the go/analysis pattern (Analyzer, Pass,
// Diagnostic) plus a package loader, built only on the standard
// library's go/ast, go/types and go/importer.
//
// Why not golang.org/x/tools/go/analysis: this repo vendors nothing
// and adds no module requirements, so the analyzers are written
// against a mini framework with the same shape. The trade-off is
// deliberate: the five analyzers here (fsdirect, guardedby, lockio,
// walltime, fsyncreuse) are intraprocedural and syntax+types driven,
// which the standard library covers completely.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked root package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // parsed with comments, same order as GoFiles
	Types      *types.Package
	TypesInfo  *types.Info
}

// LoadConfig controls Load.
type LoadConfig struct {
	// Dir is where `go list` runs; empty means the current directory.
	// It must be inside the module.
	Dir string
	// Overlay maps absolute file paths to replacement contents used at
	// parse time. Type-checking sees the overlay too, so overlays must
	// keep the package compiling. The mutation tests use this to
	// strip one //trajlint: directive at a time from real sources.
	Overlay map[string][]byte
}

// pkgJSON is the subset of `go list -json` output the loader needs.
type pkgJSON struct {
	ImportPath, Name, Dir, Export string
	Standard, DepOnly             bool
	GoFiles                       []string
}

type listing struct {
	exports map[string]string // import path -> export data file
	roots   []pkgJSON
}

// listCache memoizes `go list` runs per (dir, patterns) for the life
// of the process. The listing is overlay-independent (overlays only
// change comments/bodies we re-parse ourselves), so mutation tests
// that call Load dozens of times pay for one subprocess.
var (
	listMu    sync.Mutex
	listCache = map[string]*listing{}
)

func runList(dir string, patterns []string) (*listing, error) {
	key := dir + "\x00" + strings.Join(patterns, "\x00")
	listMu.Lock()
	defer listMu.Unlock()
	if l, ok := listCache[key]; ok {
		return l, nil
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,GoFiles,Standard,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	l := &listing{exports: map[string]string{}}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p pkgJSON
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			l.roots = append(l.roots, p)
		}
	}
	sort.Slice(l.roots, func(i, j int) bool { return l.roots[i].ImportPath < l.roots[j].ImportPath })
	listCache[key] = l
	return l, nil
}

// Load resolves patterns with `go list`, parses every root package
// with comments, and type-checks it from source against compiled
// export data for its dependencies. Test files are not loaded:
// trajlint checks production invariants, and tests legitimately use
// wall clocks, direct os calls and lock-free scaffolding.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	l, err := runList(cfg.Dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	var pkgs []*Package
	for _, p := range l.roots {
		var files []*ast.File
		for _, name := range p.GoFiles {
			full := filepath.Join(p.Dir, name)
			var src any
			if ov, ok := cfg.Overlay[full]; ok {
				src = ov
			}
			f, err := parser.ParseFile(fset, full, src, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", full, err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: p.ImportPath,
			Name:       p.Name,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			TypesInfo:  info,
		})
	}
	return pkgs, nil
}
