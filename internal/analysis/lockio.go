package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockIO generalizes the PR 8 read-path rule to the whole repo: no
// file or sink I/O call while a mutex acquired in the enclosing
// function is still held. Disk latency under a shared lock turns one
// slow device into a stalled store.
//
// The one designed exception is declared, not hardcoded: a mutex
// annotated //trajlint:serializes-io (segstore's per-device log lock)
// is the write path's serialization point, so I/O under it alone is
// the design. Any store-wide lock held across I/O still flags.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc: "no file/fileSystem/sink I/O while holding a mutex acquired " +
		"in the enclosing function, unless every held lock is annotated " +
		"//trajlint:serializes-io",
	Run: runLockIO,
}

func runLockIO(pass *Pass) {
	fx := collectFacts(pass)
	w := &walker{pass: pass, fx: fx}
	w.onCall = func(call *ast.CallExpr, held *lockSet) {
		if held.empty() {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if !isIOMethod(pass.TypesInfo, sel) {
			return
		}
		var blocking []string
		for _, h := range held.locks {
			if h.obj != nil && fx.serializesIO[h.obj] {
				continue
			}
			blocking = append(blocking, h.expr)
		}
		if len(blocking) == 0 {
			return
		}
		pass.Reportf(call.Pos(), "I/O call %s.%s while holding %s acquired in this function",
			types.ExprString(sel.X), sel.Sel.Name, strings.Join(blocking, ", "))
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				w.walkFunc(fd)
			}
		}
	}
}

// ioReceiverTypes names the interface/struct types whose methods
// perform file or sink I/O, keyed by defining package name. Matching
// is by type name so the analyzer's own testdata fixtures (which
// declare a local `file` interface in a package named segstore)
// exercise the same code path as the real tree.
var ioReceiverTypes = map[string]map[string]bool{
	"segstore": {"file": true, "fileSystem": true},
	"stream":   {"Sink": true, "DeferredSink": true},
	"os":       {"File": true},
}

func isIOMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	n := namedOf(s.Recv())
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	names := ioReceiverTypes[obj.Pkg().Name()]
	return names != nil && names[obj.Name()]
}
