// Package analysistest runs an analyzer over a testdata fixture
// package and checks its findings against `// want "substr"` comments
// in the fixture source — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// own loader so the suite stays dependency-free.
//
// A fixture line produces an expectation with a trailing comment:
//
//	os.Remove(path) // want "bypasses the fileSystem seam"
//
// Each unsuppressed finding must match a want on its line (substring
// match), and every want must be matched by a finding. Driver
// findings (malformed or unused //trajlint:ignore) participate, so
// fixtures can also pin the escape-hatch hygiene rules.
package analysistest

import (
	"go/ast"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"trajsim/internal/analysis"
)

type want struct {
	file    string
	line    int
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`want((?:\s+"(?:[^"\\]|\\.)*")+)`)

// Run loads the fixture package at pattern (a directory path like
// ./testdata/src/fsdirect), runs the analyzer through the driver
// (ignore directives and all), and diffs findings against wants.
func Run(t *testing.T, a *analysis.Analyzer, pattern string) []analysis.Finding {
	t.Helper()
	return RunAll(t, []*analysis.Analyzer{a}, pattern)
}

// RunAll is Run with several analyzers over one fixture, for fixtures
// that are positive cases for more than one invariant (the PR 9
// rotation-bug shape trips both fsdirect and lockio).
func RunAll(t *testing.T, analyzers []*analysis.Analyzer, pattern string) []analysis.Finding {
	t.Helper()
	pkgs, err := analysis.Load(analysis.LoadConfig{}, pattern)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pattern, err)
	}
	findings := analysis.Run(pkgs, analyzers)

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants = append(wants, parseWants(t, pkg, c)...)
				}
			}
		}
	}

	for i := range findings {
		f := &findings[i]
		if f.Suppressed {
			continue
		}
		ok := false
		for _, w := range wants {
			if w.matched || w.file != f.Position.Filename || w.line != f.Position.Line {
				continue
			}
			if strings.Contains(f.Message, w.substr) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.substr)
		}
	}
	return findings
}

func parseWants(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*want {
	t.Helper()
	text := strings.TrimPrefix(c.Text, "//")
	text = strings.TrimSpace(strings.TrimPrefix(text, "/*"))
	if !strings.HasPrefix(text, "want") {
		return nil
	}
	m := wantRE.FindStringSubmatch(text)
	if m == nil {
		t.Errorf("%s: malformed want comment %q", pkg.Fset.Position(c.Pos()), c.Text)
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*want
	for _, q := range regexp.MustCompile(`"(?:[^"\\]|\\.)*"`).FindAllString(m[1], -1) {
		s, err := strconv.Unquote(q)
		if err != nil {
			t.Errorf("%s: bad want string %s: %v", pos, q, err)
			continue
		}
		out = append(out, &want{file: pos.Filename, line: pos.Line, substr: s})
	}
	return out
}
