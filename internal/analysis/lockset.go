package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The lockset walker: a branch-aware, intraprocedural abstract
// interpretation of which mutexes are held at each point in a
// function body. guardedby and lockio both drive it with callbacks.
//
// Semantics, and the deliberate approximations:
//
//   - x.Lock / x.RLock / x.TryLock / x.TryRLock add x; x.Unlock /
//     x.RUnlock remove it. Locks are identified by the printed source
//     expression ("l.mu"), plus the resolved field object when it can
//     be determined (used for type-qualified guards and the
//     serializes-io exemption).
//   - `defer x.Unlock()` keeps x held to the end of the function: the
//     walker simply does not remove it.
//   - //trajlint:holds seeds the set; assignments from a
//     //trajlint:returns-locked call add `<lhs>.<mu>`.
//   - if/else: a branch that terminates (return, panic, break,
//     continue, goto) discards its lock effects; when both arms fall
//     through, the sets are intersected. A TryLock in the condition
//     joins the ambient set, which is exact for the two idioms the
//     repo uses (`if !mu.TryLock() { mu.Lock() }` and
//     `if !mu.TryLock() { continue }`) and conservative-quiet
//     otherwise.
//   - for/range/switch/select bodies run on a copy and their effects
//     are discarded afterwards: a lock acquired and released inside a
//     loop body is checked inside that body only.
//   - a func literal is walked with a copy of the current set (it
//     usually runs on the spot or under the same critical section); a
//     `go func(){...}` body starts empty — a new goroutine holds
//     nothing.
//   - values allocated locally (&T{}, T{}, new(T)) are exempt from
//     guard checks: no other goroutine can see them yet. This is the
//     constructor exemption.
//
// The walker is intraprocedural on purpose: cross-function lock flow
// is expressed with annotations (holds / returns-locked) rather than
// inferred, so a reader sees the same contract the tool checks.

type heldLock struct {
	expr string     // printed acquisition expression, e.g. "l.mu"
	obj  *types.Var // resolved mutex field, when known
}

type lockSet struct {
	locks []heldLock
}

func (s *lockSet) clone() *lockSet {
	c := &lockSet{locks: make([]heldLock, len(s.locks))}
	copy(c.locks, s.locks)
	return c
}

func (s *lockSet) add(expr string, obj *types.Var) {
	if s.hasExpr(expr) {
		return
	}
	s.locks = append(s.locks, heldLock{expr: expr, obj: obj})
}

func (s *lockSet) remove(expr string) {
	for i, h := range s.locks {
		if h.expr == expr {
			s.locks = append(s.locks[:i], s.locks[i+1:]...)
			return
		}
	}
}

func (s *lockSet) hasExpr(expr string) bool {
	for _, h := range s.locks {
		if h.expr == expr {
			return true
		}
	}
	return false
}

func (s *lockSet) hasObj(obj *types.Var) bool {
	for _, h := range s.locks {
		if h.obj == obj {
			return true
		}
	}
	return false
}

func (s *lockSet) empty() bool { return len(s.locks) == 0 }

// setTo replaces s's contents with o's.
func (s *lockSet) setTo(o *lockSet) { s.locks = append(s.locks[:0], o.locks...) }

// intersect keeps only locks present in both s and o.
func (s *lockSet) intersect(o *lockSet) {
	kept := s.locks[:0]
	for _, h := range s.locks {
		if o.hasExpr(h.expr) {
			kept = append(kept, h)
		}
	}
	s.locks = kept
}

type walker struct {
	pass *Pass
	fx   *facts
	// localAlloc holds objects assigned from a fresh allocation
	// anywhere in the current function (flow-insensitive).
	localAlloc map[types.Object]bool

	// onAccess fires for every selection of a guardedby-annotated
	// field. onCall fires for every call that is not a lock
	// operation, after argument effects.
	onAccess func(sel *ast.SelectorExpr, field *types.Var, held *lockSet)
	onCall   func(call *ast.CallExpr, held *lockSet)
}

func (w *walker) walkFunc(fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	w.localAlloc = collectLocalAllocs(w.pass, fd.Body)
	held := &lockSet{}
	if fn, ok := w.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		for _, h := range w.fx.holds[fn] {
			held.add(h.base+"."+h.field, h.obj)
		}
	}
	w.stmts(fd.Body.List, held)
}

// collectLocalAllocs finds objects bound to freshly allocated values.
func collectLocalAllocs(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	fresh := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
				return ok
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "new" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || !fresh(as.Rhs[i]) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// stmts walks a statement list, mutating held in place. It reports
// whether the list unconditionally leaves the enclosing block.
func (w *walker) stmts(list []ast.Stmt, held *lockSet) bool {
	for _, s := range list {
		if w.stmt(s, held) {
			return true
		}
	}
	return false
}

func (w *walker) stmt(s ast.Stmt, held *lockSet) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X, held)
		return isPanicCall(w.pass, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
		w.applyReturnsLocked(s, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.SendStmt:
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
		return true
	case *ast.BranchStmt:
		return s.Tok != token.FALLTHROUGH
	case *ast.DeferStmt:
		w.deferStmt(s, held)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.expr(a, held)
		}
		if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			// A new goroutine starts holding nothing.
			w.stmts(fl.Body.List, &lockSet{})
		} else {
			w.expr(s.Call.Fun, held)
		}
	case *ast.IfStmt:
		return w.ifStmt(s, held)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		body := held.clone()
		w.stmts(s.Body.List, body)
		if s.Post != nil {
			w.stmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := held.clone()
			if cc.Comm != nil {
				w.stmt(cc.Comm, branch)
			}
			w.stmts(cc.Body, branch)
		}
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	}
	return false
}

func (w *walker) caseClauses(body *ast.BlockStmt, held *lockSet) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := held.clone()
		for _, e := range cc.List {
			w.expr(e, branch)
		}
		w.stmts(cc.Body, branch)
	}
}

func (w *walker) ifStmt(s *ast.IfStmt, held *lockSet) bool {
	if s.Init != nil {
		w.stmt(s.Init, held)
	}
	w.expr(s.Cond, held) // a TryLock in the condition joins held
	thenSet := held.clone()
	thenTerm := w.stmts(s.Body.List, thenSet)
	elseSet := held.clone()
	elseTerm := false
	if s.Else != nil {
		elseTerm = w.stmt(s.Else, elseSet)
	}
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		held.setTo(elseSet)
	case elseTerm:
		held.setTo(thenSet)
	default:
		thenSet.intersect(elseSet)
		held.setTo(thenSet)
	}
	return false
}

func (w *walker) deferStmt(s *ast.DeferStmt, held *lockSet) {
	if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Unlock", "RUnlock":
			if isMutexType(w.pass.TypesInfo.TypeOf(sel.X)) {
				// Deferred release: the lock stays held to the end of
				// the function, so leave the set untouched.
				return
			}
		}
	}
	for _, a := range s.Call.Args {
		w.expr(a, held)
	}
	if fl, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		w.stmts(fl.Body.List, held.clone())
		return
	}
	w.callAndFun(s.Call, held)
}

// applyReturnsLocked handles `l, err := s.lockLog(dev)`.
func (w *walker) applyReturnsLocked(as *ast.AssignStmt, held *lockSet) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := calleeFunc(w.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	spec, ok := w.fx.returnsLocked[fn]
	if !ok || len(as.Lhs) == 0 {
		return
	}
	id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	held.add(id.Name+"."+spec.field, spec.obj)
}

// expr walks an expression, applying lock operations and firing the
// access/call callbacks in evaluation order (approximately).
func (w *walker) expr(e ast.Expr, held *lockSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.stmts(n.Body.List, held.clone())
			return false
		case *ast.CallExpr:
			if w.lockOp(n, held) {
				return false
			}
			for _, a := range n.Args {
				w.expr(a, held)
			}
			w.callAndFun(n, held)
			return false
		case *ast.SelectorExpr:
			w.access(n, held)
			return true
		}
		return true
	})
}

// callAndFun fires onCall and walks the callee expression for guarded
// field accesses (e.g. the receiver chain).
func (w *walker) callAndFun(call *ast.CallExpr, held *lockSet) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.access(sel, held)
		w.expr(sel.X, held)
	}
	if w.onCall != nil {
		w.onCall(call, held)
	}
}

// lockOp recognizes and applies mutex operations, reporting whether
// call was one.
func (w *walker) lockOp(call *ast.CallExpr, held *lockSet) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return false
	}
	if !isMutexType(w.pass.TypesInfo.TypeOf(sel.X)) {
		return false
	}
	expr := types.ExprString(sel.X)
	switch name {
	case "Unlock", "RUnlock":
		held.remove(expr)
	default:
		held.add(expr, selectedField(w.pass.TypesInfo, sel.X))
	}
	return true
}

// selectedField resolves e to a struct-field object when e is a field
// selection (possibly chained), e.g. `l.mu` or `s.handles.mu`.
func selectedField(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			f, _ := s.Obj().(*types.Var)
			return f
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// access fires onAccess for selections of guarded fields.
func (w *walker) access(sel *ast.SelectorExpr, held *lockSet) {
	if w.onAccess == nil {
		return
	}
	s, ok := w.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	f, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	if _, guarded := w.fx.guarded[f]; !guarded {
		return
	}
	w.onAccess(sel, f, held)
}

// rootObj returns the object of the leftmost identifier of e.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isPanicCall(pass *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}
