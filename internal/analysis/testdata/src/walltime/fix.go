// Fixture for the walltime analyzer: ambient wall-clock reads are
// forbidden in the clock-injected packages. Package is named stream
// so the scope check engages.
package stream

import "time"

type engine struct {
	now  func() time.Time
	idle time.Duration
}

func badNow(e *engine) time.Time {
	return time.Now() // want "time.Now reads the wall clock in a clock-injected package"
}

func badSince(e *engine, t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock in a clock-injected package"
}

func badTimer(e *engine) {
	<-time.After(e.idle) // want "time.After reads the wall clock in a clock-injected package"
}

func badTicker(e *engine) *time.Ticker {
	return time.NewTicker(e.idle) // want "time.NewTicker reads the wall clock in a clock-injected package"
}

// badSeamValue is the seam-assignment shape without its suppression:
// referencing time.Now as a value counts.
func badSeamValue(e *engine) {
	e.now = time.Now // want "time.Now reads the wall clock in a clock-injected package"
}

// goodInjected reads time only through the injected clock.
func goodInjected(e *engine, t0 time.Time) time.Duration {
	return e.now().Sub(t0)
}

// goodTypes: time types, constants and arithmetic are fine —
// only ambient clock reads are banned.
func goodTypes(d time.Duration) time.Duration {
	return d + 250*time.Millisecond
}

// goodMethods: Time.After/Sub share names with banned package
// functions but read no ambient state.
func goodMethods(a, b time.Time) bool {
	return a.After(b) || a.Sub(b) > 0
}

// suppressedSeam is the one legal wall-clock read: the production
// default for the injected clock, marked as the seam.
func suppressedSeam(e *engine) {
	//trajlint:ignore walltime fixture: the production clock seam itself
	e.now = time.Now
}
