package segstore

import "os"

// fs.go is the seam file: direct os operations are allowed here, and
// only here, so the production filesystem lives in one place.
type osFS struct{}

func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
