// Fixture for the fsdirect analyzer: direct os file operations in a
// package named segstore are flagged everywhere except fs.go.
package segstore

import "os"

// fs mirrors the real injection seam shape: calls through an
// interface value are invisible to fsdirect (lockio owns those).
type fs interface {
	Remove(name string) error
	Rename(oldpath, newpath string) error
}

type store struct {
	fs fs
}

func bad(path string) error {
	if err := os.Remove(path); err != nil { // want "direct os.Remove bypasses the fileSystem seam"
		return err
	}
	f, err := os.Create(path) // want "direct os.Create bypasses the fileSystem seam"
	if err != nil {
		return err
	}
	return f.Close()
}

// badValue passes an os function as a value — just as much of an
// escape as calling it.
func badValue() func(string) error {
	return os.Remove // want "direct os.Remove bypasses the fileSystem seam"
}

func good(s *store, path string) error {
	return s.fs.Remove(path)
}

// goodNonFile uses os identifiers that do not touch the filesystem.
func goodNonFile() string {
	return os.Getenv("HOME")
}

// goodFileMethod: os.File methods share names with package functions
// (Truncate, Stat) but already sit behind a file value the seam
// produced; only the package-level entry points escape it.
func goodFileMethod(f *os.File) error {
	return f.Truncate(0)
}

func suppressed(path string) error {
	//trajlint:ignore fsdirect fixture: proves the escape hatch suppresses fsdirect here
	return os.Remove(path)
}
