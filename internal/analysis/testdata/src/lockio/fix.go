// Fixture for the lockio analyzer: no file/sink I/O while holding a
// mutex acquired in the enclosing function, except under a lock
// annotated //trajlint:serializes-io. Package is named segstore so
// the local file/fileSystem interfaces match the analyzer's I/O
// method sets exactly as the real seam does.
package segstore

import "sync"

type file interface {
	Write(p []byte) (int, error)
	ReadAt(p []byte, off int64) (int, error)
	Sync() error
	Close() error
}

type fileSystem interface {
	Open(name string) (file, error)
	Remove(name string) error
}

type store struct {
	mu sync.Mutex // store-wide: never legal to hold across I/O
	fs fileSystem
	f  file
	n  int
}

type devLog struct {
	//trajlint:serializes-io
	mu sync.Mutex // per-device: the designed write serialization point
	f  file
}

func badWriteUnderStoreLock(s *store, p []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.f.Write(p) // want "I/O call s.f.Write while holding s.mu"
	return err
}

func badFSUnderStoreLock(s *store, name string) error {
	s.mu.Lock()
	err := s.fs.Remove(name) // want "I/O call s.fs.Remove while holding s.mu"
	s.mu.Unlock()
	return err
}

// goodSnapshotThenRead is the PR 8 read-path shape: capture state
// under the lock, drop it, then do the I/O.
func goodSnapshotThenRead(s *store, p []byte) (int, error) {
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	return f.ReadAt(p, 0)
}

// goodSerializedWrite is the segstore append shape: the per-device
// log lock is the write path's serialization point by design.
func goodSerializedWrite(l *devLog, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err := l.f.Write(p)
	return err
}

// badMixedLocks: the exempt per-log lock does not excuse the
// store-wide lock also being held.
func badMixedLocks(s *store, l *devLog, p []byte) error {
	s.mu.Lock()
	l.mu.Lock()
	_, err := l.f.Write(p) // want "I/O call l.f.Write while holding s.mu"
	l.mu.Unlock()
	s.mu.Unlock()
	return err
}

// goodCalleeOnlyLock: a lock acquired by the caller is the caller's
// problem (and the holds annotation's job); lockio is per-function.
func goodCalleeOnlyLock(s *store, p []byte) (int, error) {
	return s.f.Write(p)
}

func suppressedShutdownSync(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	//trajlint:ignore lockio fixture: shutdown-style sync under the store lock, deliberate
	return s.f.Sync()
}
