// Fixture reproducing the PR 9 rotation-bug shape: a segment
// rotation that (a) renames the sealed file with a direct os call —
// invisible to the injected filesystem, so the fault matrix never
// tested that rename failing — and (b) creates and syncs the
// successor while still holding the store-wide lock, stalling every
// other device on one slow disk. fsdirect catches the seam escape,
// lockio catches the I/O under the store lock; between them the
// original bug could not have been merged.
package segstore

import (
	"os"
	"sync"
)

type file interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

type fileSystem interface {
	Create(name string) (file, error)
}

type store struct {
	mu   sync.Mutex
	fs   fileSystem
	f    file
	seal string
	next string
}

func rotate(s *store) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil { // want "I/O call s.f.Sync while holding s.mu"
		return err
	}
	if err := s.f.Close(); err != nil { // want "I/O call s.f.Close while holding s.mu"
		return err
	}
	// The bug: the rename bypassed the seam entirely, so injected
	// rename faults never reached it.
	if err := os.Rename(s.next, s.seal); err != nil { // want "direct os.Rename bypasses the fileSystem seam"
		return err
	}
	f, err := s.fs.Create(s.next) // want "I/O call s.fs.Create while holding s.mu"
	if err != nil {
		return err
	}
	s.f = f
	return nil
}
