// Fixture for the fsyncreuse analyzer: after observing a Sync error,
// the same file value must not be written or synced again.
package fsyncreuse

type file interface {
	Write(p []byte) (int, error)
	Sync() error
	Truncate(size int64) error
	Close() error
}

// badRetrySync is the classic fsyncgate shape: the second fsync can
// return nil while the dirty pages are already gone.
func badRetrySync(f file) error {
	if err := f.Sync(); err != nil {
		return f.Sync() // want "f.Sync after observing a Sync error on f"
	}
	return nil
}

func badWriteAfterSyncError(f file, p []byte) error {
	if err := f.Sync(); err != nil {
		_, werr := f.Write(p) // want "f.Write after observing a Sync error on f"
		return werr
	}
	return nil
}

// badFallthrough: the error branch does not terminate, so the write
// after the if still runs on the failed-sync path.
func badFallthrough(f file, p []byte) error {
	if err := f.Sync(); err != nil {
		logErr(err)
	}
	_, err := f.Write(p) // want "f.Write after observing a Sync error on f"
	return err
}

// badInvertedPolarity is the handle-eviction shape gone wrong: after
// `if err == nil { ... }` the fallthrough path may hold the error,
// and truncating there reuses the file.
func badInvertedPolarity(f file) error {
	var err error
	if err = f.Sync(); err == nil {
		return nil
	}
	return f.Truncate(0) // want "f.Truncate after observing a Sync error on f"
}

// badAssignThenCheck: the observation can be split across statements.
func badAssignThenCheck(f file) error {
	err := f.Sync()
	if err != nil {
		return f.Sync() // want "f.Sync after observing a Sync error on f"
	}
	return nil
}

// goodCloseAndReturn is the sanctioned recovery: shed the fd.
func goodCloseAndReturn(f file) error {
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return nil
}

// goodTerminatingErrorBranch: the error path returns, so the write
// below only runs on the success path.
func goodTerminatingErrorBranch(f file, p []byte) error {
	if err := f.Sync(); err != nil {
		return err
	}
	_, err := f.Write(p)
	return err
}

// goodReopen: reassigning the file value starts a fresh fd; the rule
// tracks the value, not the variable name forever.
func goodReopen(f file, open func() file, p []byte) error {
	if err := f.Sync(); err != nil {
		logErr(err)
	}
	f = open()
	_, err := f.Write(p)
	return err
}

// goodDifferentFile: the error on one file says nothing about
// another.
func goodDifferentFile(a, b file) error {
	if err := a.Sync(); err != nil {
		return b.Sync()
	}
	return nil
}

func suppressedRetry(f file) error {
	if err := f.Sync(); err != nil {
		//trajlint:ignore fsyncreuse fixture: deliberate double-sync to prove the escape hatch
		return f.Sync()
	}
	return nil
}

func logErr(error) {}
