package guardedby

import "sync"

// Malformed annotations are findings themselves: a contract that
// cannot be parsed protects nothing. The /* want */ block comments
// sit on the directive lines because the diagnostic lands on the
// directive itself.

type badAnnotated struct {
	mu sync.Mutex
	a  int /* want "needs a guard" */                   //trajlint:guardedby
	b  int /* want "no sibling mutex field nosuch" */   //trajlint:guardedby nosuch
	c  int /* want "no type Missing in this package" */ //trajlint:guardedby Missing.mu
	d  int /* want "must annotate a mutex field" */     //trajlint:serializes-io
}

/* want "q is not a receiver or parameter" */ //trajlint:holds q.mu
func badHoldsBase(c *counter) {
	_ = c
}

/* want "returns-locked on a function with no results" */ //trajlint:returns-locked mu
func badReturnsLockedNone() {
}

func unusedIgnore(c *counter) int {
	c.mu.Lock()
	/* want "unused trajlint:ignore" */ //trajlint:ignore guardedby this access is locked, so the ignore is dead
	n := c.n
	c.mu.Unlock()
	return n
}

func malformedIgnore(c *counter) int {
	/* want "malformed trajlint:ignore" */ //trajlint:ignore guardedby
	return c.n                             // want "c.n is guarded by c.mu"
}
