// Fixture for the guardedby analyzer: //trajlint:guardedby fields,
// //trajlint:holds contracts and the //trajlint:returns-locked lock
// transfer, across the locking idioms the real tree uses.
package guardedby

import "sync"

type registry struct {
	mu sync.Mutex
	// ll is a shared structure guarded by the registry's own lock.
	ll []int //trajlint:guardedby mu
}

type counter struct {
	mu   sync.RWMutex
	n    int            //trajlint:guardedby mu
	elem *int           //trajlint:guardedby registry.mu
	seen map[string]int //trajlint:guardedby mu
}

func goodPlain(c *counter) int {
	c.mu.Lock()
	n := c.n
	c.mu.Unlock()
	return n
}

func goodDefer(c *counter) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func badPlain(c *counter) int {
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

func badAfterUnlock(c *counter) int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

// goodTryLock is the contended-shard idiom from stream.ingest.
func goodTryLock(c *counter) {
	if !c.mu.TryLock() {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// goodTryLockSkip is the metadata-eviction idiom: only touch the
// victim when its lock was won.
func goodTryLockSkip(c *counter) {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
	}
}

func badTryLockLeak(c *counter) {
	if c.mu.TryLock() {
		c.mu.Unlock()
	}
	c.n++ // want "c.n is guarded by c.mu, which is not held here"
}

// goodBranchMerge: both arms hold the lock, so the merge does too.
func goodBranchMerge(c *counter, heavy bool) {
	if heavy {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	c.n++
	c.mu.Unlock()
}

// goodExternalGuard: elem is guarded by another struct's lock,
// matched by lock identity rather than expression text.
func goodExternalGuard(r *registry, c *counter) {
	r.mu.Lock()
	c.elem = nil
	r.mu.Unlock()
}

func badExternalGuard(c *counter) {
	c.mu.Lock()  // the wrong lock for elem
	c.elem = nil // want "c.elem is guarded by registry.mu, which is not held here"
	c.mu.Unlock()
}

// goodConstructor: freshly allocated values are unshared.
func goodConstructor() *counter {
	c := &counter{}
	c.n = 1
	c.seen = map[string]int{}
	return c
}

// wrongInstance: holding one counter's lock says nothing about
// another's.
func wrongInstance(a, b *counter) {
	a.mu.Lock()
	b.n++ // want "b.n is guarded by b.mu, which is not held here"
	a.mu.Unlock()
}

// bumpLocked is the caller-holds contract made checkable.
//
//trajlint:holds c.mu
func bumpLocked(c *counter) {
	c.n++
}

func goodHoldsCall(c *counter) {
	c.mu.Lock()
	bumpLocked(c)
	c.mu.Unlock()
}

func badHoldsCall(c *counter) {
	bumpLocked(c) // want "call to bumpLocked requires holding c.mu"
}

type box struct {
	mu sync.Mutex
	v  int //trajlint:guardedby mu
}

// lockBox hands its result back with the lock held, like segstore's
// lockLog.
//
//trajlint:returns-locked mu
func lockBox(b *box) *box {
	b.mu.Lock()
	return b
}

func goodReturnsLocked(in *box) int {
	b := lockBox(in)
	v := b.v
	b.mu.Unlock()
	return v
}

func badWithoutReturnsLocked(b *box) int {
	return b.v // want "b.v is guarded by b.mu, which is not held here"
}

// suppressedAccess proves the escape hatch: a deliberate unlocked
// read with a written reason is not a finding.
func suppressedAccess(c *counter) int {
	//trajlint:ignore guardedby fixture: racy stats read is deliberate here
	return c.n
}
