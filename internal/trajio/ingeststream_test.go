package trajio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/iotest"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// chunkReader yields at most n bytes per Read, exercising every refill
// boundary in the streaming decoder.
type chunkReader struct {
	b []byte
	n int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if len(c.b) == 0 {
		return 0, io.EOF
	}
	n := min(min(len(p), c.n), len(c.b))
	copy(p, c.b[:n])
	c.b = c.b[n:]
	return n, nil
}

// flatten collects a decode as (device, point) pairs so frame-chunking
// differences between the two decoders vanish.
type devPoint struct {
	dev string
	p   traj.Point
}

func collectStream(r io.Reader) ([]devPoint, error) {
	var out []devPoint
	err := DecodeIngestStream(r, func(device string, pts []traj.Point) error {
		for _, p := range pts {
			out = append(out, devPoint{device, p})
		}
		return nil
	})
	return out, err
}

func collectWhole(b []byte) ([]devPoint, error) {
	var out []devPoint
	err := DecodeIngest(b, func(device string, pts []traj.Point) error {
		for _, p := range pts {
			out = append(out, devPoint{device, p})
		}
		return nil
	})
	return out, err
}

// buildIngestStream encodes a few frames, including one much larger than
// both the decoder's read buffer and its per-callback chunk.
func buildIngestStream(t testing.TB) []byte {
	t.Helper()
	b := AppendIngestHeader(nil)
	b = AppendIngestBatch(b, "truck-1", gen.One(gen.Truck, 500, 1))
	b = AppendIngestBatch(b, "taxi-2", gen.One(gen.Taxi, 3, 2))
	b = AppendIngestBatch(b, "big-3", gen.One(gen.SerCar, 30000, 3)) // > 64 KiB encoded, > 4096 pts
	b = AppendIngestBatch(b, "truck-1", gen.One(gen.Truck, 64, 4))
	return b
}

// TestDecodeIngestStreamMatchesDecodeIngest: the streaming decoder is a
// drop-in for the whole-buffer one at every reader granularity.
func TestDecodeIngestStreamMatchesDecodeIngest(t *testing.T) {
	raw := buildIngestStream(t)
	want, err := collectWhole(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 500+3+30000+64 {
		t.Fatalf("whole-buffer decode saw %d points", len(want))
	}
	for _, chunk := range []int{1 << 20, 64 << 10, 4096, 333, 1} {
		got, err := collectStream(&chunkReader{b: raw, n: chunk})
		if err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d points, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("chunk %d: point %d = %+v, want %+v", chunk, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeIngestStreamErrors: malformed input fails with ErrBadIngest,
// reader failures surface verbatim, and a callback error aborts the scan.
func TestDecodeIngestStreamErrors(t *testing.T) {
	raw := buildIngestStream(t)
	nop := func(string, []traj.Point) error { return nil }

	if err := DecodeIngestStream(bytes.NewReader(nil), nop); !errors.Is(err, ErrBadIngest) {
		t.Errorf("empty input: %v, want ErrBadIngest", err)
	}
	if err := DecodeIngestStream(bytes.NewReader([]byte("not TSB1 at all")), nop); !errors.Is(err, ErrBadIngest) {
		t.Errorf("bad magic: %v, want ErrBadIngest", err)
	}
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 3} {
		if err := DecodeIngestStream(bytes.NewReader(raw[:cut]), nop); !errors.Is(err, ErrBadIngest) {
			t.Errorf("truncated at %d: %v, want ErrBadIngest", cut, err)
		}
	}

	boom := errors.New("boom")
	if err := DecodeIngestStream(iotest.TimeoutReader(&chunkReader{b: raw, n: 100}), nop); errors.Is(err, ErrBadIngest) || err == nil {
		t.Errorf("reader failure reported as %v, want the read error", err)
	}
	if err := DecodeIngestStream(bytes.NewReader(raw), func(string, []traj.Point) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("callback error: %v, want boom", err)
	}
}

// TestDecodeIngestStreamChunking pins the callback contract: one frame
// larger than ingestChunkPts arrives as several consecutive callbacks
// for the same device, none larger than the chunk cap, none empty but
// the last of an empty frame.
func TestDecodeIngestStreamChunking(t *testing.T) {
	b := AppendIngestHeader(nil)
	b = AppendIngestBatch(b, "big", gen.One(gen.Truck, 2*ingestChunkPts+5, 9))
	b = AppendIngestBatch(b, "empty", nil)
	var sizes []int
	var devs []string
	if err := DecodeIngestStream(bytes.NewReader(b), func(device string, pts []traj.Point) error {
		devs = append(devs, device)
		sizes = append(sizes, len(pts))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(sizes) != 4 || sizes[0] != ingestChunkPts || sizes[1] != ingestChunkPts || sizes[2] != 5 || sizes[3] != 0 {
		t.Fatalf("callback sizes = %v (devices %v)", sizes, devs)
	}
	if devs[0] != "big" || devs[1] != "big" || devs[2] != "big" || devs[3] != "empty" {
		t.Fatalf("callback devices = %v", devs)
	}
}

// FuzzDecodeIngestStream: differential fuzz against DecodeIngest — the
// two decoders accept the same inputs and produce the same points, and
// the streaming one never panics at any reader granularity.
func FuzzDecodeIngestStream(f *testing.F) {
	f.Add([]byte{}, uint16(1))
	valid := AppendIngestBatch(AppendIngestHeader(nil), "dev-1", gen.One(gen.Truck, 100, 2))
	f.Add(valid, uint16(7))
	f.Add(valid[:len(valid)-4], uint16(64))
	f.Fuzz(func(t *testing.T, b []byte, chunk uint16) {
		want, wantErr := collectWhole(b)
		got, gotErr := collectStream(&chunkReader{b: b, n: 1 + int(chunk)%1024})
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decoders disagree: whole=%v stream=%v", wantErr, gotErr)
		}
		if gotErr != nil {
			if !errors.Is(gotErr, ErrBadIngest) {
				t.Fatalf("non-sentinel error %v", gotErr)
			}
			return
		}
		if len(got) != len(want) {
			t.Fatalf("stream decoded %d points, whole %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("point %d: %+v vs %+v", i, got[i], want[i])
			}
		}
	})
}

// BenchmarkDecodeIngestStream: the steady-state streaming decode should
// not allocate per point — only the per-frame device string survives.
func BenchmarkDecodeIngestStream(b *testing.B) {
	b.ReportAllocs()
	raw := buildIngestStream(b)
	r := bytes.NewReader(raw)
	nop := func(string, []traj.Point) error { return nil }
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(raw)
		if err := DecodeIngestStream(r, nop); err != nil {
			b.Fatal(err)
		}
	}
}
