package trajio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func TestStreamCSVDeliversAllPoints(t *testing.T) {
	tr := gen.One(gen.SerCar, 150, 3)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr, CSVOptions{Format: Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	var got traj.Trajectory
	pr, err := StreamCSV(&buf, CSVOptions{Format: Planar, Header: true}, func(p traj.Point) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr != nil {
		t.Error("planar stream returned a projection")
	}
	if len(got) != len(tr) {
		t.Fatalf("streamed %d points, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("point %d: %v vs %v", i, got[i], tr[i])
		}
	}
}

func TestStreamCSVAborts(t *testing.T) {
	tr := gen.Line(50, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr, CSVOptions{Format: Planar}); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	_, err := StreamCSV(&buf, CSVOptions{Format: Planar}, func(traj.Point) error {
		n++
		if n == 10 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 10 {
		t.Errorf("callback ran %d times, want 10", n)
	}
}

func TestStreamCSVLonLatAnchors(t *testing.T) {
	csv := "0,116.400000,39.900000\n60000,116.410000,39.900000\n"
	var got traj.Trajectory
	pr, err := StreamCSV(strings.NewReader(csv), CSVOptions{Format: LonLat}, func(p traj.Point) error {
		got = append(got, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr == nil {
		t.Fatal("no projection anchored")
	}
	if got[1].X < 800 || got[1].X > 900 {
		t.Errorf("second point x = %v", got[1].X)
	}
}

// The intended end-to-end pipeline: StreamCSV → OPERB encoder, no
// trajectory ever held in memory.
func TestStreamCSVIntoEncoder(t *testing.T) {
	tr := gen.One(gen.Taxi, 400, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr, CSVOptions{Format: Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	enc, err := core.NewEncoder(40, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var pw traj.Piecewise
	if _, err := StreamCSV(&buf, CSVOptions{Format: Planar, Header: true}, func(p traj.Point) error {
		pw = append(pw, enc.Push(p)...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	pw = append(pw, enc.Flush()...)
	if err := metrics.VerifyBound(tr, pw, 40); err != nil {
		t.Error(err)
	}
	want, err := core.Simplify(tr, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != len(want) {
		t.Errorf("streamed pipeline %d segments, batch %d", len(pw), len(want))
	}
}
