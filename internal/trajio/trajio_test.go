package trajio

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

func TestCSVPlanarRoundTrip(t *testing.T) {
	tr := gen.One(gen.SerCar, 200, 7)
	var buf bytes.Buffer
	opts := CSVOptions{Format: Planar, Header: true}
	if err := WriteCSV(&buf, tr, opts); err != nil {
		t.Fatal(err)
	}
	got, pr, err := ReadCSV(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}
	if pr != nil {
		t.Error("planar read returned a projection")
	}
	if len(got) != len(tr) {
		t.Fatalf("read %d points, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Fatalf("point %d: %v vs %v", i, got[i], tr[i])
		}
	}
}

func TestCSVLonLatRoundTrip(t *testing.T) {
	tr := gen.One(gen.Taxi, 150, 9)
	pr := geo.NewProjection(116.4, 39.9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr, CSVOptions{Format: LonLat, Projection: pr}); err != nil {
		t.Fatal(err)
	}
	got, gotPr, err := ReadCSV(&buf, CSVOptions{Format: LonLat, Projection: pr})
	if err != nil {
		t.Fatal(err)
	}
	if gotPr != pr {
		t.Error("explicit projection not propagated")
	}
	for i := range tr {
		if math.Abs(got[i].X-tr[i].X) > 1e-3 || math.Abs(got[i].Y-tr[i].Y) > 1e-3 {
			t.Fatalf("point %d drifted: %v vs %v", i, got[i], tr[i])
		}
		if got[i].T != tr[i].T {
			t.Fatalf("point %d time: %d vs %d", i, got[i].T, tr[i].T)
		}
	}
}

func TestCSVLonLatAutoAnchor(t *testing.T) {
	csv := "0,116.400000,39.900000\n60000,116.410000,39.900000\n"
	got, pr, err := ReadCSV(strings.NewReader(csv), CSVOptions{Format: LonLat})
	if err != nil {
		t.Fatal(err)
	}
	if pr == nil {
		t.Fatal("no projection anchored")
	}
	if !got[0].P().IsZero() {
		t.Errorf("first point should anchor at origin, got %v", got[0])
	}
	// 0.01° of longitude at 39.9°N ≈ 853 m.
	if got[1].X < 800 || got[1].X > 900 {
		t.Errorf("second point x = %v, want ≈853", got[1].X)
	}
}

func TestCSVErrors(t *testing.T) {
	if err := WriteCSV(&bytes.Buffer{}, gen.Line(3, 1), CSVOptions{Format: LonLat}); !errors.Is(err, ErrNeedProjection) {
		t.Errorf("missing projection: %v", err)
	}
	for _, bad := range []string{
		"1,2\n",   // too few fields
		"x,1,2\n", // bad time
		"1,x,2\n", // bad coordinate
		"1,2,y\n", // bad coordinate
	} {
		if _, _, err := ReadCSV(strings.NewReader(bad), CSVOptions{}); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%q: %v", bad, err)
		}
	}
}

func TestPLTRoundTrip(t *testing.T) {
	tr := gen.One(gen.GeoLife, 100, 3)
	pr := geo.NewProjection(116.3, 39.98)
	var buf bytes.Buffer
	if err := WritePLT(&buf, tr, pr); err != nil {
		t.Fatal(err)
	}
	got, gotPr, err := ReadPLT(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gotPr == nil {
		t.Fatal("no projection returned")
	}
	if len(got) != len(tr) {
		t.Fatalf("read %d points, want %d", len(got), len(tr))
	}
	// PLT stores 1e−6 degrees (≈0.1 m) and whole seconds; positions are
	// compared in the original frame via lon/lat.
	for i := range tr {
		wantLon, wantLat := pr.ToLonLat(tr[i].P())
		gotLon, gotLat := gotPr.ToLonLat(got[i].P())
		if math.Abs(wantLon-gotLon) > 2e-6 || math.Abs(wantLat-gotLat) > 2e-6 {
			t.Fatalf("point %d: (%v,%v) vs (%v,%v)", i, gotLon, gotLat, wantLon, wantLat)
		}
		if d := got[i].T - tr[i].T; d < -1000 || d > 1000 {
			t.Fatalf("point %d time drift %d ms", i, d)
		}
	}
}

func TestPLTErrors(t *testing.T) {
	if err := WritePLT(&bytes.Buffer{}, gen.Line(3, 1), nil); !errors.Is(err, ErrNeedProjection) {
		t.Errorf("missing projection: %v", err)
	}
	header := "a\nb\nc\nd\ne\nf\n"
	for _, bad := range []string{
		header + "39.9\n",
		header + "x,116.4,0,0,0,2010-11-01,00:00:00\n",
		header + "39.9,y,0,0,0,2010-11-01,00:00:00\n",
		header + "39.9,116.4,0,0,0,bogus,00:00:00\n",
	} {
		if _, _, err := ReadPLT(strings.NewReader(bad), nil); !errors.Is(err, ErrBadPLT) {
			t.Errorf("%q: %v", bad, err)
		}
	}
	// Blank lines are tolerated.
	ok := header + "39.900000,116.400000,0,0,40483.0,2010-11-01,00:00:00\n\n"
	got, _, err := ReadPLT(strings.NewReader(ok), nil)
	if err != nil || len(got) != 1 {
		t.Errorf("blank-line tolerance: %d points, %v", len(got), err)
	}
}

func TestPiecewiseBinaryRoundTrip(t *testing.T) {
	tr := gen.One(gen.SerCar, 300, 11)
	pw := traj.Piecewise{}
	cuts := []int{0, 40, 41, 120, 299}
	for i := 1; i < len(cuts); i++ {
		pw = append(pw, traj.NewSegment(tr, cuts[i-1], cuts[i]))
	}
	pw[1].VirtualEnd = true
	pw[2].VirtualStart = true
	var buf bytes.Buffer
	if err := WritePiecewise(&buf, pw); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPiecewise(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pw) {
		t.Fatalf("decoded %d segments, want %d", len(got), len(pw))
	}
	for i := range pw {
		if got[i].StartIdx != pw[i].StartIdx || got[i].EndIdx != pw[i].EndIdx {
			t.Errorf("segment %d range [%d..%d], want [%d..%d]",
				i, got[i].StartIdx, got[i].EndIdx, pw[i].StartIdx, pw[i].EndIdx)
		}
		if got[i].VirtualStart != pw[i].VirtualStart || got[i].VirtualEnd != pw[i].VirtualEnd {
			t.Errorf("segment %d flags differ", i)
		}
		if math.Abs(got[i].End.X-pw[i].End.X) > 0.006 || math.Abs(got[i].End.Y-pw[i].End.Y) > 0.006 {
			t.Errorf("segment %d end drifted: %v vs %v", i, got[i].End, pw[i].End)
		}
		if got[i].End.T != pw[i].End.T {
			t.Errorf("segment %d end time %d vs %d", i, got[i].End.T, pw[i].End.T)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("decoded representation invalid: %v", err)
	}
}

func TestPiecewiseBinaryErrors(t *testing.T) {
	if _, err := DecodePiecewise(nil); !errors.Is(err, ErrBadPiecewise) {
		t.Errorf("nil: %v", err)
	}
	if _, err := DecodePiecewise([]byte{9, 9, 9}); !errors.Is(err, ErrBadPiecewise) {
		t.Errorf("garbage: %v", err)
	}
	tr := gen.Line(10, 5)
	good := AppendPiecewise(nil, traj.Piecewise{traj.NewSegment(tr, 0, 9)})
	if _, err := DecodePiecewise(good[:len(good)-2]); !errors.Is(err, ErrBadPiecewise) {
		t.Errorf("truncated: %v", err)
	}
}

func TestPiecewiseBinaryEmpty(t *testing.T) {
	got, err := DecodePiecewise(AppendPiecewise(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d segments from empty", len(got))
	}
}

// The binary form is much smaller than raw points — the transmission win
// the paper's introduction motivates.
func TestBinaryCompressionWin(t *testing.T) {
	tr := gen.One(gen.SerCar, 2000, 5)
	pw := traj.Piecewise{traj.NewSegment(tr, 0, 999), traj.NewSegment(tr, 999, 1999)}
	b := AppendPiecewise(nil, pw)
	if len(b) > 200 {
		t.Errorf("2 segments encoded to %d bytes", len(b))
	}
}
