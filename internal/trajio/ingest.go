package trajio

import (
	"errors"
	"fmt"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Binary ingest wire format: what a fleet of devices transmits upstream
// before simplification. A stream is a magic word followed by per-device
// frames, each carrying one batch of raw GPS fixes quantized (1 cm /
// 1 ms) and delta-coded — the upload-side counterpart of the PWB1
// piecewise encoding a server transmits back down. Frames are
// self-contained (delta state resets per frame), so batches for many
// devices concatenate freely and a decoder never needs cross-frame
// state.

// ErrBadIngest is returned for malformed binary ingest input.
var ErrBadIngest = errors.New("trajio: malformed binary ingest stream")

// IngestContentType is the Content-Type identifying the binary ingest
// wire format over HTTP.
const IngestContentType = "application/x-trajsim-binary"

const (
	ibMagic = 0x54534231 // "TSB1"
	// ibMaxDevice caps the device-ID length: IDs are hostnames or vehicle
	// tags, and an unbounded length field is an allocation attack.
	ibMaxDevice = 256
)

// AppendIngestHeader appends the stream magic to dst. Call once, before
// the first batch.
func AppendIngestHeader(dst []byte) []byte {
	return enc.AppendUvarint(dst, ibMagic)
}

// AppendIngestBatch appends one device's point batch to dst as a
// self-contained frame. Coordinates are quantized to 1 cm.
func AppendIngestBatch(dst []byte, device string, pts []traj.Point) []byte {
	dst = enc.AppendUvarint(dst, uint64(len(device)))
	dst = append(dst, device...)
	dst = enc.AppendUvarint(dst, uint64(len(pts)))
	pd := enc.PointDelta{Quant: pwQuantXY}
	for _, p := range pts {
		dst = pd.Append(dst, p.X, p.Y, p.T)
	}
	return dst
}

// DecodeIngest decodes a binary ingest stream, invoking fn once per
// device frame in stream order. The points slice is freshly allocated
// and owned by the callback. fn returning an error aborts the scan and
// surfaces that error; decode failures are reported as ErrBadIngest.
func DecodeIngest(b []byte, fn func(device string, pts []traj.Point) error) error {
	u, n, err := enc.Uvarint(b)
	if err != nil || u != ibMagic {
		return fmt.Errorf("%w: bad magic", ErrBadIngest)
	}
	b = b[n:]
	for frame := 1; len(b) > 0; frame++ {
		devLen, n, err := enc.Uvarint(b)
		if err != nil {
			return fmt.Errorf("%w: frame %d: device length: %v", ErrBadIngest, frame, err)
		}
		b = b[n:]
		if devLen == 0 || devLen > ibMaxDevice {
			return fmt.Errorf("%w: frame %d: device length %d (max %d)", ErrBadIngest, frame, devLen, ibMaxDevice)
		}
		if uint64(len(b)) < devLen {
			return fmt.Errorf("%w: frame %d: truncated device ID", ErrBadIngest, frame)
		}
		device := string(b[:devLen])
		b = b[devLen:]
		count, n, err := enc.Uvarint(b)
		if err != nil {
			return fmt.Errorf("%w: frame %d: point count: %v", ErrBadIngest, frame, err)
		}
		b = b[n:]
		// Every point costs at least three varint bytes; bounding the
		// count by the remaining input — and capping the preallocation
		// regardless — keeps a garbage count from forcing a huge
		// allocation.
		if count > uint64(len(b))/3 {
			return fmt.Errorf("%w: frame %d: %d points in %d bytes", ErrBadIngest, frame, count, len(b))
		}
		pts := make([]traj.Point, 0, min(count, 4096))
		pd := enc.PointDelta{Quant: pwQuantXY}
		for i := uint64(0); i < count; i++ {
			x, y, tms, n, err := pd.Next(b)
			if err != nil {
				return fmt.Errorf("%w: frame %d point %d: %v", ErrBadIngest, frame, i, err)
			}
			b = b[n:]
			pts = append(pts, traj.Point{X: x, Y: y, T: tms})
		}
		if err := fn(device, pts); err != nil {
			return err
		}
	}
	return nil
}
