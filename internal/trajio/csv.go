// Package trajio reads and writes trajectories in the formats the
// experiments and tools use: CSV (planar meters or lon/lat degrees),
// the GeoLife PLT format, and a compact binary encoding for simplified
// output. Lon/lat data is projected to planar meters at the boundary so
// every algorithm operates in the paper's Euclidean model.
package trajio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// Format selects the CSV column interpretation.
type Format int

const (
	// Planar CSV columns: t_ms,x_m,y_m.
	Planar Format = iota
	// LonLat CSV columns: t_ms,lon_deg,lat_deg. Reading projects onto a
	// local planar frame anchored at the first point (or the provided
	// projection); writing inverts it.
	LonLat
)

// CSVOptions configures ReadCSV/WriteCSV.
type CSVOptions struct {
	Format Format
	// Header controls whether a header row is written / skipped.
	Header bool
	// Projection overrides the lon/lat anchor. When nil, reading anchors
	// at the first data point, and writing requires it to be set.
	Projection *geo.Projection
}

// Errors returned by the CSV codec.
var (
	ErrBadRecord      = errors.New("trajio: malformed record")
	ErrNeedProjection = errors.New("trajio: writing lon/lat requires CSVOptions.Projection")
)

// WriteCSV writes t as CSV.
func WriteCSV(w io.Writer, t traj.Trajectory, opts CSVOptions) error {
	cw := csv.NewWriter(w)
	if opts.Header {
		hdr := []string{"t_ms", "x_m", "y_m"}
		if opts.Format == LonLat {
			hdr = []string{"t_ms", "lon", "lat"}
		}
		if err := cw.Write(hdr); err != nil {
			return err
		}
	}
	if opts.Format == LonLat && opts.Projection == nil {
		return ErrNeedProjection
	}
	rec := make([]string, 3)
	for _, p := range t {
		rec[0] = strconv.FormatInt(p.T, 10)
		x, y := p.X, p.Y
		if opts.Format == LonLat {
			x, y = opts.Projection.ToLonLat(p.P())
		}
		rec[1] = strconv.FormatFloat(x, 'f', -1, 64)
		rec[2] = strconv.FormatFloat(y, 'f', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a whole trajectory. For LonLat input with no explicit
// projection it also returns the projection it anchored (callers need it
// to map results back); for Planar input the returned projection is nil
// or the one passed in.
func ReadCSV(r io.Reader, opts CSVOptions) (traj.Trajectory, *geo.Projection, error) {
	var out traj.Trajectory
	pr := opts.Projection
	err := readCSVStream(r, opts, func(t int64, a, b float64) error {
		p := traj.Point{T: t}
		if opts.Format == LonLat {
			if pr == nil {
				pr = geo.NewProjection(a, b)
			}
			gp := pr.ToPlane(a, b)
			p.X, p.Y = gp.X, gp.Y
		} else {
			p.X, p.Y = a, b
		}
		out = append(out, p)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return out, pr, nil
}

// readCSVStream parses records and feeds raw columns to fn.
func readCSVStream(r io.Reader, opts CSVOptions, fn func(t int64, a, b float64) error) error {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for better messages
	cr.TrimLeadingSpace = true
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		line++
		if line == 1 && opts.Header {
			continue
		}
		if len(rec) < 3 {
			return fmt.Errorf("%w: line %d has %d fields, want 3", ErrBadRecord, line, len(rec))
		}
		t, err := strconv.ParseInt(rec[0], 10, 64)
		if err != nil {
			return fmt.Errorf("%w: line %d time %q: %v", ErrBadRecord, line, rec[0], err)
		}
		a, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return fmt.Errorf("%w: line %d field %q: %v", ErrBadRecord, line, rec[1], err)
		}
		b, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return fmt.Errorf("%w: line %d field %q: %v", ErrBadRecord, line, rec[2], err)
		}
		if err := fn(t, a, b); err != nil {
			return err
		}
	}
}
