package trajio

import (
	"io"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// StreamCSV parses CSV records and delivers points one at a time — the
// input side of a true one-pass pipeline: a reader goroutine can feed an
// OPERB encoder without ever materializing the trajectory. fn returning an
// error aborts the scan and surfaces that error.
//
// For LonLat input with no explicit projection, the frame anchors at the
// first point; the projection eventually used is returned.
func StreamCSV(r io.Reader, opts CSVOptions, fn func(traj.Point) error) (*geo.Projection, error) {
	pr := opts.Projection
	err := readCSVStream(r, opts, func(t int64, a, b float64) error {
		p := traj.Point{T: t}
		if opts.Format == LonLat {
			if pr == nil {
				pr = geo.NewProjection(a, b)
			}
			gp := pr.ToPlane(a, b)
			p.X, p.Y = gp.X, gp.Y
		} else {
			p.X, p.Y = a, b
		}
		return fn(p)
	})
	if err != nil {
		return nil, err
	}
	return pr, nil
}
