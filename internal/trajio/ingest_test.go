package trajio

import (
	"errors"
	"math"
	"strings"
	"testing"

	"trajsim/internal/enc"
	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

func TestIngestRoundTrip(t *testing.T) {
	batches := []struct {
		device string
		pts    traj.Trajectory
	}{
		{"taxi-1", gen.One(gen.Taxi, 200, 1)},
		{"truck-2", gen.One(gen.Truck, 50, 2)},
		{"taxi-1", gen.One(gen.Taxi, 3, 3)}, // same device again: frames are independent
	}
	b := AppendIngestHeader(nil)
	for _, batch := range batches {
		b = AppendIngestBatch(b, batch.device, batch.pts)
	}

	var got []struct {
		device string
		pts    []traj.Point
	}
	err := DecodeIngest(b, func(device string, pts []traj.Point) error {
		got = append(got, struct {
			device string
			pts    []traj.Point
		}{device, pts})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batches) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(batches))
	}
	for i, batch := range batches {
		if got[i].device != batch.device {
			t.Errorf("frame %d: device %q, want %q", i, got[i].device, batch.device)
		}
		if len(got[i].pts) != len(batch.pts) {
			t.Fatalf("frame %d: %d points, want %d", i, len(got[i].pts), len(batch.pts))
		}
		for k, p := range batch.pts {
			q := got[i].pts[k]
			if q.T != p.T {
				t.Fatalf("frame %d point %d: T=%d, want %d", i, k, q.T, p.T)
			}
			if math.Abs(q.X-p.X) > pwQuantXY/2+1e-9 || math.Abs(q.Y-p.Y) > pwQuantXY/2+1e-9 {
				t.Fatalf("frame %d point %d: %v drifted beyond quantization from %v", i, k, q, p)
			}
		}
	}
}

func TestIngestEmptyStream(t *testing.T) {
	b := AppendIngestHeader(nil)
	err := DecodeIngest(b, func(string, []traj.Point) error {
		t.Fatal("callback for empty stream")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIngestCallbackError(t *testing.T) {
	b := AppendIngestHeader(nil)
	b = AppendIngestBatch(b, "d1", gen.One(gen.Taxi, 5, 1))
	b = AppendIngestBatch(b, "d2", gen.One(gen.Taxi, 5, 2))
	sentinel := errors.New("stop here")
	var seen int
	err := DecodeIngest(b, func(string, []traj.Point) error {
		seen++
		return sentinel
	})
	if !errors.Is(err, sentinel) || seen != 1 {
		t.Fatalf("err=%v seen=%d, want sentinel after first frame", err, seen)
	}
}

func TestIngestMalformed(t *testing.T) {
	valid := AppendIngestBatch(AppendIngestHeader(nil), "d1", gen.One(gen.Taxi, 20, 1))
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"bad magic", enc.AppendUvarint(nil, 0xBAD)},
		{"torn frame", valid[:len(valid)-3]},
		{"zero device length", enc.AppendUvarint(AppendIngestHeader(nil), 0)},
		{"oversized device length",
			enc.AppendUvarint(AppendIngestHeader(nil), ibMaxDevice+1)},
		{"truncated device",
			append(enc.AppendUvarint(AppendIngestHeader(nil), 10), 'x')},
		{"huge point count", enc.AppendUvarint(append(
			enc.AppendUvarint(AppendIngestHeader(nil), 2), "d1"...), 1<<40)},
	}
	for _, c := range cases {
		err := DecodeIngest(c.b, func(string, []traj.Point) error { return nil })
		if !errors.Is(err, ErrBadIngest) {
			t.Errorf("%s: err=%v, want ErrBadIngest", c.name, err)
		}
	}
	// Sanity: the valid buffer the torn case was cut from does decode.
	if err := DecodeIngest(valid, func(string, []traj.Point) error { return nil }); err != nil {
		t.Fatalf("valid stream: %v", err)
	}
}

func TestIngestCompactness(t *testing.T) {
	// The point of the binary format: far fewer bytes than the NDJSON
	// equivalent (~70 bytes/point) for a realistic upload.
	pts := gen.One(gen.Taxi, 1000, 7)
	b := AppendIngestBatch(AppendIngestHeader(nil), "vehicle-0001", pts)
	perPoint := float64(len(b)) / float64(len(pts))
	if perPoint > 12 {
		t.Errorf("%.1f bytes/point, want ≤ 12", perPoint)
	}
	if strings.Contains(string(b), "vehicle-0001") == false {
		t.Error("device ID should appear verbatim in the frame")
	}
}
