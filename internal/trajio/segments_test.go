package trajio

import (
	"bytes"
	"math"
	"testing"

	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// discontinuousSegments is a batch whose consecutive segments do not
// connect — the shape a range query or live tail emits, which PWB1
// cannot carry.
func discontinuousSegments() []traj.Segment {
	return []traj.Segment{
		{Start: traj.At(0, 0, 1000), End: traj.At(10.5, -3.25, 5000), EndIdx: 4},
		// Gap: the next segment starts somewhere else entirely.
		{Start: traj.At(-200, 77.7, 60_000), End: traj.At(-180.01, 90, 66_000),
			StartIdx: 10, EndIdx: 13, VirtualStart: true},
		{Start: traj.At(-180.01, 90, 66_000), End: traj.At(-150, 90, 70_000),
			StartIdx: 13, EndIdx: 14, VirtualEnd: true},
	}
}

func TestSegmentsRoundTrip(t *testing.T) {
	for name, segs := range map[string][]traj.Segment{
		"empty":         nil,
		"discontinuous": discontinuousSegments(),
	} {
		got, err := DecodeSegments(AppendSegments(nil, segs))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(segs) == 0 {
			if len(got) != 0 {
				t.Fatalf("%s: decoded %d segments", name, len(got))
			}
			continue
		}
		checkSegmentsEqual(t, name, segs, got)
	}

	// Real simplifier output: a contiguous piecewise batch carried as
	// segments round-trips too, and costs barely more than PWB1.
	pw, err := core.Simplify(gen.One(gen.Taxi, 500, 4), 40)
	if err != nil {
		t.Fatal(err)
	}
	segs := []traj.Segment(pw)
	enc := AppendSegments(nil, segs)
	got, err := DecodeSegments(enc)
	if err != nil {
		t.Fatal(err)
	}
	checkSegmentsEqual(t, "contiguous", segs, got)
	if pwb := AppendPiecewise(nil, pw); len(enc) > 2*len(pwb) {
		t.Errorf("SGB1 is %d bytes for a %d-byte PWB1 batch — the shared-endpoint delta is not collapsing", len(enc), len(pwb))
	}

	// Closed under filtering: any subsequence re-encodes as a valid batch
	// that decodes to exactly that subsequence.
	sub := []traj.Segment{segs[2], segs[5], segs[len(segs)-1]}
	got, err = DecodeSegments(AppendSegments(nil, sub))
	if err != nil {
		t.Fatalf("filtered subsequence: %v", err)
	}
	checkSegmentsEqual(t, "filtered", sub, got)

	// Writer/reader wrappers agree with the in-memory forms.
	var buf bytes.Buffer
	if err := WriteSegments(&buf, sub); err != nil {
		t.Fatal(err)
	}
	if got, err = ReadSegments(&buf); err != nil {
		t.Fatal(err)
	}
	checkSegmentsEqual(t, "stream", sub, got)
}

func checkSegmentsEqual(t *testing.T, name string, want, got []traj.Segment) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d segments -> %d", name, len(want), len(got))
	}
	const tol = pwQuantXY/2 + 1e-9
	for i := range want {
		w, g := want[i], got[i]
		if g.StartIdx != w.StartIdx || g.EndIdx != w.EndIdx ||
			g.VirtualStart != w.VirtualStart || g.VirtualEnd != w.VirtualEnd ||
			g.Start.T != w.Start.T || g.End.T != w.End.T {
			t.Fatalf("%s: segment %d exact fields changed: %+v -> %+v", name, i, w, g)
		}
		for _, d := range []float64{
			g.Start.X - w.Start.X, g.Start.Y - w.Start.Y,
			g.End.X - w.End.X, g.End.Y - w.End.Y,
		} {
			if math.Abs(d) > tol {
				t.Fatalf("%s: segment %d coordinate drift %g", name, i, d)
			}
		}
	}
}

func TestDecodeSegmentsRejects(t *testing.T) {
	valid := AppendSegments(nil, discontinuousSegments())
	for name, b := range map[string][]byte{
		"empty":        {},
		"bad magic":    {0x01, 0x02, 0x03},
		"truncated":    valid[:len(valid)-2],
		"count beyond": append(AppendSegments(nil, nil)[:len(AppendSegments(nil, nil))-1], 0xff, 0xff, 0xff, 0x7f),
	} {
		if _, err := DecodeSegments(b); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if got, err := DecodeSegments(valid); err != nil || len(got) != 3 {
		t.Fatalf("valid batch: %d segments, %v", len(got), err)
	}
}
