package trajio

import (
	"errors"
	"fmt"
	"io"
	"math"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Binary piecewise format: what a device would actually transmit after
// simplification. Points are quantized (default 1 cm / 1 ms) and
// delta-coded; each segment carries its endpoint and the number of source
// points it represents, so the receiver can reconstruct coverage
// statistics as well as the polyline.

// ErrBadPiecewise is returned for malformed binary piecewise input.
var ErrBadPiecewise = errors.New("trajio: malformed piecewise stream")

const (
	pwMagic       = 0x50574231 // "PWB1"
	pwQuantXY     = 0.01       // meters
	flagVirtStart = 1
	flagVirtEnd   = 2
)

// AppendPiecewise encodes pw, appending to dst.
func AppendPiecewise(dst []byte, pw traj.Piecewise) []byte {
	dst = enc.AppendUvarint(dst, pwMagic)
	dst = enc.AppendUvarint(dst, uint64(len(pw)))
	var px, py, pt int64
	var pidx int64
	put := func(p traj.Point) {
		x := int64(math.Round(p.X / pwQuantXY))
		y := int64(math.Round(p.Y / pwQuantXY))
		dst = enc.AppendVarint(dst, x-px)
		dst = enc.AppendVarint(dst, y-py)
		dst = enc.AppendVarint(dst, p.T-pt)
		px, py, pt = x, y, p.T
	}
	for i, s := range pw {
		if i == 0 {
			put(s.Start)
		}
		put(s.End)
		dst = enc.AppendVarint(dst, int64(s.StartIdx)-pidx)
		dst = enc.AppendUvarint(dst, uint64(s.EndIdx-s.StartIdx))
		pidx = int64(s.StartIdx)
		var flags uint64
		if s.VirtualStart {
			flags |= flagVirtStart
		}
		if s.VirtualEnd {
			flags |= flagVirtEnd
		}
		dst = enc.AppendUvarint(dst, flags)
	}
	return dst
}

// DecodePiecewise decodes a buffer produced by AppendPiecewise.
func DecodePiecewise(b []byte) (traj.Piecewise, error) {
	u, n, err := enc.Uvarint(b)
	if err != nil || u != pwMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPiecewise)
	}
	b = b[n:]
	count, n, err := enc.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
	}
	b = b[n:]
	var px, py, pt int64
	var pidx int64
	get := func() (traj.Point, error) {
		var vals [3]int64
		for i := range vals {
			v, n, err := enc.Varint(b)
			if err != nil {
				return traj.Point{}, err
			}
			vals[i] = v
			b = b[n:]
		}
		px += vals[0]
		py += vals[1]
		pt += vals[2]
		return traj.Point{X: float64(px) * pwQuantXY, Y: float64(py) * pwQuantXY, T: pt}, nil
	}
	out := make(traj.Piecewise, 0, count)
	var prev traj.Point
	for i := uint64(0); i < count; i++ {
		var s traj.Segment
		if i == 0 {
			start, err := get()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
			}
			prev = start
		}
		s.Start = prev
		end, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		s.End = end
		prev = end
		dIdx, n, err := enc.Varint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		span, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		s.StartIdx = int(pidx + dIdx)
		s.EndIdx = s.StartIdx + int(span)
		pidx = int64(s.StartIdx)
		flags, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		s.VirtualStart = flags&flagVirtStart != 0
		s.VirtualEnd = flags&flagVirtEnd != 0
		out = append(out, s)
	}
	return out, nil
}

// WritePiecewise writes the binary encoding to w.
func WritePiecewise(w io.Writer, pw traj.Piecewise) error {
	_, err := w.Write(AppendPiecewise(nil, pw))
	return err
}

// ReadPiecewise reads a whole binary piecewise stream from r.
func ReadPiecewise(r io.Reader) (traj.Piecewise, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodePiecewise(b)
}
