package trajio

import (
	"errors"
	"fmt"
	"io"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Binary piecewise format: what a device would actually transmit after
// simplification. Points are quantized (default 1 cm / 1 ms) and
// delta-coded; each segment carries its endpoint and the number of source
// points it represents, so the receiver can reconstruct coverage
// statistics as well as the polyline.

// ErrBadPiecewise is returned for malformed binary piecewise input.
var ErrBadPiecewise = errors.New("trajio: malformed piecewise stream")

const (
	pwMagic       = 0x50574231 // "PWB1"
	pwQuantXY     = 0.01       // meters
	flagVirtStart = 1
	flagVirtEnd   = 2
)

// AppendPiecewise encodes pw, appending to dst.
func AppendPiecewise(dst []byte, pw traj.Piecewise) []byte {
	dst = enc.AppendUvarint(dst, pwMagic)
	dst = enc.AppendUvarint(dst, uint64(len(pw)))
	pd := enc.PointDelta{Quant: pwQuantXY}
	var pidx int64
	for i, s := range pw {
		if i == 0 {
			dst = pd.Append(dst, s.Start.X, s.Start.Y, s.Start.T)
		}
		dst = pd.Append(dst, s.End.X, s.End.Y, s.End.T)
		dst = enc.AppendVarint(dst, int64(s.StartIdx)-pidx)
		dst = enc.AppendUvarint(dst, uint64(s.EndIdx-s.StartIdx))
		pidx = int64(s.StartIdx)
		var flags uint64
		if s.VirtualStart {
			flags |= flagVirtStart
		}
		if s.VirtualEnd {
			flags |= flagVirtEnd
		}
		dst = enc.AppendUvarint(dst, flags)
	}
	return dst
}

// DecodePiecewise decodes a buffer produced by AppendPiecewise.
func DecodePiecewise(b []byte) (traj.Piecewise, error) {
	u, n, err := enc.Uvarint(b)
	if err != nil || u != pwMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPiecewise)
	}
	b = b[n:]
	count, n, err := enc.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
	}
	b = b[n:]
	// Each segment costs at least six varint bytes (the first nine), so a
	// count beyond the remaining input is malformed; rejecting it here —
	// and capping the preallocation regardless — keeps an adversarial
	// count from forcing a huge allocation.
	if count > uint64(len(b))/6+1 {
		return nil, fmt.Errorf("%w: %d segments in %d bytes", ErrBadPiecewise, count, len(b))
	}
	pd := enc.PointDelta{Quant: pwQuantXY}
	var pidx int64
	get := func() (traj.Point, error) {
		x, y, tms, n, err := pd.Next(b)
		if err != nil {
			return traj.Point{}, err
		}
		b = b[n:]
		return traj.Point{X: x, Y: y, T: tms}, nil
	}
	out := make(traj.Piecewise, 0, min(count, 4096))
	var prev traj.Point
	for i := uint64(0); i < count; i++ {
		var s traj.Segment
		if i == 0 {
			start, err := get()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
			}
			prev = start
		}
		s.Start = prev
		end, err := get()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		s.End = end
		prev = end
		dIdx, n, err := enc.Varint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		span, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		s.StartIdx = int(pidx + dIdx)
		s.EndIdx = s.StartIdx + int(span)
		pidx = int64(s.StartIdx)
		flags, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadPiecewise, err)
		}
		b = b[n:]
		s.VirtualStart = flags&flagVirtStart != 0
		s.VirtualEnd = flags&flagVirtEnd != 0
		out = append(out, s)
	}
	return out, nil
}

// WritePiecewise writes the binary encoding to w.
func WritePiecewise(w io.Writer, pw traj.Piecewise) error {
	_, err := w.Write(AppendPiecewise(nil, pw))
	return err
}

// ReadPiecewise reads a whole binary piecewise stream from r.
func ReadPiecewise(r io.Reader) (traj.Piecewise, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodePiecewise(b)
}
