package trajio

import (
	"bytes"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

var (
	sinkB []byte
	sinkT traj.Trajectory
	sinkP traj.Piecewise
)

func BenchmarkWriteCSV(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 7)
	b.SetBytes(10_000)
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteCSV(&buf, tr, CSVOptions{Format: Planar, Header: true}); err != nil {
			b.Fatal(err)
		}
		sinkB = buf.Bytes()
	}
}

func BenchmarkReadCSV(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 7)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tr, CSVOptions{Format: Planar, Header: true}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(10_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := ReadCSV(bytes.NewReader(data), CSVOptions{Format: Planar, Header: true})
		if err != nil {
			b.Fatal(err)
		}
		sinkT = out
	}
}

func BenchmarkPiecewiseEncode(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 7)
	pw := make(traj.Piecewise, 0, 500)
	for i := 0; i+20 < len(tr); i += 20 {
		pw = append(pw, traj.NewSegment(tr, i, i+20))
	}
	for i := 0; i < b.N; i++ {
		sinkB = AppendPiecewise(sinkB[:0], pw)
	}
}

func BenchmarkPiecewiseDecode(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 7)
	pw := make(traj.Piecewise, 0, 500)
	for i := 0; i+20 < len(tr); i += 20 {
		pw = append(pw, traj.NewSegment(tr, i, i+20))
	}
	data := AppendPiecewise(nil, pw)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := DecodePiecewise(data)
		if err != nil {
			b.Fatal(err)
		}
		sinkP = out
	}
}
