package trajio

import (
	"errors"
	"fmt"
	"io"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Binary segment-batch format: the wire form of a time-ranged read. A
// piecewise stream (PWB1) shares endpoints between adjacent segments,
// which is exactly wrong for range queries and live tails — their
// results may skip records, so consecutive segments need not connect.
// SGB1 carries each segment's Start and End explicitly (still
// delta-coded against the previous point, so a contiguous run costs
// barely more than PWB1) and is therefore closed under filtering: any
// subsequence of a batch re-encodes as a valid batch.

// ErrBadSegments is returned for malformed binary segment-batch input.
var ErrBadSegments = errors.New("trajio: malformed segment batch")

const sgMagic = 0x53474231 // "SGB1"

// AppendSegments encodes segs, appending to dst.
func AppendSegments(dst []byte, segs []traj.Segment) []byte {
	dst = enc.AppendUvarint(dst, sgMagic)
	dst = enc.AppendUvarint(dst, uint64(len(segs)))
	pd := enc.PointDelta{Quant: pwQuantXY}
	var pidx int64
	for _, s := range segs {
		// Start usually equals the previous segment's End — three zero
		// delta bytes when it does.
		dst = pd.Append(dst, s.Start.X, s.Start.Y, s.Start.T)
		dst = pd.Append(dst, s.End.X, s.End.Y, s.End.T)
		dst = enc.AppendVarint(dst, int64(s.StartIdx)-pidx)
		dst = enc.AppendUvarint(dst, uint64(s.EndIdx-s.StartIdx))
		pidx = int64(s.StartIdx)
		var flags uint64
		if s.VirtualStart {
			flags |= flagVirtStart
		}
		if s.VirtualEnd {
			flags |= flagVirtEnd
		}
		dst = enc.AppendUvarint(dst, flags)
	}
	return dst
}

// DecodeSegments decodes a buffer produced by AppendSegments.
func DecodeSegments(b []byte) ([]traj.Segment, error) {
	u, n, err := enc.Uvarint(b)
	if err != nil || u != sgMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSegments)
	}
	b = b[n:]
	count, n, err := enc.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSegments, err)
	}
	b = b[n:]
	// Each segment costs at least nine varint bytes, so a count beyond the
	// remaining input is malformed; rejecting it here — and capping the
	// preallocation regardless — keeps an adversarial count from forcing a
	// huge allocation.
	if count > uint64(len(b))/9+1 {
		return nil, fmt.Errorf("%w: %d segments in %d bytes", ErrBadSegments, count, len(b))
	}
	pd := enc.PointDelta{Quant: pwQuantXY}
	var pidx int64
	get := func() (traj.Point, error) {
		x, y, tms, n, err := pd.Next(b)
		if err != nil {
			return traj.Point{}, err
		}
		b = b[n:]
		return traj.Point{X: x, Y: y, T: tms}, nil
	}
	out := make([]traj.Segment, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		var s traj.Segment
		if s.Start, err = get(); err != nil {
			return nil, fmt.Errorf("%w: segment %d start: %v", ErrBadSegments, i, err)
		}
		if s.End, err = get(); err != nil {
			return nil, fmt.Errorf("%w: segment %d end: %v", ErrBadSegments, i, err)
		}
		dIdx, n, err := enc.Varint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d index: %v", ErrBadSegments, i, err)
		}
		b = b[n:]
		span, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d span: %v", ErrBadSegments, i, err)
		}
		b = b[n:]
		s.StartIdx = int(pidx + dIdx)
		s.EndIdx = s.StartIdx + int(span)
		pidx = int64(s.StartIdx)
		flags, n, err := enc.Uvarint(b)
		if err != nil {
			return nil, fmt.Errorf("%w: segment %d flags: %v", ErrBadSegments, i, err)
		}
		b = b[n:]
		s.VirtualStart = flags&flagVirtStart != 0
		s.VirtualEnd = flags&flagVirtEnd != 0
		out = append(out, s)
	}
	return out, nil
}

// WriteSegments writes the binary encoding to w.
func WriteSegments(w io.Writer, segs []traj.Segment) error {
	_, err := w.Write(AppendSegments(nil, segs))
	return err
}

// ReadSegments reads a whole binary segment batch from r.
func ReadSegments(r io.Reader) ([]traj.Segment, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeSegments(b)
}
