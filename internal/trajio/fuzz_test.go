package trajio

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// FuzzDecodePiecewise: the decoder is the trust boundary for bytes off
// the wire, so it must reject — never panic on, never over-allocate for
// — arbitrary input, and every rejection must be ErrBadPiecewise.
func FuzzDecodePiecewise(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendPiecewise(nil, nil))
	pw, _ := core.Simplify(gen.One(gen.Taxi, 300, 1), 40)
	valid := AppendPiecewise(nil, pw)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		pw, err := DecodePiecewise(b)
		if err != nil {
			if !errors.Is(err, ErrBadPiecewise) {
				t.Fatalf("non-sentinel error %v", err)
			}
			return
		}
		// Accepted input must re-encode and decode to the same values:
		// whatever DecodePiecewise accepts is fully representable.
		again, err := DecodePiecewise(AppendPiecewise(nil, pw))
		if err != nil {
			t.Fatalf("re-encode of accepted input rejected: %v", err)
		}
		if len(again) != len(pw) {
			t.Fatalf("re-encode changed segment count %d -> %d", len(pw), len(again))
		}
	})
}

// FuzzDecodeIngest: same contract for the upload-side decoder.
func FuzzDecodeIngest(f *testing.F) {
	f.Add([]byte{})
	valid := AppendIngestBatch(AppendIngestHeader(nil), "dev-1", gen.One(gen.Truck, 100, 2))
	f.Add(valid)
	f.Add(valid[:len(valid)-4])
	f.Fuzz(func(t *testing.T, b []byte) {
		if err := DecodeIngest(b, func(device string, pts []traj.Point) error {
			if device == "" {
				t.Fatal("decoder delivered empty device ID")
			}
			return nil
		}); err != nil && !errors.Is(err, ErrBadIngest) {
			t.Fatalf("non-sentinel error %v", err)
		}
	})
}

// FuzzDecodeSegments: the segment-batch decoder faces the same wire
// trust boundary as DecodePiecewise — reject, never panic, never
// over-allocate, always the ErrBadSegments sentinel.
func FuzzDecodeSegments(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendSegments(nil, nil))
	pw, _ := core.Simplify(gen.One(gen.Taxi, 300, 1), 40)
	valid := AppendSegments(nil, []traj.Segment(pw))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, b []byte) {
		segs, err := DecodeSegments(b)
		if err != nil {
			if !errors.Is(err, ErrBadSegments) {
				t.Fatalf("non-sentinel error %v", err)
			}
			return
		}
		// Accepted input must survive its own re-encoding: whatever the
		// decoder admits is fully representable.
		again, err := DecodeSegments(AppendSegments(nil, segs))
		if err != nil {
			t.Fatalf("re-encode of accepted input rejected: %v", err)
		}
		if len(again) != len(segs) {
			t.Fatalf("re-encode changed segment count %d -> %d", len(segs), len(again))
		}
	})
}

// FuzzPiecewiseRoundTrip: for real simplifier output over randomized
// workloads, encode→decode loses nothing but sub-quantization (≤ 5 mm
// per coordinate) — timestamps, source ranges, and flags are exact.
func FuzzPiecewiseRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(300), uint32(40000), false)
	f.Add(uint64(2), uint16(50), uint32(1500), true)
	f.Add(uint64(99), uint16(1000), uint32(200000), true)
	presets := []gen.Preset{gen.Taxi, gen.Truck, gen.SerCar, gen.GeoLife}
	f.Fuzz(func(t *testing.T, seed uint64, n uint16, zetaMM uint32, aggressive bool) {
		points := 2 + int(n)%1000
		zeta := float64(1+zetaMM%200000) / 1000 // 1 mm .. 200 m
		tr := gen.One(presets[seed%4], points, seed)
		var (
			pw  traj.Piecewise
			err error
		)
		if aggressive {
			pw, err = core.SimplifyAggressive(tr, zeta)
		} else {
			pw, err = core.Simplify(tr, zeta)
		}
		if err != nil {
			t.Skip() // degenerate generator output
		}
		got, err := DecodePiecewise(AppendPiecewise(nil, pw))
		if err != nil {
			t.Fatalf("decode of own encoding: %v", err)
		}
		if len(got) != len(pw) {
			t.Fatalf("segment count %d -> %d", len(pw), len(got))
		}
		const tol = pwQuantXY/2 + 1e-9
		for i := range pw {
			w, g := pw[i], got[i]
			if g.StartIdx != w.StartIdx || g.EndIdx != w.EndIdx ||
				g.VirtualStart != w.VirtualStart || g.VirtualEnd != w.VirtualEnd ||
				g.Start.T != w.Start.T || g.End.T != w.End.T {
				t.Fatalf("segment %d: exact fields changed: %+v -> %+v", i, w, g)
			}
			for _, d := range []float64{
				g.Start.X - w.Start.X, g.Start.Y - w.Start.Y,
				g.End.X - w.End.X, g.End.Y - w.End.Y,
			} {
				if math.Abs(d) > tol {
					t.Fatalf("segment %d: coordinate drift %g beyond quantization", i, d)
				}
			}
		}
	})
}
