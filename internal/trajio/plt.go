package trajio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// GeoLife PLT format: six header lines, then records of
//
//	lat,lon,0,altitude_ft,days_since_1899-12-30,YYYY-MM-DD,HH:MM:SS
//
// The paper's GeoLife dataset ships in this format; the geolife example
// generates and consumes it.

// ErrBadPLT is returned for malformed PLT content.
var ErrBadPLT = errors.New("trajio: malformed PLT")

// excelEpoch is 1899-12-30T00:00:00Z, the origin of the PLT serial-day
// field.
var excelEpoch = time.Date(1899, 12, 30, 0, 0, 0, 0, time.UTC)

// ReadPLT parses a PLT stream into a planar trajectory. When pr is nil a
// projection is anchored at the first point and returned.
func ReadPLT(r io.Reader, pr *geo.Projection) (traj.Trajectory, *geo.Projection, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	var out traj.Trajectory
	line := 0
	for sc.Scan() {
		line++
		if line <= 6 {
			continue // header block
		}
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 7 {
			return nil, nil, fmt.Errorf("%w: line %d has %d fields", ErrBadPLT, line, len(fields))
		}
		lat, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: line %d lat: %v", ErrBadPLT, line, err)
		}
		lon, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: line %d lon: %v", ErrBadPLT, line, err)
		}
		ts, err := time.Parse("2006-01-02 15:04:05", fields[5]+" "+fields[6])
		if err != nil {
			return nil, nil, fmt.Errorf("%w: line %d timestamp: %v", ErrBadPLT, line, err)
		}
		if pr == nil {
			pr = geo.NewProjection(lon, lat)
		}
		p := pr.ToPlane(lon, lat)
		out = append(out, traj.Point{X: p.X, Y: p.Y, T: ts.UnixMilli()})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, pr, nil
}

// WritePLT writes a planar trajectory in PLT format using the given
// projection to recover lon/lat.
func WritePLT(w io.Writer, t traj.Trajectory, pr *geo.Projection) error {
	if pr == nil {
		return ErrNeedProjection
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "Geolife trajectory")
	fmt.Fprintln(bw, "WGS 84")
	fmt.Fprintln(bw, "Altitude is in Feet")
	fmt.Fprintln(bw, "Reserved 3")
	fmt.Fprintln(bw, "0,2,255,My Track,0,0,2,8421376")
	fmt.Fprintln(bw, "0")
	for _, p := range t {
		lon, lat := pr.ToLonLat(p.P())
		ts := time.UnixMilli(p.T).UTC()
		days := float64(ts.Sub(excelEpoch)) / float64(24*time.Hour)
		fmt.Fprintf(bw, "%.6f,%.6f,0,0,%.8f,%s,%s\n",
			lat, lon, days,
			ts.Format("2006-01-02"), ts.Format("15:04:05"))
	}
	return bw.Flush()
}
