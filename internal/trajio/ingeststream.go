package trajio

import (
	"fmt"
	"io"
	"sync"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Streaming side of the TSB1 binary ingest wire format: DecodeIngest
// needs the whole upload in memory, which on the server means io.ReadAll
// of every request body — an allocation proportional to body size on the
// hottest path there is. DecodeIngestStream decodes the same format
// incrementally from an io.Reader through one pooled fixed-size buffer,
// so a gigabyte upload costs the same memory as a kilobyte one.

const (
	// ingestBufSize is the read buffer: comfortably larger than the
	// biggest atom the format contains (a device ID plus a few varints).
	ingestBufSize = 64 << 10
	// ingestChunkPts caps the points delivered per callback; frames with
	// more points arrive as several consecutive callbacks.
	ingestChunkPts = 4096
	// maxPointEnc is the worst-case encoding of one point: three 10-byte
	// varints.
	maxPointEnc = 30
)

// ingestDecoder is the pooled state of one streaming decode.
type ingestDecoder struct {
	src  io.Reader
	buf  []byte
	r, w int
	eof  bool
	pts  []traj.Point
	// readErr records a reader failure seen by fill: it must surface
	// verbatim (e.g. http.MaxBytesError → 413), never relabeled as
	// ErrBadIngest data corruption.
	readErr error
}

var ingestDecPool = sync.Pool{New: func() any {
	return &ingestDecoder{
		buf: make([]byte, ingestBufSize),
		pts: make([]traj.Point, 0, ingestChunkPts),
	}
}}

// fill slides the unread tail to the front of the buffer and reads more
// input, guaranteeing progress: it returns having added at least one
// byte or having set eof.
func (d *ingestDecoder) fill() error {
	if d.r > 0 {
		d.w = copy(d.buf, d.buf[d.r:d.w])
		d.r = 0
	}
	for !d.eof && d.w < len(d.buf) {
		n, err := d.src.Read(d.buf[d.w:])
		d.w += n
		if err == io.EOF {
			d.eof = true
			return nil
		}
		if err != nil {
			d.readErr = err
			return err
		}
		if n > 0 {
			return nil
		}
	}
	if d.w == len(d.buf) {
		// Buffer full of undecodable bytes: nothing in the format is this
		// large, so the stream is garbage, not short.
		d.eof = true
	}
	return nil
}

func (d *ingestDecoder) avail() int { return d.w - d.r }

// uvarint decodes one uvarint, refilling across chunk boundaries.
func (d *ingestDecoder) uvarint() (uint64, error) {
	for {
		v, n, err := enc.Uvarint(d.buf[d.r:d.w])
		if err == nil {
			d.r += n
			return v, nil
		}
		if d.eof || d.avail() >= maxPointEnc {
			return 0, err
		}
		if ferr := d.fill(); ferr != nil {
			return 0, ferr
		}
	}
}

// DecodeIngestStream decodes a binary ingest stream incrementally from
// r, invoking fn with consecutive point chunks in stream order. A frame
// produces one callback per ingestChunkPts points (at least one, even
// when empty), always tagged with its device. The points slice is reused
// after fn returns — callbacks that keep points must copy them. fn
// returning an error aborts the scan and surfaces that error; decode
// failures are reported as ErrBadIngest, read failures verbatim.
//
// Memory stays constant in the input size: one pooled 64 KiB buffer and
// one pooled point chunk, regardless of how large the stream is.
func DecodeIngestStream(r io.Reader, fn func(device string, pts []traj.Point) error) error {
	d := ingestDecPool.Get().(*ingestDecoder)
	defer func() {
		d.src = nil
		d.r, d.w, d.eof = 0, 0, false
		d.readErr = nil
		d.pts = d.pts[:0]
		ingestDecPool.Put(d)
	}()
	d.src = r

	magic, err := d.uvarint()
	if err != nil || magic != ibMagic {
		if d.readErr != nil {
			return d.readErr
		}
		return fmt.Errorf("%w: bad magic", ErrBadIngest)
	}
	for frame := 1; ; frame++ {
		if d.avail() == 0 {
			if !d.eof {
				if err := d.fill(); err != nil {
					return err
				}
			}
			if d.avail() == 0 && d.eof {
				return nil // clean end at a frame boundary
			}
		}
		devLen, err := d.uvarint()
		if err != nil {
			if d.readErr != nil {
				return d.readErr
			}
			return fmt.Errorf("%w: frame %d: device length: %v", ErrBadIngest, frame, err)
		}
		if devLen == 0 || devLen > ibMaxDevice {
			return fmt.Errorf("%w: frame %d: device length %d (max %d)", ErrBadIngest, frame, devLen, ibMaxDevice)
		}
		for uint64(d.avail()) < devLen && !d.eof {
			if err := d.fill(); err != nil {
				return err
			}
		}
		if uint64(d.avail()) < devLen {
			return fmt.Errorf("%w: frame %d: truncated device ID", ErrBadIngest, frame)
		}
		device := string(d.buf[d.r : d.r+int(devLen)])
		d.r += int(devLen)
		count, err := d.uvarint()
		if err != nil {
			if d.readErr != nil {
				return d.readErr
			}
			return fmt.Errorf("%w: frame %d: point count: %v", ErrBadIngest, frame, err)
		}
		pts := d.pts[:0]
		pd := enc.PointDelta{Quant: pwQuantXY}
		for i := uint64(0); i < count; i++ {
			x, y, tms, n, err := pd.Next(d.buf[d.r:d.w])
			if err != nil {
				// Next leaves pd untouched on error, so a refill-and-retry
				// is safe. If no more bytes can come, or plenty are already
				// here, the error is the data's fault.
				if d.eof || d.avail() >= maxPointEnc {
					return fmt.Errorf("%w: frame %d point %d: %v", ErrBadIngest, frame, i, err)
				}
				if ferr := d.fill(); ferr != nil {
					return ferr
				}
				i--
				continue
			}
			d.r += n
			pts = append(pts, traj.Point{X: x, Y: y, T: tms})
			if len(pts) == ingestChunkPts && i+1 < count {
				if err := fn(device, pts); err != nil {
					return err
				}
				pts = pts[:0]
			}
		}
		d.pts = pts
		if err := fn(device, pts); err != nil {
			return err
		}
	}
}
