package trajio

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"trajsim/internal/traj"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenCompare checks got against testdata/name, rewriting the fixture
// under -update. Golden bytes pin the wire formats: any encoding change
// shows up as a reviewable diff instead of silent corruption for old
// readers.
func goldenCompare(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s changed on the wire:\n got %x\nwant %x\nre-bless with -update only for a deliberate format break", name, got, want)
	}
}

// goldenPiecewise is a hand-written representation exercising every field:
// negative coordinates, virtual endpoints, an absorbed-point range.
func goldenPiecewise() traj.Piecewise {
	return traj.Piecewise{
		{Start: traj.At(0, 0, 0), End: traj.At(120.57, -33.02, 60_000),
			StartIdx: 0, EndIdx: 14},
		{Start: traj.At(120.57, -33.02, 60_000), End: traj.At(95.11, 40.4, 121_500),
			StartIdx: 14, EndIdx: 29, VirtualEnd: true},
		{Start: traj.At(95.11, 40.4, 121_500), End: traj.At(-12.5, 48, 190_000),
			StartIdx: 29, EndIdx: 55, VirtualStart: true},
	}
}

func TestGoldenPiecewise(t *testing.T) {
	got := AppendPiecewise(nil, goldenPiecewise())
	goldenCompare(t, "piecewise_v1.golden", got)
	// The fixture must stay decodable, not just byte-stable.
	pw, err := DecodePiecewise(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 3 || !pw[1].VirtualEnd || !pw[2].VirtualStart || pw[2].EndIdx != 55 {
		t.Fatalf("golden fixture decoded wrong: %+v", pw)
	}
}

func TestGoldenIngest(t *testing.T) {
	b := AppendIngestHeader(nil)
	b = AppendIngestBatch(b, "cab-7", []traj.Point{
		traj.At(0, 0, 0),
		traj.At(10.01, -0.25, 1000),
		traj.At(20.4, -1.17, 2100),
	})
	b = AppendIngestBatch(b, "bus-é", []traj.Point{ // non-ASCII device ID
		traj.At(-500.5, 1200.25, 5000),
	})
	goldenCompare(t, "ingest_v1.golden", b)
	var devices []string
	if err := DecodeIngest(b, func(dev string, pts []traj.Point) error {
		devices = append(devices, dev)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(devices) != 2 || devices[0] != "cab-7" || devices[1] != "bus-é" {
		t.Fatalf("golden fixture decoded wrong: %v", devices)
	}
}
