package geo

import (
	"math"
	"testing"
)

var sinkF float64
var sinkP Point
var sinkI int

func BenchmarkPointLineDistance(b *testing.B) {
	b.ReportAllocs()
	p, s, e := Pt(3, 7), Pt(0, 0), Pt(100, 40)
	for i := 0; i < b.N; i++ {
		sinkF = PointLineDistance(p, s, e)
	}
}

func BenchmarkPointRayDistance(b *testing.B) {
	b.ReportAllocs()
	p, o := Pt(3, 7), Pt(0, 0)
	for i := 0; i < b.N; i++ {
		sinkF = PointRayDistance(p, o, 0.5)
	}
}

func BenchmarkNorm(b *testing.B) {
	b.ReportAllocs()
	p := Pt(3.123, -7.456)
	for i := 0; i < b.N; i++ {
		sinkF = p.Norm()
	}
}

func BenchmarkAngleOf(b *testing.B) {
	b.ReportAllocs()
	p := Pt(3.123, -7.456)
	for i := 0; i < b.N; i++ {
		sinkF = AngleOf(p)
	}
}

func BenchmarkNormalizeAngle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkF = NormalizeAngle(float64(i) * 0.37)
	}
}

func BenchmarkLineIntersection(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkP, _ = LineIntersection(Pt(0, 0), 0.3, Pt(10, -5), 2.1)
	}
}

func BenchmarkClipPolygonHalfPlane(b *testing.B) {
	b.ReportAllocs()
	square := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	for i := 0; i < b.N; i++ {
		out := ClipPolygonHalfPlane(square, Pt(1, 0), math.Pi/2, true)
		sinkI = len(out)
	}
}

func BenchmarkProjection(b *testing.B) {
	b.ReportAllocs()
	pr := NewProjection(116.4, 39.9)
	for i := 0; i < b.N; i++ {
		sinkP = pr.ToPlane(116.41, 39.91)
	}
}
