package geo

import "math"

// PointLineDistance returns the Euclidean distance from p to the infinite
// line through a and b. This is the distance function d(P, L) used by the
// paper and by DP, OPW, BQS and OPERB alike. When a and b coincide the
// distance degrades to the point distance |p − a|.
func PointLineDistance(p, a, b Point) float64 {
	ab := b.Sub(a)
	n := ab.Norm()
	if n <= Eps {
		return p.Dist(a)
	}
	return math.Abs(ab.Cross(p.Sub(a))) / n
}

// PointRayDistance returns the distance from p to the infinite line through
// origin o with direction angle theta. Used for distances to the fitted
// directed line segment L, whose end point is virtual (a length and an
// angle, not a data point).
func PointRayDistance(p, o Point, theta float64) float64 {
	return math.Abs(Dir(theta).Cross(p.Sub(o)))
}

// PointSegmentDistance returns the distance from p to the closed segment ab.
func PointSegmentDistance(p, a, b Point) float64 {
	ab := b.Sub(a)
	n2 := ab.Norm2()
	if n2 <= Eps*Eps {
		return p.Dist(a)
	}
	t := p.Sub(a).Dot(ab) / n2
	switch {
	case t <= 0:
		return p.Dist(a)
	case t >= 1:
		return p.Dist(b)
	}
	return p.Dist(Lerp(a, b, t))
}

// SideOfLine reports which side of the directed line through o at angle
// theta the point p lies on: +1 for the left (counterclockwise) side, −1
// for the right side, and +1 for points on the line (a deterministic
// convention used by the adjusted-distance optimization).
func SideOfLine(p, o Point, theta float64) int {
	if Dir(theta).Cross(p.Sub(o)) < 0 {
		return -1
	}
	return +1
}

// ProjectOnLine returns the scalar position t of the orthogonal projection
// of p onto the directed line through o at angle theta (t is in meters
// along the direction; negative means behind o).
func ProjectOnLine(p, o Point, theta float64) float64 {
	return Dir(theta).Dot(p.Sub(o))
}

// LineIntersection returns the intersection of the line through o1 at angle
// theta1 with the line through o2 at angle theta2. ok is false when the
// lines are parallel within Eps (including coincident lines).
func LineIntersection(o1 Point, theta1 float64, o2 Point, theta2 float64) (p Point, ok bool) {
	d1, d2 := Dir(theta1), Dir(theta2)
	den := d1.Cross(d2)
	if math.Abs(den) <= Eps {
		return Point{}, false
	}
	t := o2.Sub(o1).Cross(d2) / den
	return o1.Add(d1.Scale(t)), true
}

// SegmentLineIntersectionParams returns the parameters (t1, t2) such that
// o1 + t1·dir(theta1) == o2 + t2·dir(theta2), with ok=false for parallel
// lines. Used by the patching method, which constrains where the patch
// point may lie on each line.
func SegmentLineIntersectionParams(o1 Point, theta1 float64, o2 Point, theta2 float64) (t1, t2 float64, ok bool) {
	d1, d2 := Dir(theta1), Dir(theta2)
	den := d1.Cross(d2)
	if math.Abs(den) <= Eps {
		return 0, 0, false
	}
	w := o2.Sub(o1)
	t1 = w.Cross(d2) / den
	t2 = w.Cross(d1) / den
	return t1, t2, true
}

// MaxDistanceToLine returns the maximum of PointLineDistance(p, a, b) over
// pts, along with the index of the farthest point. Empty input returns
// (−1, 0).
func MaxDistanceToLine(pts []Point, a, b Point) (idx int, dist float64) {
	idx = -1
	for i, p := range pts {
		if d := PointLineDistance(p, a, b); d > dist {
			idx, dist = i, d
		}
	}
	return idx, dist
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns a bounding box that contains nothing; extending it with
// any point makes it valid.
func EmptyBBox() BBox {
	return BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// Extend grows the box to include p.
func (b *BBox) Extend(p Point) {
	b.MinX = math.Min(b.MinX, p.X)
	b.MinY = math.Min(b.MinY, p.Y)
	b.MaxX = math.Max(b.MaxX, p.X)
	b.MaxY = math.Max(b.MaxY, p.Y)
}

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool { return b.MinX > b.MaxX }

// Corners returns the four corners of the box in counterclockwise order.
func (b BBox) Corners() [4]Point {
	return [4]Point{
		{b.MinX, b.MinY},
		{b.MaxX, b.MinY},
		{b.MaxX, b.MaxY},
		{b.MinX, b.MaxY},
	}
}

// Contains reports whether p lies inside or on the boundary of the box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX-Eps && p.X <= b.MaxX+Eps && p.Y >= b.MinY-Eps && p.Y <= b.MaxY+Eps
}

// ClipPolygonHalfPlane clips a convex polygon against the half-plane of
// points p with dir(theta)×(p−o) ≥ 0 when keepLeft is true (the left side
// of the directed line), or ≤ 0 otherwise. This is one Sutherland–Hodgman
// step; BQS uses two such steps to intersect a bounding box with the wedge
// between its two bounding lines.
func ClipPolygonHalfPlane(poly []Point, o Point, theta float64, keepLeft bool) []Point {
	if len(poly) == 0 {
		return nil
	}
	d := Dir(theta)
	side := func(p Point) float64 {
		s := d.Cross(p.Sub(o))
		if !keepLeft {
			s = -s
		}
		return s
	}
	out := make([]Point, 0, len(poly)+2)
	for i := range poly {
		cur, next := poly[i], poly[(i+1)%len(poly)]
		sc, sn := side(cur), side(next)
		if sc >= -Eps {
			out = append(out, cur)
		}
		if (sc > Eps && sn < -Eps) || (sc < -Eps && sn > Eps) {
			t := sc / (sc - sn)
			out = append(out, Lerp(cur, next, t))
		}
	}
	return out
}
