package geo

import (
	"math"
	"testing"
)

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(116.4, 39.9) // Beijing
	cases := [][2]float64{
		{116.4, 39.9},
		{116.5, 39.95},
		{116.3, 39.8},
	}
	for _, c := range cases {
		p := pr.ToPlane(c[0], c[1])
		lon, lat := pr.ToLonLat(p)
		if !almostEq(lon, c[0], 1e-9) || !almostEq(lat, c[1], 1e-9) {
			t.Errorf("round trip (%v,%v) -> (%v,%v)", c[0], c[1], lon, lat)
		}
	}
}

func TestProjectionOrigin(t *testing.T) {
	pr := NewProjection(10, 50)
	if p := pr.ToPlane(10, 50); !p.IsZero() {
		t.Errorf("reference maps to %v, want origin", p)
	}
}

func TestProjectionMatchesHaversineLocally(t *testing.T) {
	pr := NewProjection(116.4, 39.9)
	// ~1 km east at this latitude.
	p := pr.ToPlane(116.41, 39.9)
	h := HaversineDistance(116.4, 39.9, 116.41, 39.9)
	if math.Abs(p.Norm()-h) > 1 { // within 1 m over 1 km
		t.Errorf("planar %v vs haversine %v", p.Norm(), h)
	}
	// ~1 km north.
	p = pr.ToPlane(116.4, 39.91)
	h = HaversineDistance(116.4, 39.9, 116.4, 39.91)
	if math.Abs(p.Norm()-h) > 1 {
		t.Errorf("planar %v vs haversine %v", p.Norm(), h)
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// One degree of latitude ≈ 111.19 km on the sphere.
	d := HaversineDistance(0, 0, 0, 1)
	if math.Abs(d-111195) > 100 {
		t.Errorf("1° latitude = %v m, want ≈111195", d)
	}
	if d := HaversineDistance(5, 5, 5, 5); d != 0 {
		t.Errorf("zero distance = %v", d)
	}
	// Symmetric.
	a := HaversineDistance(10, 20, 30, 40)
	b := HaversineDistance(30, 40, 10, 20)
	if !almostEq(a, b, 1e-6) {
		t.Errorf("asymmetric haversine: %v vs %v", a, b)
	}
}
