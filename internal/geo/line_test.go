package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointLineDistance(t *testing.T) {
	cases := []struct {
		p, a, b Point
		want    float64
	}{
		{Pt(0, 5), Pt(-10, 0), Pt(10, 0), 5},
		{Pt(3, 3), Pt(0, 0), Pt(10, 0), 3},
		// Distance is to the infinite line, not the segment: a point far
		// past b still measures perpendicular distance.
		{Pt(100, 4), Pt(0, 0), Pt(1, 0), 4},
		// Degenerate: coincident endpoints degrade to point distance.
		{Pt(3, 4), Pt(0, 0), Pt(0, 0), 5},
		// Point on the line.
		{Pt(5, 5), Pt(0, 0), Pt(10, 10), 0},
	}
	for _, c := range cases {
		if got := PointLineDistance(c.p, c.a, c.b); !almostEq(got, c.want, 1e-9) {
			t.Errorf("PointLineDistance(%v,%v,%v) = %v, want %v", c.p, c.a, c.b, got, c.want)
		}
	}
}

func TestPointRayDistanceMatchesLineDistance(t *testing.T) {
	f := func(px, py, ox, oy, theta float64) bool {
		if bad(px) || bad(py) || bad(ox) || bad(oy) || bad(theta) {
			return true
		}
		p, o := Pt(px, py), Pt(ox, oy)
		b := o.Add(Dir(theta).Scale(1000))
		d1 := PointRayDistance(p, o, theta)
		d2 := PointLineDistance(p, o, b)
		return almostEq(d1, d2, 1e-6*(1+d1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointSegmentDistance(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	cases := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 3},   // interior projection
		{Pt(-3, 4), 5},  // clamps to a
		{Pt(13, 4), 5},  // clamps to b
		{Pt(10, 0), 0},  // endpoint
		{Pt(20, 0), 10}, // collinear past b
	}
	for _, c := range cases {
		if got := PointSegmentDistance(c.p, a, b); !almostEq(got, c.want, 1e-9) {
			t.Errorf("PointSegmentDistance(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Segment distance is never less than line distance.
	f := func(px, py, ax, ay, bx, by float64) bool {
		if bad(px) || bad(py) || bad(ax) || bad(ay) || bad(bx) || bad(by) {
			return true
		}
		p, a, b := Pt(px, py), Pt(ax, ay), Pt(bx, by)
		return PointSegmentDistance(p, a, b) >= PointLineDistance(p, a, b)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSideOfLine(t *testing.T) {
	if got := SideOfLine(Pt(0, 1), Pt(0, 0), 0); got != +1 {
		t.Errorf("left side = %d, want +1", got)
	}
	if got := SideOfLine(Pt(0, -1), Pt(0, 0), 0); got != -1 {
		t.Errorf("right side = %d, want −1", got)
	}
	if got := SideOfLine(Pt(5, 0), Pt(0, 0), 0); got != +1 {
		t.Errorf("on-line convention = %d, want +1", got)
	}
}

func TestProjectOnLine(t *testing.T) {
	if got := ProjectOnLine(Pt(3, 7), Pt(0, 0), 0); got != 3 {
		t.Errorf("ProjectOnLine = %v, want 3", got)
	}
	if got := ProjectOnLine(Pt(-2, 7), Pt(0, 0), 0); got != -2 {
		t.Errorf("ProjectOnLine = %v, want −2", got)
	}
}

func TestLineIntersection(t *testing.T) {
	// x-axis and the vertical line x=3.
	p, ok := LineIntersection(Pt(0, 0), 0, Pt(3, -5), math.Pi/2)
	if !ok || !p.Eq(Pt(3, 0)) {
		t.Errorf("intersection = %v ok=%v, want (3,0)", p, ok)
	}
	// Parallel lines do not intersect.
	if _, ok := LineIntersection(Pt(0, 0), 0, Pt(0, 1), 0); ok {
		t.Error("parallel lines should not intersect")
	}
	// Antiparallel (same line, opposite direction) is also parallel.
	if _, ok := LineIntersection(Pt(0, 0), 0, Pt(0, 1), math.Pi); ok {
		t.Error("antiparallel lines should not intersect")
	}
}

func TestSegmentLineIntersectionParams(t *testing.T) {
	t1, t2, ok := SegmentLineIntersectionParams(Pt(0, 0), 0, Pt(5, 5), -math.Pi/2)
	if !ok {
		t.Fatal("expected intersection")
	}
	// Intersection at (5, 0): 5 units along the x-axis; from (5,5) moving
	// at −π/2 (downward), 5 units.
	if !almostEq(t1, 5, 1e-9) || !almostEq(t2, 5, 1e-9) {
		t.Errorf("params = (%v, %v), want (5, 5)", t1, t2)
	}
	// The params reconstruct the same point from both lines.
	f := func(ox, oy, th1, qx, qy, th2 float64) bool {
		if bad(ox) || bad(oy) || bad(th1) || bad(qx) || bad(qy) || bad(th2) {
			return true
		}
		o1, o2 := Pt(ox, oy), Pt(qx, qy)
		t1, t2, ok := SegmentLineIntersectionParams(o1, th1, o2, th2)
		if !ok {
			return true
		}
		if math.Abs(t1) > 1e12 || math.Abs(t2) > 1e12 {
			return true // nearly parallel: numerically meaningless
		}
		p1 := o1.Add(Dir(th1).Scale(t1))
		p2 := o2.Add(Dir(th2).Scale(t2))
		return p1.Dist(p2) <= 1e-4*(1+math.Abs(t1)+math.Abs(t2))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxDistanceToLine(t *testing.T) {
	pts := []Point{Pt(1, 1), Pt(2, -3), Pt(3, 2)}
	idx, d := MaxDistanceToLine(pts, Pt(0, 0), Pt(10, 0))
	if idx != 1 || !almostEq(d, 3, 1e-12) {
		t.Errorf("MaxDistanceToLine = (%d, %v), want (1, 3)", idx, d)
	}
	if idx, d := MaxDistanceToLine(nil, Pt(0, 0), Pt(1, 0)); idx != -1 || d != 0 {
		t.Errorf("empty input = (%d, %v)", idx, d)
	}
}

func TestBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.Empty() {
		t.Error("EmptyBBox should be empty")
	}
	b.Extend(Pt(1, 2))
	b.Extend(Pt(-3, 5))
	if b.Empty() {
		t.Error("extended box should not be empty")
	}
	want := BBox{MinX: -3, MinY: 2, MaxX: 1, MaxY: 5}
	if b != want {
		t.Errorf("box = %+v, want %+v", b, want)
	}
	if !b.Contains(Pt(0, 3)) || b.Contains(Pt(2, 3)) {
		t.Error("Contains misclassifies")
	}
	c := b.Corners()
	if c[0] != Pt(-3, 2) || c[2] != Pt(1, 5) {
		t.Errorf("Corners = %v", c)
	}
}

func TestClipPolygonHalfPlane(t *testing.T) {
	square := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	// Keep the left of the upward line x=1: x ≤ 1.
	got := ClipPolygonHalfPlane(square, Pt(1, 0), math.Pi/2, true)
	for _, p := range got {
		if p.X > 1+1e-9 {
			t.Errorf("clipped vertex %v on wrong side", p)
		}
	}
	if len(got) != 4 {
		t.Errorf("clip returned %d vertices, want 4", len(got))
	}
	// Keep the right instead: x ≥ 1.
	got = ClipPolygonHalfPlane(square, Pt(1, 0), math.Pi/2, false)
	for _, p := range got {
		if p.X < 1-1e-9 {
			t.Errorf("clipped vertex %v on wrong side", p)
		}
	}
	// Clipping away everything yields empty.
	got = ClipPolygonHalfPlane(square, Pt(10, 0), math.Pi/2, false)
	if len(got) != 0 {
		t.Errorf("expected empty clip, got %v", got)
	}
	// Clipping with a line that misses the polygon keeps all 4 corners.
	got = ClipPolygonHalfPlane(square, Pt(-5, 0), math.Pi/2, false)
	if len(got) != 4 {
		t.Errorf("no-op clip returned %d vertices", len(got))
	}
	if got := ClipPolygonHalfPlane(nil, Pt(0, 0), 0, true); got != nil {
		t.Errorf("nil polygon should clip to nil, got %v", got)
	}
}
