package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	p, q := Pt(3, 4), Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(1, 1).Dist2(Pt(4, 5)); d != 25 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
}

func TestEqAndIsZero(t *testing.T) {
	if !Pt(1, 2).Eq(Pt(1+Eps/2, 2-Eps/2)) {
		t.Error("Eq should tolerate sub-Eps differences")
	}
	if Pt(1, 2).Eq(Pt(1.1, 2)) {
		t.Error("Eq should reject distinct points")
	}
	if !(Point{}).IsZero() {
		t.Error("zero value should be zero")
	}
	if Pt(0.1, 0).IsZero() {
		t.Error("0.1 is not zero")
	}
}

func TestUnit(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := (Point{}).Unit(); !got.IsZero() {
		t.Errorf("Unit of zero = %v", got)
	}
}

func TestRotate(t *testing.T) {
	got := Pt(1, 0).Rotate(math.Pi / 2)
	if !got.Eq(Pt(0, 1)) {
		t.Errorf("Rotate(π/2) = %v, want (0,1)", got)
	}
	got = Pt(1, 0).Rotate(math.Pi)
	if !got.Eq(Pt(-1, 0)) {
		t.Errorf("Rotate(π) = %v, want (−1,0)", got)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := Lerp(a, b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v", got)
	}
	if got := Lerp(a, b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestDir(t *testing.T) {
	if got := Dir(0); !got.Eq(Pt(1, 0)) {
		t.Errorf("Dir(0) = %v", got)
	}
	if got := Dir(math.Pi / 2); !got.Eq(Pt(0, 1)) {
		t.Errorf("Dir(π/2) = %v", got)
	}
}

func TestMidpoint(t *testing.T) {
	if got := Midpoint(Pt(0, 0), Pt(4, 6)); !got.Eq(Pt(2, 3)) {
		t.Errorf("Midpoint = %v", got)
	}
}

// Property: rotation preserves norms and pairwise distances.
func TestRotatePreservesDistance(t *testing.T) {
	f := func(ax, ay, bx, by, theta float64) bool {
		if bad(ax) || bad(ay) || bad(bx) || bad(by) || bad(theta) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		d0 := a.Dist(b)
		d1 := a.Rotate(theta).Dist(b.Rotate(theta))
		return almostEq(d0, d1, 1e-6*(1+d0))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unit always yields norm 1 for nonzero vectors.
func TestUnitNormProperty(t *testing.T) {
	f := func(x, y float64) bool {
		if bad(x) || bad(y) {
			return true
		}
		p := Pt(x, y)
		if p.Norm() <= Eps {
			return true
		}
		return almostEq(p.Unit().Norm(), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is antisymmetric, dot is symmetric.
func TestCrossDotSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if bad(ax) || bad(ay) || bad(bx) || bad(by) {
			return true
		}
		a, b := Pt(ax, ay), Pt(bx, by)
		return a.Cross(b) == -b.Cross(a) && a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// bad filters quick-generated values that make float comparisons
// meaningless.
func bad(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e9
}
