// Package geo provides the planar geometry kernel shared by every
// trajectory-simplification algorithm in this module: 2-D vectors, angle
// arithmetic on directed line segments, point-to-line distances, line
// intersection, and a local lon/lat projection.
//
// All coordinates are planar and expressed in meters, matching the paper's
// Euclidean distance model ("the distance of Pi to L ... is the Euclidean
// distance from Pi to the line PsPe"). Latitude/longitude data is converted
// at the module boundary with Projection.
package geo

import "math"

// Eps is the tolerance used for degenerate-geometry decisions (zero-length
// vectors, parallel lines). It is deliberately small relative to ζ values
// (meters); callers needing different tolerances compare explicitly.
const Eps = 1e-9

// Point is a location in the local planar frame, in meters.
type Point struct {
	X, Y float64
}

// Pt is shorthand for constructing a Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector p − q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q. Positive when q
// is counterclockwise from p.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector. Coordinates
// are meters in a local frame, so the plain sqrt is safe (no overflow
// concerns) and considerably faster than math.Hypot on hot paths.
func (p Point) Norm() float64 { return math.Sqrt(p.X*p.X + p.Y*p.Y) }

// Norm2 returns the squared Euclidean length of p viewed as a vector.
func (p Point) Norm2() float64 { return p.X*p.X + p.Y*p.Y }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q.
func (p Point) Dist2(q Point) float64 { return p.Sub(q).Norm2() }

// Eq reports whether p and q coincide within Eps in both coordinates.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// IsZero reports whether p is the zero vector within Eps.
func (p Point) IsZero() bool {
	return math.Abs(p.X) <= Eps && math.Abs(p.Y) <= Eps
}

// Unit returns the unit vector in the direction of p. The zero vector is
// returned unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n <= Eps {
		return Point{}
	}
	return Point{p.X / n, p.Y / n}
}

// Rotate returns p rotated counterclockwise by theta radians about the
// origin.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// Lerp linearly interpolates between p and q: t=0 yields p, t=1 yields q.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Dir returns the unit vector at angle theta (radians from the +x axis).
func Dir(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c, s}
}

// Midpoint returns the midpoint of p and q.
func Midpoint(p, q Point) Point {
	return Point{(p.X + q.X) / 2, (p.Y + q.Y) / 2}
}
