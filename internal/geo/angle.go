package geo

import "math"

// Angle conventions follow the paper (§3.1): a directed line segment
// L = PsPe has an angle L.θ ∈ [0, 2π) with the x-axis, and the included
// angle from L1 to L2 (same start point) is ∠(L1,L2) = L2.θ − L1.θ, which
// lies in (−2π, 2π).

// NormalizeAngle maps any angle onto [0, 2π).
func NormalizeAngle(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	if theta < 0 {
		theta += 2 * math.Pi
	}
	// math.Mod can return exactly 2π−ulp negatives folding to 2π; clamp.
	if theta >= 2*math.Pi {
		theta -= 2 * math.Pi
	}
	return theta
}

// NormalizeSigned maps any angle onto (−π, π].
func NormalizeSigned(theta float64) float64 {
	theta = math.Mod(theta, 2*math.Pi)
	switch {
	case theta > math.Pi:
		theta -= 2 * math.Pi
	case theta <= -math.Pi:
		theta += 2 * math.Pi
	}
	return theta
}

// AngleOf returns the angle of the vector v with the +x axis, in [0, 2π).
// The zero vector yields 0.
func AngleOf(v Point) float64 {
	if v.IsZero() {
		return 0
	}
	return NormalizeAngle(math.Atan2(v.Y, v.X))
}

// SegmentAngle returns the angle θ ∈ [0, 2π) of the directed segment from
// a to b. Coincident points yield 0.
func SegmentAngle(a, b Point) float64 { return AngleOf(b.Sub(a)) }

// IncludedAngle returns the included angle from a segment with angle
// theta1 to one with angle theta2, per the paper's definition:
// ∠(L1,L2) = L2.θ − L1.θ ∈ (−2π, 2π), with both inputs in [0, 2π).
func IncludedAngle(theta1, theta2 float64) float64 {
	return NormalizeAngle(theta2) - NormalizeAngle(theta1)
}

// AngleDiff returns the magnitude of the smallest rotation between two
// angles, in [0, π].
func AngleDiff(theta1, theta2 float64) float64 {
	return math.Abs(NormalizeSigned(theta2 - theta1))
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }
