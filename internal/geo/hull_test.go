package geo

import (
	"math"
	"math/rand"
	"testing"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []Point{
		Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2), // corners
		Pt(1, 1), Pt(0.5, 0.5), Pt(1.5, 0.3), // interior
	}
	hull := ConvexHullIndices(pts)
	if len(hull) != 4 {
		t.Fatalf("hull has %d vertices, want 4: %v", len(hull), hull)
	}
	seen := map[int]bool{}
	for _, id := range hull {
		seen[id] = true
	}
	for id := 0; id < 4; id++ {
		if !seen[id] {
			t.Errorf("corner %d missing from hull %v", id, hull)
		}
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if h := ConvexHullIndices(nil); h != nil {
		t.Errorf("empty: %v", h)
	}
	if h := ConvexHullIndices([]Point{Pt(1, 1)}); len(h) != 1 {
		t.Errorf("single: %v", h)
	}
	if h := ConvexHullIndices([]Point{Pt(1, 1), Pt(2, 2)}); len(h) != 2 {
		t.Errorf("pair: %v", h)
	}
	// All coincident.
	if h := ConvexHullIndices([]Point{Pt(1, 1), Pt(1, 1), Pt(1, 1)}); len(h) != 1 {
		t.Errorf("coincident: %v", h)
	}
	// Collinear run: hull is the two extremes.
	col := []Point{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3)}
	if h := ConvexHullIndices(col); len(h) != 2 {
		t.Errorf("collinear: %v", h)
	}
}

func TestConvexHullIsCCW(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Pt(r.Float64()*100, r.Float64()*100)
	}
	hull := ConvexHull(pts)
	if len(hull) < 3 {
		t.Fatalf("hull too small: %d", len(hull))
	}
	// Signed area must be positive for CCW.
	var area float64
	for i := range hull {
		j := (i + 1) % len(hull)
		area += hull[i].Cross(hull[j])
	}
	if area <= 0 {
		t.Errorf("hull not counterclockwise (area %v)", area)
	}
}

// The property the DP speedup relies on: the farthest point from any line
// is a hull vertex.
func TestFarthestPointIsOnHull(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 50+r.Intn(100))
		for i := range pts {
			pts[i] = Pt(r.Float64()*1000, r.Float64()*1000)
		}
		hullSet := map[int]bool{}
		for _, id := range ConvexHullIndices(pts) {
			hullSet[id] = true
		}
		a := Pt(r.Float64()*1000, r.Float64()*1000)
		b := Pt(r.Float64()*1000, r.Float64()*1000)
		best, bestD := -1, -1.0
		for i, p := range pts {
			if d := PointLineDistance(p, a, b); d > bestD {
				best, bestD = i, d
			}
		}
		if !hullSet[best] {
			// Ties can put an equal-distance interior point first; accept
			// if a hull vertex achieves the same distance.
			ok := false
			for id := range hullSet {
				if math.Abs(PointLineDistance(pts[id], a, b)-bestD) < 1e-9 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("trial %d: farthest point %d not on hull", trial, best)
			}
		}
	}
}

// Every input point lies inside or on the hull.
func TestHullContainsAllPoints(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Pt(r.NormFloat64()*50, r.NormFloat64()*50)
	}
	hull := ConvexHull(pts)
	for _, p := range pts {
		for i := range hull {
			j := (i + 1) % len(hull)
			if hull[j].Sub(hull[i]).Cross(p.Sub(hull[i])) < -1e-9 {
				t.Fatalf("point %v outside hull edge %d", p, i)
			}
		}
	}
}
