package geo

import "sort"

// ConvexHullIndices returns the indices of pts forming the convex hull in
// counterclockwise order (Andrew's monotone chain). Collinear points on
// hull edges are excluded. Inputs with fewer than three distinct points
// return all distinct point indices.
//
// The useful property for line simplification: the point of a set farthest
// from any line is always a hull vertex, so a max-distance query needs
// only the hull (Hershberger & Snoeyink's speedup of Douglas-Peucker
// builds on exactly this).
func ConvexHullIndices(pts []Point) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.X != pb.X {
			return pa.X < pb.X
		}
		return pa.Y < pb.Y
	})
	// Deduplicate coincident points.
	uniq := idx[:0]
	for i, id := range idx {
		if i == 0 || !pts[id].Eq(pts[uniq[len(uniq)-1]]) {
			uniq = append(uniq, id)
		}
	}
	idx = uniq
	if len(idx) < 3 {
		out := make([]int, len(idx))
		copy(out, idx)
		return out
	}
	cross := func(o, a, b int) float64 {
		return pts[a].Sub(pts[o]).Cross(pts[b].Sub(pts[o]))
	}
	hull := make([]int, 0, 2*len(idx))
	// Lower hull.
	for _, id := range idx {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], id) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(idx) - 2; i >= 0; i-- {
		id := idx[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], id) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, id)
	}
	return hull[:len(hull)-1] // last point repeats the first
}

// ConvexHull returns the hull vertices themselves, counterclockwise.
func ConvexHull(pts []Point) []Point {
	idx := ConvexHullIndices(pts)
	out := make([]Point, len(idx))
	for i, id := range idx {
		out[i] = pts[id]
	}
	return out
}
