package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{2 * math.Pi, 0},
		{-math.Pi / 2, 3 * math.Pi / 2},
		{5 * math.Pi, math.Pi},
		{-7 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeAngle(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeAngle(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeAngleRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		if bad(x) {
			return true
		}
		a := NormalizeAngle(x)
		return a >= 0 && a < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeSigned(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{-math.Pi, math.Pi},
		{3 * math.Pi / 2, -math.Pi / 2},
		{-3 * math.Pi / 2, math.Pi / 2},
	}
	for _, c := range cases {
		if got := NormalizeSigned(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("NormalizeSigned(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNormalizeSignedRangeProperty(t *testing.T) {
	f := func(x float64) bool {
		if bad(x) {
			return true
		}
		a := NormalizeSigned(x)
		return a > -math.Pi-1e-12 && a <= math.Pi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleOf(t *testing.T) {
	cases := []struct {
		v    Point
		want float64
	}{
		{Pt(1, 0), 0},
		{Pt(0, 1), math.Pi / 2},
		{Pt(-1, 0), math.Pi},
		{Pt(0, -1), 3 * math.Pi / 2},
		{Pt(1, 1), math.Pi / 4},
		{Point{}, 0},
	}
	for _, c := range cases {
		if got := AngleOf(c.v); !almostEq(got, c.want, 1e-12) {
			t.Errorf("AngleOf(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestSegmentAngle(t *testing.T) {
	if got := SegmentAngle(Pt(1, 1), Pt(2, 2)); !almostEq(got, math.Pi/4, 1e-12) {
		t.Errorf("SegmentAngle = %v", got)
	}
}

// The paper's Figure 2 worked examples: ∠(L1,L2) = −19π/12 in case (1) and
// 3π/4 in case (2).
func TestIncludedAnglePaperExamples(t *testing.T) {
	// Case (1): L1 at 7π/12... reconstruct from the answer: choose
	// θ1 = 19π/12 + θ2 − 2π·k such that the included angle is −19π/12.
	theta1 := NormalizeAngle(Radians(100)) // arbitrary L1
	theta2 := NormalizeAngle(theta1 - 19*math.Pi/12)
	got := IncludedAngle(theta1, theta2)
	// θ2−θ1 computed in [0,2π) space: −19π/12 + 2π = 5π/12 when θ2 wraps.
	if !(got > -2*math.Pi && got < 2*math.Pi) {
		t.Fatalf("included angle out of (−2π, 2π): %v", got)
	}
	// The two representations differ by 2π; both describe the same turn.
	if !almostEq(NormalizeAngle(got), NormalizeAngle(-19*math.Pi/12), 1e-9) {
		t.Errorf("case 1: got %v, want −19π/12 mod 2π", got)
	}

	if got := IncludedAngle(0, 3*math.Pi/4); !almostEq(got, 3*math.Pi/4, 1e-12) {
		t.Errorf("case 2: got %v, want 3π/4", got)
	}
}

func TestIncludedAngleRangeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		if bad(a) || bad(b) {
			return true
		}
		d := IncludedAngle(a, b)
		return d > -2*math.Pi && d < 2*math.Pi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, math.Pi / 2, math.Pi / 2},
		{0, 3 * math.Pi / 2, math.Pi / 2}, // wraps the short way
		{math.Pi / 4, 7 * math.Pi / 4, math.Pi / 2},
		{0, math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := AngleDiff(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("AngleDiff(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDegreesRadiansRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if bad(x) {
			return true
		}
		return almostEq(Degrees(Radians(x)), x, 1e-9*(1+math.Abs(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
