package geo

import "math"

// EarthRadiusMeters is the mean Earth radius used by the projection and by
// HaversineDistance.
const EarthRadiusMeters = 6371000.0

// Projection converts WGS84 lon/lat coordinates to a local planar frame in
// meters using an equirectangular projection about a reference point. For
// city-scale trajectories the distortion is far below GPS noise, which is
// why LS implementations (including the evaluation code of the paper's
// comparators) commonly use it.
type Projection struct {
	// RefLon, RefLat anchor the local frame; (RefLon, RefLat) maps to (0,0).
	RefLon, RefLat float64
	cosLat         float64
}

// NewProjection returns a projection anchored at (refLon, refLat) degrees.
func NewProjection(refLon, refLat float64) *Projection {
	return &Projection{
		RefLon: refLon,
		RefLat: refLat,
		cosLat: math.Cos(Radians(refLat)),
	}
}

// ToPlane converts lon/lat in degrees to planar meters.
func (pr *Projection) ToPlane(lon, lat float64) Point {
	return Point{
		X: Radians(lon-pr.RefLon) * pr.cosLat * EarthRadiusMeters,
		Y: Radians(lat-pr.RefLat) * EarthRadiusMeters,
	}
}

// ToLonLat converts planar meters back to lon/lat degrees.
func (pr *Projection) ToLonLat(p Point) (lon, lat float64) {
	lon = pr.RefLon + Degrees(p.X/(EarthRadiusMeters*pr.cosLat))
	lat = pr.RefLat + Degrees(p.Y/EarthRadiusMeters)
	return lon, lat
}

// HaversineDistance returns the great-circle distance in meters between two
// lon/lat points in degrees.
func HaversineDistance(lon1, lat1, lon2, lat2 float64) float64 {
	phi1, phi2 := Radians(lat1), Radians(lat2)
	dPhi := phi2 - phi1
	dLam := Radians(lon2 - lon1)
	a := math.Sin(dPhi/2)*math.Sin(dPhi/2) +
		math.Cos(phi1)*math.Cos(phi2)*math.Sin(dLam/2)*math.Sin(dLam/2)
	return 2 * EarthRadiusMeters * math.Asin(math.Min(1, math.Sqrt(a)))
}
