package core

import (
	"math"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// PatchStats reports OPERB-A's trajectory-interpolation activity. The
// paper's patching ratio (Exp-4.1) is Patched/Anomalous.
type PatchStats struct {
	// Anomalous counts line segments that represented only their own two
	// end points when they were determined (before interpolation), the
	// paper's Na.
	Anomalous int
	// Patched counts anomalous segments eliminated by interpolating a
	// patch point, the paper's Np.
	Patched int
}

// Ratio returns Patched/Anomalous, or 0 when no anomalous segment was seen.
func (s PatchStats) Ratio() float64 {
	if s.Anomalous == 0 {
		return 0
	}
	return float64(s.Patched) / float64(s.Anomalous)
}

// AggressiveEncoder is the streaming OPERB-A algorithm (§5): OPERB plus the
// lazy output policy and patch-point interpolation. Determined segments are
// withheld (at most two at a time) until the following segment's direction
// is known; when the middle segment is anomalous and the §5.1 conditions
// hold, the surrounding lines are extended to their intersection G, the
// first segment is emitted as PsG, and GPt replaces the following segment.
//
// Angles of emitted lines are never changed, so OPERB-A inherits OPERB's
// error bound, remains one-pass, and keeps O(1) space (the queue holds at
// most two segments).
type AggressiveEncoder struct {
	enc   *Encoder
	zeta  float64
	gamma float64

	queue   []traj.Segment // 0: previous segment; 1: pending anomalous segment
	stats   PatchStats
	scratch []traj.Segment
}

// NewAggressiveEncoder returns a streaming OPERB-A encoder with error bound
// zeta (meters). opts.Gamma controls the included-angle restriction γm.
func NewAggressiveEncoder(zeta float64, opts Options) (*AggressiveEncoder, error) {
	enc, err := NewEncoder(zeta, opts)
	if err != nil {
		return nil, err
	}
	return &AggressiveEncoder{
		enc:   enc,
		zeta:  zeta,
		gamma: enc.opts.Gamma,
		queue: make([]traj.Segment, 0, 2),
	}, nil
}

// Stats returns the underlying OPERB counters.
func (a *AggressiveEncoder) Stats() Stats { return a.enc.Stats() }

// PatchStats returns interpolation counters.
func (a *AggressiveEncoder) PatchStats() PatchStats { return a.stats }

// Push feeds the next point; returned segments are final (already patched).
// The returned slice is reused by subsequent calls.
func (a *AggressiveEncoder) Push(p traj.Point) []traj.Segment {
	a.scratch = a.scratch[:0]
	for _, s := range a.enc.Push(p) {
		a.route(s)
	}
	return a.scratch
}

// Flush drains the underlying encoder and the lazy-output queue.
func (a *AggressiveEncoder) Flush() []traj.Segment {
	a.scratch = a.scratch[:0]
	for _, s := range a.enc.Flush() {
		a.route(s)
	}
	for _, s := range a.queue {
		a.out(s)
	}
	a.queue = a.queue[:0]
	return a.scratch
}

func (a *AggressiveEncoder) out(s traj.Segment) { a.scratch = append(a.scratch, s) }

// route applies the lazy output policy of §5.2 to one determined segment.
func (a *AggressiveEncoder) route(s traj.Segment) {
	if s.Anomalous() {
		a.stats.Anomalous++
	}
	switch len(a.queue) {
	case 0:
		a.queue = append(a.queue, s)
	case 1:
		if s.Anomalous() {
			// Hold both: the next determined segment decides the patch.
			a.queue = append(a.queue, s)
			return
		}
		a.out(a.queue[0])
		a.queue[0] = s
	default: // [prev, anomalous]
		prev, anom := a.queue[0], a.queue[1]
		if g, ok := a.patchPoint(prev, anom, s); ok {
			a.stats.Patched++
			ext := prev
			ext.End = g
			ext.VirtualEnd = true
			if anom.StartIdx > ext.EndIdx {
				// The anomalous segment's start point lies on prev's line.
				ext.EndIdx = anom.StartIdx
			}
			a.out(ext)
			s.Start = g
			s.VirtualStart = true
		} else {
			a.out(prev)
			a.out(anom)
		}
		a.queue = a.queue[:1]
		a.queue[0] = s
	}
}

// patchPoint computes the patch point G w.r.t. the anomalous segment anom,
// checking the three conditions of §5.1:
//
//  1. G lies on the line of prev (forward from its start) and on the line
//     of next (behind its start, so that G→next.Start has next's angle);
//  2. |PsG| ≥ |PsPe| − ζ/2, where PsPe is prev;
//  3. the included angle from prev to next stays at least γm away from a
//     reversal: |∠| ≤ π − γm.
func (a *AggressiveEncoder) patchPoint(prev, anom, next traj.Segment) (traj.Point, bool) {
	lenPrev := prev.Length()
	lenNext := next.Length()
	if lenPrev <= geo.Eps || lenNext <= geo.Eps {
		return traj.Point{}, false
	}
	thetaPrev := prev.Theta()
	thetaNext := next.Theta()
	// Condition (3).
	if geo.AngleDiff(thetaPrev, thetaNext) > math.Pi-a.gamma+geo.Eps {
		return traj.Point{}, false
	}
	t1, t2, ok := geo.SegmentLineIntersectionParams(prev.Start.P(), thetaPrev, next.Start.P(), thetaNext)
	if !ok {
		return traj.Point{}, false // parallel lines
	}
	// Condition (2): G does not retract prev's end by more than ζ/2, and
	// lies forward of prev's start.
	if t1 < lenPrev-a.zeta/2 || t1 <= geo.Eps {
		return traj.Point{}, false
	}
	// Condition (1), direction part: G precedes next's start on its line.
	if t2 > geo.Eps {
		return traj.Point{}, false
	}
	g := prev.Start.P().Add(geo.Dir(thetaPrev).Scale(t1))
	// The patch point replaces the anomalous corner; give it the midpoint
	// of the corner's timestamps so decoded trajectories stay monotone.
	gt := anom.Start.T + (anom.End.T-anom.Start.T)/2
	return traj.Point{X: g.X, Y: g.Y, T: gt}, true
}

// SimplifyAggressive runs OPERB-A with DefaultOptions over a trajectory.
func SimplifyAggressive(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	pw, _, err := SimplifyAggressiveOpts(t, zeta, DefaultOptions())
	return pw, err
}

// SimplifyAggressiveOpts runs OPERB-A with explicit options and returns the
// patching statistics alongside the representation.
func SimplifyAggressiveOpts(t traj.Trajectory, zeta float64, opts Options) (traj.Piecewise, PatchStats, error) {
	a, err := NewAggressiveEncoder(zeta, opts)
	if err != nil {
		return nil, PatchStats{}, err
	}
	out := make(traj.Piecewise, 0, 16)
	for _, p := range t {
		out = append(out, a.Push(p)...)
	}
	out = append(out, a.Flush()...)
	return out, a.PatchStats(), nil
}
