package core

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// optionCombos enumerates all 32 on/off combinations of the five §4.4
// optimization techniques.
func optionCombos() []Options {
	out := make([]Options, 0, 32)
	for mask := 0; mask < 32; mask++ {
		out = append(out, Options{
			FirstActive:   mask&1 != 0,
			AdjustedBound: mask&2 != 0,
			AngleTighten:  mask&4 != 0,
			MissingZones:  mask&8 != 0,
			Absorb:        mask&16 != 0,
		})
	}
	return out
}

func testTrajectories() map[string]traj.Trajectory {
	return map[string]traj.Trajectory{
		"line":        gen.Line(200, 15),
		"noisy-line":  gen.NoisyLine(300, 20, 5, 11),
		"circle":      gen.Circle(300, 200, 0.05),
		"zigzag":      gen.Zigzag(300, 10, 60, 7),
		"spiral":      gen.Spiral(300, 5, 3, 0.15),
		"random-walk": gen.RandomWalk(400, 25, 3),
		"stationary":  gen.Stationary(200, 2, 5),
		"turns":       gen.SuddenTurns(300, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 400, 21),
		"sercar":      gen.One(gen.SerCar, 400, 22),
		"truck":       gen.One(gen.Truck, 400, 23),
		"geolife":     gen.One(gen.GeoLife, 400, 24),
	}
}

// The central invariant: OPERB is error bounded by ζ for every option
// combination on every workload shape.
func TestSimplifyErrorBoundAllOptionCombos(t *testing.T) {
	zeta := 40.0
	for name, tr := range testTrajectories() {
		for _, opts := range optionCombos() {
			pw, err := SimplifyOpts(tr, zeta, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s opts=%+v: %v", name, opts, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s opts=%+v: invalid output: %v", name, opts, err)
			}
		}
	}
}

// The bound must hold across ζ scales, not just one magnitude.
func TestSimplifyErrorBoundAcrossEpsilons(t *testing.T) {
	tr := gen.RandomWalk(600, 30, 17)
	for _, zeta := range []float64{0.5, 5, 10, 20, 40, 80, 160, 1000} {
		pw, err := Simplify(tr, zeta)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

func TestStraightLineCompressesToOneSegment(t *testing.T) {
	tr := gen.Line(1000, 10)
	pw, err := Simplify(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Fatalf("collinear points produced %d segments, want 1", len(pw))
	}
	s := pw[0]
	if s.StartIdx != 0 || s.EndIdx != len(tr)-1 {
		t.Errorf("segment range [%d..%d], want [0..%d]", s.StartIdx, s.EndIdx, len(tr)-1)
	}
}

func TestStreamingMatchesBatch(t *testing.T) {
	tr := gen.One(gen.SerCar, 500, 99)
	for _, opts := range []Options{DefaultOptions(), RawOptions()} {
		want, err := SimplifyOpts(tr, 30, opts)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewEncoder(30, opts)
		if err != nil {
			t.Fatal(err)
		}
		var got traj.Piecewise
		for _, p := range tr {
			got = append(got, e.Push(p)...)
		}
		got = append(got, e.Flush()...)
		if len(got) != len(want) {
			t.Fatalf("streaming %d segments, batch %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("segment %d: streaming %v, batch %v", i, got[i], want[i])
			}
		}
	}
}

// Every source index must be represented by at least one segment, with the
// first range starting at 0 and the last ending at n−1.
func TestRangesCoverEveryPoint(t *testing.T) {
	for name, tr := range testTrajectories() {
		pw, err := Simplify(tr, 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) == 0 {
			t.Fatalf("%s: empty output", name)
		}
		if pw[0].StartIdx != 0 {
			t.Errorf("%s: first range starts at %d", name, pw[0].StartIdx)
		}
		covered := make([]bool, len(tr))
		for _, s := range pw {
			for i := s.StartIdx; i <= s.EndIdx && i < len(tr); i++ {
				covered[i] = true
			}
		}
		for i, c := range covered {
			if !c {
				t.Fatalf("%s: point %d uncovered", name, i)
			}
		}
		last := pw[len(pw)-1]
		if last.EndIdx != len(tr)-1 {
			t.Errorf("%s: last range ends at %d, want %d", name, last.EndIdx, len(tr)-1)
		}
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		tr := gen.Line(n, 10)
		pw, err := Simplify(tr, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) != 0 {
			t.Errorf("n=%d: got %d segments, want 0", n, len(pw))
		}
	}
	tr := gen.Line(2, 10)
	pw, err := Simplify(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 || pw[0].StartIdx != 0 || pw[0].EndIdx != 1 {
		t.Errorf("n=2: got %v", pw)
	}
}

func TestBadParameters(t *testing.T) {
	for _, zeta := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(10, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: err = %v, want ErrBadEpsilon", zeta, err)
		}
	}
	if _, err := NewEncoder(1, Options{Gamma: 4}); !errors.Is(err, ErrBadGamma) {
		t.Errorf("gamma=4: %v", err)
	}
	if _, err := NewEncoder(1, Options{MaxSegmentPoints: -1}); !errors.Is(err, ErrBadCap) {
		t.Errorf("cap=−1: %v", err)
	}
}

func TestForceTailEndsAtLastPoint(t *testing.T) {
	// A long straight run followed by a couple of points that stay
	// inactive (within ζ/4 of the fitted length) leaves a tail.
	tr := gen.One(gen.Taxi, 300, 5)
	opts := DefaultOptions()
	opts.ForceTail = true
	pw, err := SimplifyOpts(tr, 40, opts)
	if err != nil {
		t.Fatal(err)
	}
	last := pw[len(pw)-1]
	if last.EndIdx != len(tr)-1 {
		t.Fatalf("last range ends at %d, want %d", last.EndIdx, len(tr)-1)
	}
	if last.End != tr[len(tr)-1] {
		t.Errorf("ForceTail: representation ends at %v, want %v", last.End, tr[len(tr)-1])
	}
	if err := metrics.VerifyBound(tr, pw, 40); err != nil {
		t.Errorf("ForceTail violates bound: %v", err)
	}
}

func TestStatsCounters(t *testing.T) {
	tr := gen.One(gen.SerCar, 300, 42)
	e, err := NewEncoder(20, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var segs int
	for _, p := range tr {
		segs += len(e.Push(p))
	}
	segs += len(e.Flush())
	st := e.Stats()
	if st.PointsIn != len(tr) {
		t.Errorf("PointsIn = %d, want %d", st.PointsIn, len(tr))
	}
	if st.SegmentsOut != segs {
		t.Errorf("SegmentsOut = %d, emitted %d", st.SegmentsOut, segs)
	}
}

func TestMaxSegmentPointsCap(t *testing.T) {
	tr := gen.Stationary(1000, 1, 9) // parked vehicle: nothing ever activates
	opts := RawOptions()
	opts.MaxSegmentPoints = 100
	pw, err := SimplifyOpts(tr, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The (i−s) ≤ cap guard bounds how many points a single *fit* may
	// consume (Lemma 4's validity window).
	if len(pw) < 9 {
		t.Errorf("cap=100 over 1000 points produced %d segments, want ≥9", len(pw))
	}
	for _, s := range pw {
		if s.PointCount() > 105 {
			t.Errorf("segment represents %d points, cap 100", s.PointCount())
		}
	}
	if err := metrics.VerifyBound(tr, pw, 50); err != nil {
		t.Error(err)
	}
}

func TestMaxSegmentPointsCapWithAbsorb(t *testing.T) {
	// With optimization (5) on, a stationary cloud may legally collapse to
	// very few segments: absorption uses the exact d ≤ ζ check against a
	// concrete line, not the fitting function, so the Lemma-4 cap does not
	// apply to absorbed points. The bound must still hold.
	tr := gen.Stationary(1000, 1, 9)
	opts := DefaultOptions()
	opts.MaxSegmentPoints = 100
	pw, err := SimplifyOpts(tr, 50, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.VerifyBound(tr, pw, 50); err != nil {
		t.Error(err)
	}
	if len(pw) == 0 {
		t.Error("no output segments")
	}
}

// The §4.4 techniques exist to improve compression: with everything on,
// the segment count should not exceed the raw algorithm's on realistic
// workloads (allowing a small tolerance for individual trajectories).
func TestOptimizationsImproveRatio(t *testing.T) {
	var rawSegs, optSegs int
	for seed := uint64(0); seed < 10; seed++ {
		tr := gen.One(gen.SerCar, 600, 100+seed)
		raw, err := SimplifyOpts(tr, 40, RawOptions())
		if err != nil {
			t.Fatal(err)
		}
		opt, err := SimplifyOpts(tr, 40, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rawSegs += len(raw)
		optSegs += len(opt)
	}
	if optSegs > rawSegs {
		t.Errorf("optimized OPERB used %d segments vs %d raw; expected improvement", optSegs, rawSegs)
	}
	t.Logf("segments: raw=%d optimized=%d (%.1f%%)", rawSegs, optSegs, 100*float64(optSegs)/float64(rawSegs))
}

// Each individual optimization must keep the bound when toggled alone
// at several error bounds (regression guard for opts 2/3 interplay).
func TestSingleOptimizationBounds(t *testing.T) {
	tr := gen.RandomWalk(800, 35, 77)
	for bit := 0; bit < 5; bit++ {
		opts := Options{
			FirstActive:   bit == 0,
			AdjustedBound: bit == 1,
			AngleTighten:  bit == 2,
			MissingZones:  bit == 3,
			Absorb:        bit == 4,
		}
		for _, zeta := range []float64{10, 40, 120} {
			pw, err := SimplifyOpts(tr, zeta, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("opt bit %d ζ=%v: %v", bit, zeta, err)
			}
		}
	}
}

// Figure 9's scenario: a trajectory with crossroad turns produces
// anomalous segments under OPERB (they are what OPERB-A later patches).
func TestAnomalousSegmentsAppearAtCrossroads(t *testing.T) {
	tr := gen.SuddenTurns(200, 30, 7, 3)
	pw, err := Simplify(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	anomalous := 0
	for _, s := range pw {
		if s.Anomalous() {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Error("expected anomalous segments on a crossroad-heavy trajectory")
	}
}

func TestPushReturnsReusedSlice(t *testing.T) {
	// Documented contract: the Push/Flush result is only valid until the
	// next call. Verify the encoder actually reuses the buffer so callers
	// notice if they depend on it.
	e, err := NewEncoder(5, RawOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Zigzag(100, 10, 50, 3)
	var first []traj.Segment
	for _, p := range tr {
		if out := e.Push(p); len(out) > 0 && first == nil {
			first = out
		}
	}
	if first == nil {
		t.Skip("no mid-stream segment emitted")
	}
	_ = e.Flush()
	// No assertion on contents: this is a usage demonstration; the
	// streaming-vs-batch test covers correctness.
}

func ExampleSimplify() {
	tr := traj.Trajectory{
		{X: 0, Y: 0, T: 0},
		{X: 10, Y: 0.1, T: 1000},
		{X: 20, Y: -0.1, T: 2000},
		{X: 30, Y: 0, T: 3000},
	}
	pw, _ := Simplify(tr, 1.0)
	fmt.Println(len(pw), "segment")
	// Output: 1 segment
}
