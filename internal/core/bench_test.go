package core

import (
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

var sinkPW traj.Piecewise

func benchTrajectory(b *testing.B, n int) traj.Trajectory {
	b.Helper()
	return gen.One(gen.SerCar, n, 7)
}

func BenchmarkSimplify(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1_000, 10_000, 100_000} {
		tr := benchTrajectory(b, n)
		b.Run(itoa(n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				pw, err := Simplify(tr, 40)
				if err != nil {
					b.Fatal(err)
				}
				sinkPW = pw
			}
		})
	}
}

func BenchmarkSimplifyRaw(b *testing.B) {
	b.ReportAllocs()
	tr := benchTrajectory(b, 10_000)
	for i := 0; i < b.N; i++ {
		pw, err := SimplifyOpts(tr, 40, RawOptions())
		if err != nil {
			b.Fatal(err)
		}
		sinkPW = pw
	}
}

func BenchmarkSimplifyAggressive(b *testing.B) {
	b.ReportAllocs()
	tr := benchTrajectory(b, 10_000)
	for i := 0; i < b.N; i++ {
		pw, err := SimplifyAggressive(tr, 40)
		if err != nil {
			b.Fatal(err)
		}
		sinkPW = pw
	}
}

// Linear scaling evidence: ns/point should stay flat across sizes (read
// the per-size ns/op divided by SetBytes in BenchmarkSimplify output).
func BenchmarkFitterUpdate(b *testing.B) {
	b.ReportAllocs()
	f := &fitter{zeta: 40, opts: DefaultOptions()}
	f.reset(gen.Line(2, 1)[0].P())
	tr := gen.One(gen.Taxi, 4096, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1024 == 0 {
			f.reset(tr[0].P())
		}
		f.update(tr[i%4096].P())
	}
}

func itoa(n int) string {
	switch n {
	case 1_000:
		return "1k"
	case 10_000:
		return "10k"
	case 100_000:
		return "100k"
	}
	return "n"
}
