package core

import (
	"testing"
	"testing/quick"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// The alternative (linear) fitting function keeps the error bound on every
// workload and option combination.
func TestLinearFittingErrorBound(t *testing.T) {
	for name, tr := range testTrajectories() {
		for _, base := range []Options{DefaultOptions(), RawOptions()} {
			opts := base
			opts.LinearFitting = true
			pw, err := SimplifyOpts(tr, 40, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, 40); err != nil {
				t.Errorf("%s: %v", name, err)
			}
			apw, _, err := SimplifyAggressiveOpts(tr, 40, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, apw, 40); err != nil {
				t.Errorf("%s aggressive: %v", name, err)
			}
		}
	}
}

// Linear fitting rotates less aggressively; on smooth workloads it should
// stay within a modest factor of the paper's fitting function.
func TestLinearFittingRatioPenaltyIsBounded(t *testing.T) {
	var paperSegs, linearSegs int
	for seed := uint64(0); seed < 8; seed++ {
		tr := gen.One(gen.SerCar, 600, 500+seed)
		a, err := SimplifyOpts(tr, 40, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		opts := DefaultOptions()
		opts.LinearFitting = true
		b, err := SimplifyOpts(tr, 40, opts)
		if err != nil {
			t.Fatal(err)
		}
		paperSegs += len(a)
		linearSegs += len(b)
	}
	if float64(linearSegs) > 1.5*float64(paperSegs) {
		t.Errorf("linear fitting %d segments vs %d: penalty too large", linearSegs, paperSegs)
	}
	t.Logf("segments: arcsin=%d linear=%d", paperSegs, linearSegs)
}

// quick.Check-driven invariant: arbitrary bounded random polylines are
// always error bounded and structurally valid under both encoders.
func TestQuickRandomPolylinesBounded(t *testing.T) {
	type step struct{ DX, DY int16 }
	f := func(steps []step, zetaSel uint8) bool {
		if len(steps) < 2 {
			return true
		}
		if len(steps) > 300 {
			steps = steps[:300]
		}
		zeta := []float64{5, 25, 80}[int(zetaSel)%3]
		tr := make(traj.Trajectory, len(steps))
		var x, y float64
		for i, s := range steps {
			x += float64(s.DX) / 100
			y += float64(s.DY) / 100
			tr[i] = traj.Point{X: x, Y: y, T: int64(i) * 1000}
		}
		pw, err := Simplify(tr, zeta)
		if err != nil || metrics.VerifyBound(tr, pw, zeta) != nil || pw.Validate() != nil {
			return false
		}
		apw, err := SimplifyAggressive(tr, zeta)
		if err != nil || metrics.VerifyBound(tr, apw, zeta) != nil || apw.Validate() != nil {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Steady-state streaming must not allocate per point: the one-pass O(1)
// space claim, checked with the allocator.
func TestEncoderAllocFree(t *testing.T) {
	tr := gen.One(gen.SerCar, 20_000, 77)
	enc, err := NewEncoder(40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Warm up so the scratch buffer reaches steady capacity.
	for _, p := range tr[:5000] {
		enc.Push(p)
	}
	i := 5000
	avg := testing.AllocsPerRun(10_000, func() {
		enc.Push(tr[i%len(tr)])
		i++
	})
	if avg > 0.01 {
		t.Errorf("Push allocates %.4f allocs/op in steady state", avg)
	}
}

func TestAggressiveEncoderAllocFree(t *testing.T) {
	tr := gen.One(gen.SerCar, 20_000, 78)
	enc, err := NewAggressiveEncoder(40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr[:5000] {
		enc.Push(p)
	}
	i := 5000
	avg := testing.AllocsPerRun(10_000, func() {
		enc.Push(tr[i%len(tr)])
		i++
	})
	if avg > 0.01 {
		t.Errorf("Push allocates %.4f allocs/op in steady state", avg)
	}
}

// O(1) space in observable terms: the lazy-output queue never exceeds two
// pending segments regardless of input length.
func TestAggressiveQueueBounded(t *testing.T) {
	tr := gen.SuddenTurns(5000, 30, 6, 3)
	enc, err := NewAggressiveEncoder(15, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr {
		enc.Push(p)
		if len(enc.queue) > 2 {
			t.Fatalf("lazy queue grew to %d", len(enc.queue))
		}
	}
}
