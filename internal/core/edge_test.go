package core

import (
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// Chained patching: consecutive anomalous segments collapse one after
// another (the §5.2 lazy policy keeps the patched G→Pt segment as the new
// "previous", so it can host the next patch).
func TestChainedPatches(t *testing.T) {
	// A staircase with treads shorter than what a single segment can hold:
	// every corner is cut mid-interval, producing runs of anomalous
	// segments.
	var tr traj.Trajectory
	x, y := 0.0, 0.0
	dirs := []struct{ dx, dy float64 }{{30, 0}, {0, 30}}
	for i := 0; i < 120; i++ {
		d := dirs[(i/2)%2]
		x += d.dx
		y += d.dy
		tr = append(tr, traj.Point{X: x, Y: y, T: int64(i) * 1000})
	}
	pw, st, err := SimplifyAggressiveOpts(tr, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.VerifyBound(tr, pw, 10); err != nil {
		t.Fatal(err)
	}
	if st.Patched < 2 {
		t.Skipf("staircase produced only %d patches (Na=%d)", st.Patched, st.Anomalous)
	}
	// Consecutive virtual joints prove chains occurred.
	chained := false
	for i := 1; i < len(pw); i++ {
		if pw[i].VirtualStart && pw[i].VirtualEnd {
			chained = true
		}
	}
	if !chained {
		t.Logf("no chained patch on this input (patched=%d) — acceptable but unexpected", st.Patched)
	}
}

// Inputs a production ingest tier will eventually see must not panic and,
// when finite, must stay bounded.
func TestHostileInputsNoPanic(t *testing.T) {
	hostile := []traj.Trajectory{
		// Huge coordinates.
		{{X: 1e12, Y: -1e12, T: 0}, {X: 1e12 + 5, Y: -1e12, T: 1000}, {X: 1e12 + 9, Y: -1e12 + 4, T: 2000}},
		// Tiny steps far below ζ.
		{{X: 0, Y: 0, T: 0}, {X: 1e-9, Y: 0, T: 1000}, {X: 2e-9, Y: 1e-9, T: 2000}},
		// Exact duplicates of the same position.
		{{X: 5, Y: 5, T: 0}, {X: 5, Y: 5, T: 1000}, {X: 5, Y: 5, T: 2000}, {X: 50, Y: 5, T: 3000}},
		// Alternating forward/backward along one line.
		{{X: 0, Y: 0, T: 0}, {X: 100, Y: 0, T: 1000}, {X: -50, Y: 0, T: 2000}, {X: 200, Y: 0, T: 3000}},
	}
	for i, tr := range hostile {
		for _, opts := range []Options{DefaultOptions(), RawOptions()} {
			pw, err := SimplifyOpts(tr, 20, opts)
			if err != nil {
				t.Fatalf("case %d: %v", i, err)
			}
			if err := metrics.VerifyBound(tr, pw, 20); err != nil {
				t.Errorf("case %d: %v", i, err)
			}
			apw, _, err := SimplifyAggressiveOpts(tr, 20, opts)
			if err != nil {
				t.Fatalf("case %d aggressive: %v", i, err)
			}
			if err := metrics.VerifyBound(tr, apw, 20); err != nil {
				t.Errorf("case %d aggressive: %v", i, err)
			}
		}
	}
}

// Non-finite coordinates must not panic (output quality is undefined, the
// encoder just keeps going — validation is the caller's job).
func TestNonFiniteInputsNoPanic(t *testing.T) {
	tr := traj.Trajectory{
		{X: 0, Y: 0, T: 0},
		{X: math.NaN(), Y: 5, T: 1000},
		{X: 10, Y: math.Inf(1), T: 2000},
		{X: 20, Y: 0, T: 3000},
		{X: 30, Y: 0, T: 4000},
	}
	if _, err := Simplify(tr, 20); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, err := SimplifyAggressive(tr, 20); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// A doubling-back corridor (out-and-back along the same street) compresses
// extremely well: distance is measured to the infinite line.
func TestCorridorDoubleBack(t *testing.T) {
	var tr traj.Trajectory
	for i := 0; i < 50; i++ {
		tr = append(tr, traj.Point{X: float64(i) * 20, Y: float64(i%2) * 2, T: int64(i) * 1000})
	}
	for i := 0; i < 50; i++ {
		tr = append(tr, traj.Point{X: float64(49-i) * 20, Y: float64(i%2)*2 + 1, T: int64(50+i) * 1000})
	}
	pw, err := Simplify(tr, 15)
	if err != nil {
		t.Fatal(err)
	}
	if err := metrics.VerifyBound(tr, pw, 15); err != nil {
		t.Fatal(err)
	}
	if len(pw) > 10 {
		t.Errorf("corridor double-back used %d segments; the line-distance model should compress it", len(pw))
	}
}

// ζ spanning six orders of magnitude.
func TestExtremeEpsilons(t *testing.T) {
	tr := gen.One(gen.SerCar, 300, 50)
	for _, zeta := range []float64{1e-3, 1e6} {
		pw, err := Simplify(tr, zeta)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
			t.Errorf("ζ=%g: %v", zeta, err)
		}
	}
	// Gigantic ζ collapses everything to one segment.
	pw, err := Simplify(tr, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("ζ=1e6: %d segments, want 1", len(pw))
	}
}

// Determinism: identical inputs yield identical outputs (no map iteration
// or clock dependence anywhere in the pipeline).
func TestDeterministicOutput(t *testing.T) {
	tr := gen.One(gen.GeoLife, 500, 99)
	a, err := SimplifyAggressive(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimplifyAggressive(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("segment %d differs", i)
		}
	}
}
