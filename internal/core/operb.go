package core

import (
	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// Stats aggregates counters an Encoder maintains while streaming.
type Stats struct {
	PointsIn    int // points pushed
	SegmentsOut int // segments emitted
	Absorbed    int // points represented by an already-finalized segment (opt. 5)
	ForcedCaps  int // segments closed by the MaxSegmentPoints guard
}

// Encoder is the streaming OPERB algorithm (Figure 7). Feed points with
// Push — each returns the directed line segments finalized by that point,
// usually none — and call Flush once at the end of the stream.
//
// The encoder holds O(1) state: the current segment start Ps, the last
// incorporated active point Pa, the fitted directed line segment L, and
// (with optimization 5) one pending finalized segment. Each pushed point is
// examined exactly once; the one-pass property is tested in operb_test.go.
//
// An Encoder is not safe for concurrent use; run one encoder per stream.
type Encoder struct {
	zeta float64
	opts Options

	emit func(traj.Segment) // sink; appends to scratch by default

	started bool
	n       int // index assigned to the next pushed point

	ps       traj.Point // current segment start
	psIdx    int
	pa       traj.Point // last incorporated active point (segment end candidate)
	paIdx    int
	raDir    geo.Point // unit vector Ps→Pa (zero while Pa == Ps)
	fit      fitter
	segPt    int // points consumed into the current segment after Ps (i − s)
	consumed int // index of the last point retained by the current segment

	absorbing bool
	pending   traj.Segment // finalized segment still absorbing points
	pendDir   geo.Point    // unit direction of the pending segment's line

	last    traj.Point // last pushed point
	lastIdx int

	stats   Stats
	scratch []traj.Segment
}

// NewEncoder returns a streaming OPERB encoder with error bound zeta
// (meters) and the given options.
func NewEncoder(zeta float64, opts Options) (*Encoder, error) {
	if err := checkEpsilon(zeta); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	e := &Encoder{zeta: zeta, opts: opts.withDefaults()}
	e.fit = fitter{zeta: zeta, opts: e.opts}
	e.emit = func(s traj.Segment) {
		e.stats.SegmentsOut++
		e.scratch = append(e.scratch, s)
	}
	return e, nil
}

// Stats returns the counters accumulated so far.
func (e *Encoder) Stats() Stats { return e.stats }

// Push feeds the next trajectory point and returns any segments finalized
// by it. The returned slice is reused by subsequent calls.
func (e *Encoder) Push(p traj.Point) []traj.Segment {
	e.scratch = e.scratch[:0]
	idx := e.n
	e.n++
	e.stats.PointsIn++
	e.last, e.lastIdx = p, idx
	if !e.started {
		e.started = true
		e.open(p, idx)
		return nil
	}
	e.process(p, idx)
	return e.scratch
}

// Flush finalizes the open segment(s) at end of stream and returns them.
func (e *Encoder) Flush() []traj.Segment {
	e.scratch = e.scratch[:0]
	if e.absorbing {
		e.emit(e.pending)
		e.absorbing = false
		return e.scratch
	}
	if !e.started {
		return nil
	}
	switch {
	case e.paIdx > e.psIdx:
		if e.opts.ForceTail && e.consumed > e.paIdx {
			e.emit(traj.Segment{Start: e.ps, End: e.pa, StartIdx: e.psIdx, EndIdx: e.paIdx})
			e.emit(traj.Segment{Start: e.pa, End: e.last, StartIdx: e.paIdx, EndIdx: e.consumed})
		} else {
			// Trailing inactive points stay represented by this segment's
			// line; they passed the d ≤ ζ check against it (§4.3).
			e.emit(traj.Segment{Start: e.ps, End: e.pa, StartIdx: e.psIdx, EndIdx: e.consumed})
		}
	case e.lastIdx > e.psIdx:
		// No active point was ever found: every point stayed within the
		// first-active radius of Ps, so any line through Ps (in
		// particular the one to the last point) is within ζ of them all.
		e.emit(traj.Segment{Start: e.ps, End: e.last, StartIdx: e.psIdx, EndIdx: e.lastIdx})
	}
	return e.scratch
}

// open starts a new segment at point p with source index idx.
func (e *Encoder) open(p traj.Point, idx int) {
	e.ps, e.psIdx = p, idx
	e.pa, e.paIdx = p, idx
	e.raDir = geo.Point{}
	e.fit.reset(p.P())
	e.segPt = 0
	e.consumed = idx
}

// process routes one point through absorption and the fitting machine.
func (e *Encoder) process(p traj.Point, idx int) {
	if e.absorbing {
		// Optimization (5): the finalized segment keeps representing
		// points while they stay within ζ of its line.
		var d float64
		if e.pendDir.IsZero() {
			d = p.P().Dist(e.pending.Start.P())
		} else {
			d = abs(e.pendDir.Cross(p.P().Sub(e.pending.Start.P())))
		}
		if d <= e.zeta {
			e.pending.EndIdx = idx
			e.stats.Absorbed++
			return
		}
		e.absorbing = false
		e.emit(e.pending)
	}
	e.consume(p, idx)
}

// consume implements one step of getActivePoint + the OPERB main loop for
// the current segment.
func (e *Encoder) consume(p traj.Point, idx int) {
	e.segPt++
	if e.segPt > e.opts.MaxSegmentPoints {
		// The (i − s) ≤ 4×10⁵ guard of Figure 7: force the segment closed.
		e.stats.ForcedCaps++
		if e.paIdx == e.psIdx {
			// Degenerate stationary run: close it through this point so
			// the output stays continuous.
			e.incorporate(p, idx)
			e.closeSegment()
			return
		}
		e.closeSegment()
		e.process(p, idx)
		return
	}

	gp := p.P()
	r := gp.Dist(e.fit.ps)

	if !e.fit.hasL {
		// Before the first active point. Optimization (1) widens the
		// first-active radius from ζ/4 to ζ: every point within ζ of Ps is
		// within ζ of *any* line through Ps, so the bound is unaffected.
		thr := e.zeta / 4
		if e.opts.FirstActive {
			thr = e.zeta
		}
		if r <= thr {
			e.consumed = idx
			return // inactive around Ps, inherently safe
		}
		e.incorporate(p, idx)
		e.consumed = idx
		return
	}

	if r-e.fit.length <= e.zeta/4 {
		// Inactive point (case 1 of F): check it against L and against
		// Ra = PsPa (lines 2–5 of getActivePoint).
		dL := e.fit.lineDist(gp)
		side := e.fit.fsign(gp)
		if dL > e.fit.allowed(side) || e.raDist(gp) > e.zeta {
			// The rejected point is itself a candidate for absorption by
			// the finalized segment (optimization 5), so it re-enters via
			// process, not consume.
			e.closeSegment()
			e.process(p, idx)
			return
		}
		e.fit.note(dL, side)
		e.consumed = idx
		return
	}

	// Active candidate: line 6 of getActivePoint checks it against L only.
	dL := e.fit.lineDist(gp)
	side := e.fit.fsign(gp)
	if dL > e.fit.allowed(side) {
		e.closeSegment()
		e.process(p, idx)
		return
	}
	e.fit.note(dL, side)
	e.incorporate(p, idx)
	e.consumed = idx
}

// incorporate folds an active point into the fit and advances the segment
// end candidate (the examples' Pe := Pa).
func (e *Encoder) incorporate(p traj.Point, idx int) {
	e.fit.update(p.P())
	e.pa, e.paIdx = p, idx
	e.raDir = p.P().Sub(e.ps.P()).Unit()
}

// closeSegment finalizes PsPa and opens the next segment at Pa. The range
// extends over trailing inactive points consumed after Pa: they passed the
// d(·, Ra) ≤ ζ check against this segment's line, and the next segment
// makes no promise about them. With optimization (5) the finalized segment
// first enters absorbing state.
func (e *Encoder) closeSegment() {
	end := e.paIdx
	if e.consumed > end {
		end = e.consumed
	}
	seg := traj.Segment{Start: e.ps, End: e.pa, StartIdx: e.psIdx, EndIdx: end}
	if e.opts.Absorb {
		e.pending = seg
		e.pendDir = seg.End.P().Sub(seg.Start.P()).Unit()
		e.absorbing = true
	} else {
		e.emit(seg)
	}
	e.open(e.pa, e.paIdx)
}

// raDist is d(p, Ra): the distance to the line from Ps through the current
// active point Pa, degrading to the distance to Ps while Pa == Ps.
func (e *Encoder) raDist(p geo.Point) float64 {
	if e.raDir.IsZero() {
		return p.Dist(e.ps.P())
	}
	return abs(e.raDir.Cross(p.Sub(e.ps.P())))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Simplify runs OPERB with DefaultOptions over a whole trajectory.
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return SimplifyOpts(t, zeta, DefaultOptions())
}

// SimplifyOpts runs OPERB with explicit options over a whole trajectory.
// Trajectories with fewer than two points yield an empty representation.
func SimplifyOpts(t traj.Trajectory, zeta float64, opts Options) (traj.Piecewise, error) {
	e, err := NewEncoder(zeta, opts)
	if err != nil {
		return nil, err
	}
	out := make(traj.Piecewise, 0, 16)
	for _, p := range t {
		out = append(out, e.Push(p)...)
	}
	return append(out, e.Flush()...), nil
}
