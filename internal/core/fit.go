package core

import (
	"math"

	"trajsim/internal/geo"
)

// fitter maintains the directed line segment L built by the fitting
// function F of §4.1: start point Ps (fixed per segment), a length |L|
// quantized to multiples of the step ζ/2, and an angle θ ∈ [0, 2π). The
// fitted end point is virtual — it need not be a data point.
//
// It also tracks the per-side maximum deviations d⁺max / d⁻max used by
// optimization techniques (2) and (3), and the zone index of the last
// active point used by technique (4).
type fitter struct {
	zeta float64
	opts Options

	ps     geo.Point // Ps, the segment start
	hasL   bool      // |L| > 0, i.e. at least one active point fitted
	length float64   // |L| = j·ζ/2
	theta  float64   // L.θ ∈ [0, 2π)
	dir    geo.Point // unit vector at angle theta (cached for hot paths)
	lastJ  int       // zone index of the last active point

	dmaxPlus  float64 // max deviation of checked points left of L
	dmaxMinus float64 // max deviation right of L
}

func (f *fitter) reset(ps geo.Point) {
	f.ps = ps
	f.hasL = false
	f.length = 0
	f.theta = 0
	f.dir = geo.Point{}
	f.lastJ = 0
	f.dmaxPlus = 0
	f.dmaxMinus = 0
}

// zone returns j = ⌈|R|·2/ζ − 0.5⌉, the index of the ζ/2-wide annulus
// Z_j = { P : j·ζ/2 − ζ/4 < |PsP| ≤ j·ζ/2 + ζ/4 } containing radius r.
func (f *fitter) zone(r float64) int {
	j := int(math.Ceil(r*2/f.zeta - 0.5))
	if j < 0 {
		j = 0
	}
	return j
}

// lineDist is d(p, L): the distance to the infinite line through Ps at
// angle θ, degrading to the distance to Ps while no line exists.
func (f *fitter) lineDist(p geo.Point) float64 {
	if !f.hasL {
		return p.Dist(f.ps)
	}
	return math.Abs(f.dir.Cross(p.Sub(f.ps)))
}

// fsign evaluates the paper's sign function f(R, L) for a point: the
// direction the fitting function would rotate L to approach it. The d±max
// trackers of optimizations (2) and (3) group deviations by this sign —
// rotations with f=+1 can only move L away from points recorded under
// f=−1, which is what keeps d⁺max + d⁻max ≤ ζ sufficient for the bound.
//
// signF's range test is equivalent to sign(sin δ · cos δ), i.e. the sign
// of cross(L, R)·dot(L, R), which avoids an atan2 per point. (At the
// measure-zero boundary δ = 3π/2 this rounds toward +1 where signF's
// half-open interval says −1; the rotation magnitude there is unaffected.)
func (f *fitter) fsign(p geo.Point) int {
	if !f.hasL {
		return +1
	}
	v := p.Sub(f.ps)
	if f.dir.Cross(v)*f.dir.Dot(v) >= 0 {
		return +1
	}
	return -1
}

// allowed returns the largest deviation permitted for a point on the given
// side: ζ/2 for the basic algorithm, or ζ − d∓max under optimization (2),
// which keeps d⁺max + d⁻max ≤ ζ (Theorem 2's relaxed condition).
func (f *fitter) allowed(side int) float64 {
	if !f.opts.AdjustedBound {
		return f.zeta / 2
	}
	if side > 0 {
		return f.zeta - f.dmaxMinus
	}
	return f.zeta - f.dmaxPlus
}

// note records a checked point's deviation in the side trackers.
func (f *fitter) note(d float64, side int) {
	if side > 0 {
		if d > f.dmaxPlus {
			f.dmaxPlus = d
		}
	} else if d > f.dmaxMinus {
		f.dmaxMinus = d
	}
}

// signF is the paper's sign function f(Ri, Li−1): +1 when the included
// angle δ = Ri.θ − Li−1.θ ∈ (−2π, 2π) falls in (−2π,−3π/2], [−π,−π/2],
// [0,π/2] or [π,3π/2), and −1 otherwise. Geometrically this rotates L
// toward the nearest alignment of its (undirected) line with the point:
// points ahead-left or behind-right rotate L counterclockwise.
func signF(delta float64) float64 {
	switch {
	case delta > -2*math.Pi && delta <= -3*math.Pi/2:
		return 1
	case delta >= -math.Pi && delta <= -math.Pi/2:
		return 1
	case delta >= 0 && delta <= math.Pi/2:
		return 1
	case delta >= math.Pi && delta < 3*math.Pi/2:
		return 1
	}
	return -1
}

// update applies the fitting function F to incorporate an active point p,
// implementing cases (2) and (3) of §4.1 plus optimizations (3) and (4).
// Case (1) — inactive points — leaves the fitter untouched and is handled
// by the encoder, which never calls update for them.
func (f *fitter) update(p geo.Point) {
	r := p.Dist(f.ps)
	j := f.zone(r)
	if j < 1 {
		j = 1 // active points satisfy |R| > ζ/4, so j ≥ 1; guard float edges
	}
	jl := float64(j) * f.zeta / 2
	v := p.Sub(f.ps)
	if !f.hasL {
		// Case (2): |L| = j·ζ/2, L.θ = R.θ.
		f.theta = geo.AngleOf(v)
		f.dir = geo.Dir(f.theta)
		f.length = jl
		f.hasL = true
		f.lastJ = j
		return
	}
	// Case (3): rotate L toward p by arcsin(d/(j·ζ/2))/j. The linear
	// fitting variant uses x ≤ arcsin(x), a strictly smaller rotation.
	arc := math.Asin
	if f.opts.LinearFitting {
		arc = func(x float64) float64 { return x }
	}
	sign := float64(f.fsign(p))
	d := math.Abs(f.dir.Cross(v))
	full := arc(clamp01(d / jl)) // rotation that aligns L's line with p

	dx := d
	if f.opts.AngleTighten {
		// Optimization (3): rotate further, justified by the largest
		// deviation already recorded for this rotation direction.
		if dm := f.sideMax(int(sign)); dm > dx {
			dx = dm
		}
	}
	mult := 1.0
	if f.opts.MissingZones {
		// Optimization (4): compensate for skipped zones.
		if dj := j - f.lastJ; dj > 1 {
			mult = float64(dj)
		}
	}
	mag := arc(clamp01(dx/jl)) * mult / float64(j)
	if mag > full {
		// §4.4(3)'s restriction: never rotate past full alignment.
		mag = full
	}
	f.theta = geo.NormalizeAngle(f.theta + sign*mag)
	f.dir = geo.Dir(f.theta)
	f.length = jl
	f.lastJ = j
}

func (f *fitter) sideMax(side int) float64 {
	if side > 0 {
		return f.dmaxPlus
	}
	return f.dmaxMinus
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
