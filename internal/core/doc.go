// Package core implements the paper's primary contribution: one-pass error
// bounded trajectory simplification.
//
//   - The fitting function F (§4.1) dynamically maintains a directed line
//     segment L — a start point, a length quantized to ζ/2 steps, and an
//     angle — that fits all points processed so far, enabling *local*
//     distance checking: each new point is compared against L once, instead
//     of re-checking earlier points against every candidate segment as
//     global-checking algorithms (DP, OPW, BQS) do.
//   - Encoder is the streaming OPERB algorithm (§4.3, Figure 7) with the
//     five optimization techniques of §4.4 individually controllable via
//     Options. It runs in O(n) time and O(1) space and touches each input
//     point exactly once.
//   - AggressiveEncoder is OPERB-A (§5): it wraps Encoder with the lazy
//     output policy and interpolates patch points to eliminate anomalous
//     (two-point) line segments, improving the compression ratio beyond DP
//     while preserving the error bound.
//
// All distances are Euclidean point-to-line distances in meters; the error
// bound ζ is in meters.
package core
