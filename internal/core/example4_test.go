package core

import (
	"testing"

	"trajsim/internal/traj"
)

// TestPaperExample4Classification replays §4.1's Example 4: eight points
// whose radii from P0 walk through zones Z0..Z3, checking which points the
// fitting function treats as active (incorporated, advancing Pa) and which
// as inactive. ζ=1, so zone boundaries sit at r = 0.25, 0.75, 1.25, ...
//
//	P0 r=0      start, the first "active" point by convention
//	P1 r=0.20   inactive in Z0                     (|R1| ≤ ζ/4)
//	P2 r=0.60   active in Z1, sets |L|=0.5         (case 2)
//	P3 r=0.65   inactive in Z1                     (|R3|−|L2| = 0.15 ≤ ζ/4)
//	P4 r=1.10   active in Z2, |L|=1.0              (case 3)
//	P5 r=1.60   active in Z3, |L|=1.5              (case 3)
//	P6 r=1.30   inactive (|R6|−|L5| = −0.2 ≤ ζ/4; physically in Z2,
//	            mapped with L's zone 3, the paper's note about P6)
//	P7 r=1.70   inactive (|R7|−|L5| = 0.2 ≤ ζ/4)
func TestPaperExample4Classification(t *testing.T) {
	const zeta = 1.0
	// Points nearly on the +x axis so every distance check passes and
	// only the radial logic decides activity.
	radii := []float64{0, 0.20, 0.60, 0.65, 1.10, 1.60, 1.30, 1.70}
	wantActive := []bool{false, false, true, false, true, true, false, false}

	tr := make(traj.Trajectory, len(radii))
	for i, r := range radii {
		tr[i] = traj.Point{X: r, Y: 0, T: int64(i) * 1000}
	}
	enc, err := NewEncoder(zeta, RawOptions()) // no opt 1: first-active radius ζ/4
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range tr {
		prevPa := enc.paIdx
		enc.Push(p)
		gotActive := enc.paIdx != prevPa && enc.paIdx == i
		if i == 0 {
			continue // P0 opens the segment
		}
		if gotActive != wantActive[i] {
			t.Errorf("P%d (r=%.2f): active=%v, want %v", i, radii[i], gotActive, wantActive[i])
		}
	}
	// The fitted length after P5 is 3·ζ/2 (zone 3), per the example.
	if enc.fit.length != 1.5 {
		t.Errorf("|L| after stream = %v, want 1.5", enc.fit.length)
	}
	// All eight points collapse into one segment.
	pw := enc.Flush()
	if len(pw) != 1 {
		t.Fatalf("%d segments, want 1", len(pw))
	}
	if pw[0].StartIdx != 0 || pw[0].EndIdx != 7 {
		t.Errorf("segment range [%d..%d], want [0..7]", pw[0].StartIdx, pw[0].EndIdx)
	}
	// The end point is the last *active* point, P5 — trailing inactive
	// points are represented by the segment's line (§4.3).
	if pw[0].End != tr[5] {
		t.Errorf("segment ends at %v, want P5 %v", pw[0].End, tr[5])
	}
}

// The zone radii of Figure 5: Z0 (−ζ/4, ζ/4], Z1 (ζ/4, 3ζ/4],
// Z2 (3ζ/4, 5ζ/4], Z3 (5ζ/4, 7ζ/4] — checked against the fitter's zone
// index for ζ=1 at the exact boundaries.
func TestPaperFigure5ZoneBoundaries(t *testing.T) {
	f := newTestFitter(1.0, RawOptions())
	boundaries := []struct {
		r    float64
		zone int
	}{
		{0.25, 0}, {0.250001, 1},
		{0.75, 1}, {0.750001, 2},
		{1.25, 2}, {1.250001, 3},
		{1.75, 3}, {1.750001, 4},
	}
	for _, b := range boundaries {
		if got := f.zone(b.r); got != b.zone {
			t.Errorf("zone(%v) = %d, want %d", b.r, got, b.zone)
		}
	}
}
