package core

import (
	"math"
	"testing"

	"trajsim/internal/geo"
)

func newTestFitter(zeta float64, opts Options) *fitter {
	f := &fitter{zeta: zeta, opts: opts.withDefaults()}
	f.reset(geo.Point{})
	return f
}

// Zone boundaries per §4.1: Z0 = (−ζ/4, ζ/4], Z1 = (ζ/4, 3ζ/4],
// Z2 = (3ζ/4, 5ζ/4], Z3 = (5ζ/4, 7ζ/4].
func TestZoneIndex(t *testing.T) {
	f := newTestFitter(1.0, RawOptions())
	cases := []struct {
		r    float64
		want int
	}{
		{0, 0},
		{0.25, 0}, // boundary of Z0 (inclusive upper edge)
		{0.2501, 1},
		{0.5, 1},
		{0.75, 1},
		{0.7501, 2},
		{1.0, 2},
		{1.25, 2},
		{1.2501, 3},
		{1.75, 3},
		{10.0, 20},
	}
	for _, c := range cases {
		if got := f.zone(c.r); got != c.want {
			t.Errorf("zone(%v) = %d, want %d", c.r, got, c.want)
		}
	}
}

// signF's +1 ranges per the fitting function definition (§4.1(e)).
func TestSignF(t *testing.T) {
	pi := math.Pi
	cases := []struct {
		delta float64
		want  float64
	}{
		{-1.9 * pi, 1},  // (−2π, −3π/2]
		{-1.5 * pi, 1},  // boundary −3π/2
		{-1.2 * pi, -1}, // (−3π/2, −π)
		{-pi, 1},        // [−π, −π/2]
		{-0.6 * pi, 1},  //
		{-0.5 * pi, 1},  // boundary −π/2
		{-0.3 * pi, -1}, // (−π/2, 0)
		{0, 1},          // [0, π/2]
		{0.25 * pi, 1},  //
		{0.5 * pi, 1},   // boundary π/2
		{0.75 * pi, -1}, // (π/2, π)
		{pi, 1},         // [π, 3π/2)
		{1.25 * pi, 1},  //
		{1.5 * pi, -1},  // boundary 3π/2 excluded
		{1.9 * pi, -1},  // [3π/2, 2π)
	}
	for _, c := range cases {
		if got := signF(c.delta); got != c.want {
			t.Errorf("signF(%vπ) = %v, want %v", c.delta/pi, got, c.want)
		}
	}
}

// Geometric meaning: the rotation direction moves L's (undirected) line
// toward the point.
func TestSignFRotatesTowardPoint(t *testing.T) {
	zeta := 2.0
	for _, deg := range []float64{10, 40, 80, 100, 170, 190, 260, 350} {
		f := newTestFitter(zeta, RawOptions())
		// First active point along +x establishes θ = 0.
		f.update(geo.Pt(1.0, 0))
		// Next active point at a shallow offset angle.
		ang := geo.Radians(deg)
		p := geo.Dir(ang).Scale(2.0)
		before := f.lineDist(p)
		f.update(p)
		after := f.lineDist(p)
		if after > before+1e-12 {
			t.Errorf("deg=%v: distance grew %v -> %v", deg, before, after)
		}
	}
}

// Case (2): the first active point sets the angle exactly and the length to
// j·ζ/2.
func TestFitterFirstActive(t *testing.T) {
	f := newTestFitter(1.0, RawOptions())
	f.update(geo.Pt(0.6, 0.6)) // r ≈ 0.8485 → zone 2
	if !f.hasL {
		t.Fatal("fitter has no line after first active point")
	}
	if want := math.Pi / 4; math.Abs(f.theta-want) > 1e-12 {
		t.Errorf("theta = %v, want π/4", f.theta)
	}
	if want := 1.0; math.Abs(f.length-want) > 1e-12 {
		t.Errorf("length = %v, want %v (zone 2 × ζ/2)", f.length, want)
	}
	if f.lastJ != 2 {
		t.Errorf("lastJ = %d, want 2", f.lastJ)
	}
}

// The rotation magnitude is arcsin(d/(jζ/2))/j for the raw algorithm.
func TestFitterRotationMagnitude(t *testing.T) {
	zeta := 2.0
	f := newTestFitter(zeta, RawOptions())
	f.update(geo.Pt(1.0, 0)) // zone 1, θ=0
	// Active point in zone 2 at distance d from the x-axis.
	p := geo.Pt(2.0, 0.3)
	r := p.Norm()
	j := f.zone(r)
	want := math.Asin(0.3/(float64(j)*zeta/2)) / float64(j)
	f.update(p)
	if math.Abs(f.theta-want) > 1e-12 {
		t.Errorf("theta = %v, want %v", f.theta, want)
	}
	if f.length != float64(j)*zeta/2 {
		t.Errorf("length = %v, want %v", f.length, float64(j)*zeta/2)
	}
}

// Optimization (4) scales the rotation by ∆j when zones are skipped,
// capped at full alignment.
func TestFitterMissingZones(t *testing.T) {
	zeta := 2.0
	raw := newTestFitter(zeta, RawOptions())
	opt := newTestFitter(zeta, Options{MissingZones: true}.withDefaults())
	for _, f := range []*fitter{raw, opt} {
		f.update(geo.Pt(1.0, 0))
	}
	// Jump from zone 1 to zone 5 (∆j = 4).
	p := geo.Pt(5.0, 0.4)
	raw.update(p)
	opt.update(p)
	if !(opt.theta > raw.theta) {
		t.Errorf("missing-zones rotation %v not larger than raw %v", opt.theta, raw.theta)
	}
	full := math.Asin(0.4 / p.Norm())
	if opt.theta > full+1e-9 {
		t.Errorf("rotation %v exceeds full alignment %v", opt.theta, full)
	}
}

// Optimization (3) rotates at least as far as raw, never past alignment.
func TestFitterAngleTighten(t *testing.T) {
	zeta := 2.0
	raw := newTestFitter(zeta, RawOptions())
	opt := newTestFitter(zeta, Options{AngleTighten: true}.withDefaults())
	for _, f := range []*fitter{raw, opt} {
		f.update(geo.Pt(1.0, 0))
		// Record a large deviation on the + side.
		f.note(0.9, +1)
	}
	p := geo.Pt(2.0, 0.2)
	raw.update(p)
	opt.update(p)
	if opt.theta < raw.theta-1e-12 {
		t.Errorf("tightened rotation %v smaller than raw %v", opt.theta, raw.theta)
	}
	full := math.Asin(0.2 / 2.0)
	if opt.theta > full+1e-9 {
		t.Errorf("tightened rotation %v exceeds the §4.4(3) cap %v", opt.theta, full)
	}
}

// Optimization (2) widens the allowed deviation on one side by the slack
// left on the other.
func TestFitterAllowed(t *testing.T) {
	zeta := 2.0
	f := newTestFitter(zeta, RawOptions())
	f.update(geo.Pt(1.0, 0))
	if got := f.allowed(+1); got != 1.0 {
		t.Errorf("raw allowed = %v, want ζ/2", got)
	}
	f2 := newTestFitter(zeta, Options{AdjustedBound: true}.withDefaults())
	f2.update(geo.Pt(1.0, 0))
	f2.note(0.3, -1)
	if got := f2.allowed(+1); math.Abs(got-1.7) > 1e-12 {
		t.Errorf("adjusted allowed(+) = %v, want ζ−0.3 = 1.7", got)
	}
	if got := f2.allowed(-1); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("adjusted allowed(−) = %v, want ζ = 2.0", got)
	}
	f2.note(0.5, +1)
	if got := f2.allowed(-1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("adjusted allowed(−) = %v, want 1.5", got)
	}
}

func TestClamp01(t *testing.T) {
	for _, c := range []struct{ in, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 0.5}, {1, 1}, {2, 1},
	} {
		if got := clamp01(c.in); got != c.want {
			t.Errorf("clamp01(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Lemma 3: the cumulative angle drift Σ arcsin(1/i)/i stays below 0.8123
// rad; replay the bound numerically the way the proof sums it.
func TestLemma3AngleBudget(t *testing.T) {
	var sum float64
	for i := 2; i <= 4_000_000; i++ {
		sum += math.Asin(1/float64(i)) / float64(i)
	}
	if sum >= 0.8123 {
		t.Errorf("angle budget = %v, want < 0.8123", sum)
	}
	// And it is the bound the paper computes: π/6 + 1/(2√3) ≈ 0.8123.
	want := math.Pi/6 + 1/(2*math.Sqrt(3))
	if math.Abs(want-0.8123) > 1e-3 {
		t.Errorf("closed form = %v, want ≈0.8123", want)
	}
}
