package core

import (
	"errors"
	"fmt"
	"math"
)

// MaxSegmentPointsDefault is the paper's k ≤ 4×10⁵ restriction on the
// number of points a single directed line segment may represent (§4.2
// Remarks); the angle-drift bound of Lemma 4 is proven up to this length.
const MaxSegmentPointsDefault = 400000

// DefaultGamma is the default γm = π/3 for OPERB-A's included-angle
// restriction on patch points (§5.1, Exp-4.2).
const DefaultGamma = math.Pi / 3

// Options selects the optimization techniques of §4.4 and practical knobs.
// The zero value is the paper's Raw-OPERB (all optimizations off);
// DefaultOptions enables everything, matching the paper's OPERB.
type Options struct {
	// FirstActive is optimization (1): start a segment's fit at the first
	// point farther than ζ from Ps instead of ζ/4, so the initial angle is
	// estimated from a longer baseline.
	FirstActive bool

	// AdjustedBound is optimization (2): replace the per-point condition
	// d(Pi, L) ≤ ζ/2 with d⁺max + d⁻max ≤ ζ, tracking the maximum
	// deviation on each side of L separately.
	AdjustedBound bool

	// AngleTighten is optimization (3): when rotating L toward an active
	// point, use a distance dx up to the recorded d±max of that side
	// (instead of the point's own distance), bounded so the rotation never
	// exceeds full alignment with the point.
	AngleTighten bool

	// MissingZones is optimization (4): when an active point skips zones
	// (∆j > 1), scale the rotation by ∆j to compensate for the missing
	// active points.
	MissingZones bool

	// Absorb is optimization (5): after a segment PsPe is finalized, keep
	// representing subsequent points with it while they stay within ζ of
	// its line.
	Absorb bool

	// LinearFitting selects an alternative form of the fitting function
	// (the paper's conclusion lists such variants as future work): the
	// rotation magnitude arcsin(x)/j is replaced by its linear lower bound
	// x/j. Rotations are strictly smaller than the paper's, so every bound
	// argument still applies; the arcsin disappears from the hot path at
	// the cost of slightly slower alignment (a small ratio penalty).
	LinearFitting bool

	// ForceTail emits an explicit final segment to the last input point
	// when trailing inactive points follow the last active point. The
	// paper leaves such points represented by the final segment's line
	// (its error-bound definition only requires *some* consecutive output
	// pair within ζ); enable this when the representation must end at Pn.
	ForceTail bool

	// MaxSegmentPoints caps the points per segment ((i−s) ≤ 4×10⁵ in
	// Figure 7). Zero means MaxSegmentPointsDefault.
	MaxSegmentPoints int

	// Gamma is OPERB-A's γm ∈ [0, π]: a patch point is only interpolated
	// when the included angle between the surrounding segments stays at
	// least γm away from a U-turn (§5.1 condition 3). Zero means
	// DefaultGamma. Ignored by plain OPERB.
	Gamma float64
}

// DefaultOptions returns the paper's OPERB configuration: all five
// optimization techniques enabled.
func DefaultOptions() Options {
	return Options{
		FirstActive:      true,
		AdjustedBound:    true,
		AngleTighten:     true,
		MissingZones:     true,
		Absorb:           true,
		MaxSegmentPoints: MaxSegmentPointsDefault,
		Gamma:            DefaultGamma,
	}
}

// RawOptions returns the paper's Raw-OPERB configuration: the basic
// algorithm of Figure 7 with no optimizations.
func RawOptions() Options {
	return Options{
		MaxSegmentPoints: MaxSegmentPointsDefault,
		Gamma:            DefaultGamma,
	}
}

// Errors returned when constructing encoders.
var (
	ErrBadEpsilon = errors.New("core: error bound ζ must be positive and finite")
	ErrBadGamma   = errors.New("core: γm must be in [0, π]")
	ErrBadCap     = errors.New("core: MaxSegmentPoints must be ≥ 0")
)

func (o Options) validate() error {
	if o.Gamma < 0 || o.Gamma > math.Pi {
		return fmt.Errorf("%w: got %g", ErrBadGamma, o.Gamma)
	}
	if o.MaxSegmentPoints < 0 {
		return fmt.Errorf("%w: got %d", ErrBadCap, o.MaxSegmentPoints)
	}
	return nil
}

// withDefaults fills zero knobs.
func (o Options) withDefaults() Options {
	if o.MaxSegmentPoints == 0 {
		o.MaxSegmentPoints = MaxSegmentPointsDefault
	}
	if o.Gamma == 0 {
		o.Gamma = DefaultGamma
	}
	return o
}

func checkEpsilon(zeta float64) error {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	return nil
}
