package core

import (
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// OPERB-A must preserve OPERB's error bound: patching only extends lines,
// never changes their angles (§5.2 correctness argument).
func TestAggressiveErrorBoundAllOptionCombos(t *testing.T) {
	zeta := 40.0
	for name, tr := range testTrajectories() {
		for _, opts := range optionCombos() {
			pw, st, err := SimplifyAggressiveOpts(tr, zeta, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s opts=%+v: %v (patched %d/%d)", name, opts, err, st.Patched, st.Anomalous)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s opts=%+v: invalid output: %v", name, opts, err)
			}
		}
	}
}

func TestAggressiveErrorBoundAcrossEpsilons(t *testing.T) {
	tr := gen.RandomWalk(600, 30, 19)
	for _, zeta := range []float64{0.5, 5, 20, 40, 160} {
		pw, err := SimplifyAggressive(tr, zeta)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

// On crossroad-heavy trajectories OPERB-A patches anomalous segments and
// ends up with fewer segments than OPERB — the Figure 9/11 behaviour.
func TestPatchingReducesSegments(t *testing.T) {
	var operbSegs, aggSegs, patched int
	for seed := uint64(1); seed <= 8; seed++ {
		tr := gen.SuddenTurns(400, 30, 8, seed)
		a, err := Simplify(tr, 15)
		if err != nil {
			t.Fatal(err)
		}
		b, st, err := SimplifyAggressiveOpts(tr, 15, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		operbSegs += len(a)
		aggSegs += len(b)
		patched += st.Patched
	}
	if patched == 0 {
		t.Fatal("no patch points interpolated on a crossroad workload")
	}
	if aggSegs >= operbSegs {
		t.Errorf("OPERB-A %d segments vs OPERB %d; patching should reduce the count", aggSegs, operbSegs)
	}
	t.Logf("OPERB=%d OPERB-A=%d patched=%d", operbSegs, aggSegs, patched)
}

// Each successful patch eliminates exactly one segment relative to the
// unpatched stream.
func TestPatchAccounting(t *testing.T) {
	tr := gen.SuddenTurns(300, 25, 6, 2)
	zeta := 12.0
	// Unpatched stream: OPERB-A with gamma = π disables nearly all
	// patches only via the angle condition; instead compare with OPERB,
	// whose determined segments are identical to OPERB-A's inputs.
	plain, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	pw, st, err := SimplifyAggressiveOpts(tr, zeta, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(pw), len(plain)-st.Patched; got != want {
		t.Errorf("segments = %d, want %d (OPERB %d − patched %d)", got, want, len(plain), st.Patched)
	}
	if st.Anomalous < st.Patched {
		t.Errorf("patched %d exceeds anomalous %d", st.Patched, st.Anomalous)
	}
}

func TestAggressiveOnStraightLine(t *testing.T) {
	tr := gen.Line(500, 10)
	pw, st, err := SimplifyAggressiveOpts(tr, 5, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("straight line: %d segments, want 1", len(pw))
	}
	if st.Anomalous != 0 || st.Patched != 0 {
		t.Errorf("straight line produced patch stats %+v", st)
	}
}

// γm monotonicity (Exp-4.2): smaller γm permits larger direction changes,
// so the patching ratio must not increase with γm.
func TestGammaMonotonicity(t *testing.T) {
	tr := gen.SuddenTurns(600, 30, 8, 4)
	var prev = math.Inf(1)
	for _, gammaDeg := range []float64{1, 60, 120, 179} {
		opts := DefaultOptions()
		opts.Gamma = gammaDeg * math.Pi / 180
		_, st, err := SimplifyAggressiveOpts(tr, 15, opts)
		if err != nil {
			t.Fatal(err)
		}
		r := st.Ratio()
		if r > prev+1e-9 {
			t.Errorf("γm=%v°: ratio %.3f increased from %.3f", gammaDeg, r, prev)
		}
		prev = r
	}
}

func TestVirtualFlagsOnPatchedSegments(t *testing.T) {
	tr := gen.SuddenTurns(300, 30, 8, 6)
	pw, st, err := SimplifyAggressiveOpts(tr, 15, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Patched == 0 {
		t.Skip("no patches on this seed")
	}
	virtEnds, virtStarts := 0, 0
	for i, s := range pw {
		if s.VirtualEnd {
			virtEnds++
			if i+1 < len(pw) && !pw[i+1].VirtualStart {
				t.Errorf("segment %d has virtual end but successor lacks virtual start", i)
			}
			if i+1 < len(pw) && !s.End.P().Eq(pw[i+1].Start.P()) {
				t.Errorf("patched joint %d not continuous", i)
			}
		}
		if s.VirtualStart {
			virtStarts++
		}
	}
	if virtEnds == 0 || virtStarts == 0 {
		t.Errorf("patched output lacks virtual endpoints (ends=%d starts=%d)", virtEnds, virtStarts)
	}
}

// Decoded (simplified) trajectories remain valid: strictly increasing
// timestamps even with interpolated patch points.
func TestDecodedPatchedTrajectoryIsValid(t *testing.T) {
	for seed := uint64(1); seed < 6; seed++ {
		tr := gen.SuddenTurns(400, 30, 7, seed)
		pw, _, err := SimplifyAggressiveOpts(tr, 15, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		dec := pw.Decode()
		if err := dec.Validate(); err != nil {
			t.Errorf("seed %d: decoded trajectory invalid: %v", seed, err)
		}
	}
}

// The patch point lies on both surrounding lines (condition 1 of §5.1).
func TestPatchPointOnBothLines(t *testing.T) {
	tr := gen.SuddenTurns(400, 30, 8, 8)
	pw, st, err := SimplifyAggressiveOpts(tr, 15, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.Patched == 0 {
		t.Skip("no patches on this seed")
	}
	for i := 0; i+1 < len(pw); i++ {
		if !pw[i].VirtualEnd {
			continue
		}
		g := pw[i].End
		// On the line of the extended segment: by construction its own
		// endpoints define that line, so check against its start and the
		// original direction via the source points it represents.
		a := pw[i]
		d := a.LineDistance(g)
		if d > 1e-6 {
			t.Errorf("patch point %d off its own line by %v", i, d)
		}
		b := pw[i+1]
		if db := b.LineDistance(tr[b.EndIdx]); db > 15*(1+metrics.BoundSlack) {
			t.Errorf("next segment end point deviates %v", db)
		}
	}
}

func TestAggressiveStreamingMatchesBatch(t *testing.T) {
	tr := gen.One(gen.Taxi, 400, 33)
	want, _, err := SimplifyAggressiveOpts(tr, 40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAggressiveEncoder(40, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var got traj.Piecewise
	for _, p := range tr {
		got = append(got, a.Push(p)...)
	}
	got = append(got, a.Flush()...)
	if len(got) != len(want) {
		t.Fatalf("streaming %d segments, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("segment %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestAggressiveTinyInputs(t *testing.T) {
	for n := 0; n <= 2; n++ {
		tr := gen.Line(n, 10)
		pw, err := SimplifyAggressive(tr, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantSegs := 0
		if n == 2 {
			wantSegs = 1
		}
		if len(pw) != wantSegs {
			t.Errorf("n=%d: %d segments, want %d", n, len(pw), wantSegs)
		}
	}
}

func TestPatchStatsRatio(t *testing.T) {
	if r := (PatchStats{}).Ratio(); r != 0 {
		t.Errorf("empty ratio = %v", r)
	}
	if r := (PatchStats{Anomalous: 4, Patched: 3}).Ratio(); r != 0.75 {
		t.Errorf("ratio = %v, want 0.75", r)
	}
}

// OPERB-A on datasets: compression ratio should be at most OPERB's
// (aggregate over several trajectories, the paper's headline result).
func TestAggressiveBeatsPlainOnUrban(t *testing.T) {
	var plainSegs, aggSegs int
	for seed := uint64(0); seed < 10; seed++ {
		tr := gen.One(gen.SerCar, 600, 300+seed)
		a, err := Simplify(tr, 40)
		if err != nil {
			t.Fatal(err)
		}
		b, err := SimplifyAggressive(tr, 40)
		if err != nil {
			t.Fatal(err)
		}
		plainSegs += len(a)
		aggSegs += len(b)
	}
	if aggSegs > plainSegs {
		t.Errorf("OPERB-A %d segments vs OPERB %d; expected no worse", aggSegs, plainSegs)
	}
	t.Logf("OPERB=%d OPERB-A=%d", plainSegs, aggSegs)
}
