package opw

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func workloads() map[string]traj.Trajectory {
	return map[string]traj.Trajectory{
		"line":        gen.Line(200, 15),
		"noisy-line":  gen.NoisyLine(300, 20, 5, 11),
		"circle":      gen.Circle(300, 200, 0.05),
		"zigzag":      gen.Zigzag(300, 10, 60, 7),
		"random-walk": gen.RandomWalk(400, 25, 3),
		"turns":       gen.SuddenTurns(300, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 300, 21),
		"sercar":      gen.One(gen.SerCar, 300, 22),
	}
}

func TestErrorBound(t *testing.T) {
	for name, tr := range workloads() {
		for _, zeta := range []float64{5, 20, 40, 100} {
			pw, err := Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
		}
	}
}

// OPW's invariant is per-window: every interior point of an emitted window
// is within ζ of the window's own line.
func TestPerWindowInvariant(t *testing.T) {
	tr := gen.One(gen.SerCar, 500, 7)
	zeta := 30.0
	pw, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.LineDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d deviates %v from its window line", i, d)
			}
		}
	}
}

func TestExactPartition(t *testing.T) {
	tr := gen.RandomWalk(500, 30, 9)
	pw, err := Simplify(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pw[0].StartIdx != 0 || pw[len(pw)-1].EndIdx != len(tr)-1 {
		t.Errorf("ranges [%d..%d], want [0..%d]", pw[0].StartIdx, pw[len(pw)-1].EndIdx, len(tr)-1)
	}
	for i := 1; i < len(pw); i++ {
		if pw[i].StartIdx != pw[i-1].EndIdx {
			t.Errorf("segment %d starts at %d, previous ends at %d", i, pw[i].StartIdx, pw[i-1].EndIdx)
		}
	}
}

func TestStraightLine(t *testing.T) {
	pw, err := Simplify(gen.Line(1000, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("collinear input: %d segments, want 1", len(pw))
	}
}

func TestSEDVariant(t *testing.T) {
	tr := gen.One(gen.GeoLife, 400, 8)
	zeta := 25.0
	pw, err := SimplifySED(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.SEDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d SED %v > ζ", i, d)
			}
		}
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		pw, err := Simplify(gen.Line(n, 1), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) != 0 {
			t.Errorf("n=%d: %d segments", n, len(pw))
		}
	}
	pw, err := Simplify(gen.Line(2, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("n=2: %d segments", len(pw))
	}
}

func TestBadEpsilon(t *testing.T) {
	for _, zeta := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
		if _, err := SimplifySED(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("SED ζ=%v: %v", zeta, err)
		}
	}
}

// The window restarts at Pk−1 on failure: the point before the violation
// becomes a shared endpoint (the OPW contract from §3.2).
func TestWindowRestart(t *testing.T) {
	// A right angle at index 5 far exceeding ζ.
	tr := make(traj.Trajectory, 11)
	for i := 0; i <= 5; i++ {
		tr[i] = traj.Point{X: float64(i) * 10, T: int64(i) * 1000}
	}
	for i := 6; i <= 10; i++ {
		tr[i] = traj.Point{X: 50, Y: float64(i-5) * 10, T: int64(i) * 1000}
	}
	pw, err := Simplify(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 2 {
		t.Fatalf("right angle: %d segments, want 2: %v", len(pw), pw)
	}
	if pw[0].EndIdx != 5 || pw[1].StartIdx != 5 {
		t.Errorf("corner not at index 5: %v", pw)
	}
}
