// Package opw implements the open-window online line-simplification
// algorithm of Meratnia & de By (the paper's OPW, §3.2): grow a window
// [Ps..Pk] while every interior point stays within ζ of the line PsPk;
// on failure emit PsPk−1 and restart the window at Pk−1. O(n²) time worst
// case. The SED variant (OPW-TR) uses the time-synchronized distance.
package opw

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/traj"
)

// ErrBadEpsilon is returned for non-positive error bounds.
var ErrBadEpsilon = errors.New("opw: error bound ζ must be positive and finite")

// Simplify compresses t with OPW and error bound zeta (meters).
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, false)
}

// SimplifySED is OPW-TR: OPW with the synchronized Euclidean distance.
func SimplifySED(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, true)
}

func simplify(t traj.Trajectory, zeta float64, sed bool) (traj.Piecewise, error) {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return nil, fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	if len(t) < 2 {
		return nil, nil
	}
	out := make(traj.Piecewise, 0, 16)
	s := 0
	for k := s + 2; k < len(t); k++ {
		if windowFits(t, s, k, zeta, sed) {
			continue
		}
		out = append(out, traj.NewSegment(t, s, k-1))
		s = k - 1
	}
	out = append(out, traj.NewSegment(t, s, len(t)-1))
	return out, nil
}

// windowFits reports whether every interior point of [s..k] is within zeta
// of the (possibly time-parameterized) line segment PsPk.
func windowFits(t traj.Trajectory, s, k int, zeta float64, sed bool) bool {
	seg := traj.NewSegment(t, s, k)
	for i := s + 1; i < k; i++ {
		var d float64
		if sed {
			d = seg.SEDistance(t[i])
		} else {
			d = seg.LineDistance(t[i])
		}
		if d > zeta {
			return false
		}
	}
	return true
}
