// Package uniform provides naive sampling baselines — keep every n-th
// point, or one point per time interval. They are fast and one-pass but
// provide no error bound; examples use them to show why error-bounded
// simplification matters.
package uniform

import (
	"errors"
	"fmt"

	"trajsim/internal/traj"
)

// Errors returned by the samplers.
var (
	ErrBadStride   = errors.New("uniform: stride must be ≥ 1")
	ErrBadInterval = errors.New("uniform: interval must be ≥ 1 ms")
)

// NthPoint keeps every stride-th point (always keeping the first and last)
// and returns the induced piecewise representation.
func NthPoint(t traj.Trajectory, stride int) (traj.Piecewise, error) {
	if stride < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadStride, stride)
	}
	if len(t) < 2 {
		return nil, nil
	}
	out := make(traj.Piecewise, 0, len(t)/stride+1)
	prev := 0
	for i := stride; i < len(t); i += stride {
		out = append(out, traj.NewSegment(t, prev, i))
		prev = i
	}
	if prev != len(t)-1 {
		out = append(out, traj.NewSegment(t, prev, len(t)-1))
	}
	return out, nil
}

// TimeUniform keeps at most one point per interval of the given length in
// milliseconds (plus the first and last points).
func TimeUniform(t traj.Trajectory, intervalMS int64) (traj.Piecewise, error) {
	if intervalMS < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadInterval, intervalMS)
	}
	if len(t) < 2 {
		return nil, nil
	}
	out := make(traj.Piecewise, 0, 16)
	prev := 0
	nextCut := t[0].T + intervalMS
	for i := 1; i < len(t)-1; i++ {
		if t[i].T >= nextCut {
			out = append(out, traj.NewSegment(t, prev, i))
			prev = i
			for nextCut <= t[i].T {
				nextCut += intervalMS
			}
		}
	}
	out = append(out, traj.NewSegment(t, prev, len(t)-1))
	return out, nil
}
