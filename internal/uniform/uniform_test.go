package uniform

import (
	"errors"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

func TestNthPoint(t *testing.T) {
	tr := gen.Line(10, 5)
	pw, err := NthPoint(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Kept indices: 0,3,6,9 → 3 segments.
	if len(pw) != 3 {
		t.Fatalf("%d segments, want 3: %v", len(pw), pw)
	}
	if pw[0].StartIdx != 0 || pw[len(pw)-1].EndIdx != 9 {
		t.Errorf("coverage [%d..%d]", pw[0].StartIdx, pw[len(pw)-1].EndIdx)
	}
	if err := pw.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNthPointKeepsLast(t *testing.T) {
	tr := gen.Line(11, 5)
	pw, err := NthPoint(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Kept: 0,3,6,9, plus forced last 10.
	if pw[len(pw)-1].EndIdx != 10 {
		t.Errorf("last EndIdx = %d, want 10", pw[len(pw)-1].EndIdx)
	}
}

func TestNthPointStrideOne(t *testing.T) {
	tr := gen.Line(5, 5)
	pw, err := NthPoint(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 4 {
		t.Errorf("stride 1: %d segments, want 4 (no compression)", len(pw))
	}
}

func TestNthPointErrors(t *testing.T) {
	if _, err := NthPoint(gen.Line(5, 1), 0); !errors.Is(err, ErrBadStride) {
		t.Errorf("stride 0: %v", err)
	}
	pw, err := NthPoint(traj.Trajectory{{T: 1}}, 2)
	if err != nil || pw != nil {
		t.Errorf("single point: %v %v", pw, err)
	}
}

func TestTimeUniform(t *testing.T) {
	tr := gen.Line(10, 5) // 1 point per second
	pw, err := TimeUniform(tr, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if err := pw.Validate(); err != nil {
		t.Error(err)
	}
	if pw[0].StartIdx != 0 || pw[len(pw)-1].EndIdx != 9 {
		t.Errorf("coverage [%d..%d]", pw[0].StartIdx, pw[len(pw)-1].EndIdx)
	}
	// At 3 s intervals over 9 s, expect ~3 cut points.
	if len(pw) < 2 || len(pw) > 4 {
		t.Errorf("%d segments for 3 s buckets over 9 s", len(pw))
	}
}

func TestTimeUniformErrors(t *testing.T) {
	if _, err := TimeUniform(gen.Line(5, 1), 0); !errors.Is(err, ErrBadInterval) {
		t.Errorf("interval 0: %v", err)
	}
}

func TestNoErrorGuarantee(t *testing.T) {
	// Document-by-test: uniform sampling has unbounded error — a zigzag
	// sampled at the wrong stride misses every extreme.
	tr := gen.Zigzag(100, 10, 500, 2)
	pw, err := NthPoint(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.LineDistance(tr[i]); d > worst {
				worst = d
			}
		}
	}
	if worst < 100 {
		t.Errorf("expected large unbounded error, got %v", worst)
	}
}
