package bottomup

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/dp"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func TestErrorBound(t *testing.T) {
	workloads := map[string]traj.Trajectory{
		"line":        gen.Line(200, 15),
		"noisy-line":  gen.NoisyLine(300, 20, 5, 11),
		"circle":      gen.Circle(300, 200, 0.05),
		"zigzag":      gen.Zigzag(300, 10, 60, 7),
		"random-walk": gen.RandomWalk(400, 25, 3),
		"turns":       gen.SuddenTurns(300, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 300, 21),
		"sercar":      gen.One(gen.SerCar, 300, 22),
	}
	for name, tr := range workloads {
		for _, zeta := range []float64{5, 20, 40, 100} {
			pw, err := Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
		}
	}
}

// The per-segment invariant is stronger than the ∃-pair bound: every
// interior point stays within ζ of its own (merged) segment.
func TestPerSegmentInvariant(t *testing.T) {
	tr := gen.One(gen.SerCar, 400, 7)
	zeta := 30.0
	pw, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.LineDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d deviates %v", i, d)
			}
		}
	}
}

func TestExactPartition(t *testing.T) {
	tr := gen.RandomWalk(300, 30, 9)
	pw, err := Simplify(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pw[0].StartIdx != 0 || pw[len(pw)-1].EndIdx != len(tr)-1 {
		t.Errorf("coverage [%d..%d]", pw[0].StartIdx, pw[len(pw)-1].EndIdx)
	}
	for i := 1; i < len(pw); i++ {
		if pw[i].StartIdx != pw[i-1].EndIdx {
			t.Errorf("gap at segment %d", i)
		}
	}
}

func TestStraightLineFullMerge(t *testing.T) {
	pw, err := Simplify(gen.Line(500, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("collinear input: %d segments, want 1", len(pw))
	}
}

// Bottom-up merging is greedy-global; on smooth data it should be in DP's
// league for compression (within 2× segments).
func TestComparableToDP(t *testing.T) {
	tr := gen.One(gen.SerCar, 500, 42)
	bu, err := Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	dpPW, err := dp.Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(bu) > 2*len(dpPW)+2 {
		t.Errorf("bottom-up %d segments vs DP %d", len(bu), len(dpPW))
	}
	t.Logf("bottom-up=%d DP=%d", len(bu), len(dpPW))
}

func TestMonotoneInEpsilon(t *testing.T) {
	tr := gen.One(gen.Taxi, 300, 5)
	prev := math.MaxInt
	for _, zeta := range []float64{5, 20, 40, 80} {
		pw, err := Simplify(tr, zeta)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) > prev {
			t.Errorf("ζ=%v: %d segments > previous %d", zeta, len(pw), prev)
		}
		prev = len(pw)
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		pw, err := Simplify(gen.Line(n, 1), 5)
		if err != nil || len(pw) != 0 {
			t.Errorf("n=%d: %v %v", n, pw, err)
		}
	}
	pw, err := Simplify(gen.Line(2, 1), 5)
	if err != nil || len(pw) != 1 {
		t.Errorf("n=2: %v %v", pw, err)
	}
	pw, err = Simplify(gen.Line(3, 1), 5)
	if err != nil || len(pw) != 1 {
		t.Errorf("n=3 collinear: %v %v", pw, err)
	}
}

func TestBadEpsilon(t *testing.T) {
	for _, zeta := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

// The defining bottom-up property: it merges the cheapest pair first, so a
// spike point ends up isolated between two long merged runs.
func TestSpikeIsolation(t *testing.T) {
	tr := gen.Line(21, 10)
	tr[10].Y = 100 // spike in the middle
	pw, err := Simplify(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	hit := false
	for _, s := range pw {
		if s.StartIdx == 10 || s.EndIdx == 10 {
			hit = true
		}
	}
	if !hit {
		t.Errorf("spike not isolated: %v", pw)
	}
	if len(pw) > 4 {
		t.Errorf("%d segments around one spike, want ≤4", len(pw))
	}
}
