// Package bottomup implements the bottom-up batch line-simplification
// class the paper's related work describes (§2, [3][11] — Keogh et al.'s
// segmentation): start from the finest representation (one segment per
// adjacent point pair) and repeatedly merge the pair of neighbouring
// segments whose merged line has the smallest maximum deviation, while
// that deviation stays within ζ. It is the natural complement to
// Douglas-Peucker's top-down splitting and serves as an additional
// error-bounded baseline.
package bottomup

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"trajsim/internal/traj"
)

// ErrBadEpsilon is returned for non-positive error bounds.
var ErrBadEpsilon = errors.New("bottomup: error bound ζ must be positive and finite")

// node is one current segment in the doubly-linked segment chain.
type node struct {
	lo, hi     int // inclusive source range
	prev, next int // neighbour node indices, −1 at the ends
	alive      bool
	version    int // bumped on every merge to invalidate stale heap entries
}

// candidate is a potential merge of node i with its successor.
type candidate struct {
	cost     float64
	n        int // node index
	version  int // node version the cost was computed for
	nextVer  int // successor version
	nextNode int
}

type pq []candidate

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].cost < p[j].cost }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(candidate)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Simplify compresses t bottom-up under error bound zeta (meters).
// O(n log n) merges with O(range) cost evaluation per merge; O(n) space.
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return nil, fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	n := len(t)
	if n < 2 {
		return nil, nil
	}
	nodes := make([]node, n-1)
	for i := range nodes {
		nodes[i] = node{lo: i, hi: i + 1, prev: i - 1, next: i + 1, alive: true}
	}
	nodes[len(nodes)-1].next = -1

	cost := func(a, b *node) float64 {
		seg := traj.NewSegment(t, a.lo, b.hi)
		var worst float64
		for i := a.lo + 1; i < b.hi; i++ {
			if d := seg.LineDistance(t[i]); d > worst {
				worst = d
			}
		}
		return worst
	}

	h := &pq{}
	for i := 0; i+1 < len(nodes); i++ {
		heap.Push(h, candidate{
			cost: cost(&nodes[i], &nodes[i+1]), n: i,
			version: 0, nextNode: i + 1, nextVer: 0,
		})
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(candidate)
		a := &nodes[c.n]
		if !a.alive || a.version != c.version || a.next != c.nextNode {
			continue // stale entry
		}
		b := &nodes[c.nextNode]
		if !b.alive || b.version != c.nextVer {
			continue
		}
		if c.cost > zeta {
			break // cheapest merge already violates the bound
		}
		// Merge b into a.
		a.hi = b.hi
		a.next = b.next
		a.version++
		b.alive = false
		if b.next >= 0 {
			nodes[b.next].prev = c.n
		}
		// Refresh merge candidates on both sides.
		if a.next >= 0 {
			nb := &nodes[a.next]
			heap.Push(h, candidate{
				cost: cost(a, nb), n: c.n,
				version: a.version, nextNode: a.next, nextVer: nb.version,
			})
		}
		if a.prev >= 0 {
			pa := &nodes[a.prev]
			heap.Push(h, candidate{
				cost: cost(pa, a), n: a.prev,
				version: pa.version, nextNode: c.n, nextVer: a.version,
			})
		}
	}

	out := make(traj.Piecewise, 0, 16)
	for i := 0; i >= 0; {
		nd := &nodes[i]
		out = append(out, traj.NewSegment(t, nd.lo, nd.hi))
		i = nd.next
	}
	return out, nil
}
