// Package delta implements the lossless delta-compression baseline the
// paper's related work discusses ([19], Trajic's simple ancestor): each
// point is stored as the zigzag-varint difference from its predecessor
// after fixed-point quantization. It reconstructs the quantized trajectory
// exactly and achieves modest byte-level compression — the property the
// paper cites ("zero error ... compression ratio is relatively poor").
package delta

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/enc"
	"trajsim/internal/traj"
)

// Codec holds the quantization parameters.
type Codec struct {
	// QuantXY is the spatial resolution in meters per unit. The default
	// (zero value) is 1 mm, far below GPS noise.
	QuantXY float64
	// QuantT is the temporal resolution in milliseconds per unit. The
	// default (zero value) is 1 ms.
	QuantT int64
}

const (
	defaultQuantXY = 0.001
	defaultQuantT  = 1
	magic          = 0x544a44 // "TJD"
)

// Errors returned by Decode.
var (
	ErrBadMagic  = errors.New("delta: bad magic")
	ErrTruncated = errors.New("delta: truncated stream")
)

func (c Codec) params() (float64, int64) {
	q, qt := c.QuantXY, c.QuantT
	if q <= 0 {
		q = defaultQuantXY
	}
	if qt <= 0 {
		qt = defaultQuantT
	}
	return q, qt
}

// Encode compresses t losslessly (up to quantization).
func (c Codec) Encode(t traj.Trajectory) []byte {
	q, qt := c.params()
	b := make([]byte, 0, 16+len(t)*6)
	b = enc.AppendUvarint(b, magic)
	b = enc.AppendUvarint(b, uint64(len(t)))
	var px, py, pt int64
	for i, p := range t {
		x := int64(math.Round(p.X / q))
		y := int64(math.Round(p.Y / q))
		tm := p.T / qt
		if i == 0 {
			b = enc.AppendVarint(b, x)
			b = enc.AppendVarint(b, y)
			b = enc.AppendVarint(b, tm)
		} else {
			b = enc.AppendVarint(b, x-px)
			b = enc.AppendVarint(b, y-py)
			b = enc.AppendVarint(b, tm-pt)
		}
		px, py, pt = x, y, tm
	}
	return b
}

// Decode reconstructs the quantized trajectory.
func (c Codec) Decode(b []byte) (traj.Trajectory, error) {
	q, qt := c.params()
	m, n, err := enc.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	b = b[n:]
	count, n, err := enc.Uvarint(b)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	b = b[n:]
	out := make(traj.Trajectory, 0, count)
	var x, y, tm int64
	for i := uint64(0); i < count; i++ {
		var dx, dy, dt int64
		for _, dst := range []*int64{&dx, &dy, &dt} {
			v, n, err := enc.Varint(b)
			if err != nil {
				return nil, fmt.Errorf("%w at point %d: %v", ErrTruncated, i, err)
			}
			*dst = v
			b = b[n:]
		}
		x, y, tm = x+dx, y+dy, tm+dt
		out = append(out, traj.Point{X: float64(x) * q, Y: float64(y) * q, T: tm * qt})
	}
	return out, nil
}

// RawSize returns the uncompressed size of t in bytes (two float64
// coordinates plus an int64 timestamp per point), the denominator of
// ByteRatio.
func RawSize(t traj.Trajectory) int { return len(t) * 24 }

// ByteRatio returns encoded size / raw size; lower is better.
func (c Codec) ByteRatio(t traj.Trajectory) float64 {
	if len(t) == 0 {
		return 0
	}
	return float64(len(c.Encode(t))) / float64(RawSize(t))
}
