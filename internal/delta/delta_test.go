package delta

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

func TestRoundTripExactAtQuantization(t *testing.T) {
	c := Codec{}
	tr := gen.One(gen.SerCar, 500, 3)
	dec, err := c.Decode(c.Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(tr) {
		t.Fatalf("decoded %d points, want %d", len(dec), len(tr))
	}
	for i := range tr {
		if math.Abs(dec[i].X-tr[i].X) > 0.0005+1e-12 || math.Abs(dec[i].Y-tr[i].Y) > 0.0005+1e-12 {
			t.Fatalf("point %d drifted: %v vs %v", i, dec[i], tr[i])
		}
		if dec[i].T != tr[i].T {
			t.Fatalf("point %d time drifted: %d vs %d", i, dec[i].T, tr[i].T)
		}
	}
	// Lossless at quantized resolution: re-encoding the decode is identical.
	dec2, err := c.Decode(c.Encode(dec))
	if err != nil {
		t.Fatal(err)
	}
	for i := range dec {
		if dec[i] != dec2[i] {
			t.Fatalf("point %d not stable: %v vs %v", i, dec[i], dec2[i])
		}
	}
}

func TestCompressionBeatsRaw(t *testing.T) {
	c := Codec{QuantXY: 0.01} // 1 cm, below GPS noise
	for _, preset := range gen.Presets {
		tr := gen.One(preset, 1000, 9)
		r := c.ByteRatio(tr)
		if r >= 1 {
			t.Errorf("%v: byte ratio %v ≥ 1", preset, r)
		}
		// The paper's point: lossless ratios are modest, nothing like the
		// 2–20%% of LS algorithms.
		if r < 0.05 {
			t.Errorf("%v: byte ratio %v implausibly small for lossless", preset, r)
		}
	}
}

func TestCustomQuantization(t *testing.T) {
	c := Codec{QuantXY: 1.0, QuantT: 1000}
	tr := gen.One(gen.Taxi, 200, 4)
	dec, err := c.Decode(c.Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if math.Abs(dec[i].X-tr[i].X) > 0.5+1e-9 {
			t.Fatalf("point %d x drift %v at 1 m quantization", i, dec[i].X-tr[i].X)
		}
		if d := dec[i].T - tr[i].T; d < -1000 || d > 1000 {
			t.Fatalf("point %d t drift %d at 1 s quantization", i, d)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	c := Codec{}
	if _, err := c.Decode(nil); !errors.Is(err, ErrTruncated) {
		t.Errorf("nil: %v", err)
	}
	if _, err := c.Decode([]byte{0x01}); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	good := c.Encode(gen.Line(10, 5))
	if _, err := c.Decode(good[:len(good)-3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v", err)
	}
}

func TestEmptyTrajectory(t *testing.T) {
	c := Codec{}
	dec, err := c.Decode(c.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("decoded %d points from empty input", len(dec))
	}
	if RawSize(traj.Trajectory{}) != 0 {
		t.Error("RawSize of empty should be 0")
	}
	if c.ByteRatio(nil) != 0 {
		t.Error("ByteRatio of empty should be 0")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	c := Codec{}
	tr := traj.Trajectory{
		{X: -1000.123, Y: -2000.456, T: 0},
		{X: -999.5, Y: -2001.25, T: 1500},
		{X: 500.75, Y: -1999, T: 2750},
	}
	dec, err := c.Decode(c.Encode(tr))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr {
		if math.Abs(dec[i].X-tr[i].X) > 0.001 || math.Abs(dec[i].Y-tr[i].Y) > 0.001 {
			t.Errorf("point %d: %v vs %v", i, dec[i], tr[i])
		}
	}
}
