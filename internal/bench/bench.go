// Package bench is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (§6) on the synthetic dataset
// surrogates, at a configurable scale. cmd/trajbench is its CLI and the
// root bench_test.go exposes each experiment as a testing.B benchmark.
package bench

import (
	"fmt"
	"time"

	"trajsim/internal/algo"
	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// Scale sizes the experiments. The paper ran on 498M–1.31G point datasets;
// these are laptop-scale surrogates preserving the relative comparisons.
type Scale struct {
	Name string
	// SubsetTraj trajectories are used by the "chose 100 trajectories"
	// experiments (Exp-1.1, Exp-2.3); their length is the largest entry of
	// SizeSweep.
	SubsetTraj int
	// SizeSweep lists the |T| values of Exp-1.1 (Figure 12).
	SizeSweep []int
	// WholeTraj × WholePoints sizes the "entire dataset" experiments.
	WholeTraj   int
	WholePoints int
	// Repeats is how often timed runs repeat (the paper repeats 3×).
	Repeats int
	// Zetas is the error-bound sweep for ratio/error experiments (m).
	Zetas []float64
	// TimeZetas is the sweep for Exp-1.2/1.3 (m).
	TimeZetas []float64
	// GammaDegrees is the γm sweep of Exp-4.2.
	GammaDegrees []float64
	// Seed anchors dataset generation.
	Seed uint64
}

// Predefined scales.
var (
	// Quick is for unit tests and -short runs.
	Quick = Scale{
		Name:       "quick",
		SubsetTraj: 2, SizeSweep: []int{500, 1000},
		WholeTraj: 2, WholePoints: 800,
		Repeats:      1,
		Zetas:        []float64{10, 40, 100},
		TimeZetas:    []float64{40},
		GammaDegrees: []float64{0, 60, 120, 180},
		Seed:         1,
	}
	// Small is the default CLI scale: minutes, not hours.
	Small = Scale{
		Name:       "small",
		SubsetTraj: 20, SizeSweep: []int{2000, 4000, 6000, 8000, 10000},
		WholeTraj: 25, WholePoints: 5000,
		Repeats:      3,
		Zetas:        []float64{5, 10, 20, 40, 60, 80, 100},
		TimeZetas:    []float64{10, 20, 40, 60, 80, 100},
		GammaDegrees: []float64{0, 15, 30, 45, 60, 75, 90, 105, 120, 135, 150, 165, 180},
		Seed:         1,
	}
	// Full mirrors the paper's counts where feasible (100 trajectories per
	// subset; whole datasets capped at 20k points per trajectory).
	Full = Scale{
		Name:       "full",
		SubsetTraj: 100, SizeSweep: []int{2000, 4000, 6000, 8000, 10000},
		WholeTraj: 100, WholePoints: 20000,
		Repeats:      3,
		Zetas:        []float64{5, 10, 20, 40, 60, 80, 100},
		TimeZetas:    []float64{10, 20, 40, 60, 80, 100},
		GammaDegrees: []float64{0, 15, 30, 45, 60, 75, 90, 105, 120, 135, 150, 165, 180},
		Seed:         1,
	}
)

// ScaleByName resolves quick/small/full.
func ScaleByName(name string) (Scale, error) {
	for _, s := range []Scale{Quick, Small, Full} {
		if s.Name == name {
			return s, nil
		}
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (quick, small, full)", name)
}

// Env holds generated datasets so several experiments share them.
type Env struct {
	Scale  Scale
	whole  map[gen.Preset][]traj.Trajectory
	subset map[gen.Preset][]traj.Trajectory // length = max(SizeSweep)
}

// NewEnv generates all datasets for the scale.
func NewEnv(s Scale) *Env {
	e := &Env{
		Scale:  s,
		whole:  make(map[gen.Preset][]traj.Trajectory, len(gen.Presets)),
		subset: make(map[gen.Preset][]traj.Trajectory, len(gen.Presets)),
	}
	maxSize := 0
	for _, n := range s.SizeSweep {
		if n > maxSize {
			maxSize = n
		}
	}
	for _, p := range gen.Presets {
		e.whole[p] = gen.Spec{Preset: p, Trajectories: s.WholeTraj, Points: s.WholePoints, Seed: s.Seed + uint64(p)*1000}.Generate()
		e.subset[p] = gen.Spec{Preset: p, Trajectories: s.SubsetTraj, Points: maxSize, Seed: s.Seed + 7_000_000 + uint64(p)*1000}.Generate()
	}
	return e
}

// Whole returns the "entire dataset" surrogate for a preset.
func (e *Env) Whole(p gen.Preset) []traj.Trajectory { return e.whole[p] }

// Subset returns prefixes of the subset trajectories truncated to size.
func (e *Env) Subset(p gen.Preset, size int) []traj.Trajectory {
	src := e.subset[p]
	out := make([]traj.Trajectory, len(src))
	for i, t := range src {
		if size > len(t) {
			size = len(t)
		}
		out[i] = t[:size]
	}
	return out
}

// timeAlgorithm measures the best-of-Repeats wall time of compressing all
// trajectories in ds, matching the paper's methodology ("each test was
// repeated over 3 times and the average is reported"; best-of is steadier
// at small scales).
func (e *Env) timeAlgorithm(fn algo.Func, ds []traj.Trajectory, zeta float64) (time.Duration, error) {
	best := time.Duration(0)
	for r := 0; r < e.Scale.Repeats; r++ {
		start := time.Now()
		for _, t := range ds {
			if _, err := fn(t, zeta); err != nil {
				return 0, err
			}
		}
		el := time.Since(start)
		if r == 0 || el < best {
			best = el
		}
	}
	return best, nil
}

// runAll compresses every trajectory, returning the representations.
func runAll(fn algo.Func, ds []traj.Trajectory, zeta float64) ([]traj.Piecewise, error) {
	out := make([]traj.Piecewise, len(ds))
	for i, t := range ds {
		pw, err := fn(t, zeta)
		if err != nil {
			return nil, err
		}
		out[i] = pw
	}
	return out, nil
}

func points(ds []traj.Trajectory) int {
	var n int
	for _, t := range ds {
		n += len(t)
	}
	return n
}
