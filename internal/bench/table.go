package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is a formatted experiment result.
type Table struct {
	ID      string // e.g. "Figure 12"
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Columns, "\t"))
	underline := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		underline[i] = strings.Repeat("-", len(c))
	}
	fmt.Fprintln(tw, strings.Join(underline, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v*100) }
func ms(v float64) string   { return fmt.Sprintf("%.1f", v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func f64s(v float64) string { return fmt.Sprintf("%g", v) }
