package bench

import (
	"fmt"

	"trajsim/internal/algo"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// Extra experiments beyond the paper's figures, supporting two of its
// analytical claims directly.

// ExtraLinearity evidences the complexity claims of §4.3: per-point cost
// of the one-pass algorithms stays flat as |T| grows, while DP's grows.
func (e *Env) ExtraLinearity() (Table, error) {
	t := Table{
		ID:      "Extra A",
		Title:   "Per-point cost (ns/point) vs trajectory size — O(n) evidence",
		Columns: []string{"|T|", "DP", "FBQS", "OPERB", "OPERB-A"},
		Notes: []string{
			"one-pass rows should stay flat; DP grows with |T| (deeper recursion over longer ranges)",
		},
	}
	const zeta = 40
	sizes := e.Scale.SizeSweep
	for _, size := range sizes {
		// Use a single dataset (SerCar) so only |T| varies.
		ds := e.Subset(gen.SerCar, size)
		pts := points(ds)
		row := []string{itoa(size)}
		for _, name := range comparisonNames {
			a, err := algo.Get(name)
			if err != nil {
				return Table{}, err
			}
			d, err := e.timeAlgorithm(a.Fn, ds, zeta)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(pts)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ExtraSamplingRate tests the paper's repeated observation that OPERB's
// relative compression improves on higher sampling rates: one workload,
// resampled at several fixed intervals, ratio of OPERB's ratio to DP's.
func (e *Env) ExtraSamplingRate() (Table, error) {
	t := Table{
		ID:      "Extra B",
		Title:   "OPERB vs DP compression across sampling rates (ζ=40 m)",
		Columns: []string{"Interval (s)", "Points", "DP ratio", "OPERB ratio", "OPERB/DP"},
		Notes: []string{
			"the paper: \"OPERB has a better performance on datasets with high sampling rates\"",
		},
	}
	const zeta = 40
	base := e.Subset(gen.SerCar, e.Scale.SizeSweep[len(e.Scale.SizeSweep)-1])
	operb, err := algo.Get("OPERB")
	if err != nil {
		return Table{}, err
	}
	dp, err := algo.Get("DP")
	if err != nil {
		return Table{}, err
	}
	for _, interval := range []int64{2, 5, 10, 30, 60} {
		ds := make([]traj.Trajectory, 0, len(base))
		for _, tr := range base {
			r, err := traj.Resample(tr, interval*1000)
			if err != nil {
				return Table{}, err
			}
			if len(r) >= 2 {
				ds = append(ds, r)
			}
		}
		dpPW, err := runAll(dp.Fn, ds, zeta)
		if err != nil {
			return Table{}, err
		}
		opPW, err := runAll(operb.Fn, ds, zeta)
		if err != nil {
			return Table{}, err
		}
		dpRatio, err := metrics.DatasetRatio(ds, dpPW)
		if err != nil {
			return Table{}, err
		}
		opRatio, err := metrics.DatasetRatio(ds, opPW)
		if err != nil {
			return Table{}, err
		}
		rel := 0.0
		if dpRatio > 0 {
			rel = opRatio / dpRatio
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", interval), itoa(points(ds)),
			pct(dpRatio), pct(opRatio), pct(rel),
		})
	}
	return t, nil
}
