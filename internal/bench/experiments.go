package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"trajsim/internal/algo"
	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// comparisonNames is the four-algorithm lineup of the paper's headline
// plots.
var comparisonNames = []string{"DP", "FBQS", "OPERB", "OPERB-A"}

// Table1 reproduces Table 1: the dataset summary.
func (e *Env) Table1() (Table, error) {
	t := Table{
		ID:      "Table 1",
		Title:   "Synthetic surrogate trajectory datasets",
		Columns: []string{"Data Set", "Trajectories", "Sampling Rate (s)", "Points/Trajectory", "Total Points"},
		Notes: []string{
			"surrogates for the paper's proprietary Taxi/Truck/SerCar and GeoLife data (see DESIGN.md §3)",
		},
	}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		total := points(ds)
		per := 0
		if len(ds) > 0 {
			per = total / len(ds)
		}
		t.Rows = append(t.Rows, []string{
			p.String(), itoa(len(ds)), p.SamplingDescription(), itoa(per), itoa(total),
		})
	}
	return t, nil
}

// Exp11 reproduces Figure 12: execution time vs trajectory size, ζ=40 m.
func (e *Env) Exp11() (Table, error) {
	t := Table{
		ID:      "Figure 12",
		Title:   "Efficiency vs trajectory size |T| (ζ=40 m)",
		Columns: append([]string{"Data Set", "|T|"}, append(colsMS(comparisonNames), "OPERB vs FBQS", "OPERB vs DP")...),
	}
	const zeta = 40
	for _, p := range gen.Presets {
		for _, size := range e.Scale.SizeSweep {
			ds := e.Subset(p, size)
			row := []string{p.String(), itoa(size)}
			times := make(map[string]float64, len(comparisonNames))
			for _, name := range comparisonNames {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				d, err := e.timeAlgorithm(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				times[name] = float64(d.Microseconds()) / 1000
				row = append(row, ms(times[name]))
			}
			row = append(row,
				speedup(times["FBQS"], times["OPERB"]),
				speedup(times["DP"], times["OPERB"]))
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes, "times in ms over the whole subset; speedups >1 mean OPERB is faster")
	return t, nil
}

// Exp12 reproduces Figure 13: execution time vs error bound ζ.
func (e *Env) Exp12() (Table, error) {
	t := Table{
		ID:      "Figure 13",
		Title:   "Efficiency vs error bound ζ (whole datasets)",
		Columns: append([]string{"Data Set", "ζ (m)"}, append(colsMS(comparisonNames), "OPERB vs FBQS", "OPERB vs DP")...),
	}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.TimeZetas {
			row := []string{p.String(), f64s(zeta)}
			times := make(map[string]float64, len(comparisonNames))
			for _, name := range comparisonNames {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				d, err := e.timeAlgorithm(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				times[name] = float64(d.Microseconds()) / 1000
				row = append(row, ms(times[name]))
			}
			row = append(row,
				speedup(times["FBQS"], times["OPERB"]),
				speedup(times["DP"], times["OPERB"]))
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Exp13 reproduces Figure 14: the efficiency impact of the §4.4
// optimization techniques.
func (e *Env) Exp13() (Table, error) {
	t := Table{
		ID:    "Figure 14",
		Title: "Efficiency of optimization techniques vs ζ",
		Columns: []string{
			"Data Set", "ζ (m)",
			"Raw-OPERB (ms)", "OPERB (ms)", "Raw/Opt",
			"Raw-OPERB-A (ms)", "OPERB-A (ms)", "Raw-A/Opt-A",
		},
	}
	lineup := []string{"Raw-OPERB", "OPERB", "Raw-OPERB-A", "OPERB-A"}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.TimeZetas {
			times := make(map[string]float64, len(lineup))
			for _, name := range lineup {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				d, err := e.timeAlgorithm(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				times[name] = float64(d.Microseconds()) / 1000
			}
			t.Rows = append(t.Rows, []string{
				p.String(), f64s(zeta),
				ms(times["Raw-OPERB"]), ms(times["OPERB"]), pct(times["Raw-OPERB"] / times["OPERB"]),
				ms(times["Raw-OPERB-A"]), ms(times["OPERB-A"]), pct(times["Raw-OPERB-A"] / times["OPERB-A"]),
			})
		}
	}
	return t, nil
}

// Exp21 reproduces Figure 15: compression ratio vs ζ.
func (e *Env) Exp21() (Table, error) {
	t := Table{
		ID:    "Figure 15",
		Title: "Compression ratio vs ζ (lower is better)",
		Columns: []string{
			"Data Set", "ζ (m)", "DP", "FBQS", "OPERB", "OPERB-A",
			"OPERB/FBQS", "OPERB/DP", "OPERB-A/DP",
		},
	}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.Zetas {
			ratios := make(map[string]float64, len(comparisonNames))
			for _, name := range comparisonNames {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				pws, err := runAll(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				r, err := metrics.DatasetRatio(ds, pws)
				if err != nil {
					return Table{}, err
				}
				ratios[name] = r
			}
			t.Rows = append(t.Rows, []string{
				p.String(), f64s(zeta),
				pct(ratios["DP"]), pct(ratios["FBQS"]), pct(ratios["OPERB"]), pct(ratios["OPERB-A"]),
				pct(ratios["OPERB"] / ratios["FBQS"]),
				pct(ratios["OPERB"] / ratios["DP"]),
				pct(ratios["OPERB-A"] / ratios["DP"]),
			})
		}
	}
	t.Notes = append(t.Notes, "relative columns mirror the paper's summary (OPERB ≈ DP/FBQS, OPERB-A < DP)")
	return t, nil
}

// Exp22 reproduces Figure 16: the ratio impact of the optimizations.
func (e *Env) Exp22() (Table, error) {
	t := Table{
		ID:    "Figure 16",
		Title: "Compression-ratio impact of optimization techniques vs ζ",
		Columns: []string{
			"Data Set", "ζ (m)",
			"Raw-OPERB", "OPERB", "Opt/Raw",
			"Raw-OPERB-A", "OPERB-A", "Opt-A/Raw-A",
		},
	}
	lineup := []string{"Raw-OPERB", "OPERB", "Raw-OPERB-A", "OPERB-A"}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.Zetas {
			ratios := make(map[string]float64, len(lineup))
			for _, name := range lineup {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				pws, err := runAll(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				r, err := metrics.DatasetRatio(ds, pws)
				if err != nil {
					return Table{}, err
				}
				ratios[name] = r
			}
			t.Rows = append(t.Rows, []string{
				p.String(), f64s(zeta),
				pct(ratios["Raw-OPERB"]), pct(ratios["OPERB"]), pct(ratios["OPERB"] / ratios["Raw-OPERB"]),
				pct(ratios["Raw-OPERB-A"]), pct(ratios["OPERB-A"]), pct(ratios["OPERB-A"] / ratios["Raw-OPERB-A"]),
			})
		}
	}
	return t, nil
}

// Exp23 reproduces Figure 17: the distribution Z(k) of points per line
// segment at ζ=40 m.
func (e *Env) Exp23() (Table, error) {
	t := Table{
		ID:      "Figure 17",
		Title:   "Distribution of line segments Z(k) (ζ=40 m, subset trajectories)",
		Columns: []string{"Data Set", "Algorithm", "k=1", "2", "3", "4", "5", "6-9", "10-19", "20-49", "50-99", "100+"},
		Notes: []string{
			"heavy segments (large k) drive low compression ratios; OPERB-A and DP dominate there",
			"our OPERB emits no degenerate one-point segments (see DESIGN.md §4), so k=1 is 0",
		},
	}
	const zeta = 40
	size := e.Scale.SizeSweep[len(e.Scale.SizeSweep)-1]
	for _, p := range gen.Presets {
		ds := e.Subset(p, size)
		for _, name := range comparisonNames {
			a, err := algo.Get(name)
			if err != nil {
				return Table{}, err
			}
			pws, err := runAll(a.Fn, ds, zeta)
			if err != nil {
				return Table{}, err
			}
			z := metrics.Distribution(pws)
			row := []string{p.String(), name}
			for _, b := range metrics.BucketizeDistribution(z) {
				row = append(row, itoa(b.Segments))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Exp3 reproduces Figure 18: average error vs ζ.
func (e *Env) Exp3() (Table, error) {
	t := Table{
		ID:      "Figure 18",
		Title:   "Average error (m) vs ζ",
		Columns: []string{"Data Set", "ζ (m)", "DP", "FBQS", "OPERB", "OPERB-A"},
	}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.Zetas {
			row := []string{p.String(), f64s(zeta)}
			for _, name := range comparisonNames {
				a, err := algo.Get(name)
				if err != nil {
					return Table{}, err
				}
				pws, err := runAll(a.Fn, ds, zeta)
				if err != nil {
					return Table{}, err
				}
				avg, err := metrics.DatasetAvgError(ds, pws)
				if err != nil {
					return Table{}, err
				}
				row = append(row, f2(avg))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// Exp41 reproduces Figure 19(1): OPERB-A's patching ratio vs ζ.
func (e *Env) Exp41() (Table, error) {
	t := Table{
		ID:      "Figure 19(1)",
		Title:   "Patching ratio vs ζ (γm=π/3)",
		Columns: []string{"Data Set", "ζ (m)", "Anomalous (Na)", "Patched (Np)", "Patching Ratio"},
	}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range e.Scale.TimeZetas {
			st, err := patchStats(ds, zeta, core.DefaultOptions())
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				p.String(), f64s(zeta), itoa(st.Anomalous), itoa(st.Patched), pct(st.Ratio()),
			})
		}
	}
	return t, nil
}

// Exp42 reproduces Figure 19(2): patching ratio vs γm at ζ=40 m.
func (e *Env) Exp42() (Table, error) {
	t := Table{
		ID:      "Figure 19(2)",
		Title:   "Patching ratio vs γm (ζ=40 m, subset trajectories)",
		Columns: []string{"Data Set", "γm (deg)", "Anomalous (Na)", "Patched (Np)", "Patching Ratio"},
	}
	const zeta = 40
	size := e.Scale.SizeSweep[len(e.Scale.SizeSweep)-1]
	for _, p := range gen.Presets {
		ds := e.Subset(p, size)
		for _, deg := range e.Scale.GammaDegrees {
			opts := core.DefaultOptions()
			opts.Gamma = deg * math.Pi / 180
			if opts.Gamma == 0 {
				opts.Gamma = 1e-9 // Options treats exactly 0 as "use default γ"
			}
			st, err := patchStats(ds, zeta, opts)
			if err != nil {
				return Table{}, err
			}
			t.Rows = append(t.Rows, []string{
				p.String(), f64s(deg), itoa(st.Anomalous), itoa(st.Patched), pct(st.Ratio()),
			})
		}
	}
	return t, nil
}

func patchStats(ds []traj.Trajectory, zeta float64, opts core.Options) (core.PatchStats, error) {
	var total core.PatchStats
	for _, t := range ds {
		_, st, err := core.SimplifyAggressiveOpts(t, zeta, opts)
		if err != nil {
			return core.PatchStats{}, err
		}
		total.Anomalous += st.Anomalous
		total.Patched += st.Patched
	}
	return total, nil
}

// Experiments maps experiment IDs to runners.
func (e *Env) Experiments() map[string]func() (Table, error) {
	return map[string]func() (Table, error){
		"table1":         e.Table1,
		"1.1":            e.Exp11,
		"1.2":            e.Exp12,
		"1.3":            e.Exp13,
		"2.1":            e.Exp21,
		"2.2":            e.Exp22,
		"2.3":            e.Exp23,
		"3":              e.Exp3,
		"4.1":            e.Exp41,
		"4.2":            e.Exp42,
		"extra.linear":   e.ExtraLinearity,
		"extra.sampling": e.ExtraSamplingRate,
	}
}

// ExperimentIDs returns the runner keys in presentation order. The two
// "extra" entries are not paper artifacts; they evidence the paper's
// complexity and sampling-rate claims directly.
func ExperimentIDs() []string {
	return []string{
		"table1", "1.1", "1.2", "1.3", "2.1", "2.2", "2.3", "3", "4.1", "4.2",
		"extra.linear", "extra.sampling",
	}
}

// Run executes one experiment by ID.
func (e *Env) Run(id string) (Table, error) {
	fn, ok := e.Experiments()[id]
	if !ok {
		ids := ExperimentIDs()
		sort.Strings(ids)
		return Table{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
	}
	return fn()
}

// RunAll executes every experiment in order, writing tables to w.
func (e *Env) RunAll(w io.Writer) error {
	for _, id := range ExperimentIDs() {
		t, err := e.Run(id)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		if err := t.Format(w); err != nil {
			return err
		}
	}
	return nil
}

func colsMS(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = n + " (ms)"
	}
	return out
}

func speedup(base, fast float64) string {
	if fast <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", base/fast)
}
