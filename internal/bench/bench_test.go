package bench

import (
	"bytes"
	"strings"
	"testing"

	"trajsim/internal/gen"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "small", "full"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ScaleByName(%s) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Error("bogus scale should fail")
	}
}

func TestEnvDatasets(t *testing.T) {
	e := NewEnv(Quick)
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		if len(ds) != Quick.WholeTraj {
			t.Errorf("%v: %d whole trajectories", p, len(ds))
		}
		for _, tr := range ds {
			if len(tr) != Quick.WholePoints {
				t.Errorf("%v: %d points", p, len(tr))
			}
		}
		sub := e.Subset(p, 500)
		if len(sub) != Quick.SubsetTraj {
			t.Errorf("%v: %d subset trajectories", p, len(sub))
		}
		for _, tr := range sub {
			if len(tr) != 500 {
				t.Errorf("%v: subset size %d, want 500", p, len(tr))
			}
		}
	}
}

func TestSubsetClampsToAvailable(t *testing.T) {
	e := NewEnv(Quick)
	sub := e.Subset(gen.Taxi, 10_000_000)
	for _, tr := range sub {
		if len(tr) != 1000 { // max of Quick.SizeSweep
			t.Errorf("clamped subset size %d", len(tr))
		}
	}
}

// Every experiment runs end-to-end at quick scale and yields rows.
func TestAllExperimentsProduceTables(t *testing.T) {
	e := NewEnv(Quick)
	for _, id := range ExperimentIDs() {
		tbl, err := e.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: no rows", id)
		}
		if len(tbl.Columns) == 0 {
			t.Errorf("%s: no columns", id)
		}
		for i, r := range tbl.Rows {
			if len(r) != len(tbl.Columns) {
				t.Errorf("%s row %d: %d cells for %d columns", id, i, len(r), len(tbl.Columns))
			}
		}
		var buf bytes.Buffer
		if err := tbl.Format(&buf); err != nil {
			t.Errorf("%s: format: %v", id, err)
		}
		if !strings.Contains(buf.String(), tbl.ID) {
			t.Errorf("%s: formatted output lacks ID", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	e := NewEnv(Quick)
	if _, err := e.Run("9.9"); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunAllWritesEverything(t *testing.T) {
	e := NewEnv(Quick)
	var buf bytes.Buffer
	if err := e.RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"Table 1", "Figure 12", "Figure 13", "Figure 14", "Figure 15", "Figure 16", "Figure 17", "Figure 18", "Figure 19(1)", "Figure 19(2)"} {
		if !strings.Contains(out, id) {
			t.Errorf("output missing %s", id)
		}
	}
}

// Sanity of the headline shape at quick scale: OPERB-A's aggregate ratio
// beats Raw-OPERB's on every dataset (weaker than the paper's claims, but
// stable at tiny scale).
func TestHeadlineShape(t *testing.T) {
	e := NewEnv(Quick)
	tbl, err := e.Exp22()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		rawOperb := row[2]
		operbA := row[6]
		if rawOperb == "0.0%" || operbA == "0.0%" {
			t.Errorf("degenerate ratios in row %v", row)
		}
	}
}
