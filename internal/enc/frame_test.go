package enc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		b := AppendFrame(nil, payload)
		got, n, err := Frame(b, len(payload)+1)
		return err == nil && n == len(b) && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameChains(t *testing.T) {
	b := AppendFrame(nil, []byte("one"))
	b = AppendFrame(b, nil)
	b = AppendFrame(b, []byte("three"))
	want := []string{"one", "", "three"}
	for i := 0; len(b) > 0; i++ {
		payload, n, err := Frame(b, 16)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(payload) != want[i] {
			t.Fatalf("frame %d: %q, want %q", i, payload, want[i])
		}
		b = b[n:]
	}
}

func TestFrameTornTail(t *testing.T) {
	whole := AppendFrame(nil, []byte("record body"))
	// Every proper prefix fails — that is what makes torn-tail recovery a
	// simple scan-until-error.
	for cut := 0; cut < len(whole); cut++ {
		if _, _, err := Frame(whole[:cut], 64); err == nil {
			t.Errorf("prefix of %d/%d bytes decoded", cut, len(whole))
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	whole := AppendFrame(nil, []byte("record body"))
	// Flipping any bit past the length prefix trips the checksum (or, for
	// the final CRC bytes, the comparison itself).
	for i := 1; i < len(whole); i++ {
		mut := append([]byte(nil), whole...)
		mut[i] ^= 0x40
		if _, _, err := Frame(mut, 64); err == nil {
			t.Errorf("flip at byte %d decoded", i)
		}
	}
}

func TestFrameSizeLimit(t *testing.T) {
	b := AppendFrame(nil, make([]byte, 100))
	if _, _, err := Frame(b, 99); !errors.Is(err, ErrFrameSize) {
		t.Errorf("limit 99: %v", err)
	}
	if _, n, err := Frame(b, 100); err != nil || n != len(b) {
		t.Errorf("limit 100: n=%d err=%v", n, err)
	}
	// A garbage length prefix larger than the limit is rejected before any
	// allocation or read happens.
	huge := AppendUvarint(nil, 1<<60)
	if _, _, err := Frame(huge, 1<<20); !errors.Is(err, ErrFrameSize) {
		t.Errorf("huge declared length: %v", err)
	}
}
