package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Frames are the durability layer under the varint payloads: a uvarint
// length prefix, the payload bytes, and a CRC-32C of the payload. A torn
// or bit-flipped record fails the length or checksum test instead of
// decoding into garbage, which is what lets a log recover by truncating
// at the first bad frame.

// ErrChecksum is returned when a frame's CRC-32C does not match its
// payload.
var ErrChecksum = errors.New("enc: frame checksum mismatch")

// ErrFrameSize is returned when a frame declares a payload larger than
// the decoder's limit — on a log scan this is indistinguishable from a
// torn length prefix, so callers treat it like a torn tail.
var ErrFrameSize = errors.New("enc: frame exceeds size limit")

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameCRCLen is the size of the trailing checksum.
const frameCRCLen = 4

// AppendFrame appends payload to dst as a checksummed frame:
// uvarint(len) | payload | crc32c(payload).
func AppendFrame(dst, payload []byte) []byte {
	dst = AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli))
}

// Frame decodes one frame from the front of b, rejecting payloads larger
// than maxPayload. It returns the payload (aliasing b, not a copy) and
// the total number of bytes the frame occupies. Any error — short
// buffer, oversized length, checksum mismatch — means b does not start
// with a complete valid frame.
func Frame(b []byte, maxPayload int) ([]byte, int, error) {
	size, n, err := Uvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if size > uint64(maxPayload) {
		return nil, 0, fmt.Errorf("%w: %d > %d bytes", ErrFrameSize, size, maxPayload)
	}
	total := n + int(size) + frameCRCLen
	if len(b) < total {
		return nil, 0, ErrShortBuffer
	}
	payload := b[n : n+int(size)]
	want := binary.LittleEndian.Uint32(b[n+int(size):])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, 0, fmt.Errorf("%w: got %08x, frame says %08x", ErrChecksum, got, want)
	}
	return payload, total, nil
}
