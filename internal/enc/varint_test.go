package enc

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := AppendUvarint(nil, v)
		got, n, err := Uvarint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(v int64) bool {
		b := AppendVarint(nil, v)
		got, n, err := Varint(b)
		return err == nil && n == len(b) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVarintExtremes(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64} {
		b := AppendVarint(nil, v)
		got, _, err := Varint(b)
		if err != nil || got != v {
			t.Errorf("round trip %d: got %d err %v", v, got, err)
		}
	}
}

func TestShortBuffer(t *testing.T) {
	if _, _, err := Uvarint(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("empty: %v", err)
	}
	if _, _, err := Varint(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("empty: %v", err)
	}
	// A long run of continuation bytes overflows.
	b := make([]byte, 11)
	for i := range b {
		b[i] = 0x80
	}
	b[10] = 0x02
	if _, _, err := Uvarint(b); !errors.Is(err, ErrOverflow) {
		t.Errorf("overflow: %v", err)
	}
}

func TestAppendChains(t *testing.T) {
	b := AppendUvarint(nil, 300)
	b = AppendVarint(b, -42)
	b = AppendUvarint(b, 7)
	u, n, err := Uvarint(b)
	if err != nil || u != 300 {
		t.Fatalf("first: %d %v", u, err)
	}
	b = b[n:]
	v, n, err := Varint(b)
	if err != nil || v != -42 {
		t.Fatalf("second: %d %v", v, err)
	}
	b = b[n:]
	u, _, err = Uvarint(b)
	if err != nil || u != 7 {
		t.Fatalf("third: %d %v", u, err)
	}
}
