// Package enc provides zigzag/varint primitives shared by the delta
// compressor and the binary trajectory codec. It wraps encoding/binary
// with append-style helpers and explicit error reporting.
package enc

import (
	"encoding/binary"
	"errors"
)

// ErrShortBuffer is returned when a decode runs out of input.
var ErrShortBuffer = errors.New("enc: short buffer")

// ErrOverflow is returned when a varint is malformed.
var ErrOverflow = errors.New("enc: varint overflows 64 bits")

// AppendUvarint appends the unsigned varint encoding of v to b.
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// AppendVarint appends the zigzag-encoded signed varint of v to b.
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// Uvarint decodes an unsigned varint from b, returning the value and the
// number of bytes consumed.
func Uvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	switch {
	case n == 0:
		return 0, 0, ErrShortBuffer
	case n < 0:
		return 0, 0, ErrOverflow
	}
	return v, n, nil
}

// Varint decodes a zigzag-encoded signed varint from b.
func Varint(b []byte) (int64, int, error) {
	v, n := binary.Varint(b)
	switch {
	case n == 0:
		return 0, 0, ErrShortBuffer
	case n < 0:
		return 0, 0, ErrOverflow
	}
	return v, n, nil
}
