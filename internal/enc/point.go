package enc

import "math"

// PointDelta is the quantized delta codec every trajsim point stream
// shares — the PWB1 piecewise encoding, the TSB1 ingest wire format and
// the segstore record format all write points the same way: coordinates
// rounded to a quantum, then x, y, t emitted as zigzag varint deltas
// against the previous point. One PointDelta carries the running state
// of one such stream; encode and decode sides must walk points in the
// same order to agree.
//
// The zero value is ready to use once Quant is set.
type PointDelta struct {
	// Quant is the coordinate quantum in meters per count (e.g. 0.01
	// for 1 cm). Timestamps are not quantized.
	Quant   float64
	x, y, t int64
}

// Append appends one point, delta-coded against the previous one.
func (d *PointDelta) Append(dst []byte, x, y float64, t int64) []byte {
	qx := int64(math.Round(x / d.Quant))
	qy := int64(math.Round(y / d.Quant))
	dst = AppendVarint(dst, qx-d.x)
	dst = AppendVarint(dst, qy-d.y)
	dst = AppendVarint(dst, t-d.t)
	d.x, d.y, d.t = qx, qy, t
	return dst
}

// Next decodes one point from the front of b, returning the dequantized
// coordinates, the timestamp, and the bytes consumed.
func (d *PointDelta) Next(b []byte) (x, y float64, t int64, n int, err error) {
	var vals [3]int64
	for i := range vals {
		v, vn, err := Varint(b[n:])
		if err != nil {
			return 0, 0, 0, 0, err
		}
		vals[i] = v
		n += vn
	}
	d.x += vals[0]
	d.y += vals[1]
	d.t += vals[2]
	return float64(d.x) * d.Quant, float64(d.y) * d.Quant, d.t, n, nil
}
