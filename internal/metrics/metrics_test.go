package metrics

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/traj"
)

func line(n int, step float64) traj.Trajectory {
	out := make(traj.Trajectory, n)
	for i := range out {
		out[i] = traj.Point{X: float64(i) * step, T: int64(i) * 1000}
	}
	return out
}

func repr(tr traj.Trajectory, cuts ...int) traj.Piecewise {
	out := make(traj.Piecewise, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		out = append(out, traj.NewSegment(tr, cuts[i-1], cuts[i]))
	}
	return out
}

func TestPointErrorOnLine(t *testing.T) {
	tr := line(10, 5)
	pw := repr(tr, 0, 5, 9)
	for i := range tr {
		if d := PointError(tr, pw, i); d > 1e-12 {
			t.Errorf("collinear point %d error %v", i, d)
		}
	}
}

func TestPointErrorOffLine(t *testing.T) {
	tr := line(5, 10)
	tr[2].Y = 7 // bump one point
	pw := repr(tr, 0, 4)
	if d := PointError(tr, pw, 2); math.Abs(d-7) > 1e-9 {
		t.Errorf("bumped point error = %v, want 7", d)
	}
}

func TestPointErrorTakesMinOverCoveringSegments(t *testing.T) {
	tr := line(10, 10)
	tr[5].Y = 3
	// Two segments share boundary index 5; deliberately skew the second so
	// distances differ.
	a := traj.NewSegment(tr, 0, 5)
	b := traj.NewSegment(tr, 5, 9)
	pw := traj.Piecewise{a, b}
	want := math.Min(a.LineDistance(tr[5]), b.LineDistance(tr[5]))
	if d := PointError(tr, pw, 5); math.Abs(d-want) > 1e-12 {
		t.Errorf("boundary error = %v, want min %v", d, want)
	}
}

func TestMaxAndAvgError(t *testing.T) {
	tr := line(5, 10)
	tr[1].Y = 2
	tr[3].Y = 6
	pw := repr(tr, 0, 4)
	if d := MaxError(tr, pw); math.Abs(d-6) > 1e-9 {
		t.Errorf("MaxError = %v, want 6", d)
	}
	if d := AvgError(tr, pw); math.Abs(d-8.0/5) > 1e-9 {
		t.Errorf("AvgError = %v, want 1.6", d)
	}
	if MaxError(tr, nil) != 0 || AvgError(tr, nil) != 0 {
		t.Error("empty representation should yield 0 errors")
	}
}

func TestPerPointErrors(t *testing.T) {
	tr := line(4, 10)
	tr[2].Y = 5
	errs := PerPointErrors(tr, repr(tr, 0, 3))
	if len(errs) != 4 {
		t.Fatalf("len = %d", len(errs))
	}
	if math.Abs(errs[2]-5) > 1e-9 {
		t.Errorf("errs[2] = %v, want 5", errs[2])
	}
}

func TestVerifyBound(t *testing.T) {
	tr := line(5, 10)
	tr[2].Y = 5
	pw := repr(tr, 0, 4)
	if err := VerifyBound(tr, pw, 6); err != nil {
		t.Errorf("bound 6 should pass: %v", err)
	}
	if err := VerifyBound(tr, pw, 4); err == nil {
		t.Error("bound 4 should fail")
	}
	if err := VerifyBound(tr, nil, 4); !errors.Is(err, ErrMismatch) {
		t.Errorf("empty representation: %v", err)
	}
	if err := VerifyBound(traj.Trajectory{{T: 0}}, nil, 4); err != nil {
		t.Errorf("single point trivially bounded: %v", err)
	}
}

func TestRatio(t *testing.T) {
	tr := line(10, 5)
	pw := repr(tr, 0, 5, 9)
	if r := Ratio(tr, pw); r != 0.2 {
		t.Errorf("Ratio = %v, want 0.2", r)
	}
	if r := Ratio(nil, nil); r != 0 {
		t.Errorf("empty Ratio = %v", r)
	}
}

func TestDatasetRatio(t *testing.T) {
	t1, t2 := line(10, 5), line(20, 5)
	p1, p2 := repr(t1, 0, 9), repr(t2, 0, 10, 19)
	r, err := DatasetRatio([]traj.Trajectory{t1, t2}, []traj.Piecewise{p1, p2})
	if err != nil {
		t.Fatal(err)
	}
	if want := 3.0 / 30.0; math.Abs(r-want) > 1e-12 {
		t.Errorf("DatasetRatio = %v, want %v", r, want)
	}
	if _, err := DatasetRatio([]traj.Trajectory{t1}, nil); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
	r, err = DatasetRatio(nil, nil)
	if err != nil || r != 0 {
		t.Errorf("empty: %v %v", r, err)
	}
}

func TestDatasetAvgError(t *testing.T) {
	t1 := line(4, 10)
	t1[1].Y = 4
	p1 := repr(t1, 0, 3)
	got, err := DatasetAvgError([]traj.Trajectory{t1}, []traj.Piecewise{p1})
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("DatasetAvgError = %v, want %v", got, want)
	}
	if _, err := DatasetAvgError(nil, []traj.Piecewise{p1}); !errors.Is(err, ErrMismatch) {
		t.Errorf("mismatch: %v", err)
	}
}

func TestDistribution(t *testing.T) {
	tr := line(10, 5)
	pw := repr(tr, 0, 2, 4, 9) // point counts 3, 3, 6
	z := Distribution([]traj.Piecewise{pw})
	if z[3] != 2 || z[6] != 1 {
		t.Errorf("Z = %v", z)
	}
}

func TestBucketizeDistribution(t *testing.T) {
	z := map[int]int{1: 2, 2: 5, 7: 3, 15: 1, 30: 2, 70: 1, 500: 4}
	buckets := BucketizeDistribution(z)
	got := map[string]int{}
	for _, b := range buckets {
		got[b.Label] = b.Segments
	}
	want := map[string]int{"1": 2, "2": 5, "6-9": 3, "10-19": 1, "20-49": 2, "50-99": 1, "100+": 4}
	for label, n := range want {
		if got[label] != n {
			t.Errorf("bucket %s = %d, want %d", label, got[label], n)
		}
	}
	var total int
	for _, b := range buckets {
		total += b.Segments
	}
	if total != 18 {
		t.Errorf("bucket total = %d, want 18", total)
	}
}

func TestSummarize(t *testing.T) {
	tr := line(10, 5)
	tr[4].Y = 3
	pw := repr(tr, 0, 9)
	s := Summarize(tr, pw)
	if s.Points != 10 || s.Segments != 1 {
		t.Errorf("summary counts: %+v", s)
	}
	if math.Abs(s.MaxError-3) > 1e-9 {
		t.Errorf("summary max error: %v", s.MaxError)
	}
	if s.Ratio != 0.1 {
		t.Errorf("summary ratio: %v", s.Ratio)
	}
}
