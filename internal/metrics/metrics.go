// Package metrics implements the paper's evaluation measures: compression
// ratio (§6.2.2), average error (§6.2.3), the error-bound check (§3.2),
// and the line-segment point distribution Z(k) (Exp-2.3).
package metrics

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/traj"
)

// ErrMismatch is returned when a representation does not belong to the
// trajectory it is evaluated against.
var ErrMismatch = errors.New("metrics: representation does not match trajectory")

// PointError returns the deviation of source point i: the minimum distance
// from the point to the lines of the segments covering its index. (A point
// on a boundary shared by two segments, or covered by both a segment and
// its absorbed extension, takes the smaller distance — the paper's bound
// definition only requires *some* consecutive output pair within ζ.)
func PointError(t traj.Trajectory, pw traj.Piecewise, i int) float64 {
	best := math.Inf(1)
	for _, k := range pw.CoveringSegments(i) {
		if d := pw[k].LineDistance(t[i]); d < best {
			best = d
		}
	}
	return best
}

// PerPointErrors returns the deviation of every source point.
func PerPointErrors(t traj.Trajectory, pw traj.Piecewise) []float64 {
	out := make([]float64, len(t))
	for i := range t {
		out[i] = PointError(t, pw, i)
	}
	return out
}

// MaxError returns the largest per-point deviation; 0 for empty inputs.
func MaxError(t traj.Trajectory, pw traj.Piecewise) float64 {
	var worst float64
	if len(pw) == 0 {
		return 0
	}
	for i := range t {
		if d := PointError(t, pw, i); d > worst {
			worst = d
		}
	}
	return worst
}

// AvgError returns the paper's average error (§6.2.3): the mean over all
// source points of the distance to the containing line segment.
func AvgError(t traj.Trajectory, pw traj.Piecewise) float64 {
	if len(t) == 0 || len(pw) == 0 {
		return 0
	}
	var sum float64
	for i := range t {
		sum += PointError(t, pw, i)
	}
	return sum / float64(len(t))
}

// BoundSlack is the multiplicative tolerance the verifier allows for
// floating-point accumulation in the fitting function's trigonometry.
const BoundSlack = 1e-9

// VerifyBound checks that pw is error bounded by zeta for t, returning a
// descriptive error naming the worst offending point otherwise.
func VerifyBound(t traj.Trajectory, pw traj.Piecewise, zeta float64) error {
	if len(t) < 2 {
		return nil
	}
	if len(pw) == 0 {
		return fmt.Errorf("%w: empty representation for %d points", ErrMismatch, len(t))
	}
	limit := zeta * (1 + BoundSlack)
	worstIdx, worst := -1, 0.0
	for i := range t {
		if d := PointError(t, pw, i); d > worst {
			worstIdx, worst = i, d
		}
	}
	if worst > limit {
		return fmt.Errorf("error bound violated: point %d deviates %.6f m > ζ=%.6f m", worstIdx, worst, zeta)
	}
	return nil
}

// Ratio returns the paper's compression ratio for one trajectory:
// |T| / |Ṫ|, the number of output line segments over the number of input
// points. Lower is better.
func Ratio(t traj.Trajectory, pw traj.Piecewise) float64 {
	if len(t) == 0 {
		return 0
	}
	return float64(len(pw)) / float64(len(t))
}

// DatasetRatio aggregates the ratio over a set of trajectories, matching
// the paper's (Σ|Tj|) / (Σ|Ṫj|).
func DatasetRatio(ts []traj.Trajectory, pws []traj.Piecewise) (float64, error) {
	if len(ts) != len(pws) {
		return 0, fmt.Errorf("%w: %d trajectories, %d representations", ErrMismatch, len(ts), len(pws))
	}
	var segs, pts int
	for i := range ts {
		segs += len(pws[i])
		pts += len(ts[i])
	}
	if pts == 0 {
		return 0, nil
	}
	return float64(segs) / float64(pts), nil
}

// DatasetAvgError aggregates the average error over a set of trajectories
// (point-weighted, matching the paper's definition).
func DatasetAvgError(ts []traj.Trajectory, pws []traj.Piecewise) (float64, error) {
	if len(ts) != len(pws) {
		return 0, fmt.Errorf("%w: %d trajectories, %d representations", ErrMismatch, len(ts), len(pws))
	}
	var sum float64
	var pts int
	for i := range ts {
		if len(pws[i]) == 0 {
			continue
		}
		for j := range ts[i] {
			sum += PointError(ts[i], pws[i], j)
		}
		pts += len(ts[i])
	}
	if pts == 0 {
		return 0, nil
	}
	return sum / float64(pts), nil
}

// Distribution returns Z(k): for each point count k, the number of line
// segments representing exactly k data points (Exp-2.3, Figure 17;
// endpoints shared by adjacent segments are double-counted).
func Distribution(pws []traj.Piecewise) map[int]int {
	z := make(map[int]int)
	for _, pw := range pws {
		for _, s := range pw {
			z[s.PointCount()]++
		}
	}
	return z
}

// DistributionBuckets folds Z(k) into the histogram buckets used when
// printing Figure 17: exact counts for k ≤ 9 and powers-of-two style
// ranges beyond.
type Bucket struct {
	Label    string
	Lo, Hi   int // inclusive range of k
	Segments int
}

// BucketizeDistribution groups Z(k) for tabular display.
func BucketizeDistribution(z map[int]int) []Bucket {
	buckets := []Bucket{
		{Label: "1", Lo: 1, Hi: 1},
		{Label: "2", Lo: 2, Hi: 2},
		{Label: "3", Lo: 3, Hi: 3},
		{Label: "4", Lo: 4, Hi: 4},
		{Label: "5", Lo: 5, Hi: 5},
		{Label: "6-9", Lo: 6, Hi: 9},
		{Label: "10-19", Lo: 10, Hi: 19},
		{Label: "20-49", Lo: 20, Hi: 49},
		{Label: "50-99", Lo: 50, Hi: 99},
		{Label: "100+", Lo: 100, Hi: math.MaxInt},
	}
	for k, n := range z {
		for i := range buckets {
			if k >= buckets[i].Lo && k <= buckets[i].Hi {
				buckets[i].Segments += n
				break
			}
		}
	}
	return buckets
}

// Summary bundles the headline quality numbers for one compression run.
type Summary struct {
	Points   int
	Segments int
	Ratio    float64
	AvgError float64
	MaxError float64
}

// Summarize computes a Summary for one trajectory/representation pair.
func Summarize(t traj.Trajectory, pw traj.Piecewise) Summary {
	return Summary{
		Points:   len(t),
		Segments: len(pw),
		Ratio:    Ratio(t, pw),
		AvgError: AvgError(t, pw),
		MaxError: MaxError(t, pw),
	}
}
