package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"trajsim/internal/traj"
)

// ErrorDistribution summarizes how per-point deviations are spread — the
// information behind "OPERB keeps most points far below ζ" style analyses
// and trajc's reporting.
type ErrorDistribution struct {
	Count int
	Mean  float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
	// Buckets counts points whose deviation falls in [i·ζ/10, (i+1)·ζ/10)
	// for i in 0..9, with the last bucket absorbing anything ≥ ζ (which a
	// correct error-bounded algorithm never produces beyond float noise).
	Buckets [10]int
	Zeta    float64
}

// NewErrorDistribution computes the deviation distribution of a
// compression run relative to the bound zeta.
func NewErrorDistribution(t traj.Trajectory, pw traj.Piecewise, zeta float64) ErrorDistribution {
	d := ErrorDistribution{Zeta: zeta}
	if len(t) == 0 || len(pw) == 0 || !(zeta > 0) {
		return d
	}
	errs := PerPointErrors(t, pw)
	sort.Float64s(errs)
	d.Count = len(errs)
	var sum float64
	for _, e := range errs {
		sum += e
		i := int(e / zeta * 10)
		if i > 9 {
			i = 9
		}
		d.Buckets[i]++
	}
	d.Mean = sum / float64(len(errs))
	d.P50 = quantile(errs, 0.50)
	d.P90 = quantile(errs, 0.90)
	d.P99 = quantile(errs, 0.99)
	d.Max = errs[len(errs)-1]
	return d
}

// quantile interpolates the q-th quantile of sorted xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if len(xs) == 1 {
		return xs[0]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// String renders a compact one-line summary.
func (d ErrorDistribution) String() string {
	return fmt.Sprintf("n=%d mean=%.2fm p50=%.2fm p90=%.2fm p99=%.2fm max=%.2fm (ζ=%g)",
		d.Count, d.Mean, d.P50, d.P90, d.P99, d.Max, d.Zeta)
}

// Histogram renders an ASCII histogram of the deviation buckets, one row
// per ζ/10 band.
func (d ErrorDistribution) Histogram() string {
	var b strings.Builder
	maxN := 0
	for _, n := range d.Buckets {
		if n > maxN {
			maxN = n
		}
	}
	if maxN == 0 {
		return "(empty)\n"
	}
	for i, n := range d.Buckets {
		bar := strings.Repeat("#", n*40/maxN)
		fmt.Fprintf(&b, "%4.0f%%-%3.0f%% ζ |%-40s| %d\n", float64(i)*10, float64(i+1)*10, bar, n)
	}
	return b.String()
}
