package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestErrorDistributionCollinear(t *testing.T) {
	tr := line(50, 10)
	pw := repr(tr, 0, 49)
	d := NewErrorDistribution(tr, pw, 20)
	if d.Count != 50 {
		t.Errorf("count %d", d.Count)
	}
	if d.Max > 1e-9 || d.Mean > 1e-9 {
		t.Errorf("collinear distribution: %+v", d)
	}
	if d.Buckets[0] != 50 {
		t.Errorf("all points should be in bucket 0: %v", d.Buckets)
	}
}

func TestErrorDistributionKnownSpread(t *testing.T) {
	tr := line(4, 10)
	tr[1].Y = 5  // 25% of ζ=20
	tr[2].Y = 19 // 95% of ζ=20
	pw := repr(tr, 0, 3)
	d := NewErrorDistribution(tr, pw, 20)
	if d.Buckets[2] != 1 || d.Buckets[9] != 1 || d.Buckets[0] != 2 {
		t.Errorf("buckets: %v", d.Buckets)
	}
	if math.Abs(d.Max-19) > 1e-9 {
		t.Errorf("max %v", d.Max)
	}
	if math.Abs(d.Mean-6) > 1e-9 {
		t.Errorf("mean %v", d.Mean)
	}
	if d.P50 <= 0 || d.P50 > 5 {
		t.Errorf("p50 %v", d.P50)
	}
	if d.P99 < d.P90 || d.Max < d.P99 {
		t.Errorf("quantiles not monotone: %+v", d)
	}
}

func TestErrorDistributionEmpty(t *testing.T) {
	d := NewErrorDistribution(nil, nil, 10)
	if d.Count != 0 {
		t.Errorf("empty count %d", d.Count)
	}
	if got := d.Histogram(); got != "(empty)\n" {
		t.Errorf("empty histogram: %q", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {1, 5},
	}
	for _, c := range cases {
		if got := quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("nil quantile")
	}
	if quantile([]float64{7}, 0.9) != 7 {
		t.Error("single quantile")
	}
}

func TestHistogramRendering(t *testing.T) {
	tr := line(100, 10)
	for i := range tr {
		tr[i].Y = float64(i % 10)
	}
	pw := repr(tr, 0, 99)
	d := NewErrorDistribution(tr, pw, 10)
	h := d.Histogram()
	if !strings.Contains(h, "#") {
		t.Errorf("histogram has no bars:\n%s", h)
	}
	if lines := strings.Count(h, "\n"); lines != 10 {
		t.Errorf("%d histogram rows, want 10", lines)
	}
	if d.String() == "" {
		t.Error("empty String()")
	}
}
