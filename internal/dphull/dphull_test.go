package dphull

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/dp"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func workloads() map[string]traj.Trajectory {
	return map[string]traj.Trajectory{
		"line":        gen.Line(500, 15),
		"noisy-line":  gen.NoisyLine(500, 20, 5, 11),
		"circle":      gen.Circle(500, 200, 0.05),
		"zigzag":      gen.Zigzag(500, 10, 60, 7),
		"spiral":      gen.Spiral(500, 5, 3, 0.15),
		"random-walk": gen.RandomWalk(600, 25, 3),
		"turns":       gen.SuddenTurns(500, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 600, 21),
		"sercar":      gen.One(gen.SerCar, 600, 22),
		"geolife":     gen.One(gen.GeoLife, 600, 24),
	}
}

func TestErrorBound(t *testing.T) {
	for name, tr := range workloads() {
		for _, zeta := range []float64{5, 20, 40, 100} {
			pw, err := Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
		}
	}
}

// The hull acceleration must not change what DP computes: identical
// segment boundaries on every workload (both split at the max-distance
// point; tie-breaks could differ in theory, so allow a tiny count slack
// and verify the per-segment invariant instead of exact equality).
func TestMatchesPlainDP(t *testing.T) {
	for name, tr := range workloads() {
		for _, zeta := range []float64{10, 40} {
			hull, err := Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := dp.Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			diff := len(hull) - len(plain)
			if diff < 0 {
				diff = -diff
			}
			if diff > len(plain)/50+1 {
				t.Errorf("%s ζ=%v: hull DP %d segments vs plain %d", name, zeta, len(hull), len(plain))
			}
			for _, s := range hull {
				for i := s.StartIdx; i <= s.EndIdx; i++ {
					if d := s.LineDistance(tr[i]); d > zeta+1e-9 {
						t.Fatalf("%s: point %d deviates %v from its segment", name, i, d)
					}
				}
			}
		}
	}
}

// On most inputs the outputs are exactly identical (no distance ties).
func TestExactMatchTypicalInput(t *testing.T) {
	tr := gen.One(gen.SerCar, 2000, 5)
	hull, err := Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := dp.Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(hull) != len(plain) {
		t.Fatalf("segment counts differ: %d vs %d", len(hull), len(plain))
	}
	for i := range plain {
		if hull[i] != plain[i] {
			t.Fatalf("segment %d differs: %v vs %v", i, hull[i], plain[i])
		}
	}
}

func TestStraightLine(t *testing.T) {
	pw, err := Simplify(gen.Line(1000, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("collinear input: %d segments, want 1", len(pw))
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		pw, err := Simplify(gen.Line(n, 1), 5)
		if err != nil || len(pw) != 0 {
			t.Errorf("n=%d: %v %v", n, pw, err)
		}
	}
}

func TestBadEpsilon(t *testing.T) {
	for _, zeta := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

var sink traj.Piecewise

func BenchmarkHullVsPlainDP(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.Taxi, 50_000, 7)
	b.Run("hull", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(tr)))
		for i := 0; i < b.N; i++ {
			pw, err := Simplify(tr, 40)
			if err != nil {
				b.Fatal(err)
			}
			sink = pw
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(tr)))
		for i := 0; i < b.N; i++ {
			pw, err := dp.Simplify(tr, 40)
			if err != nil {
				b.Fatal(err)
			}
			sink = pw
		}
	})
}
