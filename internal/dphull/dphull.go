// Package dphull studies the idea behind Hershberger & Snoeyink's
// O(n log n) Douglas-Peucker ([8] in the paper): the point of a range
// farthest from the chord is always a vertex of the range's convex hull,
// so the max-distance query can be answered from the hull alone.
//
// This implementation rebuilds the hull per recursion node, which is the
// honest baseline for the idea — and, as BenchmarkHullVsPlainDP records,
// it is *slower* than the plain scan at GPS-fleet parameters: the per-node
// O(k log k) sort dwarfs the 3-flop distance scan it saves, and realistic
// ζ values keep ranges too small for the hull to amortize. [8]'s actual
// speedup comes from path-hull bookkeeping with undo stacks that amortizes
// hull construction across the recursion, which this package does not
// attempt. The package therefore serves as (a) a correctness cross-check
// for dp.Simplify (their outputs coincide) and (b) a measured negative
// result justifying why the reproduction's DP baseline is the plain scan.
package dphull

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// ErrBadEpsilon is returned for non-positive error bounds.
var ErrBadEpsilon = errors.New("dphull: error bound ζ must be positive and finite")

// bruteThreshold is the range size under which a direct scan beats hull
// construction.
const bruteThreshold = 48

// Simplify compresses t with hull-accelerated Douglas-Peucker under error
// bound zeta (meters). Output semantics match dp.Simplify (split at the
// farthest point until every range fits); tie-breaking between equally
// distant points may differ.
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return nil, fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	if len(t) < 2 {
		return nil, nil
	}
	pts := make([]geo.Point, len(t))
	for i, p := range t {
		pts[i] = p.P()
	}
	type span struct{ lo, hi int }
	stack := []span{{0, len(t) - 1}}
	out := make(traj.Piecewise, 0, 16)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo <= 1 {
			out = append(out, traj.NewSegment(t, s.lo, s.hi))
			continue
		}
		k, d := farthest(pts, s.lo, s.hi)
		if d <= zeta {
			out = append(out, traj.NewSegment(t, s.lo, s.hi))
			continue
		}
		stack = append(stack, span{k, s.hi}, span{s.lo, k})
	}
	return out, nil
}

// farthest returns the interior index of [lo..hi] with maximum distance to
// the chord pts[lo]→pts[hi], using the convex hull for large ranges.
func farthest(pts []geo.Point, lo, hi int) (int, float64) {
	a, b := pts[lo], pts[hi]
	if hi-lo < bruteThreshold {
		best, bestD := lo, -1.0
		for i := lo + 1; i < hi; i++ {
			if d := geo.PointLineDistance(pts[i], a, b); d > bestD {
				best, bestD = i, d
			}
		}
		return best, bestD
	}
	hull := geo.ConvexHullIndices(pts[lo : hi+1])
	best, bestD := lo, -1.0
	for _, rel := range hull {
		i := lo + rel
		if i == lo || i == hi {
			continue
		}
		if d := geo.PointLineDistance(pts[i], a, b); d > bestD {
			best, bestD = i, d
		}
	}
	if best == lo {
		// Every hull vertex was an endpoint (range collinear with the
		// chord, or chord endpoints dominate the hull): the true maximum
		// still lies among interior points, at distance ≤ any hull
		// distance; fall back to the scan for exactness.
		for i := lo + 1; i < hi; i++ {
			if d := geo.PointLineDistance(pts[i], a, b); d > bestD {
				best, bestD = i, d
			}
		}
	}
	return best, bestD
}
