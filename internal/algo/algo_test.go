package algo

import (
	"errors"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"DP", "TD-TR", "BottomUp", "OPW", "OPW-TR", "BQS", "FBQS",
		"OPERB", "Raw-OPERB", "OPERB-A", "Raw-OPERB-A",
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d algorithms, want %d: %v", len(names), len(want), names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Errorf("names[%d] = %s, want %s", i, names[i], n)
		}
	}
}

func TestGet(t *testing.T) {
	a, err := Get("operb-a")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "OPERB-A" || !a.OnePass {
		t.Errorf("Get(operb-a) = %+v", a)
	}
	if _, err := Get("nope"); !errors.Is(err, ErrUnknown) {
		t.Errorf("unknown: %v", err)
	}
}

func TestAllIsACopy(t *testing.T) {
	a := All()
	a[0].Name = "clobbered"
	b := All()
	if b[0].Name == "clobbered" {
		t.Error("All() exposes internal registry storage")
	}
}

// Every registered algorithm is error bounded on every preset (the
// registry-level integration test).
func TestEveryAlgorithmErrorBounded(t *testing.T) {
	zeta := 30.0
	for _, preset := range gen.Presets {
		tr := gen.One(preset, 400, 77)
		for _, a := range All() {
			pw, err := a.Fn(tr, zeta)
			if err != nil {
				t.Fatalf("%s on %v: %v", a.Name, preset, err)
			}
			if len(pw) == 0 {
				t.Fatalf("%s on %v: empty output", a.Name, preset)
			}
			if a.SED {
				// SED algorithms bound a different (stricter) error; check
				// their own measure per segment.
				for _, s := range pw {
					for i := s.StartIdx; i <= s.EndIdx; i++ {
						if d := s.SEDistance(tr[i]); d > zeta+1e-9 {
							t.Fatalf("%s on %v: point %d SED %v > ζ", a.Name, preset, i, d)
						}
					}
				}
				continue
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s on %v: %v", a.Name, preset, err)
			}
		}
	}
}

// The paper's qualitative ordering on compression quality (low-rate urban
// data, aggregate over trajectories): OPERB-A ≤ OPERB-ish ≤ Raw-OPERB, and
// every LS algorithm beats "no compression".
func TestQualitativeOrdering(t *testing.T) {
	ratio := func(name string) float64 {
		a, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		var segs, pts int
		for seed := uint64(0); seed < 6; seed++ {
			tr := gen.One(gen.SerCar, 500, 1000+seed)
			pw, err := a.Fn(tr, 40)
			if err != nil {
				t.Fatal(err)
			}
			segs += len(pw)
			pts += len(tr)
		}
		return float64(segs) / float64(pts)
	}
	operbA := ratio("OPERB-A")
	operb := ratio("OPERB")
	rawOperb := ratio("Raw-OPERB")
	dp := ratio("DP")
	if operbA > operb {
		t.Errorf("OPERB-A ratio %.4f > OPERB %.4f", operbA, operb)
	}
	if operb > rawOperb {
		t.Errorf("OPERB ratio %.4f > Raw-OPERB %.4f", operb, rawOperb)
	}
	if dp > 0.9 || operb > 0.9 {
		t.Errorf("ratios implausibly high: dp=%.3f operb=%.3f", dp, operb)
	}
	t.Logf("ratios: DP=%.4f OPERB=%.4f Raw-OPERB=%.4f OPERB-A=%.4f", dp, operb, rawOperb, operbA)
}

func TestComparisonLineup(t *testing.T) {
	lineup := Comparison()
	if len(lineup) != 4 {
		t.Fatalf("lineup size %d", len(lineup))
	}
	want := []string{"DP", "FBQS", "OPERB", "OPERB-A"}
	for i, a := range lineup {
		if a.Name != want[i] {
			t.Errorf("lineup[%d] = %s, want %s", i, a.Name, want[i])
		}
	}
}
