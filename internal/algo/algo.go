// Package algo provides a uniform registry over every simplification
// algorithm in this module, so the experiment harness, CLI tools and
// examples can enumerate and run them by name.
package algo

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"trajsim/internal/bottomup"
	"trajsim/internal/bqs"
	"trajsim/internal/core"
	"trajsim/internal/dp"
	"trajsim/internal/opw"
	"trajsim/internal/traj"
)

// Func compresses a trajectory under error bound zeta (meters).
type Func func(t traj.Trajectory, zeta float64) (traj.Piecewise, error)

// Algorithm describes one registered simplifier.
type Algorithm struct {
	// Name is the paper's name for the algorithm (e.g. "OPERB-A").
	Name string
	// OnePass reports whether each input point is processed exactly once.
	OnePass bool
	// Batch reports whether the whole trajectory must be resident before
	// compression starts.
	Batch bool
	// SED reports whether the error measure is the time-synchronized
	// Euclidean distance rather than the perpendicular distance.
	SED bool
	// Fn runs the algorithm.
	Fn Func
}

// ErrUnknown is returned by Get for unregistered names.
var ErrUnknown = errors.New("algo: unknown algorithm")

var registry = []Algorithm{
	{Name: "DP", Batch: true, Fn: dp.Simplify},
	{Name: "TD-TR", Batch: true, SED: true, Fn: dp.SimplifySED},
	{Name: "BottomUp", Batch: true, Fn: bottomup.Simplify},
	{Name: "OPW", Fn: opw.Simplify},
	{Name: "OPW-TR", SED: true, Fn: opw.SimplifySED},
	{Name: "BQS", Fn: bqs.Simplify},
	{Name: "FBQS", Fn: bqs.SimplifyFast},
	{Name: "OPERB", OnePass: true, Fn: core.Simplify},
	{Name: "Raw-OPERB", OnePass: true, Fn: func(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
		return core.SimplifyOpts(t, zeta, core.RawOptions())
	}},
	{Name: "OPERB-A", OnePass: true, Fn: core.SimplifyAggressive},
	{Name: "Raw-OPERB-A", OnePass: true, Fn: func(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
		pw, _, err := core.SimplifyAggressiveOpts(t, zeta, core.RawOptions())
		return pw, err
	}},
}

// All returns every registered algorithm in a stable order.
func All() []Algorithm {
	out := make([]Algorithm, len(registry))
	copy(out, registry)
	return out
}

// Names returns the registered names in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, a := range registry {
		out[i] = a.Name
	}
	return out
}

// Get resolves an algorithm by case-insensitive name.
func Get(name string) (Algorithm, error) {
	for _, a := range registry {
		if strings.EqualFold(a.Name, name) {
			return a, nil
		}
	}
	sorted := Names()
	sort.Strings(sorted)
	return Algorithm{}, fmt.Errorf("%w: %q (have %s)", ErrUnknown, name, strings.Join(sorted, ", "))
}

// Comparison is the four-algorithm lineup of the paper's main experiments.
func Comparison() []Algorithm {
	out := make([]Algorithm, 0, 4)
	for _, n := range []string{"DP", "FBQS", "OPERB", "OPERB-A"} {
		a, err := Get(n)
		if err != nil {
			panic(err) // unreachable: names are registered above
		}
		out = append(out, a)
	}
	return out
}
