package stream

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines and returns the first error recorded. Once an error is
// recorded no further items are started — in-flight items still finish.
// workers ≤ 0 selects GOMAXPROCS. Items are claimed from a shared atomic
// counter, so short items do not idle workers the way fixed striping
// would.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	var (
		next     atomic.Int64
		stopped  atomic.Bool
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					stopped.Store(true)
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
