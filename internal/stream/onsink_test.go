package stream

import (
	"errors"
	"sync"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// hookRecorder collects OnSink notifications, copying each batch as the
// hook contract requires (the engine reuses the slice).
type hookRecorder struct {
	mu   sync.Mutex
	segs map[string][]traj.Segment
}

func (h *hookRecorder) hook(device string, segs []traj.Segment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.segs == nil {
		h.segs = map[string][]traj.Segment{}
	}
	h.segs[device] = append(h.segs[device], segs...)
}

// TestOnSinkSeesEveryPersistedBatch: across both sink paths (async queue
// and SinkSync), the hook observes exactly what the sink accepted —
// same devices, same segments, same order — and Stats counts the
// appends.
func TestOnSinkSeesEveryPersistedBatch(t *testing.T) {
	for _, sync := range []bool{false, true} {
		sink := &memSink{}
		rec := &hookRecorder{}
		e, err := NewEngine(Config{Zeta: 30, Shards: 4, Sink: sink, SinkSync: sync, OnSink: rec.hook})
		if err != nil {
			t.Fatal(err)
		}
		for dev, preset := range map[string]gen.Preset{"a": gen.Taxi, "b": gen.Truck} {
			if _, err := e.Ingest(dev, gen.One(preset, 600, 71)); err != nil {
				t.Fatal(err)
			}
		}
		e.Close() // drains the queue; hooks have all fired

		if len(rec.segs) != len(sink.segs) {
			t.Fatalf("sync=%v: hook saw devices %v, sink holds %v", sync, rec.segs, sink.segs)
		}
		total := 0
		for dev, want := range sink.segs {
			got := rec.segs[dev]
			if len(got) != len(want) {
				t.Fatalf("sync=%v: %s: hook saw %d segments, sink holds %d", sync, dev, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("sync=%v: %s: segment %d differs — the hook's copy is not what was persisted", sync, dev, i)
				}
			}
			total += len(want)
		}
		if total == 0 {
			t.Fatalf("sync=%v: nothing reached the sink — test proves nothing", sync)
		}
		if st := e.Stats(); st.SinkAppends != int64(sink.batches) || st.SinkAppends == 0 {
			t.Fatalf("sync=%v: SinkAppends %d, sink counted %d batches", sync, st.SinkAppends, sink.batches)
		}
	}
}

// TestOnSinkSilentOnFailure: a batch the sink rejected is never
// announced — a tail listener must not be told about segments a later
// replay could not serve.
func TestOnSinkSilentOnFailure(t *testing.T) {
	sink := &memSink{fail: errors.New("disk full")}
	rec := &hookRecorder{}
	e, err := NewEngine(Config{Zeta: 30, Sink: sink, OnSink: rec.hook})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("dev", gen.One(gen.Taxi, 400, 72)); err != nil {
		t.Fatal(err)
	}
	e.Close()
	if len(rec.segs) != 0 {
		t.Fatalf("hook fired for %v despite every append failing", rec.segs)
	}
	if st := e.Stats(); st.SinkAppends != 0 || st.SinkErrors == 0 {
		t.Fatalf("stats after failing sink: %+v", st)
	}
}
