package stream

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/segstore"
	"trajsim/internal/traj"
)

// Tests for the sweep-level group commit: backlog folding, the fold cap,
// pool-capacity rejection, and the restart-identity guarantee across the
// deferred commit protocol.

// TestSweepFoldsBacklog: a backlog built behind a stalled sink must
// drain in merged sweeps — far fewer Append calls than batches — without
// reordering or losing a segment.
func TestSweepFoldsBacklog(t *testing.T) {
	sink := &gateSink{gate: make(chan struct{})}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 512})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 2000, 71)
	// Count enqueued batches ourselves: one per Ingest call that emitted.
	var want []traj.Segment
	batches := 0
	for off := 0; off < len(tr); off += 25 {
		segs, err := e.Ingest("dev", tr[off:min(off+25, len(tr))])
		if err != nil {
			t.Fatal(err)
		}
		if len(segs) > 0 {
			batches++
			want = append(want, segs...)
		}
	}
	if batches < 10 {
		t.Fatalf("only %d batches emitted; test proves nothing", batches)
	}
	close(sink.gate) // disk recovers; the worker sweeps the backlog
	tails := e.Close()
	want = append(want, tails["dev"]...)

	got := sink.copyOf("dev")
	if len(got) != len(want) {
		t.Fatalf("sink holds %d segments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d out of emission order after sweep folding", i)
		}
	}
	st := e.Stats()
	if st.SinkAppends >= int64(batches) {
		t.Fatalf("%d appends for %d batches — backlog never folded: %+v", st.SinkAppends, batches, st)
	}
	if st.SinkSweepBatches != int64(batches) {
		t.Fatalf("sweeps folded %d batches, %d were enqueued: %+v", st.SinkSweepBatches, batches, st)
	}
	if st.SinkSweeps == 0 || st.SinkSweeps > st.SinkAppends {
		t.Fatalf("sweep accounting: %+v", st)
	}
	if st.SinkErrors != 0 || st.SinkErrorSegs != 0 {
		t.Fatalf("healthy sink counted errors: %+v", st)
	}
}

// sizeSink records the payload size of every Append, behind a gate.
type sizeSink struct {
	memSink
	gate   chan struct{}
	sizeMu sync.Mutex
	sizes  []int
}

func (s *sizeSink) Append(device string, segs []traj.Segment) error {
	<-s.gate
	s.sizeMu.Lock()
	s.sizes = append(s.sizes, len(segs))
	s.sizeMu.Unlock()
	return s.memSink.Append(device, segs)
}

// TestSweepCapBoundsFold: Config.SinkSweep bounds how much a stalled
// worker folds into one payload — a deep backlog drains as several
// capped sweeps, not one unbounded merge.
func TestSweepCapBoundsFold(t *testing.T) {
	const sweep, batch = 64, 25
	sink := &sizeSink{gate: make(chan struct{})}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 512, SinkSweep: sweep})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 2000, 73)
	emitted := ingestEmitting(t, e, "dev", tr, batch)
	if emitted < 4*(sweep+batch) {
		t.Fatalf("only %d segments emitted; too few to need several sweeps", emitted)
	}
	close(sink.gate)
	tails := e.Close()
	total := emitted + len(tails["dev"])

	sink.sizeMu.Lock()
	sizes := append([]int(nil), sink.sizes...)
	sink.sizeMu.Unlock()
	sum, maxSize := 0, 0
	for _, n := range sizes {
		sum += n
		maxSize = max(maxSize, n)
	}
	if sum != total {
		t.Fatalf("appends carried %d segments, %d were persisted", sum, total)
	}
	// The drain loop stops pulling once the sweep holds sweepSegs, so one
	// payload can overshoot by at most the final op it folded.
	bound := sweep + max(batch, len(tails["dev"]))
	if maxSize > bound {
		t.Fatalf("a sweep payload reached %d segments, cap allows at most %d", maxSize, bound)
	}
	if maxSize <= batch {
		t.Fatalf("largest payload is %d segments (one batch) — nothing folded", maxSize)
	}
	if want := total / (sweep + batch); len(sizes) < want {
		t.Fatalf("%d segments drained in %d appends — the cap did not split the backlog (want ≥ %d)",
			total, len(sizes), want)
	}
}

// TestRecyclePoolCap: batch buffers beyond maxPooledSegs are dropped,
// not pooled — an outlier burst must not pin its peak allocation.
func TestRecyclePoolCap(t *testing.T) {
	var errs, errSegs, apps atomic.Int64
	q := newSinkQueue(&memSink{}, 1, 1, DefaultSinkSweep, SinkBlock, 0, time.Now, &errs, &errSegs, &apps, nil)
	defer q.close()
	small := &segBatch{segs: make([]traj.Segment, 0, maxPooledSegs)}
	if !q.recycle(small) {
		t.Errorf("batch at the cap (%d) was not pooled", maxPooledSegs)
	}
	big := &segBatch{segs: make([]traj.Segment, 0, maxPooledSegs+1)}
	if q.recycle(big) {
		t.Errorf("batch over the cap (%d) was pooled", maxPooledSegs+1)
	}
}

// TestSinkSyncErrorSegs: the synchronous path counts segments lost to a
// failing sink the same way the sweep path does.
func TestSinkSyncErrorSegs(t *testing.T) {
	sink := &memSink{fail: errors.New("disk full")}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkSync: true})
	if err != nil {
		t.Fatal(err)
	}
	emitted := ingestEmitting(t, e, "dev", gen.One(gen.Truck, 800, 75), 40)
	tail, ok := e.Flush("dev")
	if !ok {
		t.Fatal("flush found no session")
	}
	st := e.Stats()
	if st.SinkErrorSegs != int64(emitted+len(tail)) {
		t.Fatalf("SinkErrorSegs = %d, want %d: %+v", st.SinkErrorSegs, emitted+len(tail), st)
	}
	if st.SinkErrors == 0 || st.SinkAppends != 0 {
		t.Fatalf("stats: %+v", st)
	}
	e.Close()
}

// gatedStore wedges the deferred-append half of a real segment store, so
// a backlog builds and the drain exercises merged multi-batch payloads
// through the group-commit protocol.
type gatedStore struct {
	*segstore.Store
	gate chan struct{}
}

var _ DeferredSink = (*gatedStore)(nil)

func (g *gatedStore) AppendNoSync(device string, segs []traj.Segment) error {
	<-g.gate
	return g.Store.AppendNoSync(device, segs)
}

// TestSweepRestartIdentity is the acceptance test for the commit
// protocol: the same uploads through the sweep-folding async pipeline
// and through the synchronous per-batch path must leave stores that
// replay identically after a close and reopen — folding changes the
// record framing, never the segment stream.
func TestSweepRestartIdentity(t *testing.T) {
	devs := []string{"taxi-1", "truck-2", "car-3"}
	presets := []gen.Preset{gen.Taxi, gen.Truck, gen.SerCar}
	dirRef, dirSweep := t.TempDir(), t.TempDir()

	storeRef, err := segstore.Open(segstore.Config{Dir: dirRef, Sync: segstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	engRef, err := NewEngine(Config{Zeta: 5, Sink: storeRef, SinkSync: true})
	if err != nil {
		t.Fatal(err)
	}
	storeSweep, err := segstore.Open(segstore.Config{Dir: dirSweep, Sync: segstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	gated := &gatedStore{Store: storeSweep, gate: make(chan struct{})}
	engSweep, err := NewEngine(Config{Zeta: 5, Sink: gated, SinkWriters: 2, SinkQueue: 1024})
	if err != nil {
		t.Fatal(err)
	}

	// First half with the gate shut: the backlog folds into merged
	// payloads when the disk recovers.
	trs := make([]traj.Trajectory, len(devs))
	for i, dev := range devs {
		trs[i] = gen.One(presets[i], 1500, uint64(81+i))
		half := trs[i][:len(trs[i])/2]
		ingestEmitting(t, engRef, dev, half, 50)
		ingestEmitting(t, engSweep, dev, half, 50)
	}
	close(gated.gate)
	// A mid-stream session boundary on one device: the successor's
	// batches must land after the flushed tail inside the merged stream.
	if _, ok := engRef.Flush(devs[0]); !ok {
		t.Fatal("reference flush found no session")
	}
	if _, ok := engSweep.Flush(devs[0]); !ok {
		t.Fatal("sweep flush found no session")
	}
	for i, dev := range devs {
		rest := trs[i][len(trs[i])/2:]
		ingestEmitting(t, engRef, dev, rest, 50)
		ingestEmitting(t, engSweep, dev, rest, 50)
	}
	engRef.Close()
	engSweep.Close()

	refStats, sweepStats := storeRef.Stats(), storeSweep.Stats()
	if sweepStats.GroupSyncs == 0 {
		t.Fatalf("sweep store never group-committed: %+v", sweepStats)
	}
	if sweepStats.Syncs >= refStats.Syncs {
		t.Fatalf("sweep path cost %d fsyncs, synchronous %d — group commit saved nothing",
			sweepStats.Syncs, refStats.Syncs)
	}
	if err := storeRef.Close(); err != nil {
		t.Fatal(err)
	}
	if err := storeSweep.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh stores over both directories must agree exactly.
	reopen := func(dir string) *segstore.Store {
		s, err := segstore.Open(segstore.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		return s
	}
	ref, swp := reopen(dirRef), reopen(dirSweep)
	for _, dev := range devs {
		want, err := ref.Replay(dev)
		if err != nil {
			t.Fatal(err)
		}
		got, err := swp.Replay(dev)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 {
			t.Fatalf("%s: empty reference replay — test proves nothing", dev)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: sweep-path replay differs from synchronous path after restart", dev)
		}
	}
}
