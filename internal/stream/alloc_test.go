package stream

import (
	"testing"

	"trajsim/internal/gen"
)

// TestIngestWarmSessionAllocs is the engine-level allocation gate: once
// a session is warm (encoder scratch and the per-session out-buffer at
// working size) an Ingest batch must not allocate — the whole point of
// reusing the session out-buffer instead of growing a fresh slice per
// batch. Measured without a sink so only the engine's own path counts;
// the async queue's pooled copies are covered by the sink benchmarks.
func TestIngestWarmSessionAllocs(t *testing.T) {
	const (
		batch = 64
		warm  = 100 // batches before measuring
		runs  = 200
	)
	e, err := NewEngine(Config{Zeta: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr := gen.One(gen.Truck, (warm+runs+2)*batch, 19)
	off := 0
	ingest := func() {
		if _, err := e.Ingest("hot", tr[off:off+batch]); err != nil {
			t.Fatal(err)
		}
		off += batch
	}
	for i := 0; i < warm; i++ {
		ingest()
	}
	if avg := testing.AllocsPerRun(runs, ingest); avg > 0 {
		t.Errorf("warm Ingest allocates %g per %d-point batch, want 0", avg, batch)
	}
}
