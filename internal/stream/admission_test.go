package stream

import (
	"errors"
	"sync"
	"testing"
	"time"

	"trajsim/internal/traj"
)

// Tests for the admission-control layer (admission.go): per-device
// token-bucket rate limits, coldest-first load shedding at MaxSessions,
// and new-device rejection at the sink-queue pressure watermark.

// zig returns n points walking x forward with y alternating 0/9 —
// under a small ζ every point pair finalizes a segment, so each batch
// reaches the sink queue. t0 is the first timestamp in ms; points are
// 1 s apart.
func zig(t0 int64, n int) []traj.Point {
	pts := make([]traj.Point, n)
	for i := range pts {
		pts[i] = traj.At(float64(i)*7, float64(i%2)*9, t0+int64(i)*1000)
	}
	return pts
}

func TestOverloadErrorIs(t *testing.T) {
	err := error(&OverloadError{RetryAfter: time.Second, Reason: "test"})
	if !errors.Is(err, ErrOverloaded) {
		t.Error("errors.Is(&OverloadError{}, ErrOverloaded) = false")
	}
	if errors.Is(err, ErrSessionLimit) {
		t.Error("OverloadError matched ErrSessionLimit")
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter != time.Second {
		t.Errorf("errors.As lost the retry delay: %+v", oe)
	}
}

// TestDeviceRateLimit: the token bucket admits up to the burst, rejects
// the overflow with a RetryAfter that is exactly the refill time, and
// admits again once the clock has advanced that far. A rejected batch
// leaves the session untouched.
func TestDeviceRateLimit(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	e, err := NewEngine(Config{Zeta: 40, DeviceRate: 10, DeviceBurst: 5, Clock: now})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	pts := zig(0, 10)
	// The full burst admits at once.
	if _, err := e.Ingest("dev", pts[0:5]); err != nil {
		t.Fatalf("burst-sized batch: %v", err)
	}
	// The bucket is empty: one more point is over rate.
	_, err = e.Ingest("dev", pts[5:6])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-rate batch: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("over-rate error is %T, not *OverloadError", err)
	}
	// One token at 10 tokens/sec: 100 ms.
	if oe.RetryAfter != 100*time.Millisecond {
		t.Errorf("RetryAfter = %v, want 100ms", oe.RetryAfter)
	}
	if got := e.Stats().RateLimited; got != 1 {
		t.Errorf("Stats.RateLimited = %d, want 1", got)
	}

	// Honoring the advice works: the bucket has exactly one token.
	advance(oe.RetryAfter)
	if _, err := e.Ingest("dev", pts[5:6]); err != nil {
		t.Fatalf("retry after the advertised delay: %v", err)
	}

	// A batch larger than the whole burst is admitted when the bucket
	// is full (no batch size may be permanently unserviceable) and
	// debits it below zero, stretching the next refill.
	advance(time.Hour)
	if _, err := e.Ingest("dev", zig(1_000_000, 8)); err != nil {
		t.Fatalf("oversized batch on a full bucket: %v", err)
	}
	_, err = e.Ingest("dev", zig(2_000_000, 1))
	if !errors.As(err, &oe) {
		t.Fatalf("batch after oversized debit: %v, want *OverloadError", err)
	}
	// Deficit: bucket at 5-8 = -3 tokens, need 1 → 4 tokens at 10/s.
	if oe.RetryAfter != 400*time.Millisecond {
		t.Errorf("post-oversized RetryAfter = %v, want 400ms", oe.RetryAfter)
	}
}

// TestShedColdest: at MaxSessions with ShedSessions, a new device
// displaces the session idle the longest — flushed durably (its tail is
// in the Sink before Ingest returns) and reported to OnEvict — rather
// than being rejected.
func TestShedColdest(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	sink := &memSink{}
	var evicted []string
	e, err := NewEngine(Config{
		Zeta: 5, MaxSessions: 2, ShedSessions: true, Sink: sink, Clock: now,
		OnEvict: func(dev string, _ []traj.Segment) { evicted = append(evicted, dev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	if _, err := e.Ingest("cold", zig(0, 4)); err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	if _, err := e.Ingest("warm", zig(0, 4)); err != nil {
		t.Fatal(err)
	}
	advance(time.Minute)
	// Third device at MaxSessions=2: "cold" must make way.
	if _, err := e.Ingest("new", zig(0, 4)); err != nil {
		t.Fatalf("ingest at the cap with shedding on: %v", err)
	}
	if got := e.Sessions(); got != 2 {
		t.Errorf("Sessions = %d after shed, want 2", got)
	}
	if len(evicted) != 1 || evicted[0] != "cold" {
		t.Errorf("OnEvict saw %v, want [cold]", evicted)
	}
	if got := e.Stats().Shed; got != 1 {
		t.Errorf("Stats.Shed = %d, want 1", got)
	}
	// Durable flush: the shed session's segments (including its tail)
	// were in the Sink before the displacing Ingest returned.
	sink.mu.Lock()
	coldSegs := len(sink.segs["cold"])
	sink.mu.Unlock()
	if coldSegs == 0 {
		t.Error("shed session left no segments in the sink")
	}
	// The warmer sessions survived.
	if _, ok := e.Flush("warm"); !ok {
		t.Error("warm session was shed instead of the coldest")
	}
	if _, ok := e.Flush("new"); !ok {
		t.Error("the admitted new session is missing")
	}
}

// TestShedDisabledKeepsSessionLimit: without ShedSessions the cap still
// rejects with ErrSessionLimit — the pre-existing contract.
func TestShedDisabledKeepsSessionLimit(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Ingest("a", zig(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("b", zig(0, 2)); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("second device: %v, want ErrSessionLimit", err)
	}
}

// stallSink blocks every Append until release is closed, signalling
// each entry — a disk that has stopped answering, visible to the test.
type stallSink struct {
	entered chan struct{}
	release chan struct{}
}

func (s *stallSink) Append(device string, segs []traj.Segment) error {
	s.entered <- struct{}{}
	<-s.release
	return nil
}

// TestQueueWatermarkRejectsNewDevices: with the sink wedged and the
// queue past its watermark, a new device is rejected with ErrOverloaded
// and a positive RetryAfter while an existing session still enqueues;
// once the queue drains, new devices are admitted again.
func TestQueueWatermarkRejectsNewDevices(t *testing.T) {
	sink := &stallSink{entered: make(chan struct{}, 64), release: make(chan struct{})}
	e, err := NewEngine(Config{
		Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 8, QueueWatermark: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	// Wedge the single worker: first batch reaches Append and stalls.
	if _, err := e.Ingest("live", zig(0, 4)); err != nil {
		t.Fatal(err)
	}
	<-sink.entered
	// Build a backlog past the watermark (0.25 × 1×8 = 2 ops). The
	// worker is inside Append, so these stay queued.
	for i := int64(1); e.q.depth.Load() < 4; i++ {
		if _, err := e.Ingest("live", zig(i*100_000, 4)); err != nil {
			t.Fatalf("existing device past watermark: %v", err)
		}
	}

	_, err = e.Ingest("newcomer", zig(0, 4))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("new device past watermark: %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter <= 0 {
		t.Fatalf("overload rejection carries no positive RetryAfter: %+v", err)
	}
	if got := e.Stats().Overloaded; got != 1 {
		t.Errorf("Stats.Overloaded = %d, want 1", got)
	}
	if e.Sessions() != 1 {
		t.Errorf("Sessions = %d, want 1 (newcomer rejected)", e.Sessions())
	}
	if !e.Overloaded() {
		t.Error("Engine.Overloaded() = false while past the watermark")
	}

	// The disk recovers: the backlog drains and new devices admit.
	// (entered is buffered far beyond the queue, so no drain needed.)
	close(sink.release)
	deadline := time.Now().Add(5 * time.Second)
	for e.q.depth.Load() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("sink queue never drained after release")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.Ingest("newcomer", zig(0, 4)); err != nil {
		t.Fatalf("new device after drain: %v", err)
	}
	if e.Overloaded() {
		t.Error("Engine.Overloaded() = true after the queue drained")
	}
}

// TestAdmissionConfigValidation: malformed admission knobs fail
// NewEngine, not the first ingest.
func TestAdmissionConfigValidation(t *testing.T) {
	bad := []Config{
		{Zeta: 40, DeviceRate: -1},
		{Zeta: 40, DeviceBurst: -1},
		{Zeta: 40, DeviceBurst: 10}, // burst without rate
		{Zeta: 40, QueueWatermark: -0.1},
		{Zeta: 40, QueueWatermark: 1.5},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}
