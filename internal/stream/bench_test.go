package stream

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/segstore"
	"trajsim/internal/traj"
)

// BenchmarkIngest measures multi-device ingest throughput as the shard
// count grows: with one shard every goroutine contends on a single mutex;
// with 8 or 64 shards ingest for different devices proceeds in parallel.
//
//	go test ./internal/stream -bench=Ingest -cpu=8
func BenchmarkIngest(b *testing.B) {
	b.ReportAllocs()
	const batch = 64
	tr := gen.One(gen.Truck, 4096, 11)
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			e, err := NewEngine(Config{Zeta: 40, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			var id atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				// One live session per benchmark goroutine, fed its batches
				// in a loop; one iteration = one 64-point batch.
				dev := fmt.Sprintf("dev-%d", id.Add(1))
				off := 0
				for pb.Next() {
					if off+batch > len(tr) {
						// Restart the stream: flush so the fresh session
						// sees increasing timestamps again.
						e.Flush(dev)
						off = 0
					}
					if _, err := e.Ingest(dev, tr[off:off+batch]); err != nil {
						b.Fatal(err)
					}
					off += batch
				}
			})
			b.StopTimer()
			st := e.Stats()
			b.ReportMetric(float64(st.Points)/b.Elapsed().Seconds(), "points/s")
			// Fraction of batches that blocked on a shard lock: the
			// scaling signal even when wall time is CPU-bound.
			b.ReportMetric(float64(st.Contended)/float64(b.N), "contended/op")
			e.Close()
		})
	}
}

// BenchmarkIngestSingleSession is the per-session cost floor: one device
// fed in-order batches with no parallelism, so the whole iteration is
// lock acquisition plus real encoder work. The sharded BenchmarkIngest
// numbers converge to this as contention disappears.
func BenchmarkIngestSingleSession(b *testing.B) {
	b.ReportAllocs()
	const batch = 64
	tr := gen.One(gen.Truck, 4096, 11)
	e, err := NewEngine(Config{Zeta: 40, Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	off := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if off+batch > len(tr) {
			e.Flush("hot")
			off = 0
		}
		if _, err := e.Ingest("hot", tr[off:off+batch]); err != nil {
			b.Fatal(err)
		}
		off += batch
	}
}

// BenchmarkIngestWithSink is the end-to-end ingest path over a real
// segment store with the strictest durability policy (fsync per append)
// — the workload the async sink pipeline exists for. The async and sync
// sub-benchmarks run in the same process against the same store config,
// so their points/s are directly comparable: sync pays the fsync inside
// the shard lock on every emitting batch; async hands off a memcpy and
// lets the writers group-commit the backlog — the devices=8 pair is the
// sweep-commit headline, where K devices × M batches settle in at most K
// fsyncs per sweep. fsyncs/batch is measured over the whole run
// including the drain, so it counts every fsync the durability policy
// actually paid.
//
//	go test ./internal/stream -bench=IngestWithSink -benchtime=2s
func BenchmarkIngestWithSink(b *testing.B) {
	const batch = 64
	tr := gen.One(gen.Truck, 4096, 11)
	for _, devices := range []int{1, 8} {
		for _, mode := range []struct {
			name string
			sync bool
		}{{"async", false}, {"sync", true}} {
			b.Run(fmt.Sprintf("devices=%d/%s", devices, mode.name), func(b *testing.B) {
				b.ReportAllocs()
				store, err := segstore.Open(segstore.Config{Dir: b.TempDir(), Sync: segstore.SyncAlways})
				if err != nil {
					b.Fatal(err)
				}
				e, err := NewEngine(Config{Zeta: 5, Shards: 8, Sink: store, SinkSync: mode.sync})
				if err != nil {
					b.Fatal(err)
				}
				var wg sync.WaitGroup
				errc := make(chan error, devices)
				b.ResetTimer()
				for d := 0; d < devices; d++ {
					n := b.N / devices
					if d < b.N%devices {
						n++
					}
					wg.Add(1)
					go func(d, n int) {
						defer wg.Done()
						dev := fmt.Sprintf("dev-%d", d)
						off := 0
						for i := 0; i < n; i++ {
							if off+batch > len(tr) {
								e.Flush(dev)
								off = 0
							}
							if _, err := e.Ingest(dev, tr[off:off+batch]); err != nil {
								select {
								case errc <- err:
								default:
								}
								return
							}
							off += batch
						}
					}(d, n)
				}
				wg.Wait()
				b.StopTimer()
				select {
				case err := <-errc:
					b.Fatal(err)
				default:
				}
				b.ReportMetric(float64(e.Stats().Points)/b.Elapsed().Seconds(), "points/s")
				e.Close() // drain: every enqueued batch reaches the store
				st := e.Stats()
				sst := store.Stats()
				// Appended ingest batches: the sync path appends each batch
				// individually; the sweep path folds them, and SinkSweepBatches
				// says how many folded in.
				batches := float64(st.SinkAppends)
				if !mode.sync {
					batches = float64(st.SinkSweepBatches)
				}
				if batches > 0 {
					b.ReportMetric(float64(sst.Syncs)/batches, "fsyncs/batch")
				}
				if sst.Segments == 0 && b.N > 20 {
					b.Fatalf("sink saw no segments: %+v", sst)
				}
				store.Close()
			})
		}
	}
}

// BenchmarkForEach measures the worker pool against a trivially cheap
// body, exposing its scheduling overhead per item.
func BenchmarkForEach(b *testing.B) {
	b.ReportAllocs()
	var sink atomic.Int64
	work := make([]traj.Point, 256)
	b.Run(fmt.Sprintf("workers=%d", runtime.GOMAXPROCS(0)), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = ForEach(len(work), 0, func(j int) error {
				sink.Add(int64(j))
				return nil
			})
		}
	})
}
