// Package stream is the cloud side of the paper's motivating deployment
// (§1): a fleet of devices each running the O(1)-space OPERB encoder and
// uploading continuously. An Engine holds thousands of live per-device
// encoder sessions at once and ingests batched points for any of them,
// returning the segments each batch finalizes.
//
// Sessions live in N shard maps keyed by device ID (FNV-1a hash, one
// mutex per shard), so concurrent ingest for different devices rarely
// contends. Each session owns an optional stream Cleaner and one OPERB or
// OPERB-A encoder — exactly the state a device would hold, moved
// server-side. Idle sessions are evicted on a monotonic clock, either
// explicitly via EvictIdle or by the background janitor.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"trajsim/internal/core"
	"trajsim/internal/segstore"
	"trajsim/internal/traj"
)

// Errors reported by the Engine.
var (
	// ErrClosed is returned by Ingest after Close.
	ErrClosed = errors.New("stream: engine closed")
	// ErrNoDevice is returned by Ingest for an empty device ID.
	ErrNoDevice = errors.New("stream: empty device ID")
	// ErrDeviceTooLong is returned by Ingest for a device ID longer than
	// MaxDevice bytes. Enforced at ingest so the persistence tier — whose
	// escaped directory names carry the same cap — never silently drops a
	// device the engine accepted.
	ErrDeviceTooLong = errors.New("stream: device ID too long")
	// ErrSessionLimit is returned by Ingest when opening one more session
	// would exceed Config.MaxSessions.
	ErrSessionLimit = errors.New("stream: session limit reached")
	// ErrTimeOrder is returned by Ingest when a batch violates the
	// paper's strictly-increasing-timestamp invariant (§3.1) against
	// itself or the session's previous batches, and no CleanWindow is
	// configured to repair it. The session is left unchanged.
	ErrTimeOrder = errors.New("stream: points not in increasing time order")
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// MaxDevice is the longest accepted device ID in bytes — one limit for
// the whole stack (engine, segstore directory names, HTTP ingest), so a
// device cannot be ingestable but unpersistable.
const MaxDevice = 80

// Sink receives every batch of finalized segments the engine emits — the
// durability tier under the in-memory sessions (segstore.Store implements
// it). By default Append runs on the engine's sink-writer goroutines,
// outside every ingest lock; calls for one device still arrive in
// emission order and never concurrently (a device maps to exactly one
// writer). Under Config.SinkSync, Append instead runs synchronously with
// the shard lock held, as in earlier versions. Either way implementations
// must not call back into the Engine. An Append error is counted in
// Stats.SinkErrors but does not fail the ingest: the segments were
// already returned to the caller, so the engine degrades to memory-only
// rather than dropping traffic.
type Sink interface {
	Append(device string, segs []traj.Segment) error
}

// DeferredSink is the optional group-commit face of a Sink. When the
// configured Sink implements it, each sink-writer sweep calls
// AppendNoSync once per device with that device's merged payload —
// written, but with any per-append fsync deferred — and then
// CommitDevices once for the whole sweep, making the deferred writes
// durable with one fsync per dirty file: K devices × M batches cost at
// most K fsyncs under segstore's SyncAlways. CommitDevices must accept
// devices with nothing deferred (including ones whose AppendNoSync
// failed) as no-ops. *segstore.Store implements it; plain Sinks are
// driven with one Append per device per sweep instead.
type DeferredSink interface {
	Sink
	AppendNoSync(device string, segs []traj.Segment) error
	CommitDevices(devices []string) error
}

// The store is the DeferredSink the pipeline is designed around; keep
// the contract pinned at compile time.
var _ DeferredSink = (*segstore.Store)(nil)

// Config parameterizes an Engine. The zero value is not usable: Zeta must
// be a positive error bound in meters.
type Config struct {
	// Zeta is the error bound ζ in meters applied to every session.
	Zeta float64
	// Aggressive selects OPERB-A (patched, better compression) instead of
	// OPERB for new sessions.
	Aggressive bool
	// Options configures the encoders; nil selects core.DefaultOptions.
	Options *core.Options
	// Shards is the number of session-map shards; 0 selects DefaultShards.
	Shards int
	// CleanWindow, when positive, gives every session a traj.Cleaner with
	// this reorder window, repairing duplicated or out-of-order fixes
	// before they reach the encoder.
	CleanWindow int
	// IdleAfter is how long a session may go without ingest before
	// EvictIdle (or the janitor) finalizes it. Zero disables eviction.
	IdleAfter time.Duration
	// EvictEvery, when positive, starts a background janitor goroutine
	// that calls EvictIdle on this period until Close.
	EvictEvery time.Duration
	// MaxSessions caps live sessions; 0 means unlimited. Ingest for a new
	// device beyond the cap fails with ErrSessionLimit — or, under
	// ShedSessions, flushes the coldest session to make room instead.
	MaxSessions int
	// ShedSessions selects coldest-first load shedding at the
	// MaxSessions cap: instead of rejecting a new device, the live
	// session idle the longest is flushed durably (through the sink
	// drain barrier, reported to OnEvict) and its slot reused. The new
	// device is demonstrably live; the coldest one is the best bet to
	// be gone for good. Ignored without MaxSessions.
	ShedSessions bool
	// DeviceRate, when positive, enforces a per-device token-bucket
	// rate limit of this many points per second. A batch needs one
	// token per point; an over-rate batch is rejected with an
	// *OverloadError (ErrOverloaded under errors.Is) whose RetryAfter
	// says when the bucket will have refilled, and the session is left
	// untouched. Zero disables rate limiting.
	DeviceRate float64
	// DeviceBurst is the token-bucket capacity in points — how large a
	// burst a device may ingest at once after idling. Zero selects
	// DeviceRate (one second of burst). Requires DeviceRate.
	DeviceBurst float64
	// QueueWatermark, when positive (a fraction in (0, 1]), rejects
	// ingest for NEW devices with an *OverloadError while the async
	// sink queue holds more than this fraction of its total capacity:
	// the disk is behind, and opening more sessions only deepens the
	// backlog. The RetryAfter is the backlog divided by the queue's
	// measured drain rate. Existing sessions keep flowing under the
	// SinkFull policy. Ignored without an async Sink.
	QueueWatermark float64
	// OnEvict, when non-nil, receives the trailing segments of every
	// evicted session (EvictIdle and the janitor both report through it).
	OnEvict func(device string, segs []traj.Segment)
	// Sink, when non-nil, persists every emitted segment batch — from
	// Ingest, Flush, FlushAll, EvictIdle and Close alike. See Sink.
	Sink Sink
	// SinkWriters is the number of goroutines draining the async sink
	// queue; 0 selects DefaultSinkWriters. Ignored without a Sink or
	// under SinkSync.
	SinkWriters int
	// SinkQueue is each writer's queue depth in batches; 0 selects
	// DefaultSinkQueue. A deeper queue absorbs longer storage stalls
	// before the SinkFull policy engages.
	SinkQueue int
	// SinkFull selects what a full queue does with an ingest-path batch:
	// SinkBlock (default, durability) or SinkDrop (availability). Session
	// tails from Flush/EvictIdle/Close always block regardless.
	SinkFull SinkFullPolicy
	// SinkSweep caps how many segments one sink-writer sweep folds
	// together before it commits — the bound on both the merge buffers
	// and how long the sweep's first batch waits for stragglers when the
	// queue is deep. 0 selects DefaultSinkSweep. Ignored without a Sink
	// or under SinkSync.
	SinkSweep int
	// OnSink, when non-nil, observes every segment batch the Sink
	// accepted (Append returned nil), after the append — the feed for
	// live tails over the durable log: a batch is announced only once a
	// replay would see it. Runs on a sink-writer goroutine (or under the
	// shard lock when SinkSync), so it must be fast and must not call
	// back into the Engine; the slice is reused after the call returns —
	// copy to retain. Batches for one device arrive in persist order.
	OnSink func(device string, segs []traj.Segment)
	// SinkSync disables the async pipeline and calls Sink.Append
	// synchronously under the shard lock — the pre-queue behavior, kept
	// for benchmarks comparing the two and for sinks that need the
	// engine stalled while they run.
	SinkSync bool
	// Clock overrides the engine clock, for tests. Nil selects time.Now,
	// whose monotonic reading makes idle measurement immune to wall-clock
	// steps.
	Clock func() time.Time
}

// StatsSink is the optional second face of a Sink: one that exposes
// storage-tier counters for Engine.Stats to surface. *segstore.Store
// implements it; custom sinks may too.
type StatsSink interface {
	Sink
	Stats() segstore.Stats
}

// Stats are engine-wide counters, all cumulative except Sessions.
type Stats struct {
	Sessions   int   `json:"sessions"`    // live sessions right now
	Opened     int64 `json:"opened"`      // sessions ever opened
	Points     int64 `json:"points"`      // points ingested
	Segments   int64 `json:"segments"`    // segments emitted, incl. flush/evict tails
	Flushed    int64 `json:"flushed"`     // sessions finalized by Flush/FlushAll/Close
	Evicted    int64 `json:"evictions"`   // sessions finalized for idleness
	Contended  int64 `json:"contended"`   // ingests that blocked on a busy shard lock
	SinkErrors int64 `json:"sink_errors"` // merged payloads the Sink failed to persist

	Shed        int64 `json:"shed_sessions"`     // sessions flushed coldest-first to admit new devices
	RateLimited int64 `json:"rate_limited"`      // ingests rejected by the per-device rate limit
	Overloaded  int64 `json:"overload_rejected"` // new-device ingests rejected at the queue watermark

	SinkAppends      int64 `json:"sink_appends"`          // merged payloads the Sink accepted
	SinkErrorSegs    int64 `json:"sink_error_segments"`   // segments lost inside failed payloads
	SinkQueued       int64 `json:"sink_queued"`           // sink-queue ops in flight right now
	SinkBlocked      int64 `json:"sink_blocked"`          // enqueues that found the queue full and waited
	SinkDropped      int64 `json:"sink_dropped"`          // batches dropped by the SinkDrop policy
	SinkDroppedSegs  int64 `json:"sink_dropped_segments"` // segments inside those batches
	SinkSweeps       int64 `json:"sink_sweeps"`           // writer sweeps that appended at least one device
	SinkSweepBatches int64 `json:"sink_sweep_batches"`    // ingest batches folded into persisted sweeps

	// Store carries the durability tier's counters when the configured
	// Sink exposes them (see StatsSink); nil otherwise. One Stats call
	// answers for the whole storage path: sessions in memory, segments on
	// disk, handle-LRU and retention activity underneath.
	Store *segstore.Stats `json:"store,omitempty"`
}

// Eviction is one idle session finalized by EvictIdle: its device ID and
// the trailing segments its encoder still held.
type Eviction struct {
	Device   string
	Segments []traj.Segment
}

// encoder is the common face of core.Encoder and core.AggressiveEncoder.
type encoder interface {
	Push(traj.Point) []traj.Segment
	Flush() []traj.Segment
}

// session is one live device stream: the cleaner+encoder state the paper
// puts on the device, plus bookkeeping for eviction.
type session struct {
	clean *traj.Cleaner
	enc   encoder
	last  time.Time      // engine-clock time of the latest ingest
	lastT int64          // timestamp of the latest accepted point (no cleaner)
	out   []traj.Segment // reusable Ingest out-buffer; valid until the next batch

	// Token bucket under Config.DeviceRate (see admitRate); untouched
	// otherwise. A zero tokAt means never charged: the first charge
	// starts the bucket full.
	tokens float64
	tokAt  time.Time
}

// shard is one of the Engine's session maps. Padding would buy little
// here: the mutex and map pointer are touched together under the lock.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session //trajlint:guardedby mu
}

// Engine holds many live per-device encoder sessions and routes batched
// ingest to them. All methods are safe for concurrent use.
type Engine struct {
	cfg    Config
	opts   core.Options
	now    func() time.Time
	burst  float64 // resolved DeviceBurst (DeviceRate when unset)
	shards []shard
	q      *sinkQueue // async sink pipeline; nil without a Sink or under SinkSync

	live        atomic.Int64
	opened      atomic.Int64
	points      atomic.Int64
	segments    atomic.Int64
	flushed     atomic.Int64
	evicted     atomic.Int64
	contended   atomic.Int64
	sinkErrs    atomic.Int64
	sinkErrSegs atomic.Int64
	sinkApps    atomic.Int64
	shed        atomic.Int64
	rateLimited atomic.Int64
	overloadRej atomic.Int64

	closed  atomic.Bool
	stop    chan struct{}
	janitor sync.WaitGroup
}

// NewEngine validates cfg and returns a running Engine. If
// cfg.EvictEvery > 0 a janitor goroutine runs until Close.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Zeta <= 0 {
		return nil, fmt.Errorf("stream: error bound ζ must be positive, got %g", cfg.Zeta)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("stream: negative shard count %d", cfg.Shards)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.SinkWriters < 0 {
		return nil, fmt.Errorf("stream: negative sink writer count %d", cfg.SinkWriters)
	}
	if cfg.SinkWriters == 0 {
		cfg.SinkWriters = DefaultSinkWriters
	}
	if cfg.SinkQueue < 0 {
		return nil, fmt.Errorf("stream: negative sink queue depth %d", cfg.SinkQueue)
	}
	if cfg.SinkQueue == 0 {
		cfg.SinkQueue = DefaultSinkQueue
	}
	if cfg.SinkFull != SinkBlock && cfg.SinkFull != SinkDrop {
		return nil, fmt.Errorf("stream: unknown SinkFull policy %d (use SinkBlock or SinkDrop)", int(cfg.SinkFull))
	}
	if cfg.SinkSweep < 0 {
		return nil, fmt.Errorf("stream: negative sink sweep bound %d", cfg.SinkSweep)
	}
	if cfg.SinkSweep == 0 {
		cfg.SinkSweep = DefaultSinkSweep
	}
	if cfg.DeviceRate < 0 {
		return nil, fmt.Errorf("stream: negative device rate %g", cfg.DeviceRate)
	}
	if cfg.DeviceBurst < 0 {
		return nil, fmt.Errorf("stream: negative device burst %g", cfg.DeviceBurst)
	}
	if cfg.DeviceBurst > 0 && cfg.DeviceRate <= 0 {
		return nil, fmt.Errorf("stream: DeviceBurst %g without DeviceRate", cfg.DeviceBurst)
	}
	if cfg.QueueWatermark < 0 || cfg.QueueWatermark > 1 {
		return nil, fmt.Errorf("stream: queue watermark %g outside (0, 1]", cfg.QueueWatermark)
	}
	opts := core.DefaultOptions()
	if cfg.Options != nil {
		opts = *cfg.Options
	}
	// Fail now, not on the first ingest, if the configuration cannot
	// build an encoder.
	if _, err := newSessionEncoder(cfg.Zeta, cfg.Aggressive, opts); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		opts:   opts,
		now:    cfg.Clock,
		shards: make([]shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	if e.now == nil {
		//trajlint:ignore walltime this IS the clock seam: the one default the engine falls back to when Config.Clock is unset
		e.now = time.Now
	}
	e.burst = cfg.DeviceBurst
	if e.burst == 0 {
		e.burst = cfg.DeviceRate
	}
	for i := range e.shards {
		e.shards[i].sessions = make(map[string]*session)
	}
	if cfg.Sink != nil && !cfg.SinkSync {
		e.q = newSinkQueue(cfg.Sink, cfg.SinkWriters, cfg.SinkQueue, cfg.SinkSweep, cfg.SinkFull,
			cfg.QueueWatermark, e.now, &e.sinkErrs, &e.sinkErrSegs, &e.sinkApps, cfg.OnSink)
	}
	if cfg.EvictEvery > 0 && cfg.IdleAfter > 0 {
		e.janitor.Add(1)
		go e.runJanitor()
	}
	return e, nil
}

func newSessionEncoder(zeta float64, aggressive bool, opts core.Options) (encoder, error) {
	if aggressive {
		return core.NewAggressiveEncoder(zeta, opts)
	}
	return core.NewEncoder(zeta, opts)
}

// fnv1a is the 32-bit FNV-1a hash, inlined to hash device IDs without
// allocating.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (e *Engine) shard(device string) *shard {
	return &e.shards[fnv1a(device)%uint32(len(e.shards))]
}

// persist hands a finalized batch to the Sink — synchronously under
// SinkSync (caller holds the shard lock), or through the async queue
// otherwise. Called with the shard lock held either way, which is what
// keeps one device's batches in emission order.
func (e *Engine) persist(device string, segs []traj.Segment) {
	if e.cfg.Sink == nil || len(segs) == 0 {
		return
	}
	if e.q != nil {
		e.q.putBatch(device, segs)
		return
	}
	if err := e.cfg.Sink.Append(device, segs); err != nil {
		e.sinkErrs.Add(1)
		e.sinkErrSegs.Add(int64(len(segs)))
		return
	}
	e.sinkApps.Add(1)
	if e.cfg.OnSink != nil {
		e.cfg.OnSink(device, segs)
	}
}

// handoff finalizes a just-removed session and routes its tail to the
// Sink, returning a wait whose segs field is valid once wg is done.
// Caller holds the shard lock (so the tail is ordered after the
// session's batches and before any successor's) and must wg.Wait after
// releasing it. Without a queue the session finishes inline.
func (e *Engine) handoff(device string, s *session, wg *sync.WaitGroup) *finishWait {
	res := &finishWait{wg: wg}
	wg.Add(1)
	if e.q != nil {
		e.q.putFinish(device, s, res)
		return res
	}
	res.segs = s.finish()
	e.persist(device, res.segs)
	wg.Done()
	return res
}

// Ingest feeds a batch of points to device's session, opening it on first
// contact, and returns the segments the batch finalized. Points must be in
// increasing time order per device across batches unless CleanWindow is
// set. The returned slice is the session's reusable out-buffer: it is
// valid until the next Ingest for the same device, so callers that keep
// segment values past that point — in particular past a moment when a
// concurrent caller might ingest the same device — must use IngestAppend
// instead (reading len() of the result is always safe).
func (e *Engine) Ingest(device string, pts []traj.Point) ([]traj.Segment, error) {
	return e.ingest(device, pts, nil)
}

// IngestAppend is Ingest for callers that retain segments: the batch's
// finalized segments are appended to dst — copied while the shard lock
// is still held, so the result can never be overwritten by a concurrent
// ingest for the same device — and the extended slice is returned. On
// error dst is returned unchanged.
func (e *Engine) IngestAppend(device string, pts []traj.Point, dst []traj.Segment) ([]traj.Segment, error) {
	out, err := e.ingest(device, pts, &dst)
	if err != nil {
		return dst, err
	}
	return out, nil
}

func (e *Engine) ingest(device string, pts []traj.Point, dst *[]traj.Segment) ([]traj.Segment, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	if device == "" {
		return nil, ErrNoDevice
	}
	if len(device) > MaxDevice {
		return nil, fmt.Errorf("%w: %d bytes (max %d)", ErrDeviceTooLong, len(device), MaxDevice)
	}
	if len(pts) == 0 {
		if dst != nil {
			return *dst, nil
		}
		return nil, nil
	}
	sh := e.shard(device)
	shedTries := 0
acquire:
	// TryLock first so shard-lock contention — the quantity sharding
	// exists to eliminate — is observable in Stats.
	if !sh.mu.TryLock() {
		e.contended.Add(1)
		sh.mu.Lock()
	}
	// Re-check under the shard lock: Close sets the flag before draining
	// the shards, so an ingest that slips past the fast-path check above
	// while Close runs must not resurrect a session Close won't flush.
	if e.closed.Load() {
		sh.mu.Unlock()
		return nil, ErrClosed
	}
	s := sh.sessions[device]
	// Without a cleaner the encoder trusts its input, so enforce the
	// time-order invariant up front — before the session is created or
	// touched, so a rejected batch changes nothing (not even the session
	// count) and the caller can retry repaired.
	batchLastT := int64(math.MinInt64)
	if e.cfg.CleanWindow <= 0 {
		prev := batchLastT
		if s != nil {
			prev = s.lastT
		}
		for _, p := range pts {
			if p.T <= prev {
				sh.mu.Unlock()
				return nil, fmt.Errorf("%w: device %s: t=%d after t=%d", ErrTimeOrder, device, p.T, prev)
			}
			prev = p.T
		}
		batchLastT = prev
	}
	if s == nil {
		// First contact while the sink queue is past its pressure
		// watermark: the disk is behind and a new session only deepens
		// the backlog. Reject with when-to-retry; existing sessions
		// (below) keep flowing under the SinkFull policy.
		if e.q != nil && e.q.overloaded() {
			retry := e.q.retryAfter()
			sh.mu.Unlock()
			e.overloadRej.Add(1)
			return nil, &OverloadError{RetryAfter: retry, Reason: "sink queue past watermark"}
		}
		// Reserve the slot with the increment itself so concurrent
		// first-contact ingests on different shards cannot overshoot
		// MaxSessions between a read and an add.
		if n, max := e.live.Add(1), int64(e.cfg.MaxSessions); max > 0 && n > max {
			e.live.Add(-1)
			sh.mu.Unlock()
			// Shed the coldest session to make room — at most twice, so
			// a race-heavy moment degrades to the plain rejection rather
			// than an unbounded eviction storm.
			if e.cfg.ShedSessions && shedTries < 2 {
				shedTries++
				if e.shedColdest(device) {
					goto acquire
				}
			}
			return nil, fmt.Errorf("%w (%d live)", ErrSessionLimit, max)
		}
		enc, err := newSessionEncoder(e.cfg.Zeta, e.cfg.Aggressive, e.opts)
		if err != nil {
			e.live.Add(-1)
			sh.mu.Unlock()
			return nil, err
		}
		s = &session{enc: enc}
		if e.cfg.CleanWindow > 0 {
			s.clean = traj.NewCleaner(e.cfg.CleanWindow)
		}
		sh.sessions[device] = s
		e.opened.Add(1)
	}
	// Per-device rate limit: charge the bucket before any encoder or
	// ordering state changes, so a rejected batch is a clean no-op the
	// caller can retry after the error's RetryAfter. A session created
	// just above always admits its first batch (the bucket starts full).
	if e.cfg.DeviceRate > 0 {
		if err := e.admitRate(s, len(pts)); err != nil {
			sh.mu.Unlock()
			return nil, err
		}
	}
	s.lastT = batchLastT
	out := s.out[:0]
	for _, p := range pts {
		// Encoder Push returns a scratch slice reused by the next call;
		// append copies the segments out before that happens.
		if s.clean != nil {
			for _, q := range s.clean.Push(p) {
				out = append(out, s.enc.Push(q)...)
			}
		} else {
			out = append(out, s.enc.Push(p)...)
		}
	}
	s.out = out
	s.last = e.now()
	// The queue copies out before the lock drops (the session reuses the
	// buffer on its next batch); under SinkSync this is the disk write
	// itself. Either way this is the only sink work in the critical
	// section — a memcpy, not I/O, on the default async path.
	e.persist(device, out)
	result := out
	if dst != nil {
		// IngestAppend: the caller's copy is taken before the lock drops,
		// so no concurrent same-device ingest can overwrite it mid-read.
		*dst = append(*dst, out...)
		result = *dst
	}
	sh.mu.Unlock()
	e.points.Add(int64(len(pts)))
	e.segments.Add(int64(len(out)))
	return result, nil
}

// finish drains the cleaner into the encoder and flushes it, returning the
// session's trailing segments. Caller holds the shard lock.
func (s *session) finish() []traj.Segment {
	var out []traj.Segment
	if s.clean != nil {
		for _, q := range s.clean.Flush() {
			out = append(out, s.enc.Push(q)...)
		}
	}
	return append(out, s.enc.Flush()...)
}

// Flush finalizes and removes device's session, returning its trailing
// segments. The second result is false if no session exists — e.g. on a
// duplicate flush. Flush returns only after the tail (and every batch
// the session emitted before it) has been handed to the Sink.
func (e *Engine) Flush(device string) ([]traj.Segment, bool) {
	sh := e.shard(device)
	sh.mu.Lock()
	s := sh.sessions[device]
	if s == nil {
		sh.mu.Unlock()
		return nil, false
	}
	delete(sh.sessions, device)
	var wg sync.WaitGroup
	res := e.handoff(device, s, &wg)
	// Release the session slot before dropping the lock so a concurrent
	// first-contact ingest at MaxSessions sees the freed capacity.
	e.live.Add(-1)
	sh.mu.Unlock()
	wg.Wait()
	e.flushed.Add(1)
	e.segments.Add(int64(len(res.segs)))
	return res.segs, true
}

// FlushAll finalizes every live session and returns their trailing
// segments by device. Each shard lock covers only session removal and
// queue handoff; the encoder flushes and sink appends run on the sink
// writers, in parallel across devices. FlushAll returns only after every
// segment emitted before the call — tails and queued ingest batches
// alike — has been handed to the Sink.
func (e *Engine) FlushAll() map[string][]traj.Segment {
	var (
		wg    sync.WaitGroup
		devs  []string
		waits []*finishWait
	)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for dev, s := range sh.sessions {
			delete(sh.sessions, dev)
			devs = append(devs, dev)
			waits = append(waits, e.handoff(dev, s, &wg))
			e.live.Add(-1)
			e.flushed.Add(1)
		}
		sh.mu.Unlock()
	}
	wg.Wait()
	out := make(map[string][]traj.Segment, len(devs))
	for i, dev := range devs {
		out[dev] = waits[i].segs
		e.segments.Add(int64(len(waits[i].segs)))
	}
	if e.q != nil {
		e.q.drain()
	}
	return out
}

// EvictIdle finalizes every session idle for at least Config.IdleAfter on
// the engine clock and returns the evictions, each persisted before the
// call returns. OnEvict, if set, observes each one. A zero IdleAfter
// makes this a no-op.
func (e *Engine) EvictIdle() []Eviction {
	if e.cfg.IdleAfter <= 0 {
		return nil
	}
	now := e.now()
	var (
		wg    sync.WaitGroup
		evs   []Eviction
		waits []*finishWait
	)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for dev, s := range sh.sessions {
			if now.Sub(s.last) < e.cfg.IdleAfter {
				continue
			}
			delete(sh.sessions, dev)
			evs = append(evs, Eviction{Device: dev})
			waits = append(waits, e.handoff(dev, s, &wg))
			e.live.Add(-1)
			e.evicted.Add(1)
		}
		sh.mu.Unlock()
	}
	wg.Wait()
	for i := range evs {
		evs[i].Segments = waits[i].segs
		e.segments.Add(int64(len(waits[i].segs)))
	}
	if e.cfg.OnEvict != nil {
		for _, ev := range evs {
			e.cfg.OnEvict(ev.Device, ev.Segments)
		}
	}
	return evs
}

func (e *Engine) runJanitor() {
	defer e.janitor.Done()
	//trajlint:ignore walltime eviction cadence is real elapsed time by design; tests call EvictIdle directly instead of waiting on this ticker
	tick := time.NewTicker(e.cfg.EvictEvery)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			e.EvictIdle()
		}
	}
}

// Sessions returns the number of live sessions.
func (e *Engine) Sessions() int { return int(e.live.Load()) }

// Stats returns a snapshot of the engine-wide counters, including the
// sink's storage counters when the Sink exposes them.
func (e *Engine) Stats() Stats {
	st := Stats{
		Sessions:      int(e.live.Load()),
		Opened:        e.opened.Load(),
		Points:        e.points.Load(),
		Segments:      e.segments.Load(),
		Flushed:       e.flushed.Load(),
		Evicted:       e.evicted.Load(),
		Contended:     e.contended.Load(),
		SinkErrors:    e.sinkErrs.Load(),
		SinkErrorSegs: e.sinkErrSegs.Load(),
		SinkAppends:   e.sinkApps.Load(),
		Shed:          e.shed.Load(),
		RateLimited:   e.rateLimited.Load(),
		Overloaded:    e.overloadRej.Load(),
	}
	if e.q != nil {
		st.SinkQueued = e.q.depth.Load()
		st.SinkBlocked = e.q.blocked.Load()
		st.SinkDropped = e.q.dropped.Load()
		st.SinkDroppedSegs = e.q.dropSeg.Load()
		st.SinkSweeps = e.q.sweeps.Load()
		st.SinkSweepBatches = e.q.sweepBatches.Load()
	}
	if ss, ok := e.cfg.Sink.(StatsSink); ok {
		sst := ss.Stats()
		st.Store = &sst
	}
	return st
}

// Close stops the janitor, rejects further ingest, finalizes every live
// session, and drains and stops the sink pipeline, returning the
// sessions' trailing segments by device. When Close returns, everything
// the engine ever emitted has been handed to the Sink. Subsequent calls
// return nil.
func (e *Engine) Close() map[string][]traj.Segment {
	if !e.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(e.stop)
	e.janitor.Wait()
	out := e.FlushAll()
	if e.q != nil {
		e.q.close()
	}
	return out
}
