package stream

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"trajsim/internal/traj"
)

// The async sink pipeline: finalized segment batches are handed off
// under the shard lock to a bounded queue sharded by device hash, and N
// writer goroutines drain it, calling the real Sink outside any ingest
// lock. The paper's encoder processes a point in nanoseconds (§4); a
// sink append is a disk write — potentially an fsync under SyncAlways —
// so calling it inside the ingest critical section gates every device on
// a shard by storage latency. With the queue, the critical section ends
// at a memcpy.
//
// Draining is sweep-level group commit: a worker takes everything
// immediately available on its channel (bounded by Config.SinkSweep
// segments) into one sweep, partitions it by device, writes each
// device's merged share with one append, and — when the Sink supports
// DeferredSink — settles the whole sweep with one CommitDevices call:
// one fsync per dirty file per sweep, so under SyncAlways a backlog of
// K devices × M batches costs at most K fsyncs instead of K×M. The old
// behavior (fold only consecutive same-device batches, sync each) is
// what this replaces.
//
// Ordering: one device always maps to one writer (FNV-1a hash), and
// every enqueue for a device happens under that device's shard lock, so
// a device's ops sit in a single FIFO in emission order; the sweep
// partition preserves that arrival order inside each device's merged
// payload — the property the segment log's replay (and PR 2's
// restart-identity test) depends on. Cross-device order is unspecified,
// exactly as it was under the synchronous path where shards raced to
// the sink.
//
// Backpressure: a full queue either blocks the producer (SinkBlock —
// ingest slows to storage speed, nothing is lost) or drops the batch
// (SinkDrop — ingest never stalls, the gap is counted, and the in-memory
// result the caller already received is unaffected). Session handoffs
// from Flush/FlushAll/EvictIdle/Close always block: callers rely on
// those segments reaching the sink before the call returns — their
// waits are signalled only after the sweep's commit.

// SinkFullPolicy selects what a full sink queue does with an ingest-path
// batch.
type SinkFullPolicy int

const (
	// SinkBlock (the default) blocks the ingest until the queue has
	// room: durability — acknowledged segments always reach the sink,
	// and a slow disk is felt as ingest latency.
	SinkBlock SinkFullPolicy = iota
	// SinkDrop drops the batch and counts it: availability — ingest
	// never waits for storage, at the cost of gaps in the persisted log
	// (Stats.SinkDropped / SinkDroppedSegs say how many).
	SinkDrop
)

// String implements fmt.Stringer (and flag.Value's read side).
func (p SinkFullPolicy) String() string {
	switch p {
	case SinkBlock:
		return "block"
	case SinkDrop:
		return "drop"
	}
	return fmt.Sprintf("SinkFullPolicy(%d)", int(p))
}

// ParseSinkFullPolicy parses "block" or "drop".
func ParseSinkFullPolicy(s string) (SinkFullPolicy, error) {
	switch s {
	case "block":
		return SinkBlock, nil
	case "drop":
		return SinkDrop, nil
	}
	return 0, fmt.Errorf("stream: unknown sink-full policy %q (block, drop)", s)
}

const (
	// DefaultSinkWriters is the writer-goroutine count when
	// Config.SinkWriters is zero.
	DefaultSinkWriters = 4
	// DefaultSinkQueue is the per-writer queue depth (in batches) when
	// Config.SinkQueue is zero.
	DefaultSinkQueue = 256
	// DefaultSinkSweep is the sweep bound (in segments) when
	// Config.SinkSweep is zero: a storage stall can fold at most this
	// many segments into one sweep, so the merge buffer — and the latency
	// of the batch unlucky enough to be first in it — stays bounded no
	// matter how deep the backlog.
	DefaultSinkSweep = 4096
	// maxPooledSegs caps the capacity of batch buffers returned to the
	// sync.Pool: recycling an outlier would pin its peak allocation for
	// the life of the process.
	maxPooledSegs = 4096
)

// segBatch is a pooled copy of one emitted batch. The engine reuses the
// per-session out-buffer it hands to callers, so the queue must own its
// bytes; pooling the copies keeps the steady-state ingest path
// allocation-free.
type segBatch struct {
	segs []traj.Segment
}

// finishWait carries one session handoff's result back to the caller.
// The worker stores the finished tail and signals wg after the sink
// append completes, which is what gives Flush/FlushAll/EvictIdle/Close
// their persisted-before-return guarantee.
type finishWait struct {
	wg   *sync.WaitGroup
	segs []traj.Segment
}

// sinkOp is one queue entry: exactly one of batch, sess, or barrier is
// set.
type sinkOp struct {
	device  string
	batch   *segBatch     // ingest-path batch, pooled
	sess    *session      // session handoff: worker runs finish() then appends
	res     *finishWait   // result slot for a session handoff
	barrier chan struct{} // closed once every earlier op on this worker is done
}

// sinkQueue is the bounded, device-ordered pipeline between the engine's
// shard locks and the real Sink.
type sinkQueue struct {
	sink      Sink
	def       DeferredSink // sink's group-commit face; nil if unsupported
	policy    SinkFullPolicy
	sweepSegs int
	watermark int64 // queued-op count that counts as overload; 0 disables
	now       func() time.Time
	workers   []chan sinkOp
	wg        sync.WaitGroup
	pool      sync.Pool // of *segBatch

	// Drain-rate tracking for OverloadError.RetryAfter: drained counts
	// ops the workers have taken, and retryAfter turns its growth since
	// the last sample into a smoothed ops/sec rate.
	drained atomic.Int64
	rateMu  sync.Mutex
	rateAt  time.Time //trajlint:guardedby rateMu -- last sample time; zero until the first sample
	rateN   int64     //trajlint:guardedby rateMu -- drained count at the last sample
	rate    float64   //trajlint:guardedby rateMu -- EWMA drain rate, ops/sec

	// stopMu serializes enqueues against close: producers hold the read
	// side for the duration of a send, so close can wait out in-flight
	// sends before closing the channels. Post-stop enqueues are no-ops —
	// by then every session is flushed and the queue drained.
	stopMu  sync.RWMutex
	stopped bool //trajlint:guardedby stopMu

	depth   atomic.Int64 // ops queued right now, across workers
	blocked atomic.Int64 // enqueues that found the queue full and waited
	dropped atomic.Int64 // batches dropped under SinkDrop
	dropSeg atomic.Int64 // segments inside those batches

	sweeps       atomic.Int64 // sweeps that appended at least one device
	sweepBatches atomic.Int64 // ingest batches folded into persisted sweep shares

	errs    *atomic.Int64 // the engine's SinkErrors counter
	errSegs *atomic.Int64 // the engine's SinkErrorSegs counter
	apps    *atomic.Int64 // the engine's SinkAppends counter
	onSink  func(device string, segs []traj.Segment)
}

func newSinkQueue(sink Sink, writers, queue, sweep int, policy SinkFullPolicy,
	watermark float64, now func() time.Time,
	errs, errSegs, apps *atomic.Int64, onSink func(string, []traj.Segment)) *sinkQueue {
	q := &sinkQueue{
		sink:      sink,
		policy:    policy,
		sweepSegs: sweep,
		now:       now,
		workers:   make([]chan sinkOp, writers),
		errs:      errs,
		errSegs:   errSegs,
		apps:      apps,
		onSink:    onSink,
	}
	if watermark > 0 {
		// At least 1: a positive watermark must be able to fire even on
		// a tiny queue.
		q.watermark = max(1, int64(watermark*float64(writers*queue)))
	}
	q.def, _ = sink.(DeferredSink)
	q.pool.New = func() any { return &segBatch{} }
	for i := range q.workers {
		q.workers[i] = make(chan sinkOp, queue)
		q.wg.Add(1)
		go q.run(q.workers[i])
	}
	return q
}

// recycle returns a drained batch to the pool, unless its buffer grew
// beyond maxPooledSegs — dropping the outlier lets its peak allocation
// be collected. Reports whether the batch was pooled.
func (q *sinkQueue) recycle(b *segBatch) bool {
	if cap(b.segs) > maxPooledSegs {
		return false
	}
	b.segs = b.segs[:0]
	q.pool.Put(b)
	return true
}

// worker returns the one channel device's ops travel through.
func (q *sinkQueue) worker(device string) chan sinkOp {
	return q.workers[fnv1a(device)%uint32(len(q.workers))]
}

func (q *sinkQueue) run(ch chan sinkOp) {
	defer q.wg.Done()
	sw := newSweep(q)
	for {
		op, ok := <-ch
		if !ok {
			return
		}
		q.depth.Add(-1)
		q.drained.Add(1)
		sw.add(op)
		// Sweep drain: fold everything immediately available into this
		// sweep, bounded by sweepSegs so a storage stall cannot grow the
		// merge buffers (or the first batch's commit latency) without
		// limit. A closed channel reads as not-ready here; the outer
		// receive observes the close after the final flush.
		for sw.segs < q.sweepSegs {
			var next sinkOp
			var got bool
			select {
			case next, got = <-ch:
			default:
			}
			if !got {
				break
			}
			q.depth.Add(-1)
			q.drained.Add(1)
			sw.add(next)
		}
		sw.flush()
	}
}

// devSweep is one device's share of a sweep: its segments merged in
// arrival order, the session-handoff waits to signal after the commit,
// and how many ingest batches folded in.
type devSweep struct {
	device  string
	segs    []traj.Segment
	waits   []*finishWait
	batches int
	err     error // append failure for the merged payload
}

// sweep is one worker's reusable drain state: the immediately available
// ops of one pass, partitioned by device. Workers never share a sweep,
// so none of this needs locking.
type sweep struct {
	q        *sinkQueue
	devs     []*devSweep // first-touch order
	byDev    map[string]*devSweep
	free     []*devSweep // recycled shares
	barriers []chan struct{}
	commit   []string
	segs     int             // total segments collected; bounds the drain
	inErr    map[string]bool // devices inside an error burst (for log dedup)
}

func newSweep(q *sinkQueue) *sweep {
	return &sweep{q: q, byDev: make(map[string]*devSweep), inErr: make(map[string]bool)}
}

func (sw *sweep) dev(device string) *devSweep {
	ds := sw.byDev[device]
	if ds == nil {
		if n := len(sw.free); n > 0 {
			ds, sw.free = sw.free[n-1], sw.free[:n-1]
		} else {
			ds = &devSweep{}
		}
		ds.device = device
		sw.byDev[device] = ds
		sw.devs = append(sw.devs, ds)
	}
	return ds
}

// add folds one op into the sweep. Session handoffs run finish() here,
// on the worker goroutine — as the per-op path did — but their waits are
// signalled only in flush, after the sweep's commit, which is what gives
// Flush/FlushAll/EvictIdle/Close their persisted-before-return
// guarantee.
func (sw *sweep) add(op sinkOp) {
	switch {
	case op.barrier != nil:
		sw.barriers = append(sw.barriers, op.barrier)
	case op.sess != nil:
		segs := op.sess.finish()
		op.res.segs = segs
		ds := sw.dev(op.device)
		ds.segs = append(ds.segs, segs...)
		ds.waits = append(ds.waits, op.res)
		sw.segs += len(segs)
	default:
		ds := sw.dev(op.device)
		ds.segs = append(ds.segs, op.batch.segs...)
		sw.segs += len(op.batch.segs)
		ds.batches++
		sw.q.recycle(op.batch)
	}
}

// flush writes the sweep — one merged append per device, then one group
// commit settling every device's fsync — and only then signals handoff
// waits and barriers.
func (sw *sweep) flush() {
	q := sw.q
	appended := false
	for _, ds := range sw.devs {
		if len(ds.segs) == 0 {
			continue
		}
		appended = true
		if q.def != nil {
			ds.err = q.def.AppendNoSync(ds.device, ds.segs)
		} else {
			ds.err = q.sink.Append(ds.device, ds.segs)
		}
	}
	var commitErr error
	if q.def != nil && appended {
		sw.commit = sw.commit[:0]
		for _, ds := range sw.devs {
			sw.commit = append(sw.commit, ds.device)
		}
		commitErr = q.def.CommitDevices(sw.commit)
	}
	if appended {
		q.sweeps.Add(1)
	}
	for _, ds := range sw.devs {
		err := ds.err
		if err == nil {
			// A failed group commit may have left any device's deferred
			// bytes unsynced; attribute it to every device the commit
			// covered rather than guess which file the fsync failed on.
			err = commitErr
		}
		switch {
		case len(ds.segs) == 0:
			// Ops that merged to nothing (empty session tails): nothing
			// persisted, nothing to announce.
		case err != nil:
			q.errs.Add(1)
			q.errSegs.Add(int64(len(ds.segs)))
			if !sw.inErr[ds.device] {
				// One line per device per burst, not per lost payload: a
				// wedged disk under load must not flood the process log.
				sw.inErr[ds.device] = true
				log.Printf("stream: sink append %s: %v (%d segments lost; suppressing until recovery)",
					ds.device, err, len(ds.segs))
			}
		default:
			delete(sw.inErr, ds.device)
			q.apps.Add(1)
			q.sweepBatches.Add(int64(ds.batches))
			// Post-sink notification: announced only after the append and
			// the sweep's commit, so a tail listener never hears of
			// segments a concurrent replay could miss. The slice is reused
			// next sweep — listeners copy.
			if q.onSink != nil {
				q.onSink(ds.device, ds.segs)
			}
		}
		// After the commit, not the append: the caller behind each wait was
		// promised its tail is as durable as the sync policy allows.
		for _, w := range ds.waits {
			w.wg.Done()
		}
	}
	// A barrier promises every op enqueued before it is done; closing at
	// the end of the sweep keeps that promise (some later ops completed
	// too, which barriers never forbid).
	for _, b := range sw.barriers {
		close(b)
	}
	sw.reset()
}

// reset returns the sweep to empty, recycling device shares. Oversized
// merge buffers are dropped, not retained: the fold cap bounds a share
// to roughly sweepSegs plus one op, so anything far beyond that came
// from a single outlier payload.
func (sw *sweep) reset() {
	for _, ds := range sw.devs {
		delete(sw.byDev, ds.device)
		if cap(ds.segs) > 4*sw.q.sweepSegs {
			ds.segs = nil
		}
		ds.segs = ds.segs[:0]
		ds.waits = ds.waits[:0]
		ds.device, ds.batches, ds.err = "", 0, nil
		sw.free = append(sw.free, ds)
	}
	sw.devs = sw.devs[:0]
	sw.barriers = sw.barriers[:0]
	sw.segs = 0
}

// putBatch enqueues a copy of one ingest-path batch. Called under the
// device's shard lock, which is what keeps a device's queue order equal
// to its emission order.
func (q *sinkQueue) putBatch(device string, segs []traj.Segment) {
	if len(segs) == 0 {
		return
	}
	q.stopMu.RLock()
	defer q.stopMu.RUnlock()
	if q.stopped {
		return
	}
	b := q.pool.Get().(*segBatch)
	b.segs = append(b.segs[:0], segs...)
	op := sinkOp{device: device, batch: b}
	ch := q.worker(device)
	q.depth.Add(1)
	select {
	case ch <- op:
		return
	default:
	}
	if q.policy == SinkDrop {
		q.depth.Add(-1)
		q.dropped.Add(1)
		q.dropSeg.Add(int64(len(segs)))
		q.recycle(b)
		return
	}
	q.blocked.Add(1)
	ch <- op
}

// putFinish enqueues a session handoff: the worker finishes the session
// (draining its cleaner and flushing its encoder) and appends the tail
// to the sink, then fills res. Called under the device's shard lock —
// right after the session leaves the map — so the tail lands after every
// batch the session emitted and before anything a successor session
// emits. Handoffs always block: they carry a caller waiting on res.
func (q *sinkQueue) putFinish(device string, s *session, res *finishWait) {
	q.stopMu.RLock()
	defer q.stopMu.RUnlock()
	if q.stopped {
		// The queue is gone (racing Close already drained it); finish
		// inline so the caller still gets the tail.
		res.segs = s.finish()
		res.wg.Done()
		return
	}
	ch := q.worker(device)
	q.depth.Add(1)
	select {
	case ch <- sinkOp{device: device, sess: s, res: res}:
		return
	default:
	}
	q.blocked.Add(1)
	ch <- sinkOp{device: device, sess: s, res: res}
}

// drain blocks until every op enqueued before the call has been handed
// to the sink, across all workers.
func (q *sinkQueue) drain() {
	q.stopMu.RLock()
	if q.stopped {
		q.stopMu.RUnlock()
		return
	}
	barriers := make([]chan struct{}, len(q.workers))
	for i, ch := range q.workers {
		barriers[i] = make(chan struct{})
		q.depth.Add(1)
		ch <- sinkOp{barrier: barriers[i]}
	}
	q.stopMu.RUnlock()
	for _, b := range barriers {
		<-b
	}
}

// Bounds on the retry delay derived from queue state: short enough to
// be worth honoring when the drain rate is healthy, long enough to
// matter when the disk has wedged and the rate reads as zero.
const (
	minRetryAfter = 100 * time.Millisecond
	maxRetryAfter = 30 * time.Second
)

// overloaded reports whether the queue depth has crossed the pressure
// watermark. A single atomic load — cheap enough for the ingest path.
func (q *sinkQueue) overloaded() bool {
	return q.watermark > 0 && q.depth.Load() >= q.watermark
}

// retryAfter estimates how long until the current backlog has drained:
// depth over a smoothed drain rate, clamped to [minRetryAfter,
// maxRetryAfter]. The rate is sampled on demand — growth of the drained
// counter since the last call, folded into an EWMA so one burst or lull
// between calls doesn't swing the advice — and a rate of zero (nothing
// drained yet, or a wedged sink) yields the maximum: the honest answer
// when the disk may not be coming back soon.
func (q *sinkQueue) retryAfter() time.Duration {
	depth := q.depth.Load()
	q.rateMu.Lock()
	now := q.now()
	n := q.drained.Load()
	if q.rateAt.IsZero() {
		q.rateAt, q.rateN = now, n
	} else if dt := now.Sub(q.rateAt); dt >= 50*time.Millisecond {
		inst := float64(n-q.rateN) / dt.Seconds()
		if q.rate == 0 {
			q.rate = inst
		} else {
			q.rate = 0.5*q.rate + 0.5*inst
		}
		q.rateAt, q.rateN = now, n
	}
	rate := q.rate
	q.rateMu.Unlock()
	if rate <= 0 {
		return maxRetryAfter
	}
	d := time.Duration(float64(depth) / rate * float64(time.Second))
	return min(max(d, minRetryAfter), maxRetryAfter)
}

// close drains the queue and stops the workers. Enqueues after close are
// no-ops; the engine only closes the queue once every session is flushed
// and every shard rejects new ingest.
func (q *sinkQueue) close() {
	q.stopMu.Lock()
	if q.stopped {
		q.stopMu.Unlock()
		return
	}
	q.stopped = true
	q.stopMu.Unlock()
	for _, ch := range q.workers {
		close(ch)
	}
	q.wg.Wait()
}
