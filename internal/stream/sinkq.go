package stream

import (
	"fmt"
	"sync"
	"sync/atomic"

	"trajsim/internal/traj"
)

// The async sink pipeline: finalized segment batches are handed off
// under the shard lock to a bounded queue sharded by device hash, and N
// writer goroutines drain it, calling the real Sink outside any ingest
// lock. The paper's encoder processes a point in nanoseconds (§4); a
// sink append is a disk write — potentially an fsync under SyncAlways —
// so calling it inside the ingest critical section gates every device on
// a shard by storage latency. With the queue, the critical section ends
// at a memcpy.
//
// Ordering: one device always maps to one writer (FNV-1a hash), and
// every enqueue for a device happens under that device's shard lock, so
// a device's ops sit in a single FIFO in emission order — the property
// the segment log's replay (and PR 2's restart-identity test) depends
// on. Cross-device order is unspecified, exactly as it was under the
// synchronous path where shards raced to the sink.
//
// Backpressure: a full queue either blocks the producer (SinkBlock —
// ingest slows to storage speed, nothing is lost) or drops the batch
// (SinkDrop — ingest never stalls, the gap is counted, and the in-memory
// result the caller already received is unaffected). Session handoffs
// from Flush/FlushAll/EvictIdle/Close always block: callers rely on
// those segments reaching the sink before the call returns.

// SinkFullPolicy selects what a full sink queue does with an ingest-path
// batch.
type SinkFullPolicy int

const (
	// SinkBlock (the default) blocks the ingest until the queue has
	// room: durability — acknowledged segments always reach the sink,
	// and a slow disk is felt as ingest latency.
	SinkBlock SinkFullPolicy = iota
	// SinkDrop drops the batch and counts it: availability — ingest
	// never waits for storage, at the cost of gaps in the persisted log
	// (Stats.SinkDropped / SinkDroppedSegs say how many).
	SinkDrop
)

// String implements fmt.Stringer (and flag.Value's read side).
func (p SinkFullPolicy) String() string {
	switch p {
	case SinkBlock:
		return "block"
	case SinkDrop:
		return "drop"
	}
	return fmt.Sprintf("SinkFullPolicy(%d)", int(p))
}

// ParseSinkFullPolicy parses "block" or "drop".
func ParseSinkFullPolicy(s string) (SinkFullPolicy, error) {
	switch s {
	case "block":
		return SinkBlock, nil
	case "drop":
		return SinkDrop, nil
	}
	return 0, fmt.Errorf("stream: unknown sink-full policy %q (block, drop)", s)
}

const (
	// DefaultSinkWriters is the writer-goroutine count when
	// Config.SinkWriters is zero.
	DefaultSinkWriters = 4
	// DefaultSinkQueue is the per-writer queue depth (in batches) when
	// Config.SinkQueue is zero.
	DefaultSinkQueue = 256
)

// segBatch is a pooled copy of one emitted batch. The engine reuses the
// per-session out-buffer it hands to callers, so the queue must own its
// bytes; pooling the copies keeps the steady-state ingest path
// allocation-free.
type segBatch struct {
	segs []traj.Segment
}

// finishWait carries one session handoff's result back to the caller.
// The worker stores the finished tail and signals wg after the sink
// append completes, which is what gives Flush/FlushAll/EvictIdle/Close
// their persisted-before-return guarantee.
type finishWait struct {
	wg   *sync.WaitGroup
	segs []traj.Segment
}

// sinkOp is one queue entry: exactly one of batch, sess, or barrier is
// set.
type sinkOp struct {
	device  string
	batch   *segBatch     // ingest-path batch, pooled
	sess    *session      // session handoff: worker runs finish() then appends
	res     *finishWait   // result slot for a session handoff
	barrier chan struct{} // closed once every earlier op on this worker is done
}

// sinkQueue is the bounded, device-ordered pipeline between the engine's
// shard locks and the real Sink.
type sinkQueue struct {
	sink    Sink
	policy  SinkFullPolicy
	workers []chan sinkOp
	wg      sync.WaitGroup
	pool    sync.Pool // of *segBatch

	// stopMu serializes enqueues against close: producers hold the read
	// side for the duration of a send, so close can wait out in-flight
	// sends before closing the channels. Post-stop enqueues are no-ops —
	// by then every session is flushed and the queue drained.
	stopMu  sync.RWMutex
	stopped bool

	depth   atomic.Int64 // ops queued right now, across workers
	blocked atomic.Int64 // enqueues that found the queue full and waited
	dropped atomic.Int64 // batches dropped under SinkDrop
	dropSeg atomic.Int64 // segments inside those batches

	errs   *atomic.Int64 // the engine's SinkErrors counter
	apps   *atomic.Int64 // the engine's SinkAppends counter
	onSink func(device string, segs []traj.Segment)
}

func newSinkQueue(sink Sink, writers, queue int, policy SinkFullPolicy,
	errs, apps *atomic.Int64, onSink func(string, []traj.Segment)) *sinkQueue {
	q := &sinkQueue{
		sink:    sink,
		policy:  policy,
		workers: make([]chan sinkOp, writers),
		errs:    errs,
		apps:    apps,
		onSink:  onSink,
	}
	q.pool.New = func() any { return &segBatch{} }
	for i := range q.workers {
		q.workers[i] = make(chan sinkOp, queue)
		q.wg.Add(1)
		go q.run(q.workers[i])
	}
	return q
}

// worker returns the one channel device's ops travel through.
func (q *sinkQueue) worker(device string) chan sinkOp {
	return q.workers[fnv1a(device)%uint32(len(q.workers))]
}

func (q *sinkQueue) run(ch chan sinkOp) {
	defer q.wg.Done()
	for {
		op, ok := <-ch
		if !ok {
			return
		}
		q.depth.Add(-1)
		// Group commit: while the op in hand is a plain batch, fold any
		// immediately queued batches for the same device into it before
		// touching the sink — one append (one fsync, under SyncAlways)
		// amortized over whatever backlog a storage stall built up. Ops
		// for other devices or of other kinds end the merge and are
		// handled next, so FIFO order is untouched.
		for op.batch != nil {
			var next sinkOp
			var got bool
			select {
			case next, got = <-ch:
			default:
			}
			if !got {
				break
			}
			q.depth.Add(-1)
			if next.batch != nil && next.device == op.device {
				op.batch.segs = append(op.batch.segs, next.batch.segs...)
				next.batch.segs = next.batch.segs[:0]
				q.pool.Put(next.batch)
				continue
			}
			q.exec(op)
			op = next
		}
		q.exec(op)
	}
}

// exec performs one op against the sink.
func (q *sinkQueue) exec(op sinkOp) {
	switch {
	case op.barrier != nil:
		close(op.barrier)
	case op.sess != nil:
		segs := op.sess.finish()
		q.append(op.device, segs)
		op.res.segs = segs
		op.res.wg.Done()
	default:
		q.append(op.device, op.batch.segs)
		op.batch.segs = op.batch.segs[:0]
		q.pool.Put(op.batch)
	}
}

func (q *sinkQueue) append(device string, segs []traj.Segment) {
	if len(segs) == 0 {
		return
	}
	if err := q.sink.Append(device, segs); err != nil {
		q.errs.Add(1)
		return
	}
	q.apps.Add(1)
	// Post-sink notification: announced only after the sink accepted the
	// batch, so a tail listener never hears of segments a concurrent
	// replay could miss. The slice is pooled — listeners copy.
	if q.onSink != nil {
		q.onSink(device, segs)
	}
}

// putBatch enqueues a copy of one ingest-path batch. Called under the
// device's shard lock, which is what keeps a device's queue order equal
// to its emission order.
func (q *sinkQueue) putBatch(device string, segs []traj.Segment) {
	if len(segs) == 0 {
		return
	}
	q.stopMu.RLock()
	defer q.stopMu.RUnlock()
	if q.stopped {
		return
	}
	b := q.pool.Get().(*segBatch)
	b.segs = append(b.segs[:0], segs...)
	op := sinkOp{device: device, batch: b}
	ch := q.worker(device)
	q.depth.Add(1)
	select {
	case ch <- op:
		return
	default:
	}
	if q.policy == SinkDrop {
		q.depth.Add(-1)
		q.dropped.Add(1)
		q.dropSeg.Add(int64(len(segs)))
		b.segs = b.segs[:0]
		q.pool.Put(b)
		return
	}
	q.blocked.Add(1)
	ch <- op
}

// putFinish enqueues a session handoff: the worker finishes the session
// (draining its cleaner and flushing its encoder) and appends the tail
// to the sink, then fills res. Called under the device's shard lock —
// right after the session leaves the map — so the tail lands after every
// batch the session emitted and before anything a successor session
// emits. Handoffs always block: they carry a caller waiting on res.
func (q *sinkQueue) putFinish(device string, s *session, res *finishWait) {
	q.stopMu.RLock()
	defer q.stopMu.RUnlock()
	if q.stopped {
		// The queue is gone (racing Close already drained it); finish
		// inline so the caller still gets the tail.
		res.segs = s.finish()
		res.wg.Done()
		return
	}
	ch := q.worker(device)
	q.depth.Add(1)
	select {
	case ch <- sinkOp{device: device, sess: s, res: res}:
		return
	default:
	}
	q.blocked.Add(1)
	ch <- sinkOp{device: device, sess: s, res: res}
}

// drain blocks until every op enqueued before the call has been handed
// to the sink, across all workers.
func (q *sinkQueue) drain() {
	q.stopMu.RLock()
	if q.stopped {
		q.stopMu.RUnlock()
		return
	}
	barriers := make([]chan struct{}, len(q.workers))
	for i, ch := range q.workers {
		barriers[i] = make(chan struct{})
		q.depth.Add(1)
		ch <- sinkOp{barrier: barriers[i]}
	}
	q.stopMu.RUnlock()
	for _, b := range barriers {
		<-b
	}
}

// close drains the queue and stops the workers. Enqueues after close are
// no-ops; the engine only closes the queue once every session is flushed
// and every shard rejects new ingest.
func (q *sinkQueue) close() {
	q.stopMu.Lock()
	if q.stopped {
		q.stopMu.Unlock()
		return
	}
	q.stopped = true
	q.stopMu.Unlock()
	for _, ch := range q.workers {
		close(ch)
	}
	q.wg.Wait()
}
