package stream

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/segstore"
	"trajsim/internal/traj"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{}); err == nil {
		t.Error("zero Zeta accepted")
	}
	if _, err := NewEngine(Config{Zeta: -1}); err == nil {
		t.Error("negative Zeta accepted")
	}
	if _, err := NewEngine(Config{Zeta: 40, Shards: -2}); err == nil {
		t.Error("negative shard count accepted")
	}
	e, err := NewEngine(Config{Zeta: 40})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(e.shards); got != DefaultShards {
		t.Errorf("default shards = %d, want %d", got, DefaultShards)
	}
}

// TestSingleSessionMatchesBatch: ingesting one device in batches then
// flushing must reproduce exactly the segments of a one-shot encoder run.
func TestSingleSessionMatchesBatch(t *testing.T) {
	tr := gen.One(gen.Taxi, 1200, 7)
	for _, aggressive := range []bool{false, true} {
		e, err := NewEngine(Config{Zeta: 30, Aggressive: aggressive})
		if err != nil {
			t.Fatal(err)
		}
		var got []traj.Segment
		for off := 0; off < len(tr); off += 100 {
			end := min(off+100, len(tr))
			segs, err := e.Ingest("taxi-1", tr[off:end])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, segs...)
		}
		tail, ok := e.Flush("taxi-1")
		if !ok {
			t.Fatal("session vanished before flush")
		}
		got = append(got, tail...)
		enc, err := newSessionEncoder(30, aggressive, e.opts)
		if err != nil {
			t.Fatal(err)
		}
		var want []traj.Segment
		for _, p := range tr {
			want = append(want, enc.Push(p)...)
		}
		want = append(want, enc.Flush()...)
		if len(got) != len(want) {
			t.Fatalf("aggressive=%v: engine emitted %d segments, one-shot %d", aggressive, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("aggressive=%v: segment %d differs: %v vs %v", aggressive, i, got[i], want[i])
			}
		}
		if err := metrics.VerifyBound(tr, traj.Piecewise(got), 30); err != nil {
			t.Errorf("aggressive=%v: %v", aggressive, err)
		}
	}
}

// TestConcurrentIngest hammers one engine from many goroutines — one per
// device session — across shard counts, under -race. Every device checks
// its own reassembled piecewise output against the error bound.
func TestConcurrentIngest(t *testing.T) {
	const (
		devices = 128
		points  = 160 // 128 × 160 = 20480 points total
		batch   = 32
		zeta    = 40.0
	)
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			e, err := NewEngine(Config{Zeta: zeta, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, devices)
			for d := 0; d < devices; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					dev := fmt.Sprintf("dev-%03d", d)
					tr := gen.One(gen.Truck, points, uint64(d)+1)
					var segs []traj.Segment
					for off := 0; off < len(tr); off += batch {
						end := min(off+batch, len(tr))
						out, err := e.Ingest(dev, tr[off:end])
						if err != nil {
							errs <- fmt.Errorf("%s: %w", dev, err)
							return
						}
						segs = append(segs, out...)
					}
					tail, ok := e.Flush(dev)
					if !ok {
						errs <- fmt.Errorf("%s: flush found no session", dev)
						return
					}
					segs = append(segs, tail...)
					if err := metrics.VerifyBound(tr, traj.Piecewise(segs), zeta); err != nil {
						errs <- fmt.Errorf("%s: %w", dev, err)
					}
				}(d)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			st := e.Stats()
			if st.Points != devices*points {
				t.Errorf("Stats.Points = %d, want %d", st.Points, devices*points)
			}
			if st.Opened != devices || st.Flushed != devices || st.Sessions != 0 {
				t.Errorf("Stats = %+v, want %d opened+flushed, 0 live", st, devices)
			}
		})
	}
}

// TestSharedDeviceIngest: concurrent batches for the SAME device must
// serialize on the shard lock without racing; the cleaner absorbs the
// time-order violations the interleaving produces.
func TestSharedDeviceIngest(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40, Shards: 2, CleanWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.SerCar, 1000, 3)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for off := g * 250; off < (g+1)*250; off += 50 {
				if _, err := e.Ingest("shared", tr[off:off+50]); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := e.Sessions(); n != 1 {
		t.Errorf("Sessions = %d, want 1", n)
	}
	if _, ok := e.Flush("shared"); !ok {
		t.Error("flush found no session")
	}
	// Duplicate flush: the session is gone, so ok must be false.
	if segs, ok := e.Flush("shared"); ok || segs != nil {
		t.Errorf("duplicate flush returned (%v, %v), want (nil, false)", segs, ok)
	}
}

func TestEviction(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	var evicted atomic.Int32
	e, err := NewEngine(Config{
		Zeta: 40, IdleAfter: time.Minute, Clock: now,
		OnEvict: func(dev string, _ []traj.Segment) {
			if dev != "old" {
				t.Errorf("evicted %q, want \"old\"", dev)
			}
			evicted.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 200, 9)
	if _, err := e.Ingest("old", tr[:100]); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)
	if _, err := e.Ingest("fresh", tr[:100]); err != nil {
		t.Fatal(err)
	}
	evs := e.EvictIdle()
	if len(evs) != 1 || evs[0].Device != "old" {
		t.Fatalf("EvictIdle = %+v, want one eviction of \"old\"", evs)
	}
	if len(evs[0].Segments) == 0 {
		t.Error("eviction dropped the session's trailing segments")
	}
	if got := evicted.Load(); got != 1 {
		t.Errorf("OnEvict called %d times, want 1", got)
	}
	if _, ok := e.Flush("old"); ok {
		t.Error("evicted session still flushable")
	}
	if _, ok := e.Flush("fresh"); !ok {
		t.Error("fresh session was evicted")
	}
	st := e.Stats()
	if st.Evicted != 1 || st.Sessions != 0 {
		t.Errorf("Stats = %+v, want Evicted=1 Sessions=0", st)
	}
}

func TestJanitor(t *testing.T) {
	e, err := NewEngine(Config{
		Zeta: 40, IdleAfter: 10 * time.Millisecond, EvictEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr := gen.One(gen.Taxi, 50, 2)
	if _, err := e.Ingest("d", tr); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.Sessions() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never evicted the idle session")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := e.Stats(); st.Evicted != 1 {
		t.Errorf("Stats.Evicted = %d, want 1", st.Evicted)
	}
}

func TestSessionLimit(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40, MaxSessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 10, 4)
	for _, dev := range []string{"a", "b"} {
		if _, err := e.Ingest(dev, tr); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Ingest("c", tr); !errors.Is(err, ErrSessionLimit) {
		t.Errorf("third session: err = %v, want ErrSessionLimit", err)
	}
	// An existing session still accepts points at the limit.
	if _, err := e.Ingest("a", gen.One(gen.Taxi, 10, 5)); errors.Is(err, ErrSessionLimit) {
		t.Error("existing session rejected at the session limit")
	}
	// Flushing frees a slot.
	if _, ok := e.Flush("b"); !ok {
		t.Fatal("flush b")
	}
	if _, err := e.Ingest("c", tr); err != nil {
		t.Errorf("after flush: %v", err)
	}
}

// TestTimeOrderRejected: without a cleaner, a batch that breaks the
// strictly-increasing-timestamp invariant — against itself or the
// previous batch — is rejected whole, leaving the session intact.
func TestTimeOrderRejected(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40})
	if err != nil {
		t.Fatal(err)
	}
	bad := []traj.Point{traj.At(0, 0, 1000), traj.At(5, 5, 1000), traj.At(9, 9, 500)}
	if _, err := e.Ingest("d", bad); !errors.Is(err, ErrTimeOrder) {
		t.Fatalf("internally unordered batch: err = %v, want ErrTimeOrder", err)
	}
	// A rejected first batch must not register a session.
	if st := e.Stats(); st.Sessions != 0 || st.Opened != 0 {
		t.Errorf("rejected first batch left a session: %+v", st)
	}
	good := []traj.Point{traj.At(0, 0, 1000), traj.At(5, 5, 2000)}
	if _, err := e.Ingest("d", good); err != nil {
		t.Fatal(err)
	}
	// Next batch must continue after t=2000.
	stale := []traj.Point{traj.At(9, 9, 2000)}
	if _, err := e.Ingest("d", stale); !errors.Is(err, ErrTimeOrder) {
		t.Fatalf("cross-batch duplicate timestamp: err = %v, want ErrTimeOrder", err)
	}
	if st := e.Stats(); st.Points != 2 {
		t.Errorf("rejected batches counted: Stats.Points = %d, want 2", st.Points)
	}
	// A cleaner-equipped engine repairs the same input instead.
	ec, err := NewEngine(Config{Zeta: 40, CleanWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ec.Ingest("d", bad); err != nil {
		t.Errorf("cleaner engine rejected repairable batch: %v", err)
	}
}

// TestSessionLimitConcurrent: first-contact ingests racing on different
// shards must never overshoot MaxSessions.
func TestSessionLimitConcurrent(t *testing.T) {
	const limit = 10
	e, err := NewEngine(Config{Zeta: 40, Shards: 16, MaxSessions: limit})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 10, 4)
	var wg sync.WaitGroup
	var admitted, rejected atomic.Int64
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			_, err := e.Ingest(fmt.Sprintf("dev-%02d", g), tr)
			switch {
			case err == nil:
				admitted.Add(1)
			case errors.Is(err, ErrSessionLimit):
				rejected.Add(1)
			default:
				t.Errorf("dev-%02d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()
	if got := admitted.Load(); got != limit {
		t.Errorf("admitted %d sessions, want exactly %d", got, limit)
	}
	if got := e.Sessions(); got != limit {
		t.Errorf("Sessions() = %d, want %d", got, limit)
	}
	if got := rejected.Load(); got != 64-limit {
		t.Errorf("rejected %d, want %d", got, 64-limit)
	}
}

func TestIngestErrors(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Ingest("", gen.One(gen.Taxi, 5, 1)); !errors.Is(err, ErrNoDevice) {
		t.Errorf("empty device: err = %v, want ErrNoDevice", err)
	}
	long := strings.Repeat("x", MaxDevice+1)
	if _, err := e.Ingest(long, gen.One(gen.Taxi, 5, 1)); !errors.Is(err, ErrDeviceTooLong) {
		t.Errorf("%d-byte device: err = %v, want ErrDeviceTooLong", len(long), err)
	}
	if _, err := e.Ingest(strings.Repeat("x", MaxDevice), gen.One(gen.Taxi, 5, 1)); err != nil {
		t.Errorf("%d-byte device: err = %v, want accepted", MaxDevice, err)
	}
	if segs, err := e.Ingest("d", nil); err != nil || segs != nil {
		t.Errorf("empty batch: (%v, %v), want (nil, nil)", segs, err)
	}
	e.Close()
	if _, err := e.Ingest("d", gen.One(gen.Taxi, 5, 1)); !errors.Is(err, ErrClosed) {
		t.Errorf("closed engine: err = %v, want ErrClosed", err)
	}
}

func TestCloseFlushesAll(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 40, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 10; d++ {
		if _, err := e.Ingest(fmt.Sprintf("d%d", d), gen.One(gen.Truck, 300, uint64(d)+1)); err != nil {
			t.Fatal(err)
		}
	}
	tails := e.Close()
	if len(tails) != 10 {
		t.Fatalf("Close flushed %d sessions, want 10", len(tails))
	}
	for dev, segs := range tails {
		if len(segs) == 0 {
			t.Errorf("%s: no trailing segments", dev)
		}
	}
	if again := e.Close(); again != nil {
		t.Errorf("second Close returned %v, want nil", again)
	}
}

// TestCloseIngestRace: ingest racing Close must either succeed before the
// drain (and be flushed by Close) or fail with ErrClosed — never leave a
// live session behind a closed engine.
func TestCloseIngestRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		e, err := NewEngine(Config{Zeta: 40, Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		tr := gen.One(gen.Taxi, 40, uint64(round)+1)
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				_, err := e.Ingest(fmt.Sprintf("dev-%d", g), tr)
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("ingest: %v", err)
				}
			}(g)
		}
		close(start)
		e.Close()
		wg.Wait()
		if n := e.Sessions(); n != 0 {
			t.Fatalf("round %d: %d sessions survived Close", round, n)
		}
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, 7, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := sum.Load(); got != 4950 {
		t.Errorf("sum = %d, want 4950", got)
	}
	if err := ForEach(0, 4, func(int) error { t.Error("called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
	// Errors stop new work: with one worker, nothing past the failing
	// index runs.
	var ran atomic.Int64
	boom := errors.New("boom")
	err := ForEach(100, 1, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("ran %d items after error, want 4", got)
	}
}

func TestFNVDistribution(t *testing.T) {
	// Sanity: realistic device IDs spread across shards instead of
	// piling onto a few.
	const shards = 16
	var counts [shards]int
	for d := 0; d < 4096; d++ {
		counts[fnv1a(fmt.Sprintf("vehicle-%06d", d))%shards]++
	}
	for i, c := range counts {
		if c < 128 || c > 384 { // expect 256 ± 50%
			t.Errorf("shard %d holds %d of 4096 IDs — badly skewed", i, c)
		}
	}
}

// memSink is an in-memory Sink recording every Append, optionally
// failing on command.
type memSink struct {
	mu      sync.Mutex
	batches int
	segs    map[string][]traj.Segment
	fail    error
}

func (m *memSink) Append(device string, segs []traj.Segment) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.fail != nil {
		return m.fail
	}
	if m.segs == nil {
		m.segs = map[string][]traj.Segment{}
	}
	m.batches++
	m.segs[device] = append(m.segs[device], segs...)
	return nil
}

// TestSinkReceivesEverySegment: every emission path — ingest, explicit
// flush, idle eviction, Close — lands in the Sink, in order, exactly
// matching what the engine handed back to callers.
func TestSinkReceivesEverySegment(t *testing.T) {
	sink := &memSink{}
	now := time.Now()
	clock := func() time.Time { return now }
	e, err := NewEngine(Config{Zeta: 30, Shards: 4, Sink: sink, IdleAfter: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]traj.Segment{}
	ingest := func(dev string, tr traj.Trajectory) {
		t.Helper()
		for off := 0; off < len(tr); off += 100 {
			segs, err := e.Ingest(dev, tr[off:min(off+100, len(tr))])
			if err != nil {
				t.Fatal(err)
			}
			want[dev] = append(want[dev], segs...)
		}
	}
	ingest("flushed", gen.One(gen.Taxi, 600, 61))
	ingest("evicted", gen.One(gen.Truck, 600, 62))
	ingest("closed", gen.One(gen.SerCar, 600, 63))

	segs, ok := e.Flush("flushed")
	if !ok {
		t.Fatal("flush failed")
	}
	want["flushed"] = append(want["flushed"], segs...)

	now = now.Add(2 * time.Minute)
	evs := e.EvictIdle()
	for _, ev := range evs {
		want[ev.Device] = append(want[ev.Device], ev.Segments...)
	}
	if len(evs) != 2 {
		t.Fatalf("evicted %d sessions, want 2", len(evs))
	}

	// "closed" was evicted above; reopen it so Close has a tail to flush.
	tr := gen.One(gen.GeoLife, 300, 64)
	for i := range tr {
		tr[i].T += 1 << 40 // after the evicted session's timestamps
	}
	ingest("closed", tr)
	for dev, segs := range e.Close() {
		want[dev] = append(want[dev], segs...)
	}

	if len(sink.segs) != len(want) {
		t.Fatalf("sink saw devices %v", sink.segs)
	}
	for dev, w := range want {
		got := sink.segs[dev]
		if len(got) != len(w) {
			t.Fatalf("%s: sink holds %d segments, engine emitted %d", dev, len(got), len(w))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("%s: segment %d differs: %v vs %v", dev, i, got[i], w[i])
			}
		}
	}
}

// TestSinkErrorDegradesGracefully: a failing sink must not fail ingest —
// segments still flow to the caller — but every failure is counted:
// SinkErrors per merged payload (the ingest batch and the flush tail may
// legitimately fold into one sweep), SinkErrorSegs per segment lost.
func TestSinkErrorDegradesGracefully(t *testing.T) {
	sink := &memSink{fail: errors.New("disk full")}
	e, err := NewEngine(Config{Zeta: 30, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 500, 65)
	segs, err := e.Ingest("dev", tr)
	if err != nil {
		t.Fatalf("ingest with failing sink: %v", err)
	}
	tail, ok := e.Flush("dev")
	if !ok {
		t.Fatal("flush failed")
	}
	if len(segs)+len(tail) == 0 {
		t.Fatal("no segments emitted")
	}
	st := e.Stats()
	if st.SinkErrors < 1 {
		t.Fatalf("stats: %+v, want sink errors counted", st)
	}
	if st.SinkErrorSegs != int64(len(segs)+len(tail)) {
		t.Fatalf("stats: %+v, want %d segments counted lost", st, len(segs)+len(tail))
	}
	if st.SinkAppends != 0 {
		t.Fatalf("stats: %+v, want no appends counted for a failing sink", st)
	}
}

// TestSinkConcurrentDevices: under concurrent ingest the sink's
// per-device streams stay ordered and complete.
func TestSinkConcurrentDevices(t *testing.T) {
	sink := &memSink{}
	e, err := NewEngine(Config{Zeta: 40, Shards: 4, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	const devices = 24
	var wg sync.WaitGroup
	wants := make([][]traj.Segment, devices)
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			dev := fmt.Sprintf("dev-%02d", d)
			tr := gen.One(gen.Taxi, 800, uint64(d)+100)
			var want []traj.Segment
			for off := 0; off < len(tr); off += 64 {
				segs, err := e.Ingest(dev, tr[off:min(off+64, len(tr))])
				if err != nil {
					t.Error(err)
					return
				}
				want = append(want, segs...)
			}
			tail, _ := e.Flush(dev)
			wants[d] = append(want, tail...)
		}(d)
	}
	wg.Wait()
	for d := 0; d < devices; d++ {
		dev := fmt.Sprintf("dev-%02d", d)
		got := sink.segs[dev]
		if len(got) != len(wants[d]) {
			t.Fatalf("%s: %d segments in sink, want %d", dev, len(got), len(wants[d]))
		}
		for i := range got {
			if got[i] != wants[d][i] {
				t.Fatalf("%s: segment %d out of order", dev, i)
			}
		}
	}
}

// TestStatsSurfacesStoreCounters: when the Sink is a segment store (or
// anything else implementing StatsSink), one Engine.Stats call answers
// for the whole storage path; sinks without counters leave Store nil.
func TestStatsSurfacesStoreCounters(t *testing.T) {
	store, err := segstore.Open(segstore.Config{Dir: t.TempDir(), Sync: segstore.SyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e, err := NewEngine(Config{Zeta: 20, Sink: store})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Ingest("dev", gen.One(gen.Taxi, 400, 61)); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Flush("dev"); !ok {
		t.Fatal("flush found no session")
	}
	st := e.Stats()
	if st.Store == nil {
		t.Fatal("Stats.Store is nil with a segment-store sink")
	}
	if want := store.Stats(); *st.Store != want {
		t.Errorf("Stats.Store = %+v, want %+v", *st.Store, want)
	}
	if st.Store.Segments == 0 || st.Store.Appends == 0 {
		t.Errorf("store counters empty after flush: %+v", *st.Store)
	}

	plain, err := NewEngine(Config{Zeta: 20, Sink: discardSink{}})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if st := plain.Stats(); st.Store != nil {
		t.Errorf("counter-less sink surfaced store stats: %+v", st.Store)
	}
}

// discardSink is a Sink with no Stats method.
type discardSink struct{}

func (discardSink) Append(string, []traj.Segment) error { return nil }
