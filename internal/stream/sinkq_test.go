package stream

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

// gateSink is a memSink whose Append blocks until the gate channel
// yields (or is closed), simulating a stalled disk.
type gateSink struct {
	memSink
	gate chan struct{}
}

func (g *gateSink) Append(device string, segs []traj.Segment) error {
	<-g.gate
	return g.memSink.Append(device, segs)
}

// ingestBatches pushes tr through the engine in batches and returns the
// total number of segments the engine handed back. Safe to call off the
// test goroutine.
func ingestBatches(e *Engine, dev string, tr traj.Trajectory, batch int) (int, error) {
	emitted := 0
	for off := 0; off < len(tr); off += batch {
		segs, err := e.Ingest(dev, tr[off:min(off+batch, len(tr))])
		if err != nil {
			return emitted, err
		}
		emitted += len(segs)
	}
	return emitted, nil
}

// ingestEmitting is ingestBatches for the test goroutine: it fails the
// test on error.
func ingestEmitting(t *testing.T, e *Engine, dev string, tr traj.Trajectory, batch int) int {
	t.Helper()
	emitted, err := ingestBatches(e, dev, tr, batch)
	if err != nil {
		t.Fatal(err)
	}
	return emitted
}

// TestSinkPolicyStrings pins the flag spellings of the full-queue
// policies.
func TestSinkPolicyStrings(t *testing.T) {
	for _, tc := range []struct {
		s string
		p SinkFullPolicy
	}{{"block", SinkBlock}, {"drop", SinkDrop}} {
		got, err := ParseSinkFullPolicy(tc.s)
		if err != nil || got != tc.p {
			t.Errorf("ParseSinkFullPolicy(%q) = %v, %v", tc.s, got, err)
		}
		if tc.p.String() != tc.s {
			t.Errorf("%v.String() = %q, want %q", tc.p, tc.p.String(), tc.s)
		}
	}
	if _, err := ParseSinkFullPolicy("flush"); err == nil {
		t.Error("ParseSinkFullPolicy accepted garbage")
	}
	if s := SinkFullPolicy(9).String(); !strings.Contains(s, "9") {
		t.Errorf("unknown policy String() = %q", s)
	}
}

// TestSinkConfigValidation: negative queue knobs are construction-time
// errors, not latent panics.
func TestSinkConfigValidation(t *testing.T) {
	if _, err := NewEngine(Config{Zeta: 10, SinkWriters: -1}); err == nil {
		t.Error("negative SinkWriters accepted")
	}
	if _, err := NewEngine(Config{Zeta: 10, SinkQueue: -4}); err == nil {
		t.Error("negative SinkQueue accepted")
	}
	if _, err := NewEngine(Config{Zeta: 10, SinkFull: SinkFullPolicy(7)}); err == nil {
		t.Error("unknown SinkFull policy accepted")
	}
}

// TestIngestNotBlockedBySlowSink is the tentpole property: with the
// async queue, Ingest completes while the sink is wedged — the disk
// write happens outside the ingest critical section. The test would
// deadlock (and time out) if Ingest waited on the sink.
func TestIngestNotBlockedBySlowSink(t *testing.T) {
	sink := &gateSink{gate: make(chan struct{})}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkQueue: 1024})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 2000, 31)
	emitted := ingestEmitting(t, e, "dev", tr, 50) // sink gate shut the whole time
	if emitted == 0 {
		t.Fatal("trajectory emitted no segments; pick a smaller zeta")
	}
	if sink.len("dev") != 0 {
		t.Error("segments reached the sink while its gate was shut")
	}
	close(sink.gate) // disk recovers
	tails := e.Close()
	if got := sink.len("dev"); got != emitted+len(tails["dev"]) {
		t.Errorf("sink holds %d segments after Close, want %d", got, emitted+len(tails["dev"]))
	}
	if st := e.Stats(); st.SinkDropped != 0 || st.SinkQueued != 0 {
		t.Errorf("block policy dropped batches or left queue depth: %+v", st)
	}
}

// TestSinkBlockPolicyLosesNothing: a queue much smaller than the backlog
// plus a stalling sink must count blocked enqueues and still deliver
// every segment.
func TestSinkBlockPolicyLosesNothing(t *testing.T) {
	sink := &gateSink{gate: make(chan struct{})}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 2000, 33)
	type result struct {
		emitted int
		err     error
	}
	done := make(chan result)
	go func() {
		emitted, err := ingestBatches(e, "dev", tr, 50)
		done <- result{emitted, err}
	}()
	// With the gate shut, the worker parks on the first append and the
	// size-1 queue holds one more op, so the producer must block — wait
	// for the counter to prove it, then let the disk recover.
	deadline := time.Now().Add(10 * time.Second)
	for e.Stats().SinkBlocked == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if e.Stats().SinkBlocked == 0 {
		t.Fatal("producer never blocked against a wedged size-1 queue")
	}
	close(sink.gate)
	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	emitted := res.emitted
	tails := e.Close()
	if got := sink.len("dev"); got != emitted+len(tails["dev"]) {
		t.Errorf("sink holds %d segments, want %d", got, emitted+len(tails["dev"]))
	}
	st := e.Stats()
	if st.SinkDropped != 0 {
		t.Errorf("block policy dropped %d batches", st.SinkDropped)
	}
	if st.SinkBlocked == 0 {
		t.Errorf("no blocked enqueues recorded against a size-1 queue: %+v", st)
	}
}

// TestSinkDropPolicySheds: under SinkDrop a full queue sheds ingest-path
// batches — counted, not blocking — while flush tails still always land.
func TestSinkDropPolicySheds(t *testing.T) {
	sink := &gateSink{gate: make(chan struct{})}
	e, err := NewEngine(Config{
		Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 1, SinkFull: SinkDrop,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 2000, 35)
	// Gate shut: the worker parks on the first append, the queue holds
	// one more op, everything else must drop rather than stall ingest.
	emitted := ingestEmitting(t, e, "dev", tr, 50)
	st := e.Stats()
	if st.SinkDropped == 0 || st.SinkDroppedSegs == 0 {
		t.Fatalf("nothing dropped against a wedged size-1 queue: %+v", st)
	}
	close(sink.gate)
	tails := e.Close()
	st = e.Stats()
	want := emitted + len(tails["dev"]) - int(st.SinkDroppedSegs)
	if got := sink.len("dev"); got != want {
		t.Errorf("sink holds %d segments, want %d (%d emitted + %d tail − %d dropped)",
			got, want, emitted, len(tails["dev"]), st.SinkDroppedSegs)
	}
	// The tail was enqueued after the drops, by a blocking handoff: it
	// must be the suffix of the persisted stream.
	persisted := sink.copyOf("dev")
	if len(tails["dev"]) > 0 {
		tail := persisted[len(persisted)-len(tails["dev"]):]
		for i, s := range tails["dev"] {
			if tail[i] != s {
				t.Fatalf("flush tail segment %d missing from persisted suffix", i)
			}
		}
	}
}

// TestFlushWaitsForDeviceQueue: Flush's persisted-before-return barrier —
// when Flush returns, every batch the device emitted earlier has cleared
// the queue, even though those appends ran asynchronously.
func TestFlushWaitsForDeviceQueue(t *testing.T) {
	sink := &gateSink{gate: make(chan struct{}, 1)}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkWriters: 2, SinkQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Truck, 1500, 37)
	emitted := ingestEmitting(t, e, "dev", tr, 50)
	// Unblock the sink only after the flush is in flight.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(sink.gate)
	}()
	tail, ok := e.Flush("dev")
	if !ok {
		t.Fatal("flush found no session")
	}
	if got := sink.len("dev"); got != emitted+len(tail) {
		t.Errorf("after Flush returned the sink holds %d segments, want %d", got, emitted+len(tail))
	}
	e.Close()
}

// TestEvictIdlePersistsBeforeReturn: same barrier for the janitor path.
func TestEvictIdlePersistsBeforeReturn(t *testing.T) {
	sink := &memSink{}
	now := time.Now()
	clock := func() time.Time { return now }
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, IdleAfter: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	emitted := ingestEmitting(t, e, "dev", gen.One(gen.Taxi, 1200, 39), 60)
	now = now.Add(time.Hour)
	evs := e.EvictIdle()
	if len(evs) != 1 {
		t.Fatalf("evicted %d sessions, want 1", len(evs))
	}
	if got := sink.len("dev"); got != emitted+len(evs[0].Segments) {
		t.Errorf("after EvictIdle the sink holds %d segments, want %d", got, emitted+len(evs[0].Segments))
	}
	e.Close()
}

// TestSinkSyncCompat: SinkSync restores the synchronous path — segments
// are in the sink the moment Ingest returns, and the queue stats stay
// zero.
func TestSinkSyncCompat(t *testing.T) {
	sink := &memSink{}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkSync: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 1000, 41)
	emitted := 0
	for off := 0; off < len(tr); off += 50 {
		segs, err := e.Ingest("dev", tr[off:off+50])
		if err != nil {
			t.Fatal(err)
		}
		emitted += len(segs)
		if got := sink.len("dev"); got != emitted {
			t.Fatalf("sync sink holds %d segments mid-stream, want %d", got, emitted)
		}
	}
	tails := e.Close()
	if got := sink.len("dev"); got != emitted+len(tails["dev"]) {
		t.Errorf("sync sink holds %d segments after Close, want %d", got, emitted+len(tails["dev"]))
	}
	if st := e.Stats(); st.SinkQueued+st.SinkBlocked+st.SinkDropped != 0 {
		t.Errorf("sync mode touched queue stats: %+v", st)
	}
}

// TestQueueOrderAcrossSessions: per-device order must survive flushing a
// session and immediately reopening it while the queue is backed up —
// the successor's batches must not overtake the predecessor's tail.
func TestQueueOrderAcrossSessions(t *testing.T) {
	sink := &memSink{}
	e, err := NewEngine(Config{Zeta: 5, Sink: sink, SinkWriters: 1, SinkQueue: 4})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 1500, 43)
	var want []traj.Segment
	for run := 0; run < 3; run++ {
		for off := 0; off < len(tr); off += 50 {
			segs, err := e.Ingest("dev", tr[off:off+50])
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, segs...)
		}
		tail, ok := e.Flush("dev")
		if !ok {
			t.Fatal("flush found no session")
		}
		want = append(want, tail...)
	}
	e.Close()
	got := sink.copyOf("dev")
	if len(got) != len(want) {
		t.Fatalf("sink holds %d segments, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("segment %d out of emission order", i)
		}
	}
}

// len returns the number of persisted segments for device.
func (m *memSink) len(device string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.segs[device])
}

// copyOf returns a snapshot of the persisted segments for device.
func (m *memSink) copyOf(device string) []traj.Segment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]traj.Segment(nil), m.segs[device]...)
}

// TestIngestAppendConcurrentSameDevice: IngestAppend's result must be
// safe to read while other goroutines keep ingesting the same device —
// the copy happens under the shard lock, unlike Ingest's reusable
// out-buffer. Fails under -race if the snapshot aliases the session
// buffer.
func TestIngestAppendConcurrentSameDevice(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 5, Shards: 2, CleanWindow: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr := gen.One(gen.Taxi, 2000, 47)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var mine []traj.Segment
			for off := 0; off < len(tr); off += 50 {
				var err error
				mine, err = e.IngestAppend("shared", tr[off:off+50], mine[:0])
				if err != nil {
					t.Error(err)
					return
				}
				// Read every field of the snapshot while the other three
				// goroutines overwrite the session's out-buffer.
				var sum float64
				for _, s := range mine {
					sum += s.Start.X + s.End.Y + float64(s.EndIdx)
				}
				_ = sum
			}
		}(g)
	}
	wg.Wait()
}

// TestIngestAppendSemantics: dst grows across calls, errors leave it
// unchanged, and empty batches are no-ops.
func TestIngestAppendSemantics(t *testing.T) {
	e, err := NewEngine(Config{Zeta: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	tr := gen.One(gen.Taxi, 1200, 49)
	var acc []traj.Segment
	var want int
	for off := 0; off < len(tr); off += 60 {
		acc, err = e.IngestAppend("dev", tr[off:off+60], acc)
		if err != nil {
			t.Fatal(err)
		}
		segs, err := e.Ingest("probe", tr[off:off+60]) // mirror stream, counts only
		if err != nil {
			t.Fatal(err)
		}
		want += len(segs)
	}
	if len(acc) != want {
		t.Fatalf("accumulated %d segments, mirror emitted %d", len(acc), want)
	}
	if got, err := e.IngestAppend("dev", nil, acc); err != nil || len(got) != len(acc) {
		t.Fatalf("empty batch: %d segments, err %v", len(got), err)
	}
	stale := []traj.Point{{X: 1, Y: 1, T: -1}} // behind the stream: rejected
	if got, err := e.IngestAppend("dev", stale, acc); !errors.Is(err, ErrTimeOrder) || len(got) != len(acc) {
		t.Fatalf("rejected batch: %d segments (want %d unchanged), err %v", len(got), len(acc), err)
	}
}
