package stream

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"
)

// Admission control: what the engine does when demand exceeds capacity.
// Three mechanisms, all opt-in via Config:
//
//   - Per-device token buckets (DeviceRate/DeviceBurst): one device
//     cannot monopolize the service. A batch needs one token per point;
//     an over-rate batch is rejected with an OverloadError whose
//     RetryAfter says exactly when the bucket will have refilled.
//   - Coldest-first load shedding (ShedSessions): at MaxSessions, the
//     session idle the longest is flushed durably — through the same
//     drain barrier Flush uses, so its tail reaches the Sink before the
//     slot is reused — instead of the new device being turned away. The
//     coldest session is the one most likely idle for good; the new
//     device is demonstrably live.
//   - Queue-pressure backoff (QueueWatermark): when the async sink
//     queue is nearly full the disk is already behind, so opening more
//     sessions only deepens the backlog. New devices are rejected with
//     a RetryAfter derived from the queue's measured drain rate;
//     existing sessions keep flowing under the SinkFull policy.
//
// Everything here is inert when unconfigured: the checks sit behind
// Config-field guards, so the default ingest path pays nothing.

// ErrOverloaded is the sentinel matched by errors.Is for every
// admission-control rejection. The concrete error is always an
// *OverloadError carrying the retry delay.
var ErrOverloaded = errors.New("stream: overloaded")

// OverloadError is an admission-control rejection: the engine is over
// capacity on some axis and the caller should retry after RetryAfter.
// It matches ErrOverloaded under errors.Is; HTTP frontends map it to
// 429 with a Retry-After header.
type OverloadError struct {
	// RetryAfter is when retrying can plausibly succeed: the token
	// deficit divided by the refill rate for a rate-limited device, or
	// the queue backlog divided by its measured drain rate under queue
	// pressure. Always positive.
	RetryAfter time.Duration
	// Reason says which limit fired, for logs and error bodies.
	Reason string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("stream: overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Is makes errors.Is(err, ErrOverloaded) match any *OverloadError.
func (e *OverloadError) Is(target error) bool { return target == ErrOverloaded }

// admitRate charges the session's token bucket for a batch of n points,
// refilling first. Caller holds the shard lock and has checked
// DeviceRate > 0. Returns nil and debits the bucket on admission;
// returns the rejection otherwise, leaving the session untouched.
//
// A batch larger than the whole burst is admitted whenever the bucket
// is full — it debits the bucket below zero, stretching the next
// refill — so no batch size is permanently unserviceable.
func (e *Engine) admitRate(s *session, n int) error {
	now := e.now()
	if !s.tokAt.IsZero() {
		s.tokens = math.Min(e.burst, s.tokens+e.cfg.DeviceRate*now.Sub(s.tokAt).Seconds())
	} else {
		s.tokens = e.burst // first charge: a new bucket starts full
	}
	s.tokAt = now
	need := float64(n)
	if adm := math.Min(need, e.burst); s.tokens < adm {
		wait := time.Duration((adm - s.tokens) / e.cfg.DeviceRate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		e.rateLimited.Add(1)
		return &OverloadError{RetryAfter: wait, Reason: "device rate limit"}
	}
	s.tokens -= need
	return nil
}

// shedColdest flushes the live session idle the longest, durably (its
// tail passes the sink drain barrier before this returns), freeing one
// session slot. except is never shed — the device whose admission
// triggered the shed, so a racing first-contact cannot evict itself.
// Reports whether a session was shed. Caller must hold no shard lock.
//
// Two passes: a scan for the coldest candidate (one shard lock at a
// time), then a re-locked removal that verifies the candidate neither
// vanished nor went hot in between — shedding a session that just
// ingested would throw away the liveness signal the policy exists to
// honor.
func (e *Engine) shedColdest(except string) bool {
	var (
		coldDev string
		coldAt  time.Time
		coldSh  *shard
	)
	for i := range e.shards {
		sh := &e.shards[i]
		sh.mu.Lock()
		for dev, s := range sh.sessions {
			if dev == except {
				continue
			}
			if coldSh == nil || s.last.Before(coldAt) {
				coldDev, coldAt, coldSh = dev, s.last, sh
			}
		}
		sh.mu.Unlock()
	}
	if coldSh == nil {
		return false
	}
	coldSh.mu.Lock()
	s := coldSh.sessions[coldDev]
	if s == nil || s.last.After(coldAt) {
		coldSh.mu.Unlock()
		return false
	}
	delete(coldSh.sessions, coldDev)
	var wg sync.WaitGroup
	res := e.handoff(coldDev, s, &wg)
	e.live.Add(-1)
	coldSh.mu.Unlock()
	wg.Wait()
	e.shed.Add(1)
	e.segments.Add(int64(len(res.segs)))
	if e.cfg.OnEvict != nil {
		e.cfg.OnEvict(coldDev, res.segs)
	}
	return true
}

// Overloaded reports whether the sink queue is past its pressure
// watermark — the state in which new-device ingest is being rejected
// with ErrOverloaded. Always false without a QueueWatermark (or
// without an async sink). Health endpoints use this to report
// degradation before clients discover it as 429s.
func (e *Engine) Overloaded() bool {
	return e.q != nil && e.q.overloaded()
}
