// Package bqs implements the Bounded Quadrant System of Liu et al.
// (ICDE 2015) as described in §3.2 of the paper, in both flavors:
//
//   - BQS: per-quadrant convex hulls (bounding box + two bounding lines)
//     give an upper and a lower bound on the maximum deviation; uncertain
//     cases fall back to a full Douglas-Peucker-style scan of the window.
//     O(n²) worst-case time.
//   - FBQS: the fast variant, which never falls back — an uncertain case
//     closes the window — achieving O(n) time and constant state. FBQS is
//     the fastest previously existing LS algorithm and the paper's primary
//     efficiency comparator.
//
// The per-point check touches at most eight significant (hull) points and
// six actual extreme points per non-empty quadrant; hulls are cached and
// rebuilt only when an insertion changes a quadrant's extremes.
package bqs

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// ErrBadEpsilon is returned for non-positive error bounds.
var ErrBadEpsilon = errors.New("bqs: error bound ζ must be positive and finite")

// Simplify compresses t with full BQS and error bound zeta (meters).
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, true)
}

// SimplifyFast compresses t with FBQS and error bound zeta (meters).
func SimplifyFast(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, false)
}

// quadrant accumulates the per-quadrant bounding structures of BQS: the
// axis-aligned bounding box of the points seen, the actual data points
// achieving the box extremes, and the two bounding lines through Ps with
// the least and greatest angles.
type quadrant struct {
	count                      int
	box                        geo.BBox
	pMinX, pMaxX, pMinY, pMaxY geo.Point
	loTheta, hiTheta           float64
	pLo, pHi                   geo.Point

	hullPts [8]geo.Point // cached box∩wedge polygon vertices
	hullN   int
	dirty   bool
}

func (q *quadrant) add(ps, p geo.Point) {
	theta := geo.AngleOf(p.Sub(ps))
	changed := false
	if q.count == 0 {
		q.box = geo.EmptyBBox()
		q.loTheta, q.hiTheta = theta, theta
		q.pLo, q.pHi = p, p
		changed = true
	} else {
		if theta < q.loTheta {
			q.loTheta, q.pLo = theta, p
			changed = true
		}
		if theta > q.hiTheta {
			q.hiTheta, q.pHi = theta, p
			changed = true
		}
	}
	if p.X < q.box.MinX || q.count == 0 {
		q.pMinX = p
		changed = true
	}
	if p.X > q.box.MaxX || q.count == 0 {
		q.pMaxX = p
		changed = true
	}
	if p.Y < q.box.MinY || q.count == 0 {
		q.pMinY = p
		changed = true
	}
	if p.Y > q.box.MaxY || q.count == 0 {
		q.pMaxY = p
		changed = true
	}
	q.box.Extend(p)
	q.count++
	if changed {
		q.dirty = true
	}
}

// hull returns the ≤8 significant (virtual) points: the bounding box
// clipped to the wedge between the two bounding lines. Distances to a
// candidate line maximized over these vertices upper-bound the true
// maximum deviation of every point in the quadrant, because the clipped
// polygon contains the points' convex hull. The polygon is cached until an
// insertion changes the box or a bounding line.
func (q *quadrant) hull(ps geo.Point) []geo.Point {
	if q.dirty {
		q.rebuildHull(ps)
		q.dirty = false
	}
	return q.hullPts[:q.hullN]
}

func (q *quadrant) rebuildHull(ps geo.Point) {
	corners := q.box.Corners()
	var tmp [8]geo.Point
	n := clipFixed(corners[:], ps, q.loTheta, true, tmp[:])
	n = clipFixed(tmp[:n], ps, q.hiTheta, false, q.hullPts[:])
	if n == 0 {
		// Degenerate geometry (e.g. all points collinear with Ps); the box
		// corners alone are still a valid upper bound.
		n = copy(q.hullPts[:], corners[:])
	}
	q.hullN = n
}

// clipFixed is an allocation-free Sutherland–Hodgman half-plane clip into
// a fixed output buffer (the hot path of the per-point check; the generic
// geo.ClipPolygonHalfPlane is equivalent but allocates).
func clipFixed(poly []geo.Point, o geo.Point, theta float64, keepLeft bool, out []geo.Point) int {
	if len(poly) == 0 {
		return 0
	}
	d := geo.Dir(theta)
	side := func(p geo.Point) float64 {
		s := d.Cross(p.Sub(o))
		if !keepLeft {
			s = -s
		}
		return s
	}
	n := 0
	for i := range poly {
		cur, next := poly[i], poly[(i+1)%len(poly)]
		sc, sn := side(cur), side(next)
		if sc >= -geo.Eps {
			out[n] = cur
			n++
		}
		if (sc > geo.Eps && sn < -geo.Eps) || (sc < -geo.Eps && sn > geo.Eps) {
			out[n] = geo.Lerp(cur, next, sc/(sc-sn))
			n++
		}
	}
	return n
}

// extremes returns the ≤6 actual data points defining the structures;
// distances over these lower-bound the true maximum deviation.
func (q *quadrant) extremes() [6]geo.Point {
	return [6]geo.Point{q.pMinX, q.pMaxX, q.pMinY, q.pMaxY, q.pLo, q.pHi}
}

// window is the open-window state for one segment.
type window struct {
	ps     geo.Point
	quads  [4]quadrant
	buf    []geo.Point // interior points; only kept for full BQS
	keep   bool
	filled bool
}

func (w *window) reset(ps geo.Point) {
	w.ps = ps
	w.filled = false
	w.buf = w.buf[:0]
	for i := range w.quads {
		w.quads[i] = quadrant{}
	}
}

func (w *window) add(p geo.Point) {
	if p.Dist(w.ps) <= geo.Eps {
		// Coincident with the start: trivially within any bound; adding it
		// would make the bounding-line angles meaningless.
		return
	}
	w.quads[quadrantIndex(w.ps, p)].add(w.ps, p)
	w.filled = true
	if w.keep {
		w.buf = append(w.buf, p)
	}
}

func quadrantIndex(ps, p geo.Point) int {
	dx, dy := p.X-ps.X, p.Y-ps.Y
	switch {
	case dx >= 0 && dy >= 0:
		return 0
	case dx < 0 && dy >= 0:
		return 1
	case dx < 0:
		return 2
	}
	return 3
}

// verdict is the three-way outcome of the significant-point check.
type verdict int

const (
	verdictFits      verdict = iota // upper bound ≤ ζ: every point fits
	verdictFails                    // lower bound > ζ: some point violates
	verdictUncertain                // bounds straddle ζ
)

// lineDist measures distances to the candidate line ps→pk without
// per-point recomputation (and without closure allocation on the hot
// path).
type lineDist struct {
	origin     geo.Point
	dir        geo.Point
	inv        float64
	degenerate bool
}

func (w *window) distTo(pk geo.Point) lineDist {
	dir := pk.Sub(w.ps)
	norm := dir.Norm()
	if norm <= geo.Eps {
		return lineDist{origin: w.ps, degenerate: true}
	}
	return lineDist{origin: w.ps, dir: dir, inv: 1 / norm}
}

func (l lineDist) of(p geo.Point) float64 {
	v := p.Sub(l.origin)
	if l.degenerate {
		return v.Norm()
	}
	return math.Abs(l.dir.Cross(v)) * l.inv
}

// checkFast is FBQS's decision: the window fits iff the hull upper bound
// stays within ζ. FBQS treats both "fails" and "uncertain" as a split, so
// the lower bound is never needed and the scan exits at the first
// violating hull vertex.
func (w *window) checkFast(pk geo.Point, zeta float64) bool {
	if !w.filled {
		return true
	}
	dist := w.distTo(pk)
	for i := range w.quads {
		q := &w.quads[i]
		if q.count == 0 {
			continue
		}
		for _, v := range q.hull(w.ps) {
			if dist.of(v) > zeta {
				return false
			}
		}
	}
	return true
}

// check classifies the candidate line ps→pk against the quadrant bounds
// for full BQS: upper bound first, and the lower bound (actual extreme
// points) only when the upper bound is violated.
func (w *window) check(pk geo.Point, zeta float64) verdict {
	if !w.filled {
		return verdictFits
	}
	dist := w.distTo(pk)
	exceeded := false
	for i := range w.quads {
		q := &w.quads[i]
		if q.count == 0 {
			continue
		}
		for _, v := range q.hull(w.ps) {
			if dist.of(v) > zeta {
				exceeded = true
				break
			}
		}
		if exceeded {
			break
		}
	}
	if !exceeded {
		return verdictFits
	}
	for i := range w.quads {
		q := &w.quads[i]
		if q.count == 0 {
			continue
		}
		ext := q.extremes()
		for _, v := range ext {
			if dist.of(v) > zeta {
				return verdictFails
			}
		}
	}
	return verdictUncertain
}

// fullScan is the DP-style fallback over the buffered window.
func (w *window) fullScan(pk geo.Point, zeta float64) bool {
	for _, p := range w.buf {
		if geo.PointLineDistance(p, w.ps, pk) > zeta {
			return false
		}
	}
	return true
}

func simplify(t traj.Trajectory, zeta float64, full bool) (traj.Piecewise, error) {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return nil, fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	if len(t) < 2 {
		return nil, nil
	}
	out := make(traj.Piecewise, 0, 16)
	s := 0
	w := &window{keep: full}
	w.reset(t[0].P())
	for k := 1; k < len(t); k++ {
		pk := t[k].P()
		var fits bool
		if !full {
			fits = w.checkFast(pk, zeta)
		} else {
			switch w.check(pk, zeta) {
			case verdictFits:
				fits = true
			case verdictFails:
				fits = false
			case verdictUncertain:
				fits = w.fullScan(pk, zeta)
			}
		}
		if fits {
			w.add(pk)
			continue
		}
		out = append(out, traj.NewSegment(t, s, k-1))
		s = k - 1
		w.reset(t[s].P())
		w.add(pk)
	}
	out = append(out, traj.NewSegment(t, s, len(t)-1))
	return out, nil
}
