package bqs

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/dp"
	"trajsim/internal/gen"
	"trajsim/internal/geo"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func workloads() map[string]traj.Trajectory {
	return map[string]traj.Trajectory{
		"line":        gen.Line(200, 15),
		"noisy-line":  gen.NoisyLine(300, 20, 5, 11),
		"circle":      gen.Circle(300, 200, 0.05),
		"zigzag":      gen.Zigzag(300, 10, 60, 7),
		"spiral":      gen.Spiral(300, 5, 3, 0.15),
		"random-walk": gen.RandomWalk(400, 25, 3),
		"stationary":  gen.Stationary(200, 2, 5),
		"turns":       gen.SuddenTurns(300, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 300, 21),
		"truck":       gen.One(gen.Truck, 300, 23),
		"sercar":      gen.One(gen.SerCar, 300, 22),
		"geolife":     gen.One(gen.GeoLife, 300, 24),
	}
}

func TestErrorBoundBothVariants(t *testing.T) {
	for name, tr := range workloads() {
		for _, zeta := range []float64{5, 20, 40, 100} {
			for variant, fn := range map[string]func(traj.Trajectory, float64) (traj.Piecewise, error){
				"BQS": Simplify, "FBQS": SimplifyFast,
			} {
				pw, err := fn(tr, zeta)
				if err != nil {
					t.Fatal(err)
				}
				if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
					t.Errorf("%s %s ζ=%v: %v", variant, name, zeta, err)
				}
				if err := pw.Validate(); err != nil {
					t.Errorf("%s %s ζ=%v: %v", variant, name, zeta, err)
				}
			}
		}
	}
}

// Full BQS falls back to an exact scan, so its windows match OPW-style
// greedy growth: each emitted window's interior points all fit its line.
func TestBQSPerWindowInvariant(t *testing.T) {
	tr := gen.One(gen.SerCar, 500, 7)
	zeta := 30.0
	pw, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.LineDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d deviates %v", i, d)
			}
		}
	}
}

// FBQS can only split more often than BQS (it treats uncertainty as a
// violation), never less.
func TestFBQSNeverBeatsBQS(t *testing.T) {
	for name, tr := range workloads() {
		full, err := Simplify(tr, 25)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SimplifyFast(tr, 25)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast) < len(full) {
			t.Errorf("%s: FBQS %d segments < BQS %d", name, len(fast), len(full))
		}
	}
}

// BQS's compression should be in the same league as DP (it performs the
// same exact check, only windowed greedily): allow 3x slack.
func TestBQSComparableToDP(t *testing.T) {
	tr := gen.One(gen.SerCar, 600, 42)
	bqsPW, err := Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	dpPW, err := dp.Simplify(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(bqsPW) > 3*len(dpPW)+3 {
		t.Errorf("BQS %d segments vs DP %d: window splitting too aggressive", len(bqsPW), len(dpPW))
	}
}

// The quadrant hull bound is sound: the hull's max distance to any line
// upper-bounds every inserted point's distance.
func TestQuadrantHullUpperBound(t *testing.T) {
	ps := geo.Pt(0, 0)
	var q quadrant
	pts := []geo.Point{
		{X: 10, Y: 2}, {X: 14, Y: 9}, {X: 22, Y: 5}, {X: 30, Y: 14},
		{X: 18, Y: 1}, {X: 25, Y: 11}, {X: 40, Y: 3},
	}
	for _, p := range pts {
		q.add(ps, p)
	}
	for _, end := range []geo.Point{{X: 50, Y: 0}, {X: 40, Y: 30}, {X: 10, Y: 40}} {
		var trueMax float64
		for _, p := range pts {
			trueMax = math.Max(trueMax, geo.PointLineDistance(p, ps, end))
		}
		var ub float64
		for _, v := range q.hull(ps) {
			ub = math.Max(ub, geo.PointLineDistance(v, ps, end))
		}
		if ub+1e-9 < trueMax {
			t.Errorf("end=%v: hull UB %v < true max %v", end, ub, trueMax)
		}
		var lb float64
		for _, v := range q.extremes() {
			lb = math.Max(lb, geo.PointLineDistance(v, ps, end))
		}
		if lb > trueMax+1e-9 {
			t.Errorf("end=%v: extreme-point LB %v > true max %v", end, lb, trueMax)
		}
	}
}

func TestQuadrantIndex(t *testing.T) {
	ps := geo.Pt(0, 0)
	cases := []struct {
		p    geo.Point
		want int
	}{
		{geo.Pt(1, 1), 0},
		{geo.Pt(1, 0), 0},
		{geo.Pt(0, 1), 0},
		{geo.Pt(-1, 1), 1},
		{geo.Pt(-1, 0), 1},
		{geo.Pt(-1, -1), 2},
		{geo.Pt(1, -1), 3},
		{geo.Pt(0, -1), 3},
	}
	for _, c := range cases {
		if got := quadrantIndex(ps, c.p); got != c.want {
			t.Errorf("quadrantIndex(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestStraightLine(t *testing.T) {
	for _, fn := range []func(traj.Trajectory, float64) (traj.Piecewise, error){Simplify, SimplifyFast} {
		pw, err := fn(gen.Line(500, 10), 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) != 1 {
			t.Errorf("collinear input: %d segments, want 1", len(pw))
		}
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		pw, err := SimplifyFast(gen.Line(n, 1), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) != 0 {
			t.Errorf("n=%d: %d segments", n, len(pw))
		}
	}
}

func TestBadEpsilon(t *testing.T) {
	for _, zeta := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

func TestDuplicatePointsDoNotCrash(t *testing.T) {
	tr := traj.Trajectory{
		{X: 0, Y: 0, T: 0},
		{X: 0, Y: 0, T: 1000},
		{X: 0, Y: 0, T: 2000},
		{X: 10, Y: 0, T: 3000},
		{X: 10, Y: 0, T: 4000},
		{X: 20, Y: 5, T: 5000},
	}
	for _, fn := range []func(traj.Trajectory, float64) (traj.Piecewise, error){Simplify, SimplifyFast} {
		pw, err := fn(tr, 8)
		if err != nil {
			t.Fatal(err)
		}
		if err := metrics.VerifyBound(tr, pw, 8); err != nil {
			t.Error(err)
		}
	}
}
