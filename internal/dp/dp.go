// Package dp implements the Douglas-Peucker batch line-simplification
// algorithm (Figure 3 of the paper; Douglas & Peucker 1973), the baseline
// with the best compression ratio among existing LS algorithms, plus the
// TD-TR variant of Meratnia & de By that replaces the Euclidean distance
// with the time-synchronized Euclidean distance (SED).
package dp

import (
	"errors"
	"fmt"
	"math"

	"trajsim/internal/traj"
)

// ErrBadEpsilon is returned for non-positive error bounds.
var ErrBadEpsilon = errors.New("dp: error bound ζ must be positive and finite")

// Simplify compresses t with the basic Douglas-Peucker algorithm and error
// bound zeta (meters): recursively split at the point of maximum distance
// to the line through the range endpoints until every range fits. O(n²)
// time worst case, O(n) space. Trajectories with fewer than two points
// yield an empty representation.
func Simplify(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, euclideanMax)
}

// SimplifySED is TD-TR: Douglas-Peucker with the synchronized Euclidean
// distance, which accounts for where the object should be at each point's
// timestamp.
func SimplifySED(t traj.Trajectory, zeta float64) (traj.Piecewise, error) {
	return simplify(t, zeta, sedMax)
}

// maxDistFunc returns the index and value of the maximum distance of the
// interior points of t[lo..hi] to the line segment (t[lo], t[hi]).
type maxDistFunc func(t traj.Trajectory, lo, hi int) (int, float64)

func simplify(t traj.Trajectory, zeta float64, maxDist maxDistFunc) (traj.Piecewise, error) {
	if !(zeta > 0) || math.IsInf(zeta, 1) {
		return nil, fmt.Errorf("%w: got %g", ErrBadEpsilon, zeta)
	}
	if len(t) < 2 {
		return nil, nil
	}
	type span struct{ lo, hi int }
	// Explicit stack; pushing the right half first yields in-order output.
	stack := make([]span, 0, 64)
	stack = append(stack, span{0, len(t) - 1})
	out := make(traj.Piecewise, 0, 16)
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo <= 1 {
			out = append(out, traj.NewSegment(t, s.lo, s.hi))
			continue
		}
		k, d := maxDist(t, s.lo, s.hi)
		if d <= zeta {
			out = append(out, traj.NewSegment(t, s.lo, s.hi))
			continue
		}
		stack = append(stack, span{k, s.hi}, span{s.lo, k})
	}
	return out, nil
}

func euclideanMax(t traj.Trajectory, lo, hi int) (int, float64) {
	seg := traj.NewSegment(t, lo, hi)
	best, bestD := lo, -1.0
	for i := lo + 1; i < hi; i++ {
		if d := seg.LineDistance(t[i]); d > bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

func sedMax(t traj.Trajectory, lo, hi int) (int, float64) {
	seg := traj.NewSegment(t, lo, hi)
	best, bestD := lo, -1.0
	for i := lo + 1; i < hi; i++ {
		if d := seg.SEDistance(t[i]); d > bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}
