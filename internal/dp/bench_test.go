package dp

import (
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
)

var sink traj.Piecewise

func BenchmarkSimplify(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{1_000, 10_000, 100_000} {
		tr := gen.One(gen.SerCar, n, 7)
		b.Run(size(n), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				pw, err := Simplify(tr, 40)
				if err != nil {
					b.Fatal(err)
				}
				sink = pw
			}
		})
	}
}

func BenchmarkSimplifySED(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 7)
	for i := 0; i < b.N; i++ {
		pw, err := SimplifySED(tr, 40)
		if err != nil {
			b.Fatal(err)
		}
		sink = pw
	}
}

// Worst case for DP: a shape forcing maximally unbalanced splits.
func BenchmarkSimplifyAdversarial(b *testing.B) {
	b.ReportAllocs()
	tr := gen.Spiral(10_000, 1, 0.5, 0.2)
	b.SetBytes(10_000)
	for i := 0; i < b.N; i++ {
		pw, err := Simplify(tr, 5)
		if err != nil {
			b.Fatal(err)
		}
		sink = pw
	}
}

func size(n int) string {
	switch n {
	case 1_000:
		return "1k"
	case 10_000:
		return "10k"
	case 100_000:
		return "100k"
	}
	return "n"
}
