package dp

import (
	"errors"
	"math"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

func workloads() map[string]traj.Trajectory {
	return map[string]traj.Trajectory{
		"line":        gen.Line(200, 15),
		"noisy-line":  gen.NoisyLine(300, 20, 5, 11),
		"circle":      gen.Circle(300, 200, 0.05),
		"zigzag":      gen.Zigzag(300, 10, 60, 7),
		"random-walk": gen.RandomWalk(400, 25, 3),
		"turns":       gen.SuddenTurns(300, 30, 9, 13),
		"taxi":        gen.One(gen.Taxi, 300, 21),
		"geolife":     gen.One(gen.GeoLife, 300, 24),
	}
}

func TestErrorBound(t *testing.T) {
	for name, tr := range workloads() {
		for _, zeta := range []float64{5, 20, 40, 100} {
			pw, err := Simplify(tr, zeta)
			if err != nil {
				t.Fatal(err)
			}
			if err := metrics.VerifyBound(tr, pw, zeta); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("%s ζ=%v: %v", name, zeta, err)
			}
		}
	}
}

// DP's defining structure: ranges partition [0..n−1] exactly, sharing only
// endpoints, and the representation starts at P0 and ends at Pn.
func TestExactPartition(t *testing.T) {
	tr := gen.RandomWalk(500, 30, 9)
	pw, err := Simplify(tr, 25)
	if err != nil {
		t.Fatal(err)
	}
	if pw[0].StartIdx != 0 {
		t.Errorf("first segment starts at %d", pw[0].StartIdx)
	}
	if pw[len(pw)-1].EndIdx != len(tr)-1 {
		t.Errorf("last segment ends at %d", pw[len(pw)-1].EndIdx)
	}
	for i := 1; i < len(pw); i++ {
		if pw[i].StartIdx != pw[i-1].EndIdx {
			t.Errorf("segment %d starts at %d, previous ends at %d", i, pw[i].StartIdx, pw[i-1].EndIdx)
		}
	}
}

// Every interior point of every emitted segment is within ζ of its line —
// DP's invariant is per-assigned-segment (stronger than the ∃-pair bound).
func TestPerSegmentInvariant(t *testing.T) {
	tr := gen.One(gen.SerCar, 500, 77)
	zeta := 30.0
	pw, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.LineDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d deviates %v from its segment", i, d)
			}
		}
	}
}

func TestStraightLine(t *testing.T) {
	pw, err := Simplify(gen.Line(1000, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("collinear input: %d segments, want 1", len(pw))
	}
}

// Larger ζ never yields more segments on the same input.
func TestMonotoneInEpsilon(t *testing.T) {
	tr := gen.One(gen.Taxi, 400, 5)
	prev := math.MaxInt
	for _, zeta := range []float64{5, 10, 20, 40, 80} {
		pw, err := Simplify(tr, zeta)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) > prev {
			t.Errorf("ζ=%v: %d segments > previous %d", zeta, len(pw), prev)
		}
		prev = len(pw)
	}
}

func TestSEDVariantBoundsSynchronizedError(t *testing.T) {
	tr := gen.One(gen.GeoLife, 400, 8)
	zeta := 25.0
	pw, err := SimplifySED(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range pw {
		for i := s.StartIdx; i <= s.EndIdx; i++ {
			if d := s.SEDistance(tr[i]); d > zeta+1e-9 {
				t.Fatalf("point %d SED %v > ζ", i, d)
			}
		}
	}
}

// TD-TR is at least as strict as DP: bounding SED implies bounding the
// perpendicular distance, so it cannot produce fewer segments than DP on
// the same input... (SED ≥ perpendicular distance pointwise).
func TestSEDStricterThanEuclidean(t *testing.T) {
	tr := gen.One(gen.SerCar, 400, 12)
	zeta := 30.0
	dpPW, err := Simplify(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	sedPW, err := SimplifySED(tr, zeta)
	if err != nil {
		t.Fatal(err)
	}
	if len(sedPW) < len(dpPW) {
		t.Errorf("TD-TR %d segments < DP %d; SED bounds are stricter", len(sedPW), len(dpPW))
	}
}

func TestTinyInputs(t *testing.T) {
	for n := 0; n <= 1; n++ {
		pw, err := Simplify(gen.Line(n, 1), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(pw) != 0 {
			t.Errorf("n=%d: %d segments", n, len(pw))
		}
	}
	pw, err := Simplify(gen.Line(2, 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != 1 {
		t.Errorf("n=2: %d segments", len(pw))
	}
}

func TestBadEpsilon(t *testing.T) {
	for _, zeta := range []float64{0, -3, math.Inf(1), math.NaN()} {
		if _, err := Simplify(gen.Line(5, 1), zeta); !errors.Is(err, ErrBadEpsilon) {
			t.Errorf("ζ=%v: %v", zeta, err)
		}
	}
}

// The recursive split point is the max-distance point; splitting there is
// what Figure 3 prescribes. Verify on the worked Example 2 shape: a peak in
// the middle splits first.
func TestSplitsAtFarthestPoint(t *testing.T) {
	tr := traj.Trajectory{
		{X: 0, Y: 0, T: 0},
		{X: 10, Y: 1, T: 1000},
		{X: 20, Y: 30, T: 2000}, // the spike
		{X: 30, Y: 1, T: 3000},
		{X: 40, Y: 0, T: 4000},
	}
	pw, err := Simplify(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The spike must be a segment endpoint.
	found := false
	for _, s := range pw {
		if s.StartIdx == 2 || s.EndIdx == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("spike point not an endpoint: %v", pw)
	}
}
