package gen

import (
	"math"
	"sort"
	"testing"

	"trajsim/internal/traj"
)

func TestDeterminism(t *testing.T) {
	for _, p := range Presets {
		a := One(p, 200, 42)
		b := One(p, 200, 42)
		if len(a) != len(b) {
			t.Fatalf("%v: lengths differ", p)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: point %d differs: %v vs %v", p, i, a[i], b[i])
			}
		}
		c := One(p, 200, 43)
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical trajectories", p)
		}
	}
}

func TestValidTrajectories(t *testing.T) {
	for _, p := range Presets {
		tr := One(p, 500, 7)
		if len(tr) != 500 {
			t.Fatalf("%v: %d points, want 500", p, len(tr))
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

func TestSamplingIntervals(t *testing.T) {
	cases := []struct {
		p      Preset
		lo, hi float64 // expected mean interval bounds, seconds
	}{
		{Taxi, 59, 61},
		{Truck, 1, 61},
		{SerCar, 3, 5},
		{GeoLife, 1, 5},
	}
	for _, c := range cases {
		tr := One(c.p, 400, 11)
		mean := float64(tr.Duration()) / 1000 / float64(len(tr)-1)
		if mean < c.lo-0.5 || mean > c.hi+0.5 {
			t.Errorf("%v: mean sampling interval %.2f s outside [%v, %v]", c.p, mean, c.lo, c.hi)
		}
	}
}

// Speeds implied by consecutive samples must be physically plausible for
// each mode. GPS spike outliers (deliberate, see spikeProb) can imply
// absurd instantaneous speeds, so the check uses the 99th percentile.
func TestPlausibleSpeeds(t *testing.T) {
	limits := map[Preset]float64{Taxi: 25, Truck: 40, SerCar: 30, GeoLife: 30}
	for _, p := range Presets {
		tr := One(p, 500, 3)
		speeds := make([]float64, 0, len(tr)-1)
		for i := 1; i < len(tr); i++ {
			dt := float64(tr[i].T-tr[i-1].T) / 1000
			speeds = append(speeds, tr[i].Dist(tr[i-1])/dt)
		}
		sort.Float64s(speeds)
		p99 := speeds[len(speeds)*99/100]
		if p99 > limits[p] {
			t.Errorf("%v: p99 implied speed %.1f m/s exceeds %v", p, p99, limits[p])
		}
		if tr.PathLength() < 100 {
			t.Errorf("%v: vehicle barely moved (%.1f m)", p, tr.PathLength())
		}
	}
}

// Spike outliers exist (they are what makes high-rate data produce
// anomalous segments) but are rare.
func TestSpikesArePresentButRare(t *testing.T) {
	tr := One(SerCar, 5000, 31)
	spikes := 0
	for i := 1; i < len(tr)-1; i++ {
		prev, next := tr[i-1], tr[i+1]
		mid := traj.Point{X: (prev.X + next.X) / 2, Y: (prev.Y + next.Y) / 2}
		if tr[i].Dist(mid) > 25 {
			spikes++
		}
	}
	frac := float64(spikes) / float64(len(tr))
	if frac == 0 {
		t.Error("no spike outliers found; high-rate anomalies need them")
	}
	if frac > 0.05 {
		t.Errorf("spike fraction %.3f implausibly high", frac)
	}
}

func TestSpecGenerate(t *testing.T) {
	s := Spec{Preset: SerCar, Trajectories: 5, Points: 100, Seed: 1}
	ds := s.Generate()
	if len(ds) != 5 {
		t.Fatalf("%d trajectories", len(ds))
	}
	for i, tr := range ds {
		if len(tr) != 100 {
			t.Errorf("trajectory %d: %d points", i, len(tr))
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("trajectory %d: %v", i, err)
		}
	}
	// Trajectories must differ from each other.
	if ds[0][0] == ds[1][0] && ds[0][50] == ds[1][50] {
		t.Error("trajectories 0 and 1 look identical")
	}
}

func TestParsePreset(t *testing.T) {
	for _, p := range Presets {
		got, err := ParsePreset(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePreset(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePreset("taxi"); err != nil || got != Taxi {
		t.Errorf("case-insensitive parse failed: %v %v", got, err)
	}
	if _, err := ParsePreset("bogus"); err == nil {
		t.Error("bogus preset should fail")
	}
}

func TestPresetStrings(t *testing.T) {
	if Taxi.String() != "Taxi" || GeoLife.String() != "GeoLife" {
		t.Error("preset names changed")
	}
	if Preset(99).String() == "" {
		t.Error("unknown preset should still stringify")
	}
	for _, p := range Presets {
		if p.SamplingDescription() == "?" {
			t.Errorf("%v missing sampling description", p)
		}
	}
}

func TestShapes(t *testing.T) {
	if tr := Line(10, 5); len(tr) != 10 || tr[9].X != 45 {
		t.Errorf("Line: %v", tr)
	}
	if tr := NoisyLine(50, 10, 2, 1); len(tr) != 50 {
		t.Errorf("NoisyLine len %d", len(tr))
	}
	tr := Circle(100, 50, 0.1)
	for i, p := range tr {
		r := math.Hypot(p.X, p.Y)
		if math.Abs(r-50) > 1e-9 {
			t.Fatalf("Circle point %d radius %v", i, r)
		}
	}
	if tr := Zigzag(20, 5, 10, 3); len(tr) != 20 {
		t.Errorf("Zigzag len %d", len(tr))
	}
	if tr := Spiral(100, 1, 2, 0.1); len(tr) != 100 {
		t.Errorf("Spiral len %d", len(tr))
	}
	if tr := RandomWalk(100, 5, 2); len(tr) != 100 {
		t.Errorf("RandomWalk len %d", len(tr))
	}
	if tr := Stationary(50, 3, 2); len(tr) != 50 {
		t.Errorf("Stationary len %d", len(tr))
	}
	for _, shape := range [][]int{{100, 7}} {
		st := SuddenTurns(shape[0], 30, shape[1], 5)
		if len(st) != shape[0] {
			t.Errorf("SuddenTurns len %d", len(st))
		}
		if err := st.Validate(); err != nil {
			t.Errorf("SuddenTurns: %v", err)
		}
	}
}

// The Stationary shape stays near the origin; the grid vehicle does not.
func TestShapeCharacter(t *testing.T) {
	st := Stationary(200, 2, 9)
	b := st.Bounds()
	if b.MaxX-b.MinX > 30 || b.MaxY-b.MinY > 30 {
		t.Errorf("stationary cloud too wide: %+v", b)
	}
	walk := RandomWalk(500, 20, 9)
	wb := walk.Bounds()
	if wb.MaxX-wb.MinX < 50 && wb.MaxY-wb.MinY < 50 {
		t.Errorf("random walk suspiciously confined: %+v", wb)
	}
}

// Urban presets should hug a grid: most displacement vectors are close to
// axis-aligned (after subtracting GPS noise effects, a loose check).
func TestGridCharacter(t *testing.T) {
	tr := One(SerCar, 800, 15)
	axis, total := 0, 0
	for i := 1; i < len(tr); i++ {
		dx := math.Abs(tr[i].X - tr[i-1].X)
		dy := math.Abs(tr[i].Y - tr[i-1].Y)
		if dx+dy < 20 {
			continue // stopped or noise-dominated
		}
		total++
		if dx < (dx+dy)/5 || dy < (dx+dy)/5 {
			axis++
		}
	}
	if total == 0 {
		t.Fatal("vehicle never moved")
	}
	if frac := float64(axis) / float64(total); frac < 0.5 {
		t.Errorf("only %.0f%% of moves are axis-dominated; grid driver broken?", frac*100)
	}
}
