package gen

import (
	"math"
	"math/rand/v2"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// Geometric shape generators used by tests, examples and ablation benches.
// All emit one point per second starting at t=0 unless noted.

// Line returns n collinear points spaced step meters apart along +x.
func Line(n int, step float64) traj.Trajectory {
	out := make(traj.Trajectory, n)
	for i := range out {
		out[i] = traj.Point{X: float64(i) * step, T: int64(i) * 1000}
	}
	return out
}

// NoisyLine is Line with Gaussian cross-track and along-track noise.
func NoisyLine(n int, step, noise float64, seed uint64) traj.Trajectory {
	r := rand.New(rand.NewPCG(seed, seed+1))
	out := make(traj.Trajectory, n)
	for i := range out {
		out[i] = traj.Point{
			X: float64(i)*step + r.NormFloat64()*noise,
			Y: r.NormFloat64() * noise,
			T: int64(i) * 1000,
		}
	}
	return out
}

// Circle returns n points on a circle of the given radius, advancing
// stepAngle radians per point.
func Circle(n int, radius, stepAngle float64) traj.Trajectory {
	out := make(traj.Trajectory, n)
	for i := range out {
		a := stepAngle * float64(i)
		out[i] = traj.Point{
			X: radius * math.Cos(a),
			Y: radius * math.Sin(a),
			T: int64(i) * 1000,
		}
	}
	return out
}

// Zigzag returns n points alternating between y=0 and y=amplitude every
// period points, advancing step meters in x per point — a worst case for
// window-based algorithms.
func Zigzag(n int, step, amplitude float64, period int) traj.Trajectory {
	if period < 1 {
		period = 1
	}
	out := make(traj.Trajectory, n)
	for i := range out {
		y := 0.0
		if (i/period)%2 == 1 {
			y = amplitude
		}
		out[i] = traj.Point{X: float64(i) * step, Y: y, T: int64(i) * 1000}
	}
	return out
}

// Spiral returns an Archimedean spiral r = a + b·θ sampled at fixed angle
// increments — constantly turning, never revisiting.
func Spiral(n int, a, b, stepAngle float64) traj.Trajectory {
	out := make(traj.Trajectory, n)
	for i := range out {
		th := stepAngle * float64(i)
		r := a + b*th
		out[i] = traj.Point{
			X: r * math.Cos(th),
			Y: r * math.Sin(th),
			T: int64(i) * 1000,
		}
	}
	return out
}

// RandomWalk returns n points where each step has exponential length with
// the given mean and uniform direction — an adversarial, road-free mover.
func RandomWalk(n int, stepMean float64, seed uint64) traj.Trajectory {
	r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	out := make(traj.Trajectory, n)
	var x, y float64
	for i := range out {
		out[i] = traj.Point{X: x, Y: y, T: int64(i) * 1000}
		dir := r.Float64() * 2 * math.Pi
		d := -math.Log(1-r.Float64()) * stepMean
		x += d * math.Cos(dir)
		y += d * math.Sin(dir)
	}
	return out
}

// Stationary returns n points jittering around the origin — a parked
// vehicle with GPS noise, the degenerate case for segment caps.
func Stationary(n int, jitter float64, seed uint64) traj.Trajectory {
	r := rand.New(rand.NewPCG(seed, seed^0x1234567))
	out := make(traj.Trajectory, n)
	for i := range out {
		out[i] = traj.Point{
			X: r.NormFloat64() * jitter,
			Y: r.NormFloat64() * jitter,
			T: int64(i) * 1000,
		}
	}
	return out
}

// SuddenTurns returns a polyline with sharp direction changes roughly every
// leg samples — the crossroad pattern of Figure 9. Crucially, turns happen
// *between* samples (a crossroad is crossed mid-sampling-interval), which
// is what produces the short diagonal jogs that become anomalous line
// segments under every LS algorithm.
func SuddenTurns(n int, step float64, leg int, seed uint64) traj.Trajectory {
	if leg < 2 {
		leg = 2
	}
	r := rand.New(rand.NewPCG(seed, seed^0x777))
	out := make(traj.Trajectory, n)
	var pos geo.Point
	heading := 0.0
	legLen := float64(leg) * step
	toTurn := legLen * (0.5 + r.Float64())
	for i := range out {
		out[i] = traj.Point{X: pos.X, Y: pos.Y, T: int64(i) * 1000}
		remaining := step
		for remaining > 0 {
			if remaining < toTurn {
				pos = pos.Add(geo.Dir(heading).Scale(remaining))
				toTurn -= remaining
				remaining = 0
				continue
			}
			pos = pos.Add(geo.Dir(heading).Scale(toTurn))
			remaining -= toTurn
			// Turn sharply at the crossroad: ±(60°..110°).
			turn := math.Pi/3 + r.Float64()*math.Pi*5/18
			if r.IntN(2) == 0 {
				turn = -turn
			}
			heading += turn
			toTurn = legLen * (0.6 + 0.8*r.Float64())
		}
	}
	return out
}
