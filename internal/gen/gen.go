// Package gen synthesizes GPS trajectory workloads standing in for the
// paper's four proprietary/unavailable datasets (Table 1). Each preset
// reproduces the properties the paper attributes the results to — sampling
// interval, movement regime (urban grid with crossroads, highway, mixed
// modes), speeds, stops and GPS noise — at a configurable, laptop-friendly
// scale. Generation is deterministic given a seed.
package gen

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
)

// Preset selects a dataset surrogate.
type Preset int

// The four dataset surrogates of Table 1.
const (
	// Taxi: Beijing taxi fleet, urban grid roads, one point per 60 s —
	// the lowest sampling rate, hence the highest compression ratios.
	Taxi Preset = iota
	// Truck: long-haul trucks, highway movement, 1–60 s sampling (fixed
	// per trajectory).
	Truck
	// SerCar: rental service cars, urban grid roads, 3–5 s sampling.
	SerCar
	// GeoLife: mixed walk/bike/drive movement, 1–5 s sampling — the
	// highest sampling rate, hence the lowest compression ratios.
	GeoLife
)

// Presets lists all dataset surrogates in Table 1 order.
var Presets = []Preset{Taxi, Truck, SerCar, GeoLife}

// String implements fmt.Stringer.
func (p Preset) String() string {
	switch p {
	case Taxi:
		return "Taxi"
	case Truck:
		return "Truck"
	case SerCar:
		return "SerCar"
	case GeoLife:
		return "GeoLife"
	}
	return fmt.Sprintf("Preset(%d)", int(p))
}

// ErrUnknownPreset is returned by ParsePreset.
var ErrUnknownPreset = errors.New("gen: unknown preset")

// ParsePreset resolves a case-insensitive preset name.
func ParsePreset(s string) (Preset, error) {
	for _, p := range Presets {
		if strings.EqualFold(s, p.String()) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownPreset, s)
}

// SamplingDescription returns the human-readable sampling rate, matching
// Table 1's "Sampling Rates(s)" column.
func (p Preset) SamplingDescription() string {
	switch p {
	case Taxi:
		return "60"
	case Truck:
		return "1-60"
	case SerCar:
		return "3-5"
	case GeoLife:
		return "1-5"
	}
	return "?"
}

// Spec describes a dataset to generate.
type Spec struct {
	Preset       Preset
	Trajectories int
	Points       int // points per trajectory
	Seed         uint64
}

// Generate builds the dataset. Trajectory i uses an rng derived from
// (Seed, i), so datasets are reproducible and individual trajectories can
// be regenerated independently.
func (s Spec) Generate() []traj.Trajectory {
	out := make([]traj.Trajectory, s.Trajectories)
	for i := range out {
		out[i] = One(s.Preset, s.Points, s.Seed+uint64(i)*0x9e3779b97f4a7c15+1)
	}
	return out
}

// One generates a single trajectory of the given preset.
func One(p Preset, points int, seed uint64) traj.Trajectory {
	r := rand.New(rand.NewPCG(seed, seed^0xda3e39cb94b95bdb))
	switch p {
	case Taxi:
		// Arterial-heavy urban driving: long straight runs between turns
		// so heading persists across the sparse 60 s samples, giving the
		// ≈20% compression ratios the paper reports at ζ=40 m.
		v := newGridVehicle(r, gridParams{
			meanSpeed: 8.5, maxSpeed: 17, block: 550, straight: 0.82,
			stopRate: 0.003, meanStop: 45,
		})
		return sample(v, r, points, fixedInterval(60), 4.0)
	case Truck:
		// The paper: sampling varied 1–60 s; model it as a per-trajectory
		// device configuration. Highways are nearly straight between
		// interchanges, so curvature noise is gentle.
		iv := 1 + r.Float64()*59
		v := newHighwayVehicle(r, highwayParams{
			meanSpeed: 22, maxSpeed: 30, curveSigma: 0.00018,
			rampRate: 0.0008, stopRate: 0.0003, meanStop: 120,
		})
		return sample(v, r, points, fixedInterval(iv), 4.0)
	case SerCar:
		v := newGridVehicle(r, gridParams{
			meanSpeed: 10, maxSpeed: 20, block: 250, straight: 0.55,
			stopRate: 0.004, meanStop: 30,
		})
		return sample(v, r, points, uniformInterval(3, 5), 3.0)
	case GeoLife:
		v := newMixedMover(r)
		return sample(v, r, points, uniformInterval(1, 5), 2.5)
	}
	// Unknown preset: a plain random walk keeps callers going.
	return RandomWalk(points, 10, seed)
}

// mover is a continuous-motion model advanced in small time steps.
type mover interface {
	// step advances the true state by dt seconds and returns the new
	// true position.
	step(dt float64) geo.Point
}

// intervalFunc yields the next sampling interval in seconds (≥ 1).
type intervalFunc func(r *rand.Rand) float64

func fixedInterval(s float64) intervalFunc {
	return func(*rand.Rand) float64 { return s }
}

func uniformInterval(lo, hi float64) intervalFunc {
	return func(r *rand.Rand) float64 { return lo + r.Float64()*(hi-lo) }
}

// spikeProb is the per-fix probability of a GPS multipath outlier: a
// single fix displaced tens of meters, the urban-canyon artifact real
// fleet data is full of. Spikes are what create most anomalous (two-point)
// line segments at large ζ — without them OPERB-A would have nothing to
// patch on clean high-rate data, unlike the paper's real datasets.
const spikeProb = 0.005

// sample advances the mover and records fixes with GPS noise at the given
// cadence. Internal integration uses sub-steps of at most one second so
// low sampling rates still follow the road geometry.
func sample(v mover, r *rand.Rand, points int, next intervalFunc, noise float64) traj.Trajectory {
	const baseEpochMS = 1_288_569_600_000 // 2010-11-01T00:00:00Z, the Taxi campaign start
	out := make(traj.Trajectory, 0, points)
	now := baseEpochMS + int64(r.IntN(86_400_000))
	pos := v.step(0)
	for i := 0; i < points; i++ {
		fix := geo.Point{
			X: pos.X + r.NormFloat64()*noise,
			Y: pos.Y + r.NormFloat64()*noise,
		}
		if r.Float64() < spikeProb {
			mag := 25 + r.ExpFloat64()*35
			fix = fix.Add(geo.Dir(r.Float64() * 2 * math.Pi).Scale(mag))
		}
		out = append(out, traj.Point{X: fix.X, Y: fix.Y, T: now})
		iv := next(r)
		if iv < 1 {
			iv = 1
		}
		for left := iv; left > 0; {
			dt := math.Min(1, left)
			pos = v.step(dt)
			left -= dt
		}
		now += int64(iv * 1000)
	}
	return out
}

// ouSpeed nudges a speed toward mean with Ornstein-Uhlenbeck dynamics.
func ouSpeed(r *rand.Rand, v, mean, maxV, dt float64) float64 {
	v += 0.25*(mean-v)*dt + r.NormFloat64()*0.9*math.Sqrt(dt)
	if v < 0 {
		v = 0
	}
	if v > maxV {
		v = maxV
	}
	return v
}
