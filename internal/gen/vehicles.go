package gen

import (
	"math"
	"math/rand/v2"

	"trajsim/internal/geo"
)

// gridVehicle drives a Manhattan-style road grid: axis-aligned headings,
// turns at intersections, traffic stops. It models the urban movement of
// the Taxi and SerCar surrogates, producing the crossroad track changes
// that motivate OPERB-A's patch points (§5.1, Figure 9).
type gridVehicle struct {
	r       *rand.Rand
	p       gridParams
	pos     geo.Point
	heading float64 // one of 0, π/2, π, 3π/2
	speed   float64
	toNext  float64 // meters until the next intersection
	stopped float64 // seconds of stop remaining
}

type gridParams struct {
	meanSpeed float64 // m/s
	maxSpeed  float64
	block     float64 // nominal block length, meters
	straight  float64 // probability of continuing straight at an intersection
	stopRate  float64 // stop events per second of driving
	meanStop  float64 // mean stop duration, seconds
}

func newGridVehicle(r *rand.Rand, p gridParams) *gridVehicle {
	return &gridVehicle{
		r:       r,
		p:       p,
		heading: float64(r.IntN(4)) * math.Pi / 2,
		speed:   p.meanSpeed,
		toNext:  p.block * (0.4 + r.Float64()),
	}
}

func (v *gridVehicle) step(dt float64) geo.Point {
	if dt <= 0 {
		return v.pos
	}
	if v.stopped > 0 {
		v.stopped -= dt
		return v.pos
	}
	if v.r.Float64() < v.p.stopRate*dt {
		v.stopped = -math.Log(1-v.r.Float64()) * v.p.meanStop
		return v.pos
	}
	v.speed = ouSpeed(v.r, v.speed, v.p.meanSpeed, v.p.maxSpeed, dt)
	dist := v.speed * dt
	for dist > 0 {
		if dist < v.toNext {
			v.advance(dist)
			v.toNext -= dist
			break
		}
		v.advance(v.toNext)
		dist -= v.toNext
		v.turn()
		v.toNext = v.p.block * (0.7 + 0.6*v.r.Float64())
	}
	return v.pos
}

func (v *gridVehicle) advance(d float64) {
	v.pos = v.pos.Add(geo.Dir(v.heading).Scale(d))
}

// turn picks the next road at an intersection. The straight-through
// probability controls how far heading persists, which in turn controls
// how compressible the workload is — arterial-heavy fleets (Taxi) go
// straight most of the time.
func (v *gridVehicle) turn() {
	s := v.p.straight
	if s <= 0 {
		s = 0.5
	}
	u := v.r.Float64()
	turnSpan := 1 - s
	switch {
	case u < s: // straight
	case u < s+turnSpan*0.46: // right
		v.heading = geo.NormalizeAngle(v.heading - math.Pi/2)
	case u < s+turnSpan*0.92: // left
		v.heading = geo.NormalizeAngle(v.heading + math.Pi/2)
	default: // U-turn
		v.heading = geo.NormalizeAngle(v.heading + math.Pi)
	}
}

// highwayVehicle models long-haul movement: a continuous heading with
// gentle curvature noise, occasional interchange ramps (sharper bounded
// turns), high speeds and rare long stops. Used by the Truck surrogate.
type highwayVehicle struct {
	r        *rand.Rand
	p        highwayParams
	pos      geo.Point
	heading  float64
	speed    float64
	stopped  float64
	rampLeft float64 // remaining ramp turn, radians (signed)
}

type highwayParams struct {
	meanSpeed  float64
	maxSpeed   float64
	curveSigma float64 // heading noise, radians per meter travelled
	rampRate   float64 // interchanges per second of driving
	stopRate   float64
	meanStop   float64
}

func newHighwayVehicle(r *rand.Rand, p highwayParams) *highwayVehicle {
	return &highwayVehicle{
		r:       r,
		p:       p,
		heading: r.Float64() * 2 * math.Pi,
		speed:   p.meanSpeed,
	}
}

func (v *highwayVehicle) step(dt float64) geo.Point {
	if dt <= 0 {
		return v.pos
	}
	if v.stopped > 0 {
		v.stopped -= dt
		return v.pos
	}
	if v.r.Float64() < v.p.stopRate*dt {
		v.stopped = -math.Log(1-v.r.Float64()) * v.p.meanStop
		return v.pos
	}
	if v.rampLeft == 0 && v.r.Float64() < v.p.rampRate*dt {
		// Enter an interchange: a bounded turn of up to ±120° spread over
		// the next stretch of road.
		v.rampLeft = (v.r.Float64()*2 - 1) * (2 * math.Pi / 3)
	}
	v.speed = ouSpeed(v.r, v.speed, v.p.meanSpeed, v.p.maxSpeed, dt)
	dist := v.speed * dt
	turn := v.r.NormFloat64() * v.p.curveSigma * dist
	if v.rampLeft != 0 {
		// Ramps bend at ~1°/10 m until the turn is spent.
		step := math.Copysign(math.Min(math.Abs(v.rampLeft), 0.0018*dist), v.rampLeft)
		v.rampLeft -= step
		if math.Abs(v.rampLeft) < 1e-6 {
			v.rampLeft = 0
		}
		turn += step
	}
	v.heading = geo.NormalizeAngle(v.heading + turn)
	v.pos = v.pos.Add(geo.Dir(v.heading).Scale(dist))
	return v.pos
}

// mixedMover alternates transport modes the way the GeoLife users did:
// stretches of walking (slow, wandering), cycling and driving, with mode
// changes every few minutes.
type mixedMover struct {
	r        *rand.Rand
	mode     int // 0 walk, 1 bike, 2 drive
	modeLeft float64
	walk     *highwayVehicle // reused as a generic heading-noise mover
	bike     *highwayVehicle
	drive    *gridVehicle
	pos      geo.Point
}

func newMixedMover(r *rand.Rand) *mixedMover {
	m := &mixedMover{
		r: r,
		walk: newHighwayVehicle(r, highwayParams{
			meanSpeed: 1.4, maxSpeed: 2.5, curveSigma: 0.05,
			stopRate: 0.01, meanStop: 20,
		}),
		bike: newHighwayVehicle(r, highwayParams{
			meanSpeed: 4.5, maxSpeed: 8, curveSigma: 0.012,
			rampRate: 0.01, stopRate: 0.006, meanStop: 25,
		}),
		drive: newGridVehicle(r, gridParams{
			meanSpeed: 11, maxSpeed: 20, block: 240,
			stopRate: 0.004, meanStop: 40,
		}),
	}
	m.pickMode()
	return m
}

func (m *mixedMover) pickMode() {
	m.mode = m.r.IntN(3)
	m.modeLeft = 180 + m.r.Float64()*720 // 3–15 minutes
}

func (m *mixedMover) step(dt float64) geo.Point {
	if dt <= 0 {
		return m.pos
	}
	m.modeLeft -= dt
	if m.modeLeft <= 0 {
		m.pickMode()
		// Keep the trajectory continuous across mode switches.
		m.walk.pos, m.bike.pos, m.drive.pos = m.pos, m.pos, m.pos
	}
	switch m.mode {
	case 0:
		m.pos = m.walk.step(dt)
	case 1:
		m.pos = m.bike.step(dt)
	default:
		m.pos = m.drive.step(dt)
	}
	return m.pos
}
