package trajsim

import (
	"math/rand/v2"
	"testing"
)

// TestZetaBoundProperty is the paper's central claim (§3.2) as a
// property test: for every error-bounded algorithm, every point of a
// randomized trajectory ends up within ζ of the simplified polyline's
// covering segment. OPERB and OPERB-A carry the guarantee by
// construction (Theorems 2 and 3); DP and BQS are the error-bounded
// baselines the paper compares against.
func TestZetaBoundProperty(t *testing.T) {
	algorithms := map[string]func(Trajectory, float64) (Piecewise, error){
		"OPERB":   Simplify,
		"OPERB-A": SimplifyAggressive,
		"DP":      DouglasPeucker,
		"BQS":     BQS,
	}
	presets := []Preset{PresetTaxi, PresetTruck, PresetSerCar, PresetGeoLife}
	// Deterministically randomized trials: a seeded PRNG picks workload,
	// size and ζ, so failures replay exactly.
	rng := rand.New(rand.NewPCG(2024, 7))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		preset := presets[rng.IntN(len(presets))]
		points := 2 + rng.IntN(1500)
		zeta := 0.5 + rng.Float64()*120 // 0.5 m .. 120.5 m
		seed := rng.Uint64()
		tr := GenerateTrajectory(preset, points, seed)
		for name, fn := range algorithms {
			pw, err := fn(tr, zeta)
			if err != nil {
				t.Fatalf("trial %d: %s(%v, %d pts, ζ=%.2f, seed=%d): %v",
					trial, name, preset, points, zeta, seed, err)
			}
			if err := pw.Validate(); err != nil {
				t.Errorf("trial %d: %s: invalid piecewise: %v", trial, name, err)
			}
			if err := VerifyErrorBound(tr, pw, zeta*(1+1e-9)); err != nil {
				t.Errorf("trial %d: %s(%v, %d pts, ζ=%.2f, seed=%d) violates its bound: %v",
					trial, name, preset, points, zeta, seed, err)
			}
		}
	}
}
