// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6) as testing.B targets. Each BenchmarkFig* corresponds to one paper
// artifact; quality figures report their headline quantity (compression
// ratio, average error, patching ratio) via b.ReportMetric alongside the
// timing. cmd/trajbench prints the same results as text tables at larger
// scales.
//
//	go test -bench=. -benchmem
package trajsim

import (
	"fmt"
	"sync"
	"testing"

	"trajsim/internal/algo"
	"trajsim/internal/bench"
	"trajsim/internal/core"
	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
)

// benchScale sizes the in-process benchmarks: big enough to be
// representative, small enough that -bench=. completes in minutes.
var benchScale = bench.Scale{
	Name:       "bench",
	SubsetTraj: 2, SizeSweep: []int{2000, 4000},
	WholeTraj: 2, WholePoints: 2000,
	Repeats:      1,
	Zetas:        []float64{10, 40, 100},
	TimeZetas:    []float64{10, 40, 100},
	GammaDegrees: []float64{0, 60, 120, 180},
	Seed:         1,
}

var (
	envOnce sync.Once
	envInst *bench.Env
)

func benchEnv() *bench.Env {
	envOnce.Do(func() { envInst = bench.NewEnv(benchScale) })
	return envInst
}

func totalPoints(ds []traj.Trajectory) int {
	var n int
	for _, t := range ds {
		n += len(t)
	}
	return n
}

func compressAll(b *testing.B, fn algo.Func, ds []traj.Trajectory, zeta float64) []traj.Piecewise {
	b.Helper()
	out := make([]traj.Piecewise, len(ds))
	for i, t := range ds {
		pw, err := fn(t, zeta)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = pw
	}
	return out
}

// BenchmarkTable1Datasets measures synthetic dataset generation, the
// substrate behind Table 1.
func BenchmarkTable1Datasets(b *testing.B) {
	b.ReportAllocs()
	for _, p := range gen.Presets {
		b.Run(p.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr := gen.One(p, 2000, uint64(i))
				if len(tr) != 2000 {
					b.Fatal("bad generation")
				}
			}
			b.ReportMetric(2000, "points/op")
		})
	}
}

// BenchmarkFig12Size reproduces Figure 12: runtime vs trajectory size at
// ζ=40 m for DP, FBQS, OPERB and OPERB-A.
func BenchmarkFig12Size(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	for _, p := range gen.Presets {
		for _, size := range benchScale.SizeSweep {
			ds := e.Subset(p, size)
			pts := totalPoints(ds)
			for _, a := range algo.Comparison() {
				name := fmt.Sprintf("%s/size=%d/%s", p, size, a.Name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						compressAll(b, a.Fn, ds, 40)
					}
					b.ReportMetric(float64(pts)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
				})
			}
		}
	}
}

// BenchmarkFig13Epsilon reproduces Figure 13: runtime vs ζ on the whole
// datasets.
func BenchmarkFig13Epsilon(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		pts := totalPoints(ds)
		for _, zeta := range benchScale.TimeZetas {
			for _, a := range algo.Comparison() {
				name := fmt.Sprintf("%s/zeta=%g/%s", p, zeta, a.Name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						compressAll(b, a.Fn, ds, zeta)
					}
					b.ReportMetric(float64(pts)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
				})
			}
		}
	}
}

// BenchmarkFig14Optimizations reproduces Figure 14: the runtime cost of
// the §4.4 optimization techniques (Raw-OPERB vs OPERB and the OPERB-A
// pair) at ζ=40 m.
func BenchmarkFig14Optimizations(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	lineup := []string{"Raw-OPERB", "OPERB", "Raw-OPERB-A", "OPERB-A"}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, name := range lineup {
			a, err := algo.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", p, name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					compressAll(b, a.Fn, ds, 40)
				}
			})
		}
	}
}

// BenchmarkFig15Ratio reproduces Figure 15: compression ratio vs ζ,
// reported as the "ratio" metric (segments per point; lower is better).
func BenchmarkFig15Ratio(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range benchScale.Zetas {
			for _, a := range algo.Comparison() {
				name := fmt.Sprintf("%s/zeta=%g/%s", p, zeta, a.Name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					var ratio float64
					for i := 0; i < b.N; i++ {
						pws := compressAll(b, a.Fn, ds, zeta)
						r, err := metrics.DatasetRatio(ds, pws)
						if err != nil {
							b.Fatal(err)
						}
						ratio = r
					}
					b.ReportMetric(ratio, "ratio")
				})
			}
		}
	}
}

// BenchmarkFig16OptimizationRatio reproduces Figure 16: the ratio impact
// of the optimization techniques at ζ=40 m.
func BenchmarkFig16OptimizationRatio(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	lineup := []string{"Raw-OPERB", "OPERB", "Raw-OPERB-A", "OPERB-A"}
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, name := range lineup {
			a, err := algo.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", p, name), func(b *testing.B) {
				b.ReportAllocs()
				var ratio float64
				for i := 0; i < b.N; i++ {
					pws := compressAll(b, a.Fn, ds, 40)
					r, err := metrics.DatasetRatio(ds, pws)
					if err != nil {
						b.Fatal(err)
					}
					ratio = r
				}
				b.ReportMetric(ratio, "ratio")
			})
		}
	}
}

// BenchmarkFig17Distribution reproduces Figure 17: the Z(k) segment-size
// distribution at ζ=40 m; the "heavy" metric counts segments representing
// 10+ points (the tail the paper highlights).
func BenchmarkFig17Distribution(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	size := benchScale.SizeSweep[len(benchScale.SizeSweep)-1]
	for _, p := range gen.Presets {
		ds := e.Subset(p, size)
		for _, a := range algo.Comparison() {
			b.Run(fmt.Sprintf("%s/%s", p, a.Name), func(b *testing.B) {
				b.ReportAllocs()
				var heavy int
				for i := 0; i < b.N; i++ {
					pws := compressAll(b, a.Fn, ds, 40)
					z := metrics.Distribution(pws)
					heavy = 0
					for k, n := range z {
						if k >= 10 {
							heavy += n
						}
					}
				}
				b.ReportMetric(float64(heavy), "heavy-segments")
			})
		}
	}
}

// BenchmarkFig18AvgError reproduces Figure 18: average error vs ζ,
// reported as the "avg-err-m" metric.
func BenchmarkFig18AvgError(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range benchScale.Zetas {
			for _, a := range algo.Comparison() {
				name := fmt.Sprintf("%s/zeta=%g/%s", p, zeta, a.Name)
				b.Run(name, func(b *testing.B) {
					b.ReportAllocs()
					var avg float64
					for i := 0; i < b.N; i++ {
						pws := compressAll(b, a.Fn, ds, zeta)
						v, err := metrics.DatasetAvgError(ds, pws)
						if err != nil {
							b.Fatal(err)
						}
						avg = v
					}
					b.ReportMetric(avg, "avg-err-m")
				})
			}
		}
	}
}

// BenchmarkFig19PatchingZeta reproduces Figure 19(1): OPERB-A's patching
// ratio vs ζ (γm=π/3), reported as the "patch-ratio" metric.
func BenchmarkFig19PatchingZeta(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	for _, p := range gen.Presets {
		ds := e.Whole(p)
		for _, zeta := range benchScale.TimeZetas {
			b.Run(fmt.Sprintf("%s/zeta=%g", p, zeta), func(b *testing.B) {
				b.ReportAllocs()
				var st core.PatchStats
				for i := 0; i < b.N; i++ {
					st = core.PatchStats{}
					for _, t := range ds {
						_, s, err := core.SimplifyAggressiveOpts(t, zeta, core.DefaultOptions())
						if err != nil {
							b.Fatal(err)
						}
						st.Anomalous += s.Anomalous
						st.Patched += s.Patched
					}
				}
				b.ReportMetric(st.Ratio(), "patch-ratio")
			})
		}
	}
}

// BenchmarkFig19PatchingGamma reproduces Figure 19(2): patching ratio vs
// γm at ζ=40 m.
func BenchmarkFig19PatchingGamma(b *testing.B) {
	b.ReportAllocs()
	e := benchEnv()
	size := benchScale.SizeSweep[len(benchScale.SizeSweep)-1]
	for _, p := range gen.Presets {
		ds := e.Subset(p, size)
		for _, deg := range benchScale.GammaDegrees {
			b.Run(fmt.Sprintf("%s/gamma=%g", p, deg), func(b *testing.B) {
				b.ReportAllocs()
				opts := core.DefaultOptions()
				opts.Gamma = float64(deg) * 3.14159265358979323846 / 180
				if opts.Gamma == 0 {
					opts.Gamma = 1e-9
				}
				var st core.PatchStats
				for i := 0; i < b.N; i++ {
					st = core.PatchStats{}
					for _, t := range ds {
						_, s, err := core.SimplifyAggressiveOpts(t, 40, opts)
						if err != nil {
							b.Fatal(err)
						}
						st.Anomalous += s.Anomalous
						st.Patched += s.Patched
					}
				}
				b.ReportMetric(st.Ratio(), "patch-ratio")
			})
		}
	}
}

// BenchmarkEncoderPush measures the steady-state per-point cost of the
// streaming OPERB encoder — the number the O(n)/O(1) claims are about.
func BenchmarkEncoderPush(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 100_000, 3)
	b.Run("OPERB", func(b *testing.B) {
		b.ReportAllocs()
		enc, err := core.NewEncoder(40, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Push(tr[i%len(tr)])
		}
	})
	b.Run("OPERB-A", func(b *testing.B) {
		b.ReportAllocs()
		enc, err := core.NewAggressiveEncoder(40, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Push(tr[i%len(tr)])
		}
	})
}

// BenchmarkAlgorithmsThroughput compares all registered algorithms on one
// standard 10k-point urban trajectory, ζ=40 m.
func BenchmarkAlgorithmsThroughput(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 5)
	for _, a := range algo.All() {
		b.Run(a.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.Fn(tr, 40); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkAblationOptimizations isolates each §4.4 technique: one flag on
// at a time, reporting both the runtime and the achieved ratio at ζ=40 m.
// This is the fine-grained version of Figures 14/16 for the design choices
// DESIGN.md calls out.
func BenchmarkAblationOptimizations(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.SerCar, 10_000, 11)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"none", core.RawOptions()},
		{"first-active", func() core.Options { o := core.RawOptions(); o.FirstActive = true; return o }()},
		{"adjusted-bound", func() core.Options { o := core.RawOptions(); o.AdjustedBound = true; return o }()},
		{"angle-tighten", func() core.Options { o := core.RawOptions(); o.AngleTighten = true; return o }()},
		{"missing-zones", func() core.Options { o := core.RawOptions(); o.MissingZones = true; return o }()},
		{"absorb", func() core.Options { o := core.RawOptions(); o.Absorb = true; return o }()},
		{"all", core.DefaultOptions()},
		{"all-linear-fitting", func() core.Options { o := core.DefaultOptions(); o.LinearFitting = true; return o }()},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			var segs int
			for i := 0; i < b.N; i++ {
				pw, err := core.SimplifyOpts(tr, 40, v.opts)
				if err != nil {
					b.Fatal(err)
				}
				segs = len(pw)
			}
			b.ReportMetric(float64(segs)/float64(len(tr)), "ratio")
			b.ReportMetric(float64(len(tr))*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkAblationGamma sweeps OPERB-A's γm to expose the patching
// crossover the paper discusses in Exp-4.2.
func BenchmarkAblationGamma(b *testing.B) {
	b.ReportAllocs()
	tr := gen.One(gen.Taxi, 10_000, 13)
	for _, deg := range []float64{15, 60, 105, 150} {
		b.Run(fmt.Sprintf("gamma=%g", deg), func(b *testing.B) {
			b.ReportAllocs()
			opts := core.DefaultOptions()
			opts.Gamma = deg * 3.141592653589793 / 180
			var st core.PatchStats
			for i := 0; i < b.N; i++ {
				_, s, err := core.SimplifyAggressiveOpts(tr, 40, opts)
				if err != nil {
					b.Fatal(err)
				}
				st = s
			}
			b.ReportMetric(st.Ratio(), "patch-ratio")
		})
	}
}

// BenchmarkCompressFleet measures the parallel fleet path.
func BenchmarkCompressFleet(b *testing.B) {
	b.ReportAllocs()
	fleet := GenerateDataset(PresetSerCar, 16, 2000, 9)
	for _, workers := range []int{1, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CompressFleet(fleet, 40, "OPERB-A", workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineIngest measures live-session ingest through the public
// facade: a fixed fleet of devices pushing 64-point batches round-robin,
// at 1, 8 and 64 shards. One iteration = one batch.
func BenchmarkEngineIngest(b *testing.B) {
	b.ReportAllocs()
	const (
		devices = 64
		batch   = 64
	)
	fleet := GenerateDataset(PresetTruck, devices, 4096, 17)
	for _, shards := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := NewEngine(EngineConfig{Zeta: 40, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			offs := make([]int, devices)
			names := make([]string, devices)
			for d := range names {
				names[d] = fmt.Sprintf("dev-%d", d)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := i % devices
				if offs[d]+batch > len(fleet[d]) {
					eng.Flush(names[d])
					offs[d] = 0
				}
				if _, err := eng.Ingest(names[d], fleet[d][offs[d]:offs[d]+batch]); err != nil {
					b.Fatal(err)
				}
				offs[d] += batch
			}
			b.StopTimer()
			eng.Close()
		})
	}
}
