// Package trajsim is a trajectory-simplification library reproducing
// "One-Pass Error Bounded Trajectory Simplification" (Lin, Ma, Zhang, Wo,
// Huai — PVLDB 10(7), 2017).
//
// The headline algorithms are OPERB and OPERB-A: streaming simplifiers
// that read each GPS point exactly once, run in O(n) time and O(1) space,
// and guarantee every input point stays within an error bound ζ (meters)
// of the simplified polyline. OPERB-A additionally interpolates patch
// points at sharp turns, compressing better than Douglas-Peucker.
//
// Batch usage:
//
//	pw, err := trajsim.Simplify(points, 40) // ζ = 40 m
//
// Streaming usage (e.g. on a device):
//
//	enc, _ := trajsim.NewEncoder(40, trajsim.DefaultOptions())
//	for p := range gps {
//	    for _, seg := range enc.Push(p) {
//	        transmit(seg)
//	    }
//	}
//	transmitAll(enc.Flush())
//
// The package also ships the classic baselines the paper evaluates against
// (Douglas-Peucker, TD-TR, OPW, OPW-TR, BQS, FBQS), quality metrics,
// synthetic GPS workload generators, and stream cleaning for duplicated or
// out-of-order fixes.
//
// Server-side, an Engine multiplexes thousands of live per-device encoder
// sessions (stream.go), a SegmentStore persists every finalized segment
// to crash-recoverable per-device logs (store.go), and compact binary
// wire formats cover both directions: AppendIngestBatch for uploads,
// EncodePiecewise for simplified output (io.go).
package trajsim

import (
	"trajsim/internal/algo"
	"trajsim/internal/bottomup"
	"trajsim/internal/bqs"
	"trajsim/internal/core"
	"trajsim/internal/dp"
	"trajsim/internal/gen"
	"trajsim/internal/geo"
	"trajsim/internal/metrics"
	"trajsim/internal/opw"
	"trajsim/internal/traj"
)

// Core data model, re-exported from the internal packages.
type (
	// Point is a GPS fix: planar position in meters plus a millisecond
	// timestamp.
	Point = traj.Point
	// Trajectory is a time-ordered sequence of points.
	Trajectory = traj.Trajectory
	// Segment is one directed line segment of a simplified trajectory,
	// annotated with the range of source points it represents.
	Segment = traj.Segment
	// Piecewise is a piecewise line representation: the simplifier output.
	Piecewise = traj.Piecewise
	// Options selects OPERB's optimization techniques and knobs.
	Options = core.Options
	// Stats are the streaming encoder's counters.
	Stats = core.Stats
	// PatchStats reports OPERB-A's interpolation activity.
	PatchStats = core.PatchStats
	// Encoder is the streaming OPERB simplifier.
	Encoder = core.Encoder
	// AggressiveEncoder is the streaming OPERB-A simplifier.
	AggressiveEncoder = core.AggressiveEncoder
	// Cleaner repairs duplicate and out-of-order points in raw streams.
	Cleaner = traj.Cleaner
	// Projection converts lon/lat degrees to the planar frame in meters.
	Projection = geo.Projection
	// Algorithm describes one registered simplification algorithm.
	Algorithm = algo.Algorithm
	// Summary bundles quality metrics for one compression run.
	Summary = metrics.Summary
)

// At constructs a Point from planar meters and a millisecond timestamp.
func At(x, y float64, tms int64) Point { return traj.At(x, y, tms) }

// DefaultOptions returns the paper's OPERB configuration (all five §4.4
// optimization techniques enabled).
func DefaultOptions() Options { return core.DefaultOptions() }

// RawOptions returns the basic Figure-7 algorithm with no optimizations
// (the paper's Raw-OPERB).
func RawOptions() Options { return core.RawOptions() }

// NewEncoder returns a streaming OPERB encoder with error bound zeta
// (meters).
func NewEncoder(zeta float64, opts Options) (*Encoder, error) {
	return core.NewEncoder(zeta, opts)
}

// NewAggressiveEncoder returns a streaming OPERB-A encoder with error
// bound zeta (meters).
func NewAggressiveEncoder(zeta float64, opts Options) (*AggressiveEncoder, error) {
	return core.NewAggressiveEncoder(zeta, opts)
}

// Simplify compresses t with OPERB (all optimizations) under error bound
// zeta in meters.
func Simplify(t Trajectory, zeta float64) (Piecewise, error) {
	return core.Simplify(t, zeta)
}

// SimplifyOpts compresses t with OPERB and explicit options.
func SimplifyOpts(t Trajectory, zeta float64, opts Options) (Piecewise, error) {
	return core.SimplifyOpts(t, zeta, opts)
}

// SimplifyAggressive compresses t with OPERB-A.
func SimplifyAggressive(t Trajectory, zeta float64) (Piecewise, error) {
	return core.SimplifyAggressive(t, zeta)
}

// SimplifyAggressiveOpts compresses t with OPERB-A and explicit options,
// returning the patching statistics.
func SimplifyAggressiveOpts(t Trajectory, zeta float64, opts Options) (Piecewise, PatchStats, error) {
	return core.SimplifyAggressiveOpts(t, zeta, opts)
}

// DouglasPeucker compresses t with the classic batch DP algorithm.
func DouglasPeucker(t Trajectory, zeta float64) (Piecewise, error) {
	return dp.Simplify(t, zeta)
}

// TDTR is Douglas-Peucker with the time-synchronized Euclidean distance.
func TDTR(t Trajectory, zeta float64) (Piecewise, error) {
	return dp.SimplifySED(t, zeta)
}

// BottomUp compresses t with the bottom-up merge algorithm (the batch
// complement to Douglas-Peucker's top-down splits).
func BottomUp(t Trajectory, zeta float64) (Piecewise, error) {
	return bottomup.Simplify(t, zeta)
}

// OPW compresses t with the open-window online algorithm.
func OPW(t Trajectory, zeta float64) (Piecewise, error) {
	return opw.Simplify(t, zeta)
}

// OPWTR is OPW with the time-synchronized Euclidean distance.
func OPWTR(t Trajectory, zeta float64) (Piecewise, error) {
	return opw.SimplifySED(t, zeta)
}

// BQS compresses t with the bounded quadrant system (full variant).
func BQS(t Trajectory, zeta float64) (Piecewise, error) {
	return bqs.Simplify(t, zeta)
}

// FBQS compresses t with the fast BQS variant, the quickest prior
// algorithm.
func FBQS(t Trajectory, zeta float64) (Piecewise, error) {
	return bqs.SimplifyFast(t, zeta)
}

// Algorithms lists every registered algorithm (the paper's lineup).
func Algorithms() []Algorithm { return algo.All() }

// AlgorithmByName resolves an algorithm by case-insensitive name, e.g.
// "OPERB-A" or "fbqs".
func AlgorithmByName(name string) (Algorithm, error) { return algo.Get(name) }

// MaxError returns the largest deviation of any source point from the
// simplified representation, in meters.
func MaxError(t Trajectory, pw Piecewise) float64 { return metrics.MaxError(t, pw) }

// AvgError returns the paper's average error in meters.
func AvgError(t Trajectory, pw Piecewise) float64 { return metrics.AvgError(t, pw) }

// CompressionRatio returns segments/points; lower is better.
func CompressionRatio(t Trajectory, pw Piecewise) float64 { return metrics.Ratio(t, pw) }

// VerifyErrorBound checks that pw is error bounded by zeta for t.
func VerifyErrorBound(t Trajectory, pw Piecewise, zeta float64) error {
	return metrics.VerifyBound(t, pw, zeta)
}

// Summarize computes points, segments, ratio and errors for one run.
func Summarize(t Trajectory, pw Piecewise) Summary { return metrics.Summarize(t, pw) }

// NewCleaner returns a stream cleaner with the given reorder window.
func NewCleaner(window int) *Cleaner { return traj.NewCleaner(window) }

// NewProjection anchors a lon/lat → planar-meters projection at the given
// reference coordinate (degrees).
func NewProjection(refLon, refLat float64) *Projection {
	return geo.NewProjection(refLon, refLat)
}

// Workload presets for the synthetic GPS generators (surrogates for the
// paper's four datasets).
const (
	PresetTaxi    = gen.Taxi
	PresetTruck   = gen.Truck
	PresetSerCar  = gen.SerCar
	PresetGeoLife = gen.GeoLife
)

// Preset identifies a synthetic workload generator.
type Preset = gen.Preset

// GenerateTrajectory synthesizes one trajectory of the given preset.
func GenerateTrajectory(p Preset, points int, seed uint64) Trajectory {
	return gen.One(p, points, seed)
}

// GenerateDataset synthesizes a set of trajectories of the given preset.
func GenerateDataset(p Preset, trajectories, points int, seed uint64) []Trajectory {
	return gen.Spec{Preset: p, Trajectories: trajectories, Points: points, Seed: seed}.Generate()
}
