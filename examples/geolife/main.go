// GeoLife: end-to-end file workflow on the paper's fourth dataset format.
// Generates a GeoLife-profile track, writes it as a PLT file (the format
// the real dataset ships in), reads it back, compresses it at several
// error bounds, and stores the result in the compact binary wire format.
//
//	go run trajsim/examples/geolife
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"trajsim"
)

func main() {
	dir, err := os.MkdirTemp("", "geolife")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. A mixed walk/bike/drive track sampled every 1–5 s, placed in
	// Beijing like the original GeoLife collection.
	track := trajsim.GenerateTrajectory(trajsim.PresetGeoLife, 3000, 2011)
	pr := trajsim.NewProjection(116.3, 39.98)

	pltPath := filepath.Join(dir, "20110611.plt")
	f, err := os.Create(pltPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := trajsim.WritePLT(f, track, pr); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(pltPath)
	fmt.Printf("wrote %s: %d points, %d bytes\n", filepath.Base(pltPath), len(track), info.Size())

	// 2. Read it back the way a pipeline would ingest real GeoLife data.
	f, err = os.Open(pltPath)
	if err != nil {
		log.Fatal(err)
	}
	loaded, proj, err := trajsim.ReadPLT(f, nil)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d points (projection anchored at %.4f°E %.4f°N)\n\n",
		len(loaded), proj.RefLon, proj.RefLat)

	// 3. Compress at several error bounds; GeoLife's high sampling rate is
	// where one-pass simplification shines.
	fmt.Printf("%6s %10s %8s %12s %12s\n", "ζ (m)", "segments", "ratio", "avg err (m)", "wire bytes")
	for _, zeta := range []float64{5, 10, 20, 40} {
		pw, stats, err := trajsim.SimplifyAggressiveOpts(loaded, zeta, trajsim.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := trajsim.VerifyErrorBound(loaded, pw, zeta); err != nil {
			log.Fatal(err)
		}
		wire := trajsim.EncodePiecewise(nil, pw)
		fmt.Printf("%6g %10d %7.1f%% %12.2f %12d\n",
			zeta, len(pw), 100*trajsim.CompressionRatio(loaded, pw), trajsim.AvgError(loaded, pw), len(wire))
		_ = stats
	}

	// 4. Round-trip the binary wire format.
	pw, err := trajsim.SimplifyAggressive(loaded, 20)
	if err != nil {
		log.Fatal(err)
	}
	wire := trajsim.EncodePiecewise(nil, pw)
	back, err := trajsim.DecodePiecewise(wire)
	if err != nil {
		log.Fatal(err)
	}
	if len(back) != len(pw) {
		log.Fatalf("wire round trip lost segments: %d vs %d", len(back), len(pw))
	}
	rawBytes := len(loaded) * 24
	fmt.Printf("\nwire format: %d bytes vs %d raw (%.1f%%), %d segments intact\n",
		len(wire), rawBytes, 100*float64(len(wire))/float64(rawBytes), len(back))

	var buf bytes.Buffer
	if err := trajsim.WriteCSV(&buf, back.Decode(), trajsim.CSVOptions{Format: trajsim.CSVLonLat, Header: true, Projection: proj}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoded track as lon/lat CSV: %d bytes\n", buf.Len())
}
