// Fleet: compress a whole vehicle fleet concurrently and compare every
// registered algorithm on ratio, error and wall time — a miniature version
// of the paper's evaluation on your own workload.
//
//	go run trajsim/examples/fleet
package main

import (
	"fmt"
	"log"
	"time"

	"trajsim"
)

func main() {
	const (
		vehicles = 40
		points   = 2000
		zeta     = 40.0
	)
	fleet := trajsim.GenerateDataset(trajsim.PresetTruck, vehicles, points, 99)
	var total int
	for _, t := range fleet {
		total += len(t)
	}
	fmt.Printf("fleet: %d trucks, %d GPS fixes, ζ=%g m\n\n", vehicles, total, zeta)
	fmt.Printf("%-12s %10s %8s %10s %10s\n", "algorithm", "segments", "ratio", "avg err", "time")

	for _, a := range trajsim.Algorithms() {
		start := time.Now()
		pws, err := trajsim.CompressFleet(fleet, zeta, a.Name, 0)
		if err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
		elapsed := time.Since(start)

		var segs int
		var errSum float64
		for i := range fleet {
			segs += len(pws[i])
			errSum += trajsim.AvgError(fleet[i], pws[i]) * float64(len(fleet[i]))
		}
		fmt.Printf("%-12s %10d %7.1f%% %8.1f m %10s\n",
			a.Name, segs, 100*float64(segs)/float64(total), errSum/float64(total),
			elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nlower ratio = better compression; OPERB-A should lead, OPERB ≈ DP, all within ζ")
}
