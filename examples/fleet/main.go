// Fleet: compress a whole vehicle fleet concurrently and compare every
// registered algorithm on ratio, error and wall time — a miniature version
// of the paper's evaluation on your own workload. Then replay the same
// fleet as live device streams through the sharded session engine, the
// way a cloud ingestion tier would receive it — persisting every
// finalized segment to a crash-recoverable store and replaying one
// device from disk, the way a restarted server would.
//
//	go run trajsim/examples/fleet
package main

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"trajsim"
)

func main() {
	const (
		vehicles = 40
		points   = 2000
		zeta     = 40.0
	)
	fleet := trajsim.GenerateDataset(trajsim.PresetTruck, vehicles, points, 99)
	var total int
	for _, t := range fleet {
		total += len(t)
	}
	fmt.Printf("fleet: %d trucks, %d GPS fixes, ζ=%g m\n\n", vehicles, total, zeta)
	fmt.Printf("%-12s %10s %8s %10s %10s\n", "algorithm", "segments", "ratio", "avg err", "time")

	for _, a := range trajsim.Algorithms() {
		start := time.Now()
		pws, err := trajsim.CompressFleet(fleet, zeta, a.Name, 0)
		if err != nil {
			log.Fatalf("%s: %v", a.Name, err)
		}
		elapsed := time.Since(start)

		var segs int
		var errSum float64
		for i := range fleet {
			segs += len(pws[i])
			errSum += trajsim.AvgError(fleet[i], pws[i]) * float64(len(fleet[i]))
		}
		fmt.Printf("%-12s %10d %7.1f%% %8.1f m %10s\n",
			a.Name, segs, 100*float64(segs)/float64(total), errSum/float64(total),
			elapsed.Round(time.Millisecond))
	}

	fmt.Println("\nlower ratio = better compression; OPERB-A should lead, OPERB ≈ DP, all within ζ")

	// Part 2: the same fleet as live streams. Every truck keeps an open
	// session on the engine and uploads 64-point batches concurrently;
	// segments come back incrementally as each batch finalizes them.
	fmt.Println("\nlive ingestion through the sharded session engine:")
	dataDir, err := os.MkdirTemp("", "fleet-segstore-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dataDir)
	store, err := trajsim.OpenSegmentStore(trajsim.SegmentStoreConfig{
		Dir: dataDir,
		// Far fewer handles than trucks: the store transparently closes and
		// reopens cold device logs, so 40 concurrent writers cost 8 fds.
		MaxOpenFiles: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := trajsim.NewEngine(trajsim.EngineConfig{
		Zeta:       zeta,
		Aggressive: true,
		Shards:     16,
		Sink:       store, // every finalized segment also lands on disk…
		// …via the async sink pipeline: disk writes happen on these two
		// writer goroutines, outside the ingest critical section, ordered
		// per device. SinkBlock (the default) means a stalled disk slows
		// ingest rather than losing acknowledged segments.
		SinkWriters: 2,
		SinkFull:    trajsim.SinkBlock,
	})
	if err != nil {
		log.Fatal(err)
	}
	const batch = 64
	start := time.Now()
	var wg sync.WaitGroup
	for v, tr := range fleet {
		wg.Add(1)
		go func(v int, tr trajsim.Trajectory) {
			defer wg.Done()
			dev := fmt.Sprintf("truck-%02d", v)
			for off := 0; off < len(tr); off += batch {
				end := min(off+batch, len(tr))
				if _, err := eng.Ingest(dev, tr[off:end]); err != nil {
					log.Fatalf("%s: %v", dev, err)
				}
			}
		}(v, tr)
	}
	wg.Wait()
	mid := eng.Stats()
	tails := eng.Close()
	elapsed := time.Since(start)

	final := eng.Stats()
	var tailSegs int
	for _, segs := range tails {
		tailSegs += len(segs)
	}
	fmt.Printf("  %d concurrent sessions, %d points in %s (%.0f points/s)\n",
		mid.Opened, final.Points, elapsed.Round(time.Millisecond),
		float64(final.Points)/elapsed.Seconds())
	fmt.Printf("  %d segments emitted (%d at shutdown flush), ratio %.1f%%, %d contended ingests\n",
		final.Segments, tailSegs, 100*float64(final.Segments)/float64(final.Points),
		final.Contended)
	fmt.Printf("  sink queue: %d enqueues blocked, %d batches dropped (block policy ⇒ always 0)\n",
		final.SinkBlocked, final.SinkDropped)

	// Part 3: durability. The store now holds everything the engine
	// emitted; close it and reopen the directory cold — a restarted
	// server — and replay one truck's full stream from disk.
	sst := store.Stats()
	if err := store.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndurable segment store (%s):\n", dataDir)
	fmt.Printf("  %d segments in %d appends, %d bytes on disk (%.1f bytes/segment)\n",
		sst.Segments, sst.Appends, sst.Bytes, float64(sst.Bytes)/float64(sst.Segments))
	fmt.Printf("  handle LRU capped at 8 of %d devices: %d hits, %d misses, %d evictions\n",
		vehicles, sst.HandleHits, sst.HandleMisses, sst.HandleEvictions)

	reopened, err := trajsim.OpenSegmentStore(trajsim.SegmentStoreConfig{Dir: dataDir})
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	segs, err := reopened.Replay("truck-00")
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for _, p := range fleet[0] {
		best := 1e18
		for _, s := range segs {
			if d := s.LineDistance(p); d < best {
				best = d
			}
		}
		if best > maxErr {
			maxErr = best
		}
	}
	fmt.Printf("  truck-00 replayed after reopen: %d segments for %d fixes, max error %.2f m (ζ=%g)\n",
		len(segs), len(fleet[0]), maxErr, zeta)
}
