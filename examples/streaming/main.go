// Streaming: the paper's motivating deployment — a vehicle-to-cloud
// uplink. A device produces GPS fixes with duplicates and out-of-order
// points; a Cleaner repairs the stream and a one-pass OPERB-A encoder
// emits line segments as soon as they are final, with O(1) memory.
//
//	go run trajsim/examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"trajsim"
)

func main() {
	const zeta = 30.0
	track := trajsim.GenerateTrajectory(trajsim.PresetSerCar, 600, 7)

	// Corrupt the stream the way cellular uplinks do: duplicate some fixes,
	// swap some adjacent pairs.
	r := rand.New(rand.NewPCG(1, 2))
	raw := make([]trajsim.Point, 0, len(track)+30)
	for i, p := range track {
		raw = append(raw, p)
		if r.IntN(20) == 0 {
			raw = append(raw, p) // duplicate
		}
		if i > 0 && r.IntN(25) == 0 {
			raw[len(raw)-1], raw[len(raw)-2] = raw[len(raw)-2], raw[len(raw)-1]
		}
	}
	fmt.Printf("device emitted %d raw fixes (%d clean samples)\n", len(raw), len(track))

	cleaner := trajsim.NewCleaner(4)
	enc, err := trajsim.NewAggressiveEncoder(zeta, trajsim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	var transmitted []trajsim.Segment
	push := func(p trajsim.Point) {
		for _, seg := range enc.Push(p) {
			transmitted = append(transmitted, seg)
			if len(transmitted) <= 5 {
				fmt.Printf("  uplink segment %d: %d fixes collapsed into %v -> %v\n",
					len(transmitted), seg.PointCount(), seg.Start, seg.End)
			}
		}
	}
	for _, p := range raw {
		for _, q := range cleaner.Push(p) {
			push(q)
		}
	}
	for _, q := range cleaner.Flush() {
		push(q)
	}
	transmitted = append(transmitted, enc.Flush()...)

	dupes, reordered, dropped := cleaner.Stats()
	fmt.Printf("\ncleaner: %d duplicates removed, %d reordered, %d stale dropped\n", dupes, reordered, dropped)
	st := enc.Stats()
	fmt.Printf("encoder: %d points in, %d segments out, %d absorbed\n", st.PointsIn, st.SegmentsOut, st.Absorbed)
	ps := enc.PatchStats()
	fmt.Printf("patching: %d/%d anomalous segments eliminated\n", ps.Patched, ps.Anomalous)

	pw := trajsim.Piecewise(transmitted)
	if err := trajsim.VerifyErrorBound(track, pw, zeta); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuplink: %d segments for %d samples (ratio %.1f%%), every sample within ζ=%g m\n",
		len(pw), len(track), 100*float64(len(pw))/float64(len(track)), zeta)
}
