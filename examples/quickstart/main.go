// Quickstart: compress one synthetic taxi trajectory with OPERB and
// OPERB-A and compare them with Douglas-Peucker.
//
//	go run trajsim/examples/quickstart
package main

import (
	"fmt"
	"log"

	"trajsim"
)

func main() {
	// A taxi sampled once a minute for ~8 hours (the paper's Taxi profile).
	track := trajsim.GenerateTrajectory(trajsim.PresetTaxi, 500, 42)
	const zeta = 40.0 // meters, the paper's default error bound

	type result struct {
		name string
		fn   func(trajsim.Trajectory, float64) (trajsim.Piecewise, error)
	}
	for _, r := range []result{
		{"Douglas-Peucker", trajsim.DouglasPeucker},
		{"FBQS", trajsim.FBQS},
		{"OPERB", trajsim.Simplify},
		{"OPERB-A", trajsim.SimplifyAggressive},
	} {
		pw, err := r.fn(track, zeta)
		if err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		// Every algorithm here is error bounded: no point of the original
		// track is farther than ζ from the simplified polyline.
		if err := trajsim.VerifyErrorBound(track, pw, zeta); err != nil {
			log.Fatalf("%s: %v", r.name, err)
		}
		s := trajsim.Summarize(track, pw)
		fmt.Printf("%-16s %4d points -> %3d segments (ratio %5.1f%%, avg err %4.1f m, max err %4.1f m)\n",
			r.name, s.Points, s.Segments, s.Ratio*100, s.AvgError, s.MaxError)
	}

	// The simplified trajectory is just the segment endpoints:
	pw, err := trajsim.SimplifyAggressive(track, zeta)
	if err != nil {
		log.Fatal(err)
	}
	dec := pw.Decode()
	fmt.Printf("\nstored trajectory: %d points instead of %d\n", len(dec), len(track))
	fmt.Printf("first three: %v %v %v\n", dec[0], dec[1], dec[2])
}
