// Command trajstat prints descriptive statistics of a trajectory file:
// size, duration, sampling cadence, speeds and spatial extent. Useful for
// checking that a dataset matches a Table-1-style profile before running
// experiments on it.
//
// Usage:
//
//	trajstat -in taxi_0001.csv
//	trajstat -in track.plt -format plt
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"trajsim/internal/geo"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func main() {
	var (
		in     = flag.String("in", "", "input file (default stdin)")
		format = flag.String("format", "csv", "input format: csv (planar), lonlat, plt")
	)
	flag.Parse()
	if err := run(*in, *format); err != nil {
		fmt.Fprintln(os.Stderr, "trajstat:", err)
		os.Exit(1)
	}
}

func run(in, format string) error {
	src := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	var (
		t   traj.Trajectory
		err error
	)
	switch format {
	case "csv":
		t, _, err = trajio.ReadCSV(src, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	case "lonlat":
		t, _, err = trajio.ReadCSV(src, trajio.CSVOptions{Format: trajio.LonLat, Header: true})
	case "plt":
		t, _, err = trajio.ReadPLT(src, nil)
	default:
		return fmt.Errorf("unknown format %q (csv, lonlat, plt)", format)
	}
	if err != nil {
		return err
	}
	if len(t) == 0 {
		return fmt.Errorf("no points")
	}

	fmt.Printf("points:        %d\n", len(t))
	fmt.Printf("duration:      %.1f min\n", float64(t.Duration())/60000)
	fmt.Printf("path length:   %.1f km\n", t.PathLength()/1000)
	b := t.Bounds()
	fmt.Printf("extent:        %.1f × %.1f km\n", (b.MaxX-b.MinX)/1000, (b.MaxY-b.MinY)/1000)
	if err := t.Validate(); err != nil {
		fmt.Printf("validity:      BROKEN (%v)\n", err)
	} else {
		fmt.Printf("validity:      ok (strictly increasing timestamps)\n")
	}
	if len(t) < 2 {
		return nil
	}

	intervals := make([]float64, 0, len(t)-1)
	speeds := make([]float64, 0, len(t)-1)
	for i := 1; i < len(t); i++ {
		dt := float64(t[i].T-t[i-1].T) / 1000
		if dt <= 0 {
			continue
		}
		intervals = append(intervals, dt)
		speeds = append(speeds, t[i].Dist(t[i-1])/dt)
	}
	fmt.Printf("sampling:      median %.1f s (p10 %.1f, p90 %.1f)\n",
		percentile(intervals, 0.5), percentile(intervals, 0.1), percentile(intervals, 0.9))
	fmt.Printf("speed:         median %.1f m/s, max %.1f m/s\n",
		percentile(speeds, 0.5), percentile(speeds, 1.0))

	// Heading-change profile: how twisty the track is (drives how well LS
	// algorithms can compress it).
	var turny int
	for i := 2; i < len(t); i++ {
		a1 := geo.SegmentAngle(t[i-2].P(), t[i-1].P())
		a2 := geo.SegmentAngle(t[i-1].P(), t[i].P())
		if geo.AngleDiff(a1, a2) > math.Pi/6 {
			turny++
		}
	}
	fmt.Printf("turns >30°:    %.1f%% of samples\n", 100*float64(turny)/float64(len(t)))
	return nil
}

func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}
