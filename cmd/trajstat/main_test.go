package main

import (
	"os"
	"path/filepath"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/geo"
	"trajsim/internal/trajio"
)

func TestRunOnCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Truck, 200, 9)
	if err := trajio.WriteCSV(f, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, "csv"); err != nil {
		t.Fatal(err)
	}
}

func TestRunOnPLT(t *testing.T) {
	path := filepath.Join(t.TempDir(), "in.plt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.GeoLife, 100, 9)
	if err := trajio.WritePLT(f, tr, geo.NewProjection(116.3, 39.98)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(path, "plt"); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.csv", "csv"); err == nil {
		t.Error("missing file should fail")
	}
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, []byte("t_ms,x_m,y_m\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "csv"); err == nil {
		t.Error("empty trajectory should fail")
	}
	if err := run(path, "weird"); err == nil {
		t.Error("unknown format should fail")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if p := percentile(xs, 0.5); p != 3 {
		t.Errorf("median = %v", p)
	}
	if p := percentile(xs, 0); p != 1 {
		t.Errorf("min = %v", p)
	}
	if p := percentile(xs, 1); p != 5 {
		t.Errorf("max = %v", p)
	}
	if p := percentile(nil, 0.5); p != 0 {
		t.Errorf("empty = %v", p)
	}
}
