// Command trajlint runs the repo's custom static-analysis suite: the
// five analyzers in internal/analysis that mechanically enforce the
// concurrency, fault-injection and clock invariants the storage and
// stream tiers rely on.
//
// Usage:
//
//	go run ./cmd/trajlint ./...
//	go run ./cmd/trajlint -suppressed ./internal/segstore
//
// Exit status is non-zero when any unsuppressed finding (or a
// malformed/unused //trajlint:ignore) is reported. Suppressed
// findings are hidden unless -suppressed is set.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"trajsim/internal/analysis"
)

func main() {
	showSuppressed := flag.Bool("suppressed", false, "also print findings suppressed by //trajlint:ignore")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: trajlint [flags] packages...\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(os.Stderr, "  %-11s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(os.Stderr, "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	pkgs, err := analysis.Load(analysis.LoadConfig{}, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajlint:", err)
		os.Exit(2)
	}
	findings := analysis.Run(pkgs, analysis.All())
	bad := 0
	for _, f := range findings {
		if f.Suppressed {
			if *showSuppressed {
				fmt.Println(f)
			}
			continue
		}
		bad++
		fmt.Println(f)
	}
	if bad > 0 {
		plural := "s"
		if bad == 1 {
			plural = ""
		}
		fmt.Fprintf(os.Stderr, "trajlint: %d finding%s in %s\n", bad, plural, strings.Join(flag.Args(), " "))
		os.Exit(1)
	}
}
