// Command trajgen synthesizes GPS trajectory datasets matching the paper's
// four workload profiles (Taxi, Truck, SerCar, GeoLife) and writes them as
// CSV or GeoLife PLT files.
//
// Usage:
//
//	trajgen -preset taxi -n 10 -points 5000 -seed 1 -out ./data
//	trajgen -preset geolife -points 2000 -format plt -out ./data
//	trajgen -preset sercar -points 500            # single trajectory to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"trajsim/internal/gen"
	"trajsim/internal/geo"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func main() {
	var (
		preset = flag.String("preset", "taxi", "workload preset: taxi, truck, sercar, geolife")
		n      = flag.Int("n", 1, "number of trajectories")
		points = flag.Int("points", 1000, "points per trajectory")
		seed   = flag.Uint64("seed", 1, "generator seed")
		format = flag.String("format", "csv", "output format: csv (planar), lonlat, plt")
		outDir = flag.String("out", "", "output directory (default: single trajectory to stdout)")
		refLon = flag.Float64("reflon", 116.4, "projection reference longitude (lonlat/plt)")
		refLat = flag.Float64("reflat", 39.9, "projection reference latitude (lonlat/plt)")
	)
	flag.Parse()
	if err := run(*preset, *n, *points, *seed, *format, *outDir, *refLon, *refLat); err != nil {
		fmt.Fprintln(os.Stderr, "trajgen:", err)
		os.Exit(1)
	}
}

func run(preset string, n, points int, seed uint64, format, outDir string, refLon, refLat float64) error {
	p, err := gen.ParsePreset(preset)
	if err != nil {
		return err
	}
	if n < 1 || points < 1 {
		return fmt.Errorf("need n ≥ 1 and points ≥ 1 (got %d, %d)", n, points)
	}
	pr := geo.NewProjection(refLon, refLat)
	write := func(w *os.File, t traj.Trajectory) error {
		switch format {
		case "csv":
			return trajio.WriteCSV(w, t, trajio.CSVOptions{Format: trajio.Planar, Header: true})
		case "lonlat":
			return trajio.WriteCSV(w, t, trajio.CSVOptions{Format: trajio.LonLat, Header: true, Projection: pr})
		case "plt":
			return trajio.WritePLT(w, t, pr)
		}
		return fmt.Errorf("unknown format %q (csv, lonlat, plt)", format)
	}

	if outDir == "" {
		if n != 1 {
			return fmt.Errorf("writing %d trajectories needs -out DIR", n)
		}
		return write(os.Stdout, gen.One(p, points, seed))
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ext := format
	if format == "lonlat" {
		ext = "csv"
	}
	ds := gen.Spec{Preset: p, Trajectories: n, Points: points, Seed: seed}.Generate()
	for i, t := range ds {
		name := filepath.Join(outDir, fmt.Sprintf("%s_%04d.%s", preset, i, ext))
		f, err := os.Create(name)
		if err != nil {
			return err
		}
		if err := write(f, t); err != nil {
			f.Close()
			return fmt.Errorf("%s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d %s trajectories (%d points each) to %s\n", n, preset, points, outDir)
	return nil
}
