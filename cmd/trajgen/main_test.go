package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesDataset(t *testing.T) {
	dir := t.TempDir()
	if err := run("sercar", 3, 50, 1, "csv", dir, 116.4, 39.9); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "sercar_*.csv"))
	if err != nil || len(files) != 3 {
		t.Fatalf("files: %v err: %v", files, err)
	}
	b, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) != 51 { // header + 50 points
		t.Errorf("%d lines, want 51", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_ms,") {
		t.Errorf("missing header: %q", lines[0])
	}
}

func TestRunPLTFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run("geolife", 1, 20, 2, "plt", dir, 116.3, 39.98); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "geolife_*.plt"))
	if len(files) != 1 {
		t.Fatalf("files: %v", files)
	}
	b, _ := os.ReadFile(files[0])
	if !strings.HasPrefix(string(b), "Geolife trajectory") {
		t.Error("missing PLT header")
	}
}

func TestRunLonLatFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run("taxi", 1, 10, 3, "lonlat", dir, 116.4, 39.9); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "taxi_*.csv"))
	if len(files) != 1 {
		t.Fatalf("files: %v", files)
	}
	b, _ := os.ReadFile(files[0])
	if !strings.Contains(string(b), "116.") {
		t.Error("lonlat output lacks longitudes")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus", 1, 10, 1, "csv", t.TempDir(), 0, 0); err == nil {
		t.Error("bogus preset should fail")
	}
	if err := run("taxi", 0, 10, 1, "csv", t.TempDir(), 0, 0); err == nil {
		t.Error("n=0 should fail")
	}
	if err := run("taxi", 2, 10, 1, "csv", "", 0, 0); err == nil {
		t.Error("multiple trajectories to stdout should fail")
	}
	if err := run("taxi", 1, 10, 1, "weird", t.TempDir(), 0, 0); err == nil {
		t.Error("unknown format should fail")
	}
}
