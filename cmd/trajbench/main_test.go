package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	out := filepath.Join(t.TempDir(), "r.txt")
	if err := run("quick", "table1", out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Table 1") {
		t.Errorf("output lacks Table 1: %s", b)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	out := filepath.Join(t.TempDir(), "all.txt")
	if err := run("quick", "all", out); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 12", "Figure 15", "Figure 19(2)"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("output lacks %s", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("bogus-scale", "all", ""); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run("quick", "9.9", filepath.Join(t.TempDir(), "x.txt")); err == nil {
		t.Error("unknown experiment should fail")
	}
}
