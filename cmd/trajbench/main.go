// Command trajbench regenerates the paper's evaluation: Table 1 and
// Figures 12–19 as text tables, on synthetic surrogate datasets.
//
// Usage:
//
//	trajbench                      # every experiment at small scale
//	trajbench -scale quick         # fast smoke run
//	trajbench -exp 2.1             # one experiment (Figure 15)
//	trajbench -scale full -o results.txt
//
// Experiment IDs: table1, 1.1, 1.2, 1.3, 2.1, 2.2, 2.3, 3, 4.1, 4.2
// (matching the paper's Exp numbering; see DESIGN.md for the mapping).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"trajsim/internal/bench"
)

func main() {
	var (
		scale = flag.String("scale", "small", "experiment scale: quick, small, full")
		exp   = flag.String("exp", "all", "experiment ID or 'all'")
		out   = flag.String("o", "", "write tables to this file (default stdout)")
	)
	flag.Parse()
	if err := run(*scale, *exp, *out); err != nil {
		fmt.Fprintln(os.Stderr, "trajbench:", err)
		os.Exit(1)
	}
}

func run(scaleName, exp, out string) error {
	s, err := bench.ScaleByName(scaleName)
	if err != nil {
		return err
	}
	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	fmt.Fprintf(os.Stderr, "generating %s-scale datasets...\n", s.Name)
	start := time.Now()
	env := bench.NewEnv(s)
	fmt.Fprintf(os.Stderr, "datasets ready in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Fprintf(w, "OPERB/OPERB-A reproduction — scale %q — %s\n\n", s.Name, time.Now().Format(time.RFC3339))
	if exp == "all" {
		err = env.RunAll(w)
	} else {
		var t bench.Table
		if t, err = env.Run(exp); err == nil {
			err = t.Format(w)
		}
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
