package main

import (
	"os"
	"path/filepath"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/trajio"
)

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr := gen.One(gen.SerCar, 300, 7)
	if err := trajio.WriteCSV(f, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllAlgorithms(t *testing.T) {
	in := writeSample(t)
	for _, algoName := range []string{"DP", "FBQS", "OPERB", "OPERB-A", "BottomUp"} {
		if err := run(algoName, 30, in, "csv", "", "", true, 0, 60, false); err != nil {
			t.Errorf("%s: %v", algoName, err)
		}
	}
}

func TestRunWithHistogram(t *testing.T) {
	in := writeSample(t)
	if err := run("OPERB", 30, in, "csv", "", "", true, 0, 60, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesOutputs(t *testing.T) {
	in := writeSample(t)
	dir := t.TempDir()
	outCSV := filepath.Join(dir, "out.csv")
	outBin := filepath.Join(dir, "out.bin")
	if err := run("OPERB-A", 30, in, "csv", outCSV, outBin, true, 0, 60, false); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{outCSV, outBin} {
		st, err := os.Stat(p)
		if err != nil || st.Size() == 0 {
			t.Errorf("%s: %v size=%v", p, err, st)
		}
	}
	// The binary output decodes.
	b, err := os.ReadFile(outBin)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := trajio.DecodePiecewise(b)
	if err != nil || len(pw) == 0 {
		t.Errorf("binary decode: %d segments, %v", len(pw), err)
	}
}

func TestRunCleansDirtyStream(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dirty.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.One(gen.Taxi, 50, 3)
	// Duplicate a point and swap a pair to simulate uplink corruption.
	dirty := append(tr[:10:10], tr[9])
	dirty = append(dirty, tr[11], tr[10])
	dirty = append(dirty, tr[12:]...)
	if err := trajio.WriteCSV(f, dirty, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run("OPERB", 40, path, "csv", "", "", true, 0, 60, false); err == nil {
		t.Error("dirty stream without -clean should fail validation")
	}
	if err := run("OPERB", 40, path, "csv", "", "", true, 4, 60, false); err != nil {
		t.Errorf("with -clean 4: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	in := writeSample(t)
	if err := run("bogus", 30, in, "csv", "", "", true, 0, 60, false); err == nil {
		t.Error("unknown algorithm should fail")
	}
	if err := run("OPERB", 30, in, "weird", "", "", true, 0, 60, false); err == nil {
		t.Error("unknown format should fail")
	}
	if err := run("OPERB", 30, "/nonexistent/file.csv", "csv", "", "", true, 0, 60, false); err == nil {
		t.Error("missing input should fail")
	}
	if err := run("OPERB", -1, in, "csv", "", "", true, 0, 60, false); err == nil {
		t.Error("invalid ζ should fail")
	}
}
