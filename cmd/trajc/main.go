// Command trajc compresses a trajectory file with any of the registered
// line-simplification algorithms and reports quality metrics.
//
// Usage:
//
//	trajc -algo OPERB-A -zeta 40 -in taxi_0001.csv
//	trajc -algo DP -zeta 20 -in track.plt -format plt -out simplified.csv
//	trajc -algo OPERB -zeta 40 -in fleet.csv -binary out.bin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trajsim/internal/algo"
	"trajsim/internal/core"
	"trajsim/internal/geo"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func main() {
	var (
		algoName = flag.String("algo", "OPERB", "algorithm name (see -list)")
		list     = flag.Bool("list", false, "list algorithms and exit")
		zeta     = flag.Float64("zeta", 40, "error bound ζ in meters")
		in       = flag.String("in", "", "input file (default stdin)")
		format   = flag.String("format", "csv", "input format: csv (planar), lonlat, plt")
		out      = flag.String("out", "", "write simplified points as CSV to this file")
		binOut   = flag.String("binary", "", "write compact binary piecewise encoding to this file")
		verify   = flag.Bool("verify", true, "verify the ζ bound on the output")
		clean    = flag.Int("clean", 0, "reorder-window size for stream cleaning (0 = off)")
		gamma    = flag.Float64("gamma", 60, "OPERB-A γm in degrees")
		hist     = flag.Bool("hist", false, "print the per-point deviation histogram")
	)
	flag.Parse()
	if *list {
		for _, a := range algo.All() {
			kind := "online"
			if a.Batch {
				kind = "batch"
			}
			if a.OnePass {
				kind = "one-pass"
			}
			fmt.Printf("%-12s %s\n", a.Name, kind)
		}
		return
	}
	if err := run(*algoName, *zeta, *in, *format, *out, *binOut, *verify, *clean, *gamma, *hist); err != nil {
		fmt.Fprintln(os.Stderr, "trajc:", err)
		os.Exit(1)
	}
}

func run(algoName string, zeta float64, in, format, out, binOut string, verify bool, clean int, gammaDeg float64, hist bool) error {
	a, err := algo.Get(algoName)
	if err != nil {
		return err
	}
	src := io.Reader(os.Stdin)
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	t, pr, err := read(src, format)
	if err != nil {
		return err
	}
	if clean > 0 {
		t = traj.Clean(t, clean)
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("%w (use -clean N to repair raw streams)", err)
	}

	var pw traj.Piecewise
	var patch *core.PatchStats
	if a.Name == "OPERB-A" {
		opts := core.DefaultOptions()
		opts.Gamma = geo.Radians(gammaDeg)
		res, st, err := core.SimplifyAggressiveOpts(t, zeta, opts)
		if err != nil {
			return err
		}
		pw, patch = res, &st
	} else {
		pw, err = a.Fn(t, zeta)
		if err != nil {
			return err
		}
	}

	s := metrics.Summarize(t, pw)
	fmt.Printf("algorithm:    %s (ζ=%g m)\n", a.Name, zeta)
	fmt.Printf("points:       %d\n", s.Points)
	fmt.Printf("segments:     %d\n", s.Segments)
	fmt.Printf("ratio:        %.2f%%\n", s.Ratio*100)
	fmt.Printf("avg error:    %.2f m\n", s.AvgError)
	fmt.Printf("max error:    %.2f m\n", s.MaxError)
	if patch != nil {
		fmt.Printf("patching:     %d/%d anomalous segments patched (%.1f%%)\n",
			patch.Patched, patch.Anomalous, patch.Ratio()*100)
	}
	if verify && !a.SED {
		if err := metrics.VerifyBound(t, pw, zeta); err != nil {
			return err
		}
		fmt.Printf("bound check:  ok (every point within ζ)\n")
	}
	if hist {
		d := metrics.NewErrorDistribution(t, pw, zeta)
		fmt.Printf("deviation:    %s\n%s", d, d.Histogram())
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		opts := trajio.CSVOptions{Format: trajio.Planar, Header: true}
		if pr != nil {
			opts = trajio.CSVOptions{Format: trajio.LonLat, Header: true, Projection: pr}
		}
		if err := trajio.WriteCSV(f, pw.Decode(), opts); err != nil {
			return err
		}
	}
	if binOut != "" {
		f, err := os.Create(binOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trajio.WritePiecewise(f, pw); err != nil {
			return err
		}
	}
	return nil
}

func read(r io.Reader, format string) (traj.Trajectory, *geo.Projection, error) {
	switch format {
	case "csv":
		return trajio.ReadCSV(r, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	case "lonlat":
		return trajio.ReadCSV(r, trajio.CSVOptions{Format: trajio.LonLat, Header: true})
	case "plt":
		return trajio.ReadPLT(r, nil)
	}
	return nil, nil, fmt.Errorf("unknown format %q (csv, lonlat, plt)", format)
}
