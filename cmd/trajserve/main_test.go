package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/segstore"
	"trajsim/internal/stream"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func sampleCSV(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := gen.One(gen.SerCar, n, 5)
	if err := trajio.WriteCSV(&buf, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// testServer starts the full service around a fresh streaming engine,
// with no persistence.
func testServer(t *testing.T, maxBody int64) *httptest.Server {
	t.Helper()
	eng, err := stream.NewEngine(stream.Config{Zeta: 40, Aggressive: true, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(newHandler(eng, nil, nil, maxBody))
	t.Cleanup(srv.Close)
	return srv
}

// persistentServer starts the service with a segment store under dir —
// the -data-dir configuration. The returned shutdown func mimics the
// SIGTERM path: drain the server, flush the engine into the store, close
// the store.
func persistentServer(t *testing.T, dir string) (*httptest.Server, func()) {
	t.Helper()
	return persistentServerCfg(t, segstore.Config{Dir: dir, Sync: segstore.SyncAlways})
}

// persistentServerCfg is persistentServer with full control of the
// storage knobs — the -max-open-files/-retention-* configurations.
func persistentServerCfg(t *testing.T, cfg segstore.Config) (*httptest.Server, func()) {
	t.Helper()
	store, err := segstore.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tails := newTailHub(0)
	eng, err := stream.NewEngine(stream.Config{
		Zeta: 40, Aggressive: true, Shards: 4, Sink: store, OnSink: tails.publish,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, store, tails, testMaxBody))
	var once sync.Once
	shutdown := func() {
		once.Do(func() {
			srv.Close()
			eng.Close()
			if err := store.Close(); err != nil {
				t.Error(err)
			}
		})
	}
	t.Cleanup(shutdown)
	return srv, shutdown
}

const testMaxBody = 64 << 20

func TestHealthz(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAlgorithms(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Get(srv.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"OPERB", "OPERB-A", "FBQS", "DP"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("missing %s in %s", want, b)
		}
	}
}

func TestCompressCSV(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Post(srv.URL+"/compress?algo=OPERB-A&zeta=30", "text/csv", sampleCSV(t, 400))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	points, _ := strconv.Atoi(resp.Header.Get("X-Points"))
	segments, _ := strconv.Atoi(resp.Header.Get("X-Segments"))
	if points != 400 || segments <= 0 || segments >= points {
		t.Fatalf("X-Points=%d X-Segments=%d", points, segments)
	}
	maxErr, _ := strconv.ParseFloat(resp.Header.Get("X-Max-Error"), 64)
	if maxErr > 30*1.000001 {
		t.Errorf("X-Max-Error=%v exceeds ζ", maxErr)
	}
	// The body is a decodable simplified CSV with segments+1 points.
	out, _, err := trajio.ReadCSV(resp.Body, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != segments+1 {
		t.Errorf("body has %d points, want %d", len(out), segments+1)
	}
}

func TestCompressBinary(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Post(srv.URL+"/compress?algo=FBQS&zeta=25&out=binary", "text/csv", sampleCSV(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := trajio.DecodePiecewise(b)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := strconv.Atoi(resp.Header.Get("X-Segments")); len(pw) != want {
		t.Errorf("decoded %d segments, header says %s", len(pw), resp.Header.Get("X-Segments"))
	}
}

func TestCompressDirtyStreamNeedsClean(t *testing.T) {
	srv := testServer(t, testMaxBody)
	// A stream with a duplicated timestamp fails validation without clean=.
	dirty := "t_ms,x_m,y_m\n0,0,0\n1000,5,0\n1000,5,0\n2000,10,0\n"
	resp, err := http.Post(srv.URL+"/compress", "text/csv", strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("dirty upload: status %d, want 422", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/compress?clean=4", "text/csv", strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("cleaned upload: status %d: %s", resp.StatusCode, b)
	}
}

func TestCompressErrors(t *testing.T) {
	srv := testServer(t, testMaxBody)
	cases := []struct {
		url  string
		body string
		want int
	}{
		{"/compress?algo=bogus", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?zeta=abc", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?zeta=-5", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?clean=-1", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?out=weird", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress", "not,a,trajectory\nx,y,z\n", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.url, "text/csv", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
	// GET on /compress is rejected by the method-scoped route.
	resp, err := http.Get(srv.URL + "/compress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /compress should not succeed")
	}
}

// End-to-end: the round trip through the service preserves the error
// bound against the original upload.
func TestEndToEndBound(t *testing.T) {
	srv := testServer(t, testMaxBody)
	tr := gen.One(gen.Taxi, 300, 11)
	var buf bytes.Buffer
	if err := trajio.WriteCSV(&buf, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress?algo=OPERB&zeta=40&out=binary", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	pw, err := trajio.DecodePiecewise(b)
	if err != nil {
		t.Fatal(err)
	}
	// Binary quantizes to 1 cm; allow that on top of ζ.
	if err := metrics.VerifyBound(tr, pw, 40.03); err != nil {
		t.Error(err)
	}
}

// deviceCSV renders per-device batches in /ingest CSV form.
func deviceCSV(devs map[string][]traj.Point) string {
	var sb strings.Builder
	sb.WriteString("device,t_ms,x_m,y_m\n")
	for dev, pts := range devs {
		for _, p := range pts {
			fmt.Fprintf(&sb, "%s,%d,%f,%f\n", dev, p.T, p.X, p.Y)
		}
	}
	return sb.String()
}

func TestIngestCSVAndStats(t *testing.T) {
	srv := testServer(t, testMaxBody)
	tra := gen.One(gen.Taxi, 300, 21)
	trb := gen.One(gen.Truck, 300, 22)

	// Two batches per device, then flush each and check the reassembled
	// piecewise output against ζ.
	var segs = map[string][]traj.Segment{}
	for _, half := range []int{0, 150} {
		body := deviceCSV(map[string][]traj.Point{
			"taxi-a":  tra[half : half+150],
			"truck-b": trb[half : half+150],
		})
		resp, err := http.Post(srv.URL+"/ingest?out=segments", "text/csv", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			t.Fatalf("ingest: status %d: %s", resp.StatusCode, b)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var rec struct {
				Device string  `json:"device"`
				T1     int64   `json:"t1_ms"`
				X1     float64 `json:"x1_m"`
				Y1     float64 `json:"y1_m"`
				T2     int64   `json:"t2_ms"`
				X2     float64 `json:"x2_m"`
				Y2     float64 `json:"y2_m"`
			}
			if err := dec.Decode(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			segs[rec.Device] = append(segs[rec.Device], traj.Segment{
				Start: traj.At(rec.X1, rec.Y1, rec.T1),
				End:   traj.At(rec.X2, rec.Y2, rec.T2),
			})
		}
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st stream.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Sessions != 2 || st.Points != 600 {
		t.Fatalf("stats after ingest: %+v", st)
	}

	for dev, tr := range map[string]traj.Trajectory{"taxi-a": tra, "truck-b": trb} {
		resp, err := http.Post(srv.URL+"/flush?device="+dev+"&out=segments", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flush %s: status %d", dev, resp.StatusCode)
		}
		dec := json.NewDecoder(resp.Body)
		for {
			var rec struct {
				T1 int64   `json:"t1_ms"`
				X1 float64 `json:"x1_m"`
				Y1 float64 `json:"y1_m"`
				T2 int64   `json:"t2_ms"`
				X2 float64 `json:"x2_m"`
				Y2 float64 `json:"y2_m"`
			}
			if err := dec.Decode(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			segs[dev] = append(segs[dev], traj.Segment{
				Start: traj.At(rec.X1, rec.Y1, rec.T1),
				End:   traj.At(rec.X2, rec.Y2, rec.T2),
			})
		}
		resp.Body.Close()
		// Segment indices are not carried over the wire, so check the
		// spatial bound directly: every source point within ζ of some
		// segment's line — the paper's error measure, which its covering
		// segment is guaranteed to satisfy.
		for _, p := range tr {
			best := 1e18
			for _, s := range segs[dev] {
				if d := s.LineDistance(p); d < best {
					best = d
				}
			}
			if best > 40*1.000001 {
				t.Fatalf("%s: point %v is %.2f m from the output, ζ=40", dev, p, best)
				break
			}
		}
	}

	// Duplicate flush → 404.
	resp, err = http.Post(srv.URL+"/flush?device=taxi-a", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("duplicate flush: status %d, want 404", resp.StatusCode)
	}
}

func TestIngestNDJSON(t *testing.T) {
	srv := testServer(t, testMaxBody)
	var sb strings.Builder
	for i, p := range gen.One(gen.SerCar, 200, 23) {
		fmt.Fprintf(&sb, `{"device":"car-%d","t_ms":%d,"x_m":%f,"y_m":%f}`+"\n", i%4, p.T, p.X, p.Y)
	}
	resp, err := http.Post(srv.URL+"/ingest", "application/x-ndjson", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var sum struct{ Devices, Points, Segments int }
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 4 || sum.Points != 200 {
		t.Fatalf("summary: %+v", sum)
	}
	// Flush everything at once.
	resp2, err := http.Post(srv.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var fsum struct{ Devices, Segments int }
	if err := json.NewDecoder(resp2.Body).Decode(&fsum); err != nil {
		t.Fatal(err)
	}
	if fsum.Devices != 4 {
		t.Fatalf("flush-all summary: %+v", fsum)
	}
}

func TestIngestErrors(t *testing.T) {
	srv := testServer(t, testMaxBody)
	cases := []struct {
		name, ct, body string
		want           int
	}{
		{"missing header", "text/csv", "t_ms,x_m,y_m\n0,0,0\n", http.StatusBadRequest},
		{"empty device field", "text/csv", "device,t_ms,x_m,y_m\n,0,1.0,2.0\n", http.StatusBadRequest},
		{"empty json device", "application/json", `{"device":"","t_ms":0,"x_m":1,"y_m":2}` + "\n", http.StatusBadRequest},
		{"bad number", "text/csv", "device,t_ms,x_m,y_m\nd1,zero,0,0\n", http.StatusBadRequest},
		{"missing device", "application/json", `{"t_ms":0,"x_m":1,"y_m":2}` + "\n", http.StatusBadRequest},
		{"bad json", "application/json", `{"device":`, http.StatusBadRequest},
		{"unordered points", "text/csv", "device,t_ms,x_m,y_m\nd9,1000,0,0\nd9,500,1,1\n", http.StatusUnprocessableEntity},
		{"header only", "text/csv", "device,t_ms,x_m,y_m\n", http.StatusOK},
		{"empty ndjson", "application/json", "", http.StatusOK},
		{"swapped header", "text/csv", "device,x_m,y_m,t_ms\nd1,5,0,1000\n", http.StatusBadRequest},
		{"misnamed json keys", "application/json", `{"device":"d1","t":100,"x":1.5,"y":2.5}` + "\n", http.StatusBadRequest},
		{"missing json coords", "application/json", `{"device":"d1","t_ms":100}` + "\n", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+"/ingest", c.ct, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// TestIngestPartialFailure: bulk semantics — a device with a bad batch is
// reported in "failed" while the other devices' points commit, so a
// client can drop the bad device and not lose the rest.
func TestIngestPartialFailure(t *testing.T) {
	srv := testServer(t, testMaxBody)
	body := "device,t_ms,x_m,y_m\n" +
		"good,0,0,0\ngood,1000,5,5\n" +
		"bad,1000,0,0\nbad,500,1,1\n" // unordered
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch: status %d, want 200", resp.StatusCode)
	}
	var sum struct {
		Devices, Points int
		Failed          map[string]string
	}
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 1 || sum.Points != 2 {
		t.Errorf("summary: %+v", sum)
	}
	if _, ok := sum.Failed["bad"]; !ok || len(sum.Failed) != 1 {
		t.Errorf("failed map: %+v, want only \"bad\"", sum.Failed)
	}
	// The good device's session is live; the bad device opened none.
	resp2, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var st stream.Stats
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Sessions != 1 || st.Points != 2 {
		t.Errorf("stats: %+v, want 1 session with 2 points", st)
	}
}

// TestBodyCap: uploads beyond -max-body get 413 on both POST endpoints.
func TestBodyCap(t *testing.T) {
	srv := testServer(t, 512)
	big := sampleCSV(t, 2000) // far beyond 512 bytes
	resp, err := http.Post(srv.URL+"/compress", "text/csv", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("compress: status %d, want 413", resp.StatusCode)
	}

	var sb strings.Builder
	sb.WriteString("device,t_ms,x_m,y_m\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "d1,%d,%d,%d\n", i*1000, i, i)
	}
	resp, err = http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("ingest: status %d, want 413", resp.StatusCode)
	}
	// Under the cap still works.
	small := "device,t_ms,x_m,y_m\nd1,0,0,0\nd1,1000,5,5\n"
	resp, err = http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("small ingest: status %d, want 200", resp.StatusCode)
	}

	// Binary bodies stream through the chunked decoder; the cap must
	// still surface as 413, not as a 400 decode failure.
	bin := trajio.AppendIngestHeader(nil)
	bin = trajio.AppendIngestBatch(bin, "d1", gen.One(gen.Taxi, 400, 53)) // ≫ 512 bytes
	resp, err = http.Post(srv.URL+"/ingest", trajio.IngestContentType, bytes.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("binary ingest over cap: status %d, want 413", resp.StatusCode)
	}
}

// binaryIngestBody renders device batches in the binary wire format.
func binaryIngestBody(devs []string, batches []traj.Trajectory) *bytes.Reader {
	b := trajio.AppendIngestHeader(nil)
	for i, dev := range devs {
		b = trajio.AppendIngestBatch(b, dev, batches[i])
	}
	return bytes.NewReader(b)
}

func TestIngestBinary(t *testing.T) {
	srv := testServer(t, testMaxBody)
	tra := gen.One(gen.Taxi, 300, 51)
	trb := gen.One(gen.Truck, 200, 52)
	// Summary mode: counts only, on throwaway devices.
	body := binaryIngestBody([]string{"sum-a", "sum-b"}, []traj.Trajectory{tra[:50], trb[:50]})
	resp, err := http.Post(srv.URL+"/ingest", trajio.IngestContentType, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var sum struct{ Devices, Points, Segments int }
	if err := json.NewDecoder(resp.Body).Decode(&sum); err != nil {
		t.Fatal(err)
	}
	if sum.Devices != 2 || sum.Points != 100 {
		t.Fatalf("summary: %+v", sum)
	}

	// The bound-checked devices upload everything with out=segments, so
	// every finalized segment is captured.
	segs := map[string][]traj.Segment{}
	collect := func(r io.Reader) {
		t.Helper()
		dec := json.NewDecoder(r)
		for {
			var rec segmentRecord
			if err := dec.Decode(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatal(err)
			}
			segs[rec.Device] = append(segs[rec.Device], traj.Segment{
				Start: traj.At(rec.X1, rec.Y1, rec.T1),
				End:   traj.At(rec.X2, rec.Y2, rec.T2),
			})
		}
	}
	body = binaryIngestBody([]string{"bin-a", "bin-b"}, []traj.Trajectory{tra, trb})
	resp2, err := http.Post(srv.URL+"/ingest?out=segments", trajio.IngestContentType, body)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: status %d", resp2.StatusCode)
	}
	collect(resp2.Body)
	resp2.Body.Close()

	// The flushed output still honors ζ against the (quantized) upload.
	for dev, tr := range map[string]traj.Trajectory{"bin-a": tra, "bin-b": trb} {
		resp, err := http.Post(srv.URL+"/flush?device="+dev+"&out=segments", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		collect(resp.Body)
		resp.Body.Close()
		for _, p := range tr {
			best := 1e18
			for _, s := range segs[dev] {
				if d := s.LineDistance(p); d < best {
					best = d
				}
			}
			if best > 40.02 { // ζ plus 1 cm ingest quantization
				t.Fatalf("%s: point %v is %.2f m out", dev, p, best)
			}
		}
	}
}

func TestIngestBinaryMalformed(t *testing.T) {
	srv := testServer(t, testMaxBody)
	valid := trajio.AppendIngestBatch(trajio.AppendIngestHeader(nil), "d1", gen.One(gen.Taxi, 20, 53))
	for name, body := range map[string][]byte{
		"garbage": []byte("not binary at all"),
		"torn":    valid[:len(valid)-2],
	} {
		resp, err := http.Post(srv.URL+"/ingest", trajio.IngestContentType, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// An empty binary stream (header only) is a no-op like empty CSV.
	resp, err := http.Post(srv.URL+"/ingest", trajio.IngestContentType,
		bytes.NewReader(trajio.AppendIngestHeader(nil)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty stream: status %d, want 200", resp.StatusCode)
	}
}

// segmentsURL builds the replay endpoint path for a device ID.
func segmentsURL(srv *httptest.Server, dev string) string {
	return srv.URL + "/devices/" + url.PathEscape(dev) + "/segments"
}

func TestDeviceSegmentsEndpoint(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "cab 7" // exercises path escaping end to end
	tr := gen.One(gen.Taxi, 300, 54)
	body := deviceCSV(map[string][]traj.Point{dev: tr})
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if resp, err = http.Post(srv.URL+"/flush?device="+url.QueryEscape(dev), "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// NDJSON replay covers the whole upload within ζ.
	resp, err = http.Get(segmentsURL(srv, dev))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var count int
	dec := json.NewDecoder(resp.Body)
	for {
		var rec segmentRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		if rec.Device != dev {
			t.Fatalf("record for %q, want %q", rec.Device, dev)
		}
		count++
	}
	if count == 0 || count >= len(tr) {
		t.Fatalf("replayed %d segments for %d points", count, len(tr))
	}

	// Binary replay decodes to the same number of segments.
	resp2, err := http.Get(segmentsURL(srv, dev) + "?out=binary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw, _ := io.ReadAll(resp2.Body)
	pw, err := trajio.DecodePiecewise(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(pw) != count {
		t.Fatalf("binary replay has %d segments, NDJSON had %d", len(pw), count)
	}
	if err := metrics.VerifyBound(tr, pw, 40.03); err != nil {
		t.Error(err)
	}

	// Unknown device and bad out → 404 / 400.
	if resp, err = http.Get(segmentsURL(srv, "nobody")); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown device: status %d, want 404", resp.StatusCode)
	}
	if resp, err = http.Get(segmentsURL(srv, dev) + "?out=weird"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad out: status %d, want 400", resp.StatusCode)
	}
}

func TestDeviceSegmentsWithoutStore(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Get(segmentsURL(srv, "any"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404 when -data-dir is unset", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "-data-dir") {
		t.Errorf("response %q should point at -data-dir", b)
	}
}

// TestRestartServesIdenticalSegments is the acceptance test for the
// persistence tier: a server restarted mid-stream (graceful drain, new
// process over the same -data-dir) must serve byte-identical
// GET /devices/{id}/segments output to a server that stayed up, given
// the same uploads and flush points.
func TestRestartServesIdenticalSegments(t *testing.T) {
	const dev = "truck-17"
	tr := gen.One(gen.Truck, 600, 55)
	half := len(tr) / 2

	upload := func(srv *httptest.Server, pts traj.Trajectory) {
		t.Helper()
		body := binaryIngestBody([]string{dev}, []traj.Trajectory{pts})
		resp, err := http.Post(srv.URL+"/ingest", trajio.IngestContentType, body)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest: status %d", resp.StatusCode)
		}
		if resp, err = http.Post(srv.URL+"/flush?device="+dev, "", nil); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	fetch := func(srv *httptest.Server, out string, wantStatus int) []byte {
		t.Helper()
		resp, err := http.Get(segmentsURL(srv, dev) + out)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("segments%s: status %d, want %d", out, resp.StatusCode, wantStatus)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Run A: one server the whole way through.
	srvA, _ := persistentServer(t, t.TempDir())
	upload(srvA, tr[:half])
	upload(srvA, tr[half:])
	wantNDJSON := fetch(srvA, "", http.StatusOK)
	// Both halves were separate encoder sessions, so the log is not one
	// continuous polyline: binary replay must refuse, identically in both
	// runs, rather than weld the sessions together.
	fetch(srvA, "?out=binary", http.StatusUnprocessableEntity)

	// Run B: same uploads, but the server restarts between them.
	dirB := t.TempDir()
	srvB1, shutdownB1 := persistentServer(t, dirB)
	upload(srvB1, tr[:half])
	shutdownB1()
	srvB2, _ := persistentServer(t, dirB)
	upload(srvB2, tr[half:])

	if got := fetch(srvB2, "", http.StatusOK); !bytes.Equal(got, wantNDJSON) {
		t.Errorf("NDJSON replay differs after restart:\n got %d bytes\nwant %d bytes", len(got), len(wantNDJSON))
	}
	fetch(srvB2, "?out=binary", http.StatusUnprocessableEntity)
	if len(wantNDJSON) == 0 {
		t.Fatal("empty replay — test proved nothing")
	}
}

// TestEvictionPersists: with a store attached, an evicted session's
// trailing segments are in the log, not dropped.
func TestEvictionPersists(t *testing.T) {
	dir := t.TempDir()
	store, err := segstore.Open(segstore.Config{Dir: dir, Sync: segstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	clock := func() time.Time { return now }
	eng, err := stream.NewEngine(stream.Config{
		Zeta: 40, Sink: store, IdleAfter: time.Minute, Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, store, nil, testMaxBody))
	defer srv.Close()
	defer store.Close()
	defer eng.Close()

	body := deviceCSV(map[string][]traj.Point{"idler": gen.One(gen.SerCar, 200, 56)})
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	now = now.Add(2 * time.Minute)
	if n := len(eng.EvictIdle()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	resp, err = http.Get(segmentsURL(srv, "idler"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay after eviction: status %d", resp.StatusCode)
	}
}

// TestIngestDeviceTooLong: a device ID beyond the stack-wide cap is a
// per-device 400, keeping the "accepted means persistable" invariant.
func TestIngestDeviceTooLong(t *testing.T) {
	srv := testServer(t, testMaxBody)
	long := strings.Repeat("x", stream.MaxDevice+1)
	body := "device,t_ms,x_m,y_m\n" + long + ",0,0,0\n"
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	var out struct{ Failed map[string]string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if _, ok := out.Failed[long]; !ok {
		t.Fatalf("failed map %v missing the long device", out.Failed)
	}
}

// TestStatsReportsStoreCounters is the end-to-end acceptance test for
// the bounded storage tier: with a tiny handle cap and a tight per-device
// retention budget, real ingest traffic must surface nonzero
// handle-eviction and retention counters in GET /stats — and the replay
// endpoint must keep serving intact records from what retention left.
func TestStatsReportsStoreCounters(t *testing.T) {
	srv, _ := persistentServerCfg(t, segstore.Config{
		Dir:          t.TempDir(),
		Sync:         segstore.SyncNever,
		MaxOpenFiles: 1,   // 4 devices below → constant evict/reopen churn
		MaxFileSize:  256, // rotate early…
		MaxLogBytes:  512, // …and delete rotated files almost immediately
	})

	devs := []string{"fleet-a", "fleet-b", "fleet-c", "fleet-d"}
	presets := []gen.Preset{gen.Taxi, gen.Truck, gen.SerCar, gen.GeoLife}
	for i, dev := range devs {
		tr := gen.One(presets[i], 2000, uint64(70+i))
		// Several batches per device so appends interleave across devices
		// and the handle LRU actually churns.
		for off := 0; off < len(tr); off += 500 {
			body := deviceCSV(map[string][]traj.Point{dev: tr[off : off+500]})
			resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest %s: status %d", dev, resp.StatusCode)
			}
		}
	}
	resp, err := http.Post(srv.URL+"/flush", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stream.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("GET /stats has no store block with -data-dir set")
	}
	if st.Store.Appends == 0 || st.Store.Segments == 0 || st.Store.Bytes == 0 {
		t.Fatalf("store counters empty: %+v", *st.Store)
	}
	if st.Store.HandleEvictions == 0 || st.Store.HandleMisses == 0 {
		t.Fatalf("no handle churn under MaxOpenFiles=1: %+v", *st.Store)
	}
	if st.Store.OpenHandles > 1 {
		t.Fatalf("%d open handles, cap 1: %+v", st.Store.OpenHandles, *st.Store)
	}
	if st.Store.DeletedFiles == 0 || st.Store.ReclaimedBytes == 0 {
		t.Fatalf("no retention activity under MaxLogBytes=512: %+v", *st.Store)
	}

	// Replay still serves clean NDJSON records from the retained suffix.
	for _, dev := range devs {
		resp, err := http.Get(segmentsURL(srv, dev))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("replay %s after retention: status %d", dev, resp.StatusCode)
		}
		dec := json.NewDecoder(resp.Body)
		var count int
		for {
			var rec segmentRecord
			if err := dec.Decode(&rec); err == io.EOF {
				break
			} else if err != nil {
				t.Fatalf("replay %s: %v", dev, err)
			}
			count++
		}
		resp.Body.Close()
		if count == 0 {
			t.Fatalf("replay %s: no segments survived retention", dev)
		}
	}
}

// storeStats fetches GET /stats and returns the storage-tier block.
func storeStats(t *testing.T, srv *httptest.Server) segstore.Stats {
	t.Helper()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st stream.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store == nil {
		t.Fatal("GET /stats has no store block with -data-dir set")
	}
	return *st.Store
}

// TestStatsReportsReadCache is the end-to-end acceptance test for the
// cached read path: with -read-cache-bytes set, repeating a window query
// and probing /at inside it are served from the decoded-read cache —
// nonzero hit counters in GET /stats, and not one more byte read from
// disk than the cold pass already paid for.
func TestStatsReportsReadCache(t *testing.T) {
	srv, _ := persistentServerCfg(t, segstore.Config{
		Dir:            t.TempDir(),
		Sync:           segstore.SyncNever,
		MaxFileSize:    4 << 10,
		ReadCacheBytes: 1 << 20,
	})
	const dev = "cached"
	tr := gen.One(gen.Taxi, 800, 55)
	ingestFlushed(t, srv, dev, tr)

	from, to := tr[len(tr)/3].T, tr[2*len(tr)/3].T
	u := fmt.Sprintf("%s?from=%d&to=%d", segmentsURL(srv, dev), from, to)
	status, cold := fetchRecords(t, u)
	if status != http.StatusOK || len(cold) == 0 {
		t.Fatalf("cold window query: status %d, %d records", status, len(cold))
	}
	st1 := storeStats(t, srv)
	if st1.ReadCacheMiss == 0 || st1.ReadBytes == 0 || st1.ReadCacheBytes == 0 {
		t.Fatalf("cold query left no cache state: %+v", st1)
	}

	status, warm := fetchRecords(t, u)
	if status != http.StatusOK || len(warm) != len(cold) {
		t.Fatalf("warm window query: status %d, %d records (cold %d)", status, len(warm), len(cold))
	}
	resp, err := http.Get(fmt.Sprintf("%s/devices/%s/at?t=%d", srv.URL, dev, (from+to)/2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/at inside the cached window: status %d", resp.StatusCode)
	}

	st2 := storeStats(t, srv)
	if st2.ReadCacheHits == 0 {
		t.Fatalf("repeat query never hit the cache: %+v", st2)
	}
	if st2.ReadBytes != st1.ReadBytes {
		t.Fatalf("repeat query read from disk: ReadBytes %d -> %d", st1.ReadBytes, st2.ReadBytes)
	}
	if st2.ReadCacheMiss != st1.ReadCacheMiss {
		t.Fatalf("repeat query missed: %d -> %d", st1.ReadCacheMiss, st2.ReadCacheMiss)
	}
}

// TestPprofSeparateMux: the -pprof listener serves net/http/pprof from
// the default mux, which the service mux never exposes — profiling and
// production traffic stay separable.
func TestPprofSeparateMux(t *testing.T) {
	pprofSrv := httptest.NewServer(http.DefaultServeMux)
	defer pprofSrv.Close()
	resp, err := http.Get(pprofSrv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}

	srv := testServer(t, testMaxBody)
	resp, err = http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service mux exposes /debug/pprof; it must stay on the -pprof listener")
	}
}

// TestCompactLoop: the -compact-every sweep reaches cold devices — logs
// written by an earlier process that the background retention pass never
// visits because nothing touches them in this one.
func TestCompactLoop(t *testing.T) {
	dir := t.TempDir()
	writer, err := segstore.Open(segstore.Config{Dir: dir, Sync: segstore.SyncNever, MaxFileSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]traj.Segment, 64)
	tr := gen.One(gen.Taxi, 128, 91)
	for i := range segs {
		segs[i] = traj.Segment{Start: tr[i], End: tr[i+1], StartIdx: i, EndIdx: i + 1}
	}
	for i := 0; i < 8; i++ { // force several rotated files
		if err := writer.Append("cold-truck", segs); err != nil {
			t.Fatal(err)
		}
	}
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}

	// New process: the device is never touched, only the sweep can see it.
	store, err := segstore.Open(segstore.Config{
		Dir: dir, Sync: segstore.SyncNever, MaxFileSize: 256, MaxLogBytes: 512,
		SyncEvery: time.Hour, // keep the store's own pass out of the picture
	})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); compactLoop(ctx, store, 5*time.Millisecond) }()
	deadline := time.Now().Add(10 * time.Second)
	for store.Stats().DeletedFiles == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	<-done
	if st := store.Stats(); st.DeletedFiles == 0 || st.ReclaimedBytes == 0 {
		t.Fatalf("compact loop reclaimed nothing from a cold over-budget device: %+v", st)
	}
	if segs, err := store.Replay("cold-truck"); err != nil || len(segs) == 0 {
		t.Fatalf("replay after sweep: %d segments, err %v", len(segs), err)
	}
}

// TestStatsReportsSinkQueue: the async pipeline's counters appear in
// GET /stats so operators can see backpressure building.
func TestStatsReportsSinkQueue(t *testing.T) {
	srv, shutdown := persistentServer(t, t.TempDir())
	body := deviceCSV(map[string][]traj.Point{"q-dev": gen.One(gen.Taxi, 500, 93)})
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"sink_queued", "sink_blocked", "sink_dropped", "sink_dropped_segments"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("GET /stats missing %q", key)
		}
	}
	shutdown()
}

// TestIngestBinaryEmptyFrame: a frame with point count 0 registers no
// device — same as the whole-buffer decoder's per-point path — so an
// all-empty body takes the no-op branch.
func TestIngestBinaryEmptyFrame(t *testing.T) {
	srv := testServer(t, testMaxBody)
	b := trajio.AppendIngestHeader(nil)
	b = trajio.AppendIngestBatch(b, "ghost", nil)
	resp, err := http.Post(srv.URL+"/ingest", trajio.IngestContentType, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["devices"] != float64(0) || got["points"] != float64(0) {
		t.Fatalf("empty frame registered a device: %v", got)
	}
}
