package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"trajsim/internal/gen"
	"trajsim/internal/metrics"
	"trajsim/internal/trajio"
)

func sampleCSV(t *testing.T, n int) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	tr := gen.One(gen.SerCar, n, 5)
	if err := trajio.WriteCSV(&buf, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestHealthz(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestAlgorithms(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, want := range []string{"OPERB", "OPERB-A", "FBQS", "DP"} {
		if !strings.Contains(string(b), want) {
			t.Errorf("missing %s in %s", want, b)
		}
	}
}

func TestCompressCSV(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/compress?algo=OPERB-A&zeta=30", "text/csv", sampleCSV(t, 400))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	points, _ := strconv.Atoi(resp.Header.Get("X-Points"))
	segments, _ := strconv.Atoi(resp.Header.Get("X-Segments"))
	if points != 400 || segments <= 0 || segments >= points {
		t.Fatalf("X-Points=%d X-Segments=%d", points, segments)
	}
	maxErr, _ := strconv.ParseFloat(resp.Header.Get("X-Max-Error"), 64)
	if maxErr > 30*1.000001 {
		t.Errorf("X-Max-Error=%v exceeds ζ", maxErr)
	}
	// The body is a decodable simplified CSV with segments+1 points.
	out, _, err := trajio.ReadCSV(resp.Body, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != segments+1 {
		t.Errorf("body has %d points, want %d", len(out), segments+1)
	}
}

func TestCompressBinary(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/compress?algo=FBQS&zeta=25&out=binary", "text/csv", sampleCSV(t, 300))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	pw, err := trajio.DecodePiecewise(b)
	if err != nil {
		t.Fatal(err)
	}
	if want, _ := strconv.Atoi(resp.Header.Get("X-Segments")); len(pw) != want {
		t.Errorf("decoded %d segments, header says %s", len(pw), resp.Header.Get("X-Segments"))
	}
}

func TestCompressDirtyStreamNeedsClean(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	// A stream with a duplicated timestamp fails validation without clean=.
	dirty := "t_ms,x_m,y_m\n0,0,0\n1000,5,0\n1000,5,0\n2000,10,0\n"
	resp, err := http.Post(srv.URL+"/compress", "text/csv", strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("dirty upload: status %d, want 422", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/compress?clean=4", "text/csv", strings.NewReader(dirty))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("cleaned upload: status %d: %s", resp.StatusCode, b)
	}
}

func TestCompressErrors(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	cases := []struct {
		url  string
		body string
		want int
	}{
		{"/compress?algo=bogus", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?zeta=abc", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?zeta=-5", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?clean=-1", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress?out=weird", "t_ms,x_m,y_m\n0,0,0\n1000,1,1\n", http.StatusBadRequest},
		{"/compress", "not,a,trajectory\nx,y,z\n", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Post(srv.URL+c.url, "text/csv", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.url, resp.StatusCode, c.want)
		}
	}
	// GET on /compress is rejected by the method-scoped route.
	resp, err := http.Get(srv.URL + "/compress")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /compress should not succeed")
	}
}

// End-to-end: the round trip through the service preserves the error
// bound against the original upload.
func TestEndToEndBound(t *testing.T) {
	srv := httptest.NewServer(newHandler())
	defer srv.Close()
	tr := gen.One(gen.Taxi, 300, 11)
	var buf bytes.Buffer
	if err := trajio.WriteCSV(&buf, tr, trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/compress?algo=OPERB&zeta=40&out=binary", "text/csv", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	pw, err := trajio.DecodePiecewise(b)
	if err != nil {
		t.Fatal(err)
	}
	// Binary quantizes to 1 cm; allow that on top of ζ.
	if err := metrics.VerifyBound(tr, pw, 40.03); err != nil {
		t.Error(err)
	}
}
