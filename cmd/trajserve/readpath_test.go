package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

// Integration tests for the time-indexed read path: ranged /segments,
// /at, the SGB1 output format, and the SSE live tail.

// ingestFlushed uploads pts for dev and flushes the session so every
// segment is in the store.
func ingestFlushed(t *testing.T, srv *httptest.Server, dev string, pts []traj.Point) {
	t.Helper()
	body := deviceCSV(map[string][]traj.Point{dev: pts})
	resp, err := http.Post(srv.URL+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d", resp.StatusCode)
	}
	if resp, err = http.Post(srv.URL+"/flush?device="+url.QueryEscape(dev), "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d", resp.StatusCode)
	}
}

// fetchRecords decodes an NDJSON /segments response body.
func fetchRecords(t *testing.T, u string) (int, []segmentRecord) {
	t.Helper()
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var recs []segmentRecord
	dec := json.NewDecoder(resp.Body)
	for {
		var rec segmentRecord
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		recs = append(recs, rec)
	}
	return resp.StatusCode, recs
}

func TestDeviceSegmentsRange(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "ranger"
	tr := gen.One(gen.Taxi, 600, 91)
	ingestFlushed(t, srv, dev, tr)

	status, all := fetchRecords(t, segmentsURL(srv, dev))
	if status != http.StatusOK || len(all) == 0 {
		t.Fatalf("full replay: status %d, %d records", status, len(all))
	}

	// A window over the middle third returns exactly the overlapping
	// records, in order.
	from := all[len(all)/3].T1
	to := all[2*len(all)/3].T2
	u := fmt.Sprintf("%s?from=%d&to=%d", segmentsURL(srv, dev), from, to)
	status, got := fetchRecords(t, u)
	if status != http.StatusOK {
		t.Fatalf("ranged replay: status %d", status)
	}
	var want []segmentRecord
	for _, r := range all {
		if r.T2 >= from && r.T1 <= to {
			want = append(want, r)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("ranged replay has %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Half-open forms: from-only and to-only partition the log.
	_, tail := fetchRecords(t, fmt.Sprintf("%s?from=%d", segmentsURL(srv, dev), from))
	_, head := fetchRecords(t, fmt.Sprintf("%s?to=%d", segmentsURL(srv, dev), from-1))
	if len(tail)+len(head) < len(all) {
		t.Errorf("from-only (%d) + to-only (%d) < full (%d)", len(tail), len(head), len(all))
	}

	// A window matching nothing is an empty 200, not a 404.
	status, none := fetchRecords(t, fmt.Sprintf("%s?from=%d&to=%d", segmentsURL(srv, dev), to+1e9, to+2e9))
	if status != http.StatusOK || len(none) != 0 {
		t.Errorf("empty window: status %d, %d records, want 200 and none", status, len(none))
	}

	// Unparseable bounds are a 400.
	resp, err := http.Get(segmentsURL(srv, dev) + "?from=yesterday")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad from: status %d, want 400", resp.StatusCode)
	}
}

func TestDeviceSegmentsSGB1(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "sgb"
	tr := gen.One(gen.SerCar, 400, 17)
	ingestFlushed(t, srv, dev, tr)

	status, all := fetchRecords(t, segmentsURL(srv, dev))
	if status != http.StatusOK || len(all) < 3 {
		t.Fatalf("full replay: status %d, %d records", status, len(all))
	}

	// out=sgb1 round-trips the full log.
	resp, err := http.Get(segmentsURL(srv, dev) + "?out=sgb1")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("out=sgb1: status %d: %s", resp.StatusCode, raw)
	}
	segs, err := trajio.DecodeSegments(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != len(all) {
		t.Fatalf("sgb1 has %d segments, NDJSON had %d", len(segs), len(all))
	}
	for i, sg := range segs {
		if sg.Start.T != all[i].T1 || sg.End.T != all[i].T2 {
			t.Fatalf("segment %d spans [%d,%d], NDJSON said [%d,%d]",
				i, sg.Start.T, sg.End.T, all[i].T1, all[i].T2)
		}
	}

	// A ranged result need not be continuous — sgb1 carries it anyway.
	mid := all[len(all)/2]
	u := fmt.Sprintf("%s?from=%d&to=%d&out=sgb1", segmentsURL(srv, dev), mid.T1, mid.T2)
	if resp, err = http.Get(u); err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ranged sgb1: status %d", resp.StatusCode)
	}
	if ranged, err := trajio.DecodeSegments(raw); err != nil || len(ranged) == 0 {
		t.Fatalf("ranged sgb1 decode: %d segments, err %v", len(ranged), err)
	}
}

func TestDeviceAt(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "probe"
	tr := gen.One(gen.Taxi, 500, 33)
	ingestFlushed(t, srv, dev, tr)

	status, all := fetchRecords(t, segmentsURL(srv, dev))
	if status != http.StatusOK || len(all) == 0 {
		t.Fatalf("full replay: status %d, %d records", status, len(all))
	}

	var at struct {
		Device string  `json:"device"`
		T      int64   `json:"t_ms"`
		X      float64 `json:"x_m"`
		Y      float64 `json:"y_m"`
	}
	query := func(tms int64) int {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("%s/at?t=%d", strings.TrimSuffix(segmentsURL(srv, dev), "/segments"), tms))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&at); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}

	// A segment endpoint must answer with (nearly) the endpoint itself.
	rec := all[len(all)/2]
	if status := query(rec.T1); status != http.StatusOK {
		t.Fatalf("at t=%d: status %d", rec.T1, status)
	}
	if at.Device != dev || at.T != rec.T1 {
		t.Fatalf("at = %+v, want device %q t %d", at, dev, rec.T1)
	}
	if dx, dy := at.X-rec.X1, at.Y-rec.Y1; dx*dx+dy*dy > 1 {
		t.Errorf("at(%d) = (%g,%g), segment starts at (%g,%g)", rec.T1, at.X, at.Y, rec.X1, rec.Y1)
	}

	// A mid-segment time interpolates strictly between the endpoints.
	if rec.T2 > rec.T1+1 {
		mid := (rec.T1 + rec.T2) / 2
		if status := query(mid); status != http.StatusOK {
			t.Fatalf("at t=%d: status %d", mid, status)
		}
		minX, maxX := min(rec.X1, rec.X2)-1, max(rec.X1, rec.X2)+1
		if at.X < minX || at.X > maxX {
			t.Errorf("interpolated x=%g outside segment [%g,%g]", at.X, minX, maxX)
		}
	}

	// Before the first fix, after the last fix, missing t, no store.
	if status := query(all[0].T1 - 1e6); status != http.StatusNotFound {
		t.Errorf("before history: status %d, want 404", status)
	}
	if status := query(all[len(all)-1].T2 + 1e6); status != http.StatusNotFound {
		t.Errorf("after history: status %d, want 404", status)
	}
	resp, err := http.Get(strings.TrimSuffix(segmentsURL(srv, dev), "/segments") + "/at")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing t: status %d, want 400", resp.StatusCode)
	}

	plain := testServer(t, testMaxBody)
	if resp, err = http.Get(plain.URL + "/devices/x/at?t=0"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("no store: status %d, want 404", resp.StatusCode)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses events off an SSE stream until fn says stop or the
// stream ends.
func readSSE(r io.Reader, fn func(sseEvent) bool) error {
	sc := bufio.NewScanner(r)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if ev.name != "" || ev.data != "" {
				if !fn(ev) {
					return nil
				}
			}
			ev = sseEvent{}
		case strings.HasPrefix(line, "event: "):
			ev.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.data = strings.TrimPrefix(line, "data: ")
		}
		// Comment lines (heartbeats) are skipped.
	}
	return sc.Err()
}

func TestDeviceTailSSE(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "tailed"

	// Subscribe first, then ingest: the tail must see the batch.
	req, err := http.NewRequest("GET", strings.TrimSuffix(segmentsURL(srv, dev), "/segments")+"/tail", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("tail Content-Type %q", ct)
	}

	done := make(chan []segmentRecord, 1)
	go func() {
		var got []segmentRecord
		readSSE(resp.Body, func(ev sseEvent) bool {
			if ev.name != "segments" {
				return true
			}
			var recs []segmentRecord
			if err := json.Unmarshal([]byte(ev.data), &recs); err != nil {
				t.Errorf("tail event: %v", err)
				return false
			}
			got = append(got, recs...)
			return false // one batch is enough
		})
		done <- got
	}()

	// Give the subscription a moment to register before ingesting.
	time.Sleep(50 * time.Millisecond)
	ingestFlushed(t, srv, dev, gen.One(gen.SerCar, 300, 5))

	select {
	case got := <-done:
		if len(got) == 0 {
			t.Fatal("tail delivered no segment records")
		}
		for _, rec := range got {
			if rec.Device != dev {
				t.Fatalf("tail record for %q, want %q", rec.Device, dev)
			}
		}
		// Everything a tail announced must already be replayable. The
		// store quantizes coordinates to a centimeter on persist, so match
		// on the time span and allow quantization error in the positions.
		status, all := fetchRecords(t, segmentsURL(srv, dev))
		if status != http.StatusOK {
			t.Fatalf("replay after tail: status %d", status)
		}
		persisted := make(map[[2]int64]segmentRecord, len(all))
		for _, rec := range all {
			persisted[[2]int64{rec.T1, rec.T2}] = rec
		}
		for _, rec := range got {
			p, ok := persisted[[2]int64{rec.T1, rec.T2}]
			if !ok {
				t.Fatalf("tail announced %+v which replay does not serve", rec)
			}
			for _, d := range []float64{p.X1 - rec.X1, p.Y1 - rec.Y1, p.X2 - rec.X2, p.Y2 - rec.Y2} {
				if d > 0.01 || d < -0.01 {
					t.Fatalf("tail announced %+v, replay serves %+v (beyond quantization)", rec, p)
				}
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tail never delivered the ingested batch")
	}
}

// TestTailWhileIngesting hammers one device with concurrent ingest while
// several tails stream it — the -race exercise for the hub, the OnSink
// hook, and the sink writers.
func TestTailWhileIngesting(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "busy"
	const tails = 4

	var wg sync.WaitGroup
	bodies := make([]io.ReadCloser, 0, tails)
	for i := 0; i < tails; i++ {
		req, err := http.NewRequest("GET", strings.TrimSuffix(segmentsURL(srv, dev), "/segments")+"/tail", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tail %d: status %d", i, resp.StatusCode)
		}
		bodies = append(bodies, resp.Body)
		wg.Add(1)
		go func(body io.ReadCloser) {
			defer wg.Done()
			readSSE(body, func(sseEvent) bool { return true })
		}(resp.Body)
	}

	// Overlapping ingest batches: continuation of one long trajectory so
	// the store keeps appending, flushed every round to force sink writes.
	tr := gen.One(gen.Taxi, 2000, 77)
	const rounds = 8
	chunk := len(tr) / rounds
	for r := 0; r < rounds; r++ {
		ingestFlushed(t, srv, dev, tr[r*chunk:(r+1)*chunk])
	}

	// Closing the response bodies unblocks the readers and lets the
	// server-side handlers return (the SSE handler exits when the client
	// disconnects) — without this, httptest.Server.Close would wait on
	// the never-ending tail requests.
	for _, b := range bodies {
		b.Close()
	}
	wg.Wait()

	status, all := fetchRecords(t, segmentsURL(srv, dev))
	if status != http.StatusOK || len(all) == 0 {
		t.Fatalf("replay after concurrent tailing: status %d, %d records", status, len(all))
	}
}
