package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"trajsim/internal/stream"
)

// Tests for the overload and shutdown surfaces: 429 + Retry-After from
// admission control, 503 + Retry-After while draining, and the JSON
// /healthz readiness states.

// rateLimitedServer runs the service over an engine with a tight
// per-device rate limit so a second batch is over rate immediately.
func rateLimitedServer(t *testing.T) *httptest.Server {
	t.Helper()
	eng, err := stream.NewEngine(stream.Config{
		Zeta: 40, Shards: 4, DeviceRate: 1, DeviceBurst: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv := httptest.NewServer(newHandler(eng, nil, nil, testMaxBody))
	t.Cleanup(srv.Close)
	return srv
}

func postCSV(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/ingest", "text/csv", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestIngestRateLimited429: an over-rate device gets 429 and a positive
// whole-second Retry-After no earlier than the engine's advice.
func TestIngestRateLimited429(t *testing.T) {
	srv := rateLimitedServer(t)
	csv := "device,t_ms,x_m,y_m\ncab-1,0,0,0\ncab-1,1000,8,1\n"
	resp := postCSV(t, srv.URL, csv)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: status %d", resp.StatusCode)
	}
	// The bucket (burst 2) is empty; the very next point is over rate.
	resp = postCSV(t, srv.URL, "device,t_ms,x_m,y_m\ncab-1,2000,16,0\n")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate batch: status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", resp.Header.Get("Retry-After"))
	}
	var body struct {
		Failed map[string]string `json:"failed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if _, ok := body.Failed["cab-1"]; !ok {
		t.Errorf("failed map missing the rate-limited device: %v", body.Failed)
	}
}

// TestDrainingRejectsIngest: once shutdown has begun, new ingest gets
// an immediate 503 + Retry-After and /healthz reports draining with
// the same status code, so load balancers stop routing here.
func TestDrainingRejectsIngest(t *testing.T) {
	eng, err := stream.NewEngine(stream.Config{Zeta: 40, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	h := newHandler(eng, nil, nil, testMaxBody)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	h.draining.Store(true)
	resp := postCSV(t, srv.URL, "device,t_ms,x_m,y_m\ncab-1,0,0,0\n")
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After header")
	}

	hz, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", hz.StatusCode)
	}
	var state struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", state.Status)
	}
}

// TestStatsSurfacesResilienceCounters: GET /stats carries the
// admission counters at the top level and the quarantine gauges inside
// the store block — present (zero-valued) from the first request, so an
// operator dashboard can key on them before anything goes wrong.
func TestStatsSurfacesResilienceCounters(t *testing.T) {
	srv, shutdown := persistentServer(t, t.TempDir())
	defer shutdown()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Shed        *int64 `json:"shed_sessions"`
		RateLimited *int64 `json:"rate_limited"`
		Overloaded  *int64 `json:"overload_rejected"`
		Store       *struct {
			PoisonedLogs      *int64 `json:"poisoned_logs"`
			QuarantineReopens *int64 `json:"quarantine_reopens"`
		} `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Shed == nil || raw.RateLimited == nil || raw.Overloaded == nil {
		t.Error("/stats missing shed_sessions/rate_limited/overload_rejected")
	}
	if raw.Store == nil || raw.Store.PoisonedLogs == nil || raw.Store.QuarantineReopens == nil {
		t.Error("/stats store block missing poisoned_logs/quarantine_reopens")
	}
}

// TestHealthzJSON: the ordinary readiness reply is 200 with status ok
// and the two degradation signals present (zero-valued).
func TestHealthzJSON(t *testing.T) {
	srv := testServer(t, testMaxBody)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var state struct {
		Status       string `json:"status"`
		PoisonedLogs *int64 `json:"poisoned_logs"`
		SinkQueued   *int64 `json:"sink_queued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&state); err != nil {
		t.Fatal(err)
	}
	if state.Status != "ok" {
		t.Errorf("status = %q, want ok", state.Status)
	}
	if state.PoisonedLogs == nil || state.SinkQueued == nil {
		t.Error("healthz reply missing poisoned_logs or sink_queued")
	}
}
