// Command trajserve is the cloud side of the paper's motivating
// deployment: an HTTP ingestion service that compresses uploaded
// trajectories with any registered algorithm and returns either the
// simplified points (CSV) or the compact binary wire format.
//
// Usage:
//
//	trajserve -addr :8080
//
// Endpoints:
//
//	GET  /healthz                  liveness probe
//	GET  /algorithms               registered algorithm names (text)
//	POST /compress?algo=OPERB-A&zeta=40&format=csv&clean=4&out=binary
//	     body: trajectory CSV (t_ms,x_m,y_m with header)
//	     out=csv    → simplified trajectory CSV (default)
//	     out=binary → compact binary piecewise encoding
//	     response headers carry X-Segments, X-Points, X-Ratio, X-Max-Error
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"

	"trajsim/internal/algo"
	"trajsim/internal/metrics"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	srv := &http.Server{Addr: *addr, Handler: newHandler()}
	log.Printf("trajserve listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "trajserve:", err)
		os.Exit(1)
	}
}

// newHandler builds the service mux; separated from main for testing.
func newHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /algorithms", func(w http.ResponseWriter, _ *http.Request) {
		for _, a := range algo.All() {
			fmt.Fprintln(w, a.Name)
		}
	})
	mux.HandleFunc("POST /compress", handleCompress)
	return mux
}

// maxBody bounds uploads to 64 MiB (~1.5 M points of CSV).
const maxBody = 64 << 20

func handleCompress(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	algoName := q.Get("algo")
	if algoName == "" {
		algoName = "OPERB"
	}
	a, err := algo.Get(algoName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	zeta := 40.0
	if s := q.Get("zeta"); s != "" {
		if zeta, err = strconv.ParseFloat(s, 64); err != nil {
			http.Error(w, "bad zeta: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	clean := 0
	if s := q.Get("clean"); s != "" {
		if clean, err = strconv.Atoi(s); err != nil || clean < 0 {
			http.Error(w, "bad clean window", http.StatusBadRequest)
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, maxBody)
	t, _, err := trajio.ReadCSV(body, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	if err != nil {
		http.Error(w, "bad trajectory: "+err.Error(), http.StatusBadRequest)
		return
	}
	if clean > 0 {
		t = traj.Clean(t, clean)
	}
	if err := t.Validate(); err != nil {
		http.Error(w, err.Error()+" (pass clean=N to repair)", http.StatusUnprocessableEntity)
		return
	}
	pw, err := a.Fn(t, zeta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	s := metrics.Summarize(t, pw)
	w.Header().Set("X-Algorithm", a.Name)
	w.Header().Set("X-Points", strconv.Itoa(s.Points))
	w.Header().Set("X-Segments", strconv.Itoa(s.Segments))
	w.Header().Set("X-Ratio", strconv.FormatFloat(s.Ratio, 'f', 6, 64))
	w.Header().Set("X-Max-Error", strconv.FormatFloat(s.MaxError, 'f', 3, 64))

	switch q.Get("out") {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := trajio.WriteCSV(w, pw.Decode(), trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
			log.Printf("compress: write: %v", err)
		}
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(trajio.AppendPiecewise(nil, pw)); err != nil {
			log.Printf("compress: write: %v", err)
		}
	default:
		http.Error(w, "unknown out format (csv, binary)", http.StatusBadRequest)
	}
}
