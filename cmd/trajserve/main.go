// Command trajserve is the cloud side of the paper's motivating
// deployment: an HTTP ingestion service that compresses trajectories with
// any registered algorithm — one-shot via /compress, or live via /ingest,
// which multiplexes thousands of concurrent per-device encoder sessions
// over a sharded streaming engine.
//
// Usage:
//
//	trajserve -addr :8080 -zeta 40 -aggressive -shards 16 -idle 5m \
//	          -data-dir /var/lib/trajsim -fsync interval \
//	          -max-open-files 1024 -retention-bytes 268435456 -retention-age 720h \
//	          -read-cache-bytes 67108864 \
//	          -sink-writers 4 -sink-queue 256 -sink-full block \
//	          -max-sessions 100000 -device-rate 100 -queue-watermark 0.9 \
//	          -shutdown-timeout 10s -compact-every 1h -pprof localhost:6060
//
// Endpoints:
//
//	GET  /healthz                  JSON readiness: status ok/degraded/
//	     draining plus poisoned_logs and sink_queued. 503 while
//	     draining (stop routing here); degraded — quarantined device
//	     logs or a sink queue past its watermark — stays 200
//	GET  /algorithms               registered algorithm names (text)
//	GET  /stats                    streaming-engine counters (JSON)
//	POST /compress?algo=OPERB-A&zeta=40&format=csv&clean=4&out=binary
//	     body: trajectory CSV (t_ms,x_m,y_m with header)
//	     out=csv    → simplified trajectory CSV (default)
//	     out=binary → compact binary piecewise encoding
//	     response headers carry X-Segments, X-Points, X-Ratio, X-Max-Error
//	POST /ingest?out=segments
//	     body: point batches for any number of devices — CSV
//	     (device,t_ms,x_m,y_m with header), NDJSON
//	     ({"device":"d1","t_ms":0,"x_m":1.5,"y_m":2.5} per line, selected
//	     by a JSON Content-Type), or the compact binary wire format
//	     (Content-Type: application/x-trajsim-binary, built with
//	     trajsim.AppendIngestHeader/AppendIngestBatch). Device batches
//	     commit independently: per-device failures (e.g. unordered
//	     timestamps) are reported in a "failed" map while the rest
//	     ingest; the request only fails wholesale when every device
//	     does. Default response is a JSON summary; out=segments returns
//	     finalized segments as NDJSON.
//	POST /flush?device=ID&out=segments
//	     finalize one device session (404 if unknown) or, without
//	     device=, every live session.
//	GET  /devices/{device}/segments?from=&to=&out=binary
//	     replay the device's persisted segment log (requires -data-dir)
//	     as NDJSON, or as the binary piecewise encoding with out=binary
//	     (422 when the log spans several encoder sessions and is not one
//	     continuous polyline), or as the gap-safe binary segment-batch
//	     encoding with out=sgb1. from/to (unix ms, inclusive) restrict
//	     the reply to segments overlapping the range, answered via the
//	     store's time index — seeks, not a log scan; a ranged query with
//	     no matches is an empty 200, not a 404, and an inverted range
//	     (from > to) is a 400.
//	GET  /devices/{device}/at?t=
//	     position-at-time: binary-searches the time index for the
//	     persisted segment covering t and interpolates along it — the
//	     paper's where-was-it-at-t query. 404 when t falls before,
//	     after, or in a gap of the device's history.
//	GET  /devices/{device}/tail
//	     server-sent-events long poll: one "segments" event per
//	     finalized batch, emitted only after the segment store accepted
//	     it. A slow client gets a "lagged" event and the stream ends
//	     (resume via /segments?from=). -tail-buffer sizes the
//	     per-subscriber buffer.
//
// With -data-dir every finalized segment — from ingest, flush, idle
// eviction and shutdown alike — is also appended to a crash-recoverable
// per-device log (internal/segstore); -fsync picks the durability/latency
// trade-off (interval, always, never). Disk writes happen on an async
// per-device-ordered sink pipeline, outside the ingest critical section:
// -sink-writers and -sink-queue size it, -sink-full picks what a full
// queue does (block ingest for durability, or drop batches for
// availability — drops are counted in /stats), and -sink-sync restores
// the old write-under-lock behavior for comparison. Each writer drains
// its backlog in sweeps — everything immediately queued, across devices,
// capped at -sink-sweep segments — writing one merged append per device
// and settling the whole sweep with one fsync per dirty file, so under
// -fsync=always a backlog of K devices × M batches costs at most K
// fsyncs. -compact-every runs
// a periodic full-disk retention sweep that also reaches cold devices;
// -pprof serves net/http/pprof on a separate listener for live
// profiling. The store is resource-bounded:
// -max-open-files caps how many device logs hold an open file descriptor
// (an LRU transparently reopens cold logs), and -retention-bytes /
// -retention-age bound each device's log on disk by deleting whole
// rotated files oldest-first. Reads (/segments, /at, /tail resume)
// run concurrently with ingest — queries snapshot the log and decode
// outside its lock — and are served from a byte-budgeted decoded-read
// cache sized by -read-cache-bytes (0 disables it): a repeated window
// or position probe does no disk I/O at all. GET /stats reports the
// storage tier's counters (appends, bytes, handle hits/misses/
// evictions, read-cache hits/misses/resident bytes, bytes reclaimed,
// files deleted) under "store" alongside the engine's.
// Request bodies are capped at -max-body bytes; larger uploads get 413.
//
// Overload behavior: -device-rate/-device-burst enforce a per-device
// token-bucket rate limit, -max-sessions caps live sessions (with
// -shed, the default, the coldest session is flushed durably to admit a
// new device instead of rejecting it), and -queue-watermark rejects NEW
// devices while the sink queue is past that fraction of its capacity.
// Every admission rejection is a 429 whose Retry-After header says when
// retrying can succeed — the token-refill time, or the queue backlog
// over its measured drain rate.
//
// SIGINT/SIGTERM drain in-flight requests and flush all live sessions
// into the store; during the drain new ingest gets 503 + Retry-After
// and /healthz turns 503/draining. -shutdown-timeout bounds each
// shutdown phase so a wedged disk cannot hang the process forever —
// on timeout the crash-recoverable log replays the acknowledged prefix
// at next start.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	_ "net/http/pprof" // -pprof: profiling endpoints on their own listener
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"trajsim/internal/algo"
	"trajsim/internal/metrics"
	"trajsim/internal/segstore"
	"trajsim/internal/stream"
	"trajsim/internal/traj"
	"trajsim/internal/trajio"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		maxBody    = flag.Int64("max-body", 64<<20, "request body cap in bytes (413 beyond)")
		zeta       = flag.Float64("zeta", 40, "error bound ζ in meters for /ingest sessions")
		aggressive = flag.Bool("aggressive", true, "use OPERB-A (vs OPERB) for /ingest sessions")
		shards     = flag.Int("shards", stream.DefaultShards, "session-map shards for /ingest")
		clean      = flag.Int("ingest-clean", 0, "per-session cleaner reorder window (0 = off)")
		idle       = flag.Duration("idle", 5*time.Minute, "evict /ingest sessions idle this long; without -data-dir their trailing segments are logged and DROPPED (0 = never evict)")
		dataDir    = flag.String("data-dir", "", "persist finalized segments to per-device logs under this directory (empty = in-memory only)")
		fsync      = flag.String("fsync", "interval", "segment-log fsync policy: interval, always, or never")
		maxOpen    = flag.Int("max-open-files", 0, "cap on simultaneously open segment-log file handles; cold device logs are transparently closed and reopened (0 = store default)")
		retBytes   = flag.Int64("retention-bytes", 0, "per-device segment-log disk budget; rotated files are deleted oldest-first beyond it (0 = keep everything)")
		retAge     = flag.Duration("retention-age", 0, "delete rotated segment-log files whose last append is older than this (0 = keep everything)")
		readCache  = flag.Int64("read-cache-bytes", segstore.DefaultReadCacheBytes, "byte budget for the decoded segment-read cache serving /segments and /at (0 = no caching)")

		sinkWriters = flag.Int("sink-writers", 0, "goroutines draining the async segment-sink queue (0 = engine default)")
		sinkQueue   = flag.Int("sink-queue", 0, "per-writer sink queue depth in batches (0 = engine default)")
		sinkSweep   = flag.Int("sink-sweep", 0, "max segments one sink-writer sweep folds into a single cross-device group commit (0 = engine default)")
		sinkFull    = flag.String("sink-full", "block", "full sink-queue policy: block (durability) or drop (availability)")
		sinkSync    = flag.Bool("sink-sync", false, "bypass the async sink queue and write segments to disk inside the ingest critical section (pre-v4 behavior, for comparison)")

		tailBuffer = flag.Int("tail-buffer", 0, "per-subscriber /devices/{id}/tail buffer in batches; a client that falls further behind is disconnected with a lagged event (0 = default)")

		maxSessions    = flag.Int("max-sessions", 0, "cap on live ingest sessions (0 = unlimited)")
		shed           = flag.Bool("shed", true, "at -max-sessions, shed the coldest session (flushed durably into the store) to admit the new device instead of rejecting it")
		deviceRate     = flag.Float64("device-rate", 0, "per-device ingest rate limit in points/sec; over-rate batches get 429 with Retry-After (0 = unlimited)")
		deviceBurst    = flag.Float64("device-burst", 0, "token-bucket burst in points for -device-rate (0 = one second of rate)")
		queueWatermark = flag.Float64("queue-watermark", 0.9, "sink-queue pressure fraction beyond which new devices get 429 with Retry-After while existing sessions keep flowing (0 = disabled)")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "bound on each graceful-shutdown phase (HTTP drain, then session flush + sink-queue drain); on timeout the process exits and the crash-recoverable log replays the acknowledged prefix on restart")

		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")
		compactEvery = flag.Duration("compact-every", 0, "run a full-disk retention sweep (Store.CompactNow) on this period, covering cold devices the background pass never visits (0 = disabled)")
	)
	flag.Parse()

	var store *segstore.Store
	if *dataDir != "" {
		policy, err := segstore.ParseSyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trajserve:", err)
			os.Exit(1)
		}
		var err2 error
		store, err2 = segstore.Open(segstore.Config{
			Dir:            *dataDir,
			Sync:           policy,
			MaxOpenFiles:   *maxOpen,
			MaxLogBytes:    *retBytes,
			MaxLogAge:      *retAge,
			ReadCacheBytes: *readCache,
		})
		if err2 != nil {
			fmt.Fprintln(os.Stderr, "trajserve:", err2)
			os.Exit(1)
		}
	}

	fullPolicy, err := stream.ParseSinkFullPolicy(*sinkFull)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajserve:", err)
		os.Exit(1)
	}
	evictEvery := *idle / 4
	if evictEvery < time.Second {
		evictEvery = time.Second
	}
	cfg := stream.Config{
		Zeta:           *zeta,
		Aggressive:     *aggressive,
		Shards:         *shards,
		CleanWindow:    *clean,
		IdleAfter:      *idle,
		EvictEvery:     evictEvery,
		SinkWriters:    *sinkWriters,
		SinkQueue:      *sinkQueue,
		SinkSweep:      *sinkSweep,
		SinkFull:       fullPolicy,
		SinkSync:       *sinkSync,
		MaxSessions:    *maxSessions,
		ShedSessions:   *shed,
		DeviceRate:     *deviceRate,
		DeviceBurst:    *deviceBurst,
		QueueWatermark: *queueWatermark,
		OnEvict: func(dev string, segs []traj.Segment) {
			log.Printf("evicted idle session %s (%d trailing segments)", dev, len(segs))
		},
	}
	var tails *tailHub
	if store != nil {
		cfg.Sink = store
		tails = newTailHub(*tailBuffer)
		cfg.OnSink = tails.publish
	}
	eng, err := stream.NewEngine(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "trajserve:", err)
		os.Exit(1)
	}

	h := newHandler(eng, store, tails, *maxBody)
	srv := &http.Server{Addr: *addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *pprofAddr != "" {
		// The service mux never exposes /debug/pprof; the profiler lives on
		// its own listener (typically bound to localhost) so production
		// traffic and diagnostics can be firewalled apart.
		go func() {
			log.Printf("trajserve: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("trajserve: pprof: %v", err)
			}
		}()
	}
	if *compactEvery > 0 && store != nil {
		go compactLoop(ctx, store, *compactEvery)
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	persistence := "no persistence"
	if store != nil {
		persistence = fmt.Sprintf("segment logs in %s, fsync=%s", *dataDir, *fsync)
		if *retBytes > 0 || *retAge > 0 {
			persistence += fmt.Sprintf(", retention %dB/%s per device", *retBytes, *retAge)
		}
	}
	log.Printf("trajserve listening on %s (ζ=%g m, %d shards, %s)", *addr, *zeta, *shards, persistence)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "trajserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	log.Printf("trajserve: shutting down")
	// New ingest gets an immediate 503 + Retry-After instead of racing
	// the closing listener; in-flight requests drain below.
	h.draining.Store(true)
	sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("trajserve: shutdown: %v", err)
	}
	// Bound the session flush + sink-queue drain too: a wedged disk must
	// not hang shutdown forever. On timeout the store is left unclosed on
	// purpose — closing it would race the still-draining writers, and the
	// segment log recovers the acknowledged prefix on restart regardless.
	done := make(chan int, 1)
	go func() { done <- len(eng.Close()) }()
	select {
	case n := <-done:
		log.Printf("trajserve: flushed %d live sessions", n)
		if store != nil {
			// After eng.Close, so every trailing segment is in the log.
			if err := store.Close(); err != nil {
				log.Printf("trajserve: segment store: %v", err)
			}
		}
	case <-time.After(*shutdownTimeout):
		log.Printf("trajserve: shutdown timeout (%s) with the sink queue still draining; exiting — the log replays the acknowledged prefix on restart", *shutdownTimeout)
	}
}

// compactLoop runs a full-disk retention sweep on every tick until ctx
// is done — the -compact-every flag. The store's own background pass
// only visits logs touched in this process; the sweep also reaches cold
// devices from earlier runs.
func compactLoop(ctx context.Context, store *segstore.Store, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := store.CompactNow(); err != nil && !errors.Is(err, segstore.ErrClosed) {
				log.Printf("trajserve: compact: %v", err)
			}
		}
	}
}

// server carries the shared state of the HTTP handlers.
type server struct {
	eng     *stream.Engine
	store   *segstore.Store // nil without -data-dir
	tails   *tailHub        // nil without -data-dir
	maxBody int64
	mux     *http.ServeMux

	// draining is set when graceful shutdown begins: new ingest gets
	// 503 + Retry-After instead of racing the closing listener, and
	// /healthz flips to draining so load balancers stop routing here.
	draining atomic.Bool
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// newHandler builds the service mux; separated from main for testing.
func newHandler(eng *stream.Engine, store *segstore.Store, tails *tailHub, maxBody int64) *server {
	s := &server{eng: eng, store: store, tails: tails, maxBody: maxBody}
	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /algorithms", func(w http.ResponseWriter, _ *http.Request) {
		for _, a := range algo.All() {
			fmt.Fprintln(w, a.Name)
		}
	})
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /compress", s.handleCompress)
	mux.HandleFunc("POST /ingest", s.handleIngest)
	mux.HandleFunc("POST /flush", s.handleFlush)
	mux.HandleFunc("GET /devices/{device}/segments", s.handleDeviceSegments)
	mux.HandleFunc("GET /devices/{device}/at", s.handleDeviceAt)
	mux.HandleFunc("GET /devices/{device}/tail", s.handleDeviceTail)
	return s
}

// handleHealthz is the readiness probe: a JSON status plus the signals
// an operator needs when it is not "ok". Draining is a 503 — stop
// routing here, the process is going away — while degraded (quarantined
// device logs, or a sink queue past its pressure watermark) stays 200:
// the service still serves, the flag is the advance warning before
// clients start seeing 429s.
func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	var poisoned int64
	if s.store != nil {
		poisoned = s.store.Stats().PoisonedLogs
	}
	status, code := "ok", http.StatusOK
	switch {
	case s.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	case poisoned > 0 || s.eng.Overloaded():
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":        status,
		"poisoned_logs": poisoned,
		"sink_queued":   s.eng.Stats().SinkQueued,
	})
}

// bodyErr maps a request-body read failure to its HTTP status: 413 when
// the MaxBytesReader cap was hit, 400 otherwise.
func bodyErr(w http.ResponseWriter, err error, context string) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		http.Error(w, fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, context+": "+err.Error(), http.StatusBadRequest)
}

func (s *server) handleCompress(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	algoName := q.Get("algo")
	if algoName == "" {
		algoName = "OPERB"
	}
	a, err := algo.Get(algoName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	zeta := 40.0
	if s := q.Get("zeta"); s != "" {
		if zeta, err = strconv.ParseFloat(s, 64); err != nil {
			http.Error(w, "bad zeta: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	clean := 0
	if s := q.Get("clean"); s != "" {
		if clean, err = strconv.Atoi(s); err != nil || clean < 0 {
			http.Error(w, "bad clean window", http.StatusBadRequest)
			return
		}
	}

	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	t, _, err := trajio.ReadCSV(body, trajio.CSVOptions{Format: trajio.Planar, Header: true})
	if err != nil {
		bodyErr(w, err, "bad trajectory")
		return
	}
	if clean > 0 {
		t = traj.Clean(t, clean)
	}
	if err := t.Validate(); err != nil {
		http.Error(w, err.Error()+" (pass clean=N to repair)", http.StatusUnprocessableEntity)
		return
	}
	pw, err := a.Fn(t, zeta)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	sum := metrics.Summarize(t, pw)
	w.Header().Set("X-Algorithm", a.Name)
	w.Header().Set("X-Points", strconv.Itoa(sum.Points))
	w.Header().Set("X-Segments", strconv.Itoa(sum.Segments))
	w.Header().Set("X-Ratio", strconv.FormatFloat(sum.Ratio, 'f', 6, 64))
	w.Header().Set("X-Max-Error", strconv.FormatFloat(sum.MaxError, 'f', 3, 64))

	switch q.Get("out") {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		if err := trajio.WriteCSV(w, pw.Decode(), trajio.CSVOptions{Format: trajio.Planar, Header: true}); err != nil {
			log.Printf("compress: write: %v", err)
		}
	case "binary":
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(trajio.AppendPiecewise(nil, pw)); err != nil {
			log.Printf("compress: write: %v", err)
		}
	default:
		http.Error(w, "unknown out format (csv, binary)", http.StatusBadRequest)
	}
}

// batch is the parsed upload of one /ingest request: per-device point
// batches in arrival order. Batches are pooled — getBatch/release reuse
// the order slice, the device map, and the point slices across requests,
// so the steady-state parse path allocates only what the request's shape
// forces (new devices, growth past any previous request).
type batch struct {
	order  []string
	points map[string][]traj.Point
	spare  [][]traj.Point // emptied point slices awaiting reuse
}

var batchPool = sync.Pool{New: func() any {
	return &batch{points: make(map[string][]traj.Point)}
}}

func getBatch() *batch { return batchPool.Get().(*batch) }

// release returns the batch's buffers to the pool. The caller must be
// done with every point slice handed out via points.
func (b *batch) release() {
	for dev, pts := range b.points {
		b.spare = append(b.spare, pts[:0])
		delete(b.points, dev)
	}
	b.order = b.order[:0]
	batchPool.Put(b)
}

func (b *batch) add(device string, p traj.Point) {
	pts, seen := b.points[device]
	if !seen {
		b.order = append(b.order, device)
		if n := len(b.spare); n > 0 {
			pts, b.spare = b.spare[n-1], b.spare[:n-1]
		}
	}
	b.points[device] = append(pts, p)
}

// addAll merges one decoded point chunk — the streaming binary decoder's
// callback, which reuses its slice, so the points are copied in. An
// empty chunk registers nothing: a frame with point count 0 must not
// create a device entry, matching the per-point whole-buffer path.
func (b *batch) addAll(device string, pts []traj.Point) error {
	if len(pts) == 0 {
		return nil
	}
	cur, seen := b.points[device]
	if !seen {
		b.order = append(b.order, device)
		if n := len(b.spare); n > 0 {
			cur, b.spare = b.spare[n-1], b.spare[:n-1]
		}
	}
	b.points[device] = append(cur, pts...)
	return nil
}

// ingestPoint is one NDJSON line of an /ingest body. Coordinate fields
// are pointers so a missing (or, with DisallowUnknownFields, misnamed)
// key is a 400, not a silent zero-filled point.
type ingestPoint struct {
	Device string   `json:"device"`
	T      *int64   `json:"t_ms"`
	X      *float64 `json:"x_m"`
	Y      *float64 `json:"y_m"`
}

func parseNDJSON(r io.Reader) (*batch, error) {
	b := getBatch()
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	for line := 1; ; line++ {
		var p ingestPoint
		if err := dec.Decode(&p); err == io.EOF {
			return b, nil
		} else if err != nil {
			b.release()
			return nil, fmt.Errorf("record %d: %w", line, err)
		}
		if p.Device == "" {
			b.release()
			return nil, fmt.Errorf("record %d: missing device", line)
		}
		if p.T == nil || p.X == nil || p.Y == nil {
			b.release()
			return nil, fmt.Errorf("record %d: missing t_ms/x_m/y_m", line)
		}
		b.add(p.Device, traj.At(*p.X, *p.Y, *p.T))
	}
}

func parseDeviceCSV(r io.Reader) (*batch, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("header: %w", err)
	}
	if header[0] != "device" || header[1] != "t_ms" || header[2] != "x_m" || header[3] != "y_m" {
		return nil, fmt.Errorf("header %q: want device,t_ms,x_m,y_m", strings.Join(header, ","))
	}
	b := getBatch()
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return b, nil
		} else if err != nil {
			b.release()
			return nil, err
		}
		if rec[0] == "" {
			b.release()
			return nil, fmt.Errorf("line %d: missing device", line)
		}
		t, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			b.release()
			return nil, fmt.Errorf("line %d: t_ms: %w", line, err)
		}
		x, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			b.release()
			return nil, fmt.Errorf("line %d: x_m: %w", line, err)
		}
		y, err := strconv.ParseFloat(rec[3], 64)
		if err != nil {
			b.release()
			return nil, fmt.Errorf("line %d: y_m: %w", line, err)
		}
		b.add(rec[0], traj.At(x, y, t))
	}
}

// segmentRecord is one NDJSON line of an out=segments response.
type segmentRecord struct {
	Device string  `json:"device"`
	T1     int64   `json:"t1_ms"`
	X1     float64 `json:"x1_m"`
	Y1     float64 `json:"y1_m"`
	T2     int64   `json:"t2_ms"`
	X2     float64 `json:"x2_m"`
	Y2     float64 `json:"y2_m"`
	Points int     `json:"points"`
}

func writeSegments(w io.Writer, device string, segs []traj.Segment) error {
	enc := json.NewEncoder(w)
	for _, s := range segs {
		rec := segmentRecord{
			Device: device,
			T1:     s.Start.T, X1: s.Start.X, Y1: s.Start.Y,
			T2: s.End.T, X2: s.End.X, Y2: s.End.Y,
			Points: s.PointCount(),
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// parseBinary decodes the compact binary ingest wire format, streaming:
// the body is consumed chunk by chunk through the decoder's fixed pooled
// buffer, never materialized whole — a large upload costs the memory of
// its parsed points, not of its bytes too.
func parseBinary(r io.Reader) (*batch, error) {
	b := getBatch()
	if err := trajio.DecodeIngestStream(r, b.addAll); err != nil {
		b.release()
		return nil, err
	}
	return b, nil
}

func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "shutting down; retry against another instance", http.StatusServiceUnavailable)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	var (
		b   *batch
		err error
	)
	switch ct := r.Header.Get("Content-Type"); {
	case strings.Contains(ct, trajio.IngestContentType):
		b, err = parseBinary(body)
	case strings.Contains(ct, "json"):
		b, err = parseNDJSON(body)
	default:
		b, err = parseDeviceCSV(body)
	}
	if err != nil {
		bodyErr(w, err, "bad ingest body")
		return
	}
	defer b.release()

	// An empty (but well-formed) body is a no-op, not a failure — and it
	// must not reach the all-failed branch below, whose status would be
	// unset.
	if len(b.order) == 0 {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"devices": 0, "points": 0, "segments": 0})
		return
	}

	wantSegments := r.URL.Query().Get("out") == "segments"
	// Device batches commit independently (bulk semantics): one device's
	// rejection must not block the others — and must not poison a client
	// retry of the whole body, since the accepted devices are reported.
	// All ingests run before anything is written so a whole-batch failure
	// can still set the response status.
	var points, segments int
	var results map[string][]traj.Segment
	if wantSegments {
		results = make(map[string][]traj.Segment, len(b.order))
	}
	failed := make(map[string]string)
	worst := 0
	var retryAfter time.Duration // largest advice among overloaded devices
	for _, dev := range b.order {
		pts := b.points[dev]
		var (
			segs []traj.Segment
			err  error
		)
		if wantSegments {
			// IngestAppend copies under the engine's shard lock: a private
			// snapshot a concurrent request for the same device cannot
			// overwrite while we hold it for the response.
			segs, err = s.eng.IngestAppend(dev, pts, nil)
		} else {
			// Only len(segs) is read below, which is safe on the engine's
			// reusable out-buffer.
			segs, err = s.eng.Ingest(dev, pts)
		}
		if err != nil {
			status := http.StatusInternalServerError
			var oe *stream.OverloadError
			switch {
			case errors.As(err, &oe):
				// Rate-limited or queue-pressure rejection: the engine
				// says exactly when retrying can succeed.
				status = http.StatusTooManyRequests
				if oe.RetryAfter > retryAfter {
					retryAfter = oe.RetryAfter
				}
			case errors.Is(err, stream.ErrSessionLimit):
				status = http.StatusTooManyRequests
			case errors.Is(err, stream.ErrClosed):
				status = http.StatusServiceUnavailable
			case errors.Is(err, stream.ErrNoDevice), errors.Is(err, stream.ErrDeviceTooLong):
				status = http.StatusBadRequest
			case errors.Is(err, stream.ErrTimeOrder):
				// Mirrors /compress rejecting unordered uploads with 422.
				status = http.StatusUnprocessableEntity
				err = fmt.Errorf("%w (start the server with -ingest-clean=N to repair)", err)
			}
			failed[dev] = err.Error()
			if status > worst {
				worst = status
			}
			continue
		}
		points += len(pts)
		segments += len(segs)
		if wantSegments {
			results[dev] = segs // already a private copy (IngestAppend)
		}
	}
	// Only when every device failed does the request itself fail.
	if len(failed) == len(b.order) {
		if worst == http.StatusTooManyRequests && retryAfter > 0 {
			// Retry-After is whole seconds; round up so the client never
			// retries before the engine said it could succeed.
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retryAfter.Seconds()))))
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(worst)
		json.NewEncoder(w).Encode(map[string]any{"failed": failed})
		return
	}
	if wantSegments {
		// Failed devices appear in the NDJSON stream as error records.
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, dev := range b.order {
			if msg, ok := failed[dev]; ok {
				if err := enc.Encode(map[string]string{"device": dev, "error": msg}); err != nil {
					log.Printf("ingest: write: %v", err)
					return
				}
				continue
			}
			if err := writeSegments(w, dev, results[dev]); err != nil {
				log.Printf("ingest: write: %v", err)
				return
			}
		}
		return
	}
	resp := map[string]any{
		"devices":  len(b.order) - len(failed),
		"points":   points,
		"segments": segments,
	}
	if len(failed) > 0 {
		resp["failed"] = failed
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleFlush(w http.ResponseWriter, r *http.Request) {
	wantSegments := r.URL.Query().Get("out") == "segments"
	if dev := r.URL.Query().Get("device"); dev != "" {
		segs, ok := s.eng.Flush(dev)
		if !ok {
			http.Error(w, "no live session for device "+dev, http.StatusNotFound)
			return
		}
		if wantSegments {
			w.Header().Set("Content-Type", "application/x-ndjson")
			if err := writeSegments(w, dev, segs); err != nil {
				log.Printf("flush: write: %v", err)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]int{"devices": 1, "segments": len(segs)})
		return
	}
	tails := s.eng.FlushAll()
	if wantSegments {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for dev, segs := range tails {
			if err := writeSegments(w, dev, segs); err != nil {
				log.Printf("flush: write: %v", err)
				return
			}
		}
		return
	}
	var segments int
	for _, segs := range tails {
		segments += len(segs)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]int{"devices": len(tails), "segments": segments})
}

// queryMs parses an optional unix-ms query parameter, reporting whether
// it was present.
func queryMs(r *http.Request, key string) (int64, bool, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, false, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, false, fmt.Errorf("bad %s: %w", key, err)
	}
	return v, true, nil
}

// handleDeviceSegments replays a device's persisted segment log — the
// read side of -data-dir. It serves only what the store holds: segments
// still inside a live encoder appear after the session flushes or is
// evicted. With from/to it becomes a range query over the store's time
// index: only the covering records are read, not the whole log.
func (s *server) handleDeviceSegments(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "persistence disabled: start trajserve with -data-dir", http.StatusNotFound)
		return
	}
	device := r.PathValue("device")
	from, haveFrom, err := queryMs(r, "from")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	to, haveTo, err := queryMs(r, "to")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// An inverted range is a caller bug (swapped parameters, bad clock
	// arithmetic): reject it instead of returning an empty 200 a client
	// cannot tell apart from "no data there".
	if haveFrom && haveTo && from > to {
		http.Error(w, fmt.Sprintf("inverted range: from=%d > to=%d", from, to), http.StatusBadRequest)
		return
	}
	ranged := haveFrom || haveTo
	if !haveFrom {
		from = math.MinInt64
	}
	if !haveTo {
		to = math.MaxInt64
	}
	var segs []traj.Segment
	if ranged {
		segs, err = s.store.ReplayRange(device, from, to)
	} else {
		segs, err = s.store.Replay(device)
	}
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, segstore.ErrDeviceID) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	// A full replay of an absent log is a 404; a ranged query that merely
	// matched nothing is an ordinary empty result.
	if len(segs) == 0 && !ranged {
		http.Error(w, "no persisted segments for device "+device, http.StatusNotFound)
		return
	}
	switch r.URL.Query().Get("out") {
	case "", "segments":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := writeSegments(w, device, segs); err != nil {
			log.Printf("devices/segments: write: %v", err)
		}
	case "binary":
		// The binary piecewise encoding stores only the first Start and
		// welds every later Start to the previous End — valid for one
		// continuous polyline, silently wrong for a log spanning several
		// encoder sessions (each restarts wherever the device was) or for
		// a ranged result that skipped records. Refuse rather than corrupt;
		// out=sgb1 carries discontinuous results.
		for i := 1; i < len(segs); i++ {
			if segs[i].Start != segs[i-1].End {
				http.Error(w, "segments do not form one continuous polyline; use the NDJSON replay or out=sgb1", http.StatusUnprocessableEntity)
				return
			}
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(trajio.AppendPiecewise(nil, traj.Piecewise(segs))); err != nil {
			log.Printf("devices/segments: write: %v", err)
		}
	case "sgb1":
		// The segment-batch encoding carries Start and End explicitly, so
		// it is closed under range filtering — no continuity requirement.
		w.Header().Set("Content-Type", "application/octet-stream")
		if _, err := w.Write(trajio.AppendSegments(nil, segs)); err != nil {
			log.Printf("devices/segments: write: %v", err)
		}
	default:
		http.Error(w, "unknown out format (segments, binary, sgb1)", http.StatusBadRequest)
	}
}

// handleDeviceAt is GET /devices/{device}/at?t=: the paper's
// where-was-it-at-t query, answered from the persisted piecewise
// representation by binary search over the time index plus interpolation
// along the covering segment.
func (s *server) handleDeviceAt(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		http.Error(w, "persistence disabled: start trajserve with -data-dir", http.StatusNotFound)
		return
	}
	device := r.PathValue("device")
	tms, have, err := queryMs(r, "t")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !have {
		http.Error(w, "missing t (unix ms)", http.StatusBadRequest)
		return
	}
	seg, err := s.store.SegmentAt(device, tms)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, segstore.ErrNoPosition):
			status = http.StatusNotFound
		case errors.Is(err, segstore.ErrDeviceID):
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	p := seg.At(tms)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"device": device,
		"t_ms":   tms,
		"x_m":    p.X,
		"y_m":    p.Y,
		"segment": segmentRecord{
			Device: device,
			T1:     seg.Start.T, X1: seg.Start.X, Y1: seg.Start.Y,
			T2: seg.End.T, X2: seg.End.X, Y2: seg.End.Y,
			Points: seg.PointCount(),
		},
	})
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.eng.Stats())
}
