package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sync"
	"time"

	"trajsim/internal/traj"
)

// The live tail: GET /devices/{device}/tail streams finalized segments
// as server-sent events. The feed is the engine's post-sink hook, so a
// tail announces a batch only after the segment store accepted it — a
// client that sees an event and then calls /segments?from= is guaranteed
// to find the segments there. In-memory encoder state is invisible here,
// exactly as it is to Replay: a tail shows the durable truth, not the
// speculative one.

// defaultTailBuffer is the per-subscriber buffered batch count when
// -tail-buffer is zero.
const defaultTailBuffer = 64

// tailSub is one SSE subscriber: a buffered channel of batch copies and
// a lagged flag set when the buffer overflows. Overflow never blocks the
// sink writers — the subscriber is told it lagged and the stream ends,
// leaving the client to reconnect (and backfill via /segments?from=).
type tailSub struct {
	ch     chan []traj.Segment
	lagged bool // guarded by the hub mutex
}

// tailHub fans persisted segment batches out to the device's tail
// subscribers. publish is wired to stream.Config.OnSink.
type tailHub struct {
	buf  int
	mu   sync.Mutex
	subs map[string]map[*tailSub]struct{}
}

func newTailHub(buf int) *tailHub {
	if buf <= 0 {
		buf = defaultTailBuffer
	}
	return &tailHub{buf: buf, subs: make(map[string]map[*tailSub]struct{})}
}

// publish delivers one persisted batch to device's subscribers. Runs on
// a sink-writer goroutine; segs is the engine's reusable buffer, so one
// copy is made for all subscribers. Never blocks: a subscriber whose
// buffer is full is marked lagged instead.
func (h *tailHub) publish(device string, segs []traj.Segment) {
	h.mu.Lock()
	defer h.mu.Unlock()
	subs := h.subs[device]
	if len(subs) == 0 {
		return
	}
	cp := make([]traj.Segment, len(segs))
	copy(cp, segs)
	for sub := range subs {
		select {
		case sub.ch <- cp:
		default:
			sub.lagged = true
		}
	}
}

// subscribe registers a new tail on device; the caller must unsubscribe.
func (h *tailHub) subscribe(device string) *tailSub {
	sub := &tailSub{ch: make(chan []traj.Segment, h.buf)}
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.subs[device]
	if m == nil {
		m = make(map[*tailSub]struct{})
		h.subs[device] = m
	}
	m[sub] = struct{}{}
	return sub
}

func (h *tailHub) unsubscribe(device string, sub *tailSub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.subs[device]
	delete(m, sub)
	if len(m) == 0 {
		delete(h.subs, device)
	}
}

// hasLagged reports (and observes under the hub lock) whether sub
// overflowed since the last check.
func (h *tailHub) hasLagged(sub *tailSub) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return sub.lagged
}

// tailHeartbeat is how often an idle tail emits an SSE comment so
// proxies and clients can tell a quiet device from a dead connection.
// Shortened in tests.
var tailHeartbeat = 15 * time.Second

// handleDeviceTail is GET /devices/{device}/tail: a long-poll SSE stream
// of the device's finalized segment batches, one "segments" event per
// persisted batch (data: a JSON array of the same records /segments
// emits). The stream ends with a "lagged" event if the client fell
// behind the ingest rate; clients resume any time with
// /segments?from=<last seen t2_ms>.
func (s *server) handleDeviceTail(w http.ResponseWriter, r *http.Request) {
	if s.tails == nil {
		http.Error(w, "persistence disabled: start trajserve with -data-dir", http.StatusNotFound)
		return
	}
	device := r.PathValue("device")
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // nginx: do not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	sub := s.tails.subscribe(device)
	defer s.tails.unsubscribe(device, sub)
	beat := time.NewTicker(tailHeartbeat)
	defer beat.Stop()
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case <-beat.C:
			// A subscriber that overflowed and then went quiet would never
			// reach the post-delivery check below — it would idle on a
			// silently gapped stream forever. The heartbeat is the moment an
			// idle connection is touched anyway, so surface the gap here too.
			if s.tails.hasLagged(sub) {
				sendLagged(w, fl)
				return
			}
			// SSE comment line: ignored by clients, keeps intermediaries from
			// timing the connection out.
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case segs := <-sub.ch:
			recs := make([]segmentRecord, len(segs))
			for i, sg := range segs {
				recs[i] = segmentRecord{
					Device: device,
					T1:     sg.Start.T, X1: sg.Start.X, Y1: sg.Start.Y,
					T2: sg.End.T, X2: sg.End.X, Y2: sg.End.Y,
					Points: sg.PointCount(),
				}
			}
			if _, err := fmt.Fprint(w, "event: segments\ndata: "); err != nil {
				return
			}
			if err := enc.Encode(recs); err != nil { // Encode ends the data line
				log.Printf("devices/tail: write: %v", err)
				return
			}
			if _, err := fmt.Fprint(w, "\n"); err != nil {
				return
			}
			fl.Flush()
			if s.tails.hasLagged(sub) {
				sendLagged(w, fl)
				return
			}
		}
	}
}

// sendLagged tells a subscriber that fell behind that its stream is
// gapped, as the final event before disconnect. The write error is
// checked — a dead connection must not pretend the client was told.
func sendLagged(w http.ResponseWriter, fl http.Flusher) {
	if _, err := fmt.Fprint(w, "event: lagged\ndata: {}\n\n"); err != nil {
		log.Printf("devices/tail: lagged notify: %v", err)
		return
	}
	fl.Flush()
}
