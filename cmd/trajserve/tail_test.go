package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"trajsim/internal/gen"
	"trajsim/internal/segstore"
	"trajsim/internal/stream"
)

// TestTailLaggedOnHeartbeat: a subscriber that overflowed and then went
// idle — no further batches arrive — must still be told it lagged. The
// heartbeat tick is the only moment such a connection is touched, so the
// lagged check has to run there; before the fix the client idled forever
// on a silently gapped stream.
func TestTailLaggedOnHeartbeat(t *testing.T) {
	old := tailHeartbeat
	tailHeartbeat = 20 * time.Millisecond
	defer func() { tailHeartbeat = old }()

	store, err := segstore.Open(segstore.Config{Dir: t.TempDir(), Sync: segstore.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	tails := newTailHub(1)
	eng, err := stream.NewEngine(stream.Config{Zeta: 40, Sink: store, OnSink: tails.publish})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(eng, store, tails, testMaxBody))
	defer srv.Close()
	defer store.Close()
	defer eng.Close()

	const dev = "quiet"
	resp, err := http.Get(srv.URL + "/devices/" + dev + "/tail")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail: status %d", resp.StatusCode)
	}

	// Wait for the handler to register its subscription, then mark it
	// lagged directly — the deterministic stand-in for a publish burst
	// overflowing the size-1 buffer while the client was slow.
	var sub *tailSub
	deadline := time.Now().Add(10 * time.Second)
	for sub == nil && time.Now().Before(deadline) {
		tails.mu.Lock()
		for s := range tails.subs[dev] {
			sub = s
		}
		tails.mu.Unlock()
		time.Sleep(time.Millisecond)
	}
	if sub == nil {
		t.Fatal("tail handler never subscribed")
	}
	tails.mu.Lock()
	sub.lagged = true
	tails.mu.Unlock()

	// The device stays silent from here on: only the heartbeat can
	// surface the gap. Expect a lagged event, then end of stream.
	type outcome struct {
		lagged bool
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		var o outcome
		o.err = readSSE(resp.Body, func(ev sseEvent) bool {
			if ev.name == "segments" {
				o.err = fmt.Errorf("idle device delivered a segments event: %q", ev.data)
				return false
			}
			if ev.name == "lagged" {
				o.lagged = true
				return false
			}
			return true
		})
		done <- o
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatal(o.err)
		}
		if !o.lagged {
			t.Fatal("stream ended without a lagged event")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("idle lagged subscriber was never notified — the heartbeat path lost the check")
	}
}

// TestDeviceSegmentsInvertedRange: from > to is a client error — a 400
// naming the bounds, not an empty 200 a poller would happily treat as
// "no data".
func TestDeviceSegmentsInvertedRange(t *testing.T) {
	srv, _ := persistentServer(t, t.TempDir())
	const dev = "backwards"
	ingestFlushed(t, srv, dev, gen.One(gen.Taxi, 300, 95))
	status, all := fetchRecords(t, segmentsURL(srv, dev))
	if status != http.StatusOK || len(all) == 0 {
		t.Fatalf("full replay: status %d, %d records", status, len(all))
	}
	from, to := all[len(all)-1].T2, all[0].T1
	if from <= to {
		t.Fatalf("trajectory spans [%d,%d]; cannot build an inverted window", to, from)
	}
	for _, out := range []string{"", "&out=binary", "&out=sgb1"} {
		u := fmt.Sprintf("%s?from=%d&to=%d%s", segmentsURL(srv, dev), from, to, out)
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("inverted range%s: status %d, want 400", out, resp.StatusCode)
		}
		if !strings.Contains(string(b), "inverted") {
			t.Errorf("inverted range%s: body %q does not name the problem", out, b)
		}
	}
	// A degenerate-but-valid window (from == to) stays a 200.
	u := fmt.Sprintf("%s?from=%d&to=%d", segmentsURL(srv, dev), all[0].T1, all[0].T1)
	if status, _ := fetchRecords(t, u); status != http.StatusOK {
		t.Fatalf("from == to: status %d, want 200", status)
	}
}
