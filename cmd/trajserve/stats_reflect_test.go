package main

import (
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"trajsim/internal/segstore"
	"trajsim/internal/stream"
)

// TestStatsExposesEveryCounter pins /stats to the Stats structs by
// reflection: every json-tagged field of stream.Stats must appear at
// the top level of the payload, and every field of segstore.Stats
// under its "store" key. A counter added to either struct without
// surfacing here (or a tag typo'd out of existence) fails this test
// instead of silently vanishing from the operational surface.
func TestStatsExposesEveryCounter(t *testing.T) {
	srv, shutdown := persistentServer(t, t.TempDir())
	defer shutdown()

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %s", resp.Status)
	}
	var payload map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		t.Fatal(err)
	}

	requireTaggedFields(t, reflect.TypeOf(stream.Stats{}), payload, "")
	var store map[string]json.RawMessage
	if err := json.Unmarshal(payload["store"], &store); err != nil {
		t.Fatalf("store key is not an object: %v", err)
	}
	requireTaggedFields(t, reflect.TypeOf(segstore.Stats{}), store, "store.")
}

// requireTaggedFields asserts one key per json-tagged field of st in
// obj. prefix only decorates failure messages.
func requireTaggedFields(t *testing.T, st reflect.Type, obj map[string]json.RawMessage, prefix string) {
	t.Helper()
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		name, _, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "" || name == "-" {
			t.Errorf("%s%s has no json tag; it would be invisible in /stats", prefix, f.Name)
			continue
		}
		if _, ok := obj[name]; !ok {
			t.Errorf("/stats is missing %s%s (field %s.%s)", prefix, name, st.Name(), f.Name)
		}
	}
}
