package trajsim

import (
	"trajsim/internal/segstore"
)

// Durable segment persistence, re-exported from internal/segstore: an
// append-only, crash-recoverable per-device log of finalized segments.
// Plug a SegmentStore into EngineConfig.Sink and every segment the
// engine emits survives a restart; Replay serves it back.
//
// The store is resource-bounded: SegmentStoreConfig.MaxOpenFiles caps
// how many device logs hold an open file handle (cold logs are
// transparently closed and reopened by an LRU), MaxResidentLogs caps
// how many keep metadata in memory, and MaxLogBytes / MaxLogAge bound
// each device's disk usage via retention — whole rotated files are
// deleted oldest-first, never splitting a record, so whatever survives
// replays as an intact, contiguous suffix; under MaxLogAge, expired
// record prefixes of the oldest file are truncated away too. Retention
// runs at rotation, at first open, on a background tick, and on demand
// via SegmentStore.CompactNow.
//
// Each log file carries a sparse time index (a CRC-framed .idx sidecar,
// rebuilt from the data if ever missing or stale), which is what makes
// ReplayRange and SegmentAt seek to the covering records instead of
// scanning the log. Reads run concurrently with appends — queries
// snapshot the log and decode outside its lock — and setting
// SegmentStoreConfig.ReadCacheBytes (DefaultReadCacheBytes is a
// sensible budget) serves repeated queries from a decoded-span cache
// with no disk I/O.
type (
	// SegmentStore is an append-only segment log over one directory:
	// CRC-framed, varint delta-coded records in size-rotated files, with
	// torn-tail recovery on open, a bounded file-handle LRU, and
	// per-device retention.
	SegmentStore = segstore.Store
	// SegmentStoreConfig parameterizes OpenSegmentStore; Dir is required.
	SegmentStoreConfig = segstore.Config
	// SegmentStoreStats are the store-wide counters: appends, segments,
	// bytes, fsyncs, recovery truncations, handle hits/misses/evictions,
	// and retention's bytes reclaimed / files deleted.
	SegmentStoreStats = segstore.Stats
	// SyncPolicy selects when appends are fsynced.
	SyncPolicy = segstore.SyncPolicy
)

// DefaultMaxOpenFiles is the file-handle cap applied when
// SegmentStoreConfig.MaxOpenFiles is zero.
const DefaultMaxOpenFiles = segstore.DefaultMaxOpenFiles

// DefaultReadCacheBytes is a sensible serving-tier budget for
// SegmentStoreConfig.ReadCacheBytes (which defaults to 0 — no caching).
const DefaultReadCacheBytes = segstore.DefaultReadCacheBytes

// Fsync policies for SegmentStoreConfig.Sync.
const (
	// SyncInterval fsyncs dirty logs in the background (the default).
	SyncInterval = segstore.SyncInterval
	// SyncAlways fsyncs every append.
	SyncAlways = segstore.SyncAlways
	// SyncNever leaves flushing to the OS.
	SyncNever = segstore.SyncNever
)

// Segment-store errors, re-exported for errors.Is.
var (
	ErrStoreClosed  = segstore.ErrClosed
	ErrStoreCorrupt = segstore.ErrCorrupt
	ErrDeviceID     = segstore.ErrDeviceID
	// ErrNoPosition is returned by SegmentStore.SegmentAt when no
	// persisted segment covers the requested time.
	ErrNoPosition = segstore.ErrNoPosition
)

// OpenSegmentStore opens (creating if needed) a durable segment store.
//
//	store, _ := trajsim.OpenSegmentStore(trajsim.SegmentStoreConfig{Dir: "data"})
//	eng, _ := trajsim.NewEngine(trajsim.EngineConfig{Zeta: 40, Sink: store})
//	...
//	eng.Close()  // flush tails into the store
//	store.Close()
//	segs, _ := store.Replay("vehicle-7") // everything persisted, in order
func OpenSegmentStore(cfg SegmentStoreConfig) (*SegmentStore, error) {
	return segstore.Open(cfg)
}

// ParseSyncPolicy parses "interval", "always" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return segstore.ParseSyncPolicy(s) }
